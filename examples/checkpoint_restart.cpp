// checkpoint_restart: migrating a GPU session between Cricket servers.
//
// The paper (§1, §5) positions checkpoint/restart as a key benefit of the
// decoupling: "runtime reorganization of tasks through checkpoint/restart".
// This example runs half of an iterative computation against one server,
// checkpoints the device state over RPC, "migrates" (boots a brand-new GPU
// node + server, as after a node drain), restores, and finishes the
// computation — with every device pointer and kernel handle still valid and
// the final result bit-identical to an unmigrated run.
//
//   $ ./checkpoint_restart
#include <cstdio>
#include <filesystem>
#include <vector>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "cudart/raii.hpp"
#include "env/environment.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace cricket;

constexpr std::uint32_t kN = 4096;
constexpr int kTotalSteps = 10;

/// One saxpy-like accumulation step: acc += 1.0 * data (via vectorAdd).
void run_step(core::RemoteCudaApi& api, cuda::FuncId fn, cuda::DevPtr acc,
              cuda::DevPtr data) {
  cuda::ParamPacker params;
  params.add(acc).add(acc).add(data).add(kN);
  cuda::check(api.launch_kernel(fn, {kN / 256, 1, 1}, {256, 1, 1}, 0,
                                gpusim::kDefaultStream, params.bytes()));
  cuda::check(api.device_synchronize());
}

std::unique_ptr<cuda::GpuNode> fresh_node() {
  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  return node;
}

}  // namespace

int main() {
  const auto ckpt_dir =
      std::filesystem::temp_directory_path() / "cricket_example_ckpt";
  std::filesystem::create_directories(ckpt_dir);
  core::ServerOptions options;
  options.checkpoint_dir = ckpt_dir.string();

  const auto environment = env::make_environment(env::EnvKind::kRustyHermit);
  std::vector<float> data(kN);
  for (std::uint32_t i = 0; i < kN; ++i)
    data[i] = static_cast<float>(i % 97) * 0.25f;

  // Handles survive the migration; capture them from phase one.
  cuda::DevPtr acc_ptr = 0, data_ptr = 0;
  cuda::FuncId fn = 0;

  // ---------------- phase 1: first server, half the steps ----------------
  {
    auto node = fresh_node();
    core::CricketServer server(*node, options);
    auto conn = env::connect(environment, node->clock());
    auto thread = server.serve_async(std::move(conn.server));
    {
      core::RemoteCudaApi api(
          std::move(conn.guest), node->clock(),
          core::ClientConfig{.flavor = environment.flavor,
                             .profile = environment.profile});
      cuda::ModuleId mod = 0;
      cuda::check(api.module_load(mod, workloads::sample_cubin()));
      cuda::check(
          api.module_get_function(fn, mod, workloads::kVectorAddKernel));
      cuda::check(api.malloc(acc_ptr, kN * 4));
      cuda::check(api.malloc(data_ptr, kN * 4));
      cuda::check(api.memset(acc_ptr, 0, kN * 4));
      cuda::check(api.memcpy_h2d(
          data_ptr, {reinterpret_cast<const std::uint8_t*>(data.data()),
                     kN * 4}));

      for (int step = 0; step < kTotalSteps / 2; ++step)
        run_step(api, fn, acc_ptr, data_ptr);

      cuda::check(api.checkpoint("migrate.ckpt"), "checkpoint");
      std::printf("phase 1: %d steps done, state checkpointed to %s\n",
                  kTotalSteps / 2, (ckpt_dir / "migrate.ckpt").c_str());
      // The unikernel exits without freeing — the checkpoint, not the
      // session, now owns the state.
    }
    thread.join();
  }

  // ------------- phase 2: brand-new node + server, restore ---------------
  std::vector<float> result(kN);
  {
    auto node = fresh_node();
    core::CricketServer server(*node, options);
    auto conn = env::connect(environment, node->clock());
    auto thread = server.serve_async(std::move(conn.server));
    {
      core::RemoteCudaApi api(
          std::move(conn.guest), node->clock(),
          core::ClientConfig{.flavor = environment.flavor,
                             .profile = environment.profile});
      cuda::check(api.restore("migrate.ckpt"), "restore");
      std::printf("phase 2: restored on a fresh GPU node; old handles valid\n");

      for (int step = kTotalSteps / 2; step < kTotalSteps; ++step)
        run_step(api, fn, acc_ptr, data_ptr);  // same fn/pointers as phase 1

      cuda::check(api.memcpy_d2h(
          {reinterpret_cast<std::uint8_t*>(result.data()), kN * 4}, acc_ptr));
    }
    thread.join();
  }

  // ------------------------------ verify ---------------------------------
  bool ok = true;
  for (std::uint32_t i = 0; i < kN; ++i)
    ok &= (result[i] == static_cast<float>(kTotalSteps) * data[i]);
  std::printf("after migration: acc == %d * data for all %u elements: %s\n",
              kTotalSteps, kN, ok ? "PASSED" : "FAILED");
  std::filesystem::remove_all(ckpt_dir);
  return ok ? 0 : 1;
}
