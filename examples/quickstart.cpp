// Quickstart: a GPU application running against a remote (virtualized) GPU.
//
// Mirrors the paper's minimal flow (Fig. 3/4): an application in a
// RustyHermit unikernel uses the forwarded CUDA API — device discovery,
// memory management with RAII buffers, cubin upload, kernel launch — while
// the Cricket server on the GPU node executes the calls on the (simulated)
// A100.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "cudart/raii.hpp"
#include "env/environment.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace cricket;

  // --- GPU node side: one (simulated) A100 behind a Cricket server ---
  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  core::CricketServer server(*node);

  // --- guest side: a RustyHermit unikernel's network path ---
  const auto environment = env::make_environment(env::EnvKind::kRustyHermit);
  auto conn = env::connect(environment, node->clock());
  auto server_thread = server.serve_async(std::move(conn.server));

  {
    core::RemoteCudaApi cuda_api(
        std::move(conn.guest), node->clock(),
        core::ClientConfig{.flavor = environment.flavor,
                           .profile = environment.profile});

    // Device discovery, forwarded over ONC RPC.
    int device_count = 0;
    cuda::check(cuda_api.get_device_count(device_count));
    cuda::DeviceInfo info;
    cuda::check(cuda_api.get_device_properties(info, 0));
    std::printf("guest '%s' sees %d GPU(s); device 0: %s (sm_%u, %llu MiB)\n",
                environment.name.c_str(), device_count, info.name.c_str(),
                info.sm_arch,
                static_cast<unsigned long long>(info.total_mem >> 20));

    // Upload the compiled kernels (a compressed cubin, decompressed and
    // parsed server-side — the paper's cuModule path, section 3.3).
    cuda::Module module(cuda_api, workloads::sample_cubin(/*compressed=*/true));
    const auto vector_add = module.function(workloads::kVectorAddKernel);

    // GPU buffers behave like local heap allocations: RAII guarantees no
    // use-after-free or double-free (the paper's Rust-lifetime argument).
    constexpr std::uint32_t kN = 1 << 16;
    std::vector<float> a(kN), b(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      a[i] = static_cast<float>(i);
      b[i] = 2.0f * static_cast<float>(i);
    }
    cuda::DeviceBuffer da(cuda_api, kN * 4), db(cuda_api, kN * 4),
        dc(cuda_api, kN * 4);
    da.upload_values<float>(a);
    db.upload_values<float>(b);

    cuda::ParamPacker params;
    params.add_ptr(dc).add_ptr(da).add_ptr(db).add(kN);
    cuda::check(cuda_api.launch_kernel(vector_add, {kN / 256, 1, 1},
                                       {256, 1, 1}, 0, gpusim::kDefaultStream,
                                       params.bytes()),
                "vectorAdd launch");
    cuda::check(cuda_api.device_synchronize());

    const auto c = dc.download_values<float>(kN);
    bool ok = true;
    for (std::uint32_t i = 0; i < kN; ++i)
      ok &= (c[i] == 3.0f * static_cast<float>(i));
    std::printf("vectorAdd over RPC: %s (%u elements)\n",
                ok ? "PASSED" : "FAILED", kN);
    std::printf("forwarded API calls: %llu, virtual time: %.3f ms\n",
                static_cast<unsigned long long>(cuda_api.stats().api_calls),
                static_cast<double>(node->clock().now()) / 1e6);
  }

  server_thread.join();
  return 0;
}
