// remote_matrixmul: the paper's headline proxy application on any Table 1
// environment.
//
//   $ ./remote_matrixmul [env] [iterations]
//     env: C | Rust | vm | unikraft | hermit   (default hermit)
//
// Runs the matrixMul workload (320x320 x 320x640 GEMM) end-to-end through
// the Cricket virtualization layer and prints the paper-style accounting:
// API calls, transfer volume, and virtual execution time.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "sim/stats.hpp"
#include "workloads/kernels.hpp"
#include "workloads/matrix_mul.hpp"

namespace {

cricket::env::EnvKind parse_env(const char* name) {
  using cricket::env::EnvKind;
  const std::string s = name;
  if (s == "C") return EnvKind::kNativeC;
  if (s == "Rust") return EnvKind::kNativeRust;
  if (s == "vm") return EnvKind::kLinuxVm;
  if (s == "unikraft") return EnvKind::kUnikraft;
  return EnvKind::kRustyHermit;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cricket;

  const auto kind = parse_env(argc > 1 ? argv[1] : "hermit");
  const auto iterations =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 200u;
  const auto environment = env::make_environment(kind);

  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  core::CricketServer server(*node);
  auto conn = env::connect(environment, node->clock());
  auto server_thread = server.serve_async(std::move(conn.server));

  std::printf("matrixMul on '%s' (%s / %s / %s network), %u iterations\n",
              environment.name.c_str(), environment.os.c_str(),
              environment.hypervisor.c_str(), environment.network.c_str(),
              iterations);
  {
    core::RemoteCudaApi api(std::move(conn.guest), node->clock(),
                            core::ClientConfig{.flavor = environment.flavor,
                                               .profile = environment.profile});
    workloads::MatrixMulConfig cfg;
    cfg.iterations = iterations;
    const auto report = workloads::run_matrix_mul(
        api, node->clock(), environment.flavor, cfg);

    std::printf("  result verified:   %s\n", report.verified ? "yes" : "NO");
    std::printf("  CUDA API calls:    %llu\n",
                static_cast<unsigned long long>(report.api_calls));
    std::printf("  kernel launches:   %llu\n",
                static_cast<unsigned long long>(report.kernel_launches));
    std::printf("  memcpy volume:     %s\n",
                sim::format_bytes(
                    static_cast<double>(report.memcpy_volume())).c_str());
    std::printf("  init time:         %s\n",
                sim::format_nanos(static_cast<double>(report.init_ns)).c_str());
    std::printf("  execution time:    %s (virtual)\n",
                sim::format_nanos(static_cast<double>(report.exec_ns)).c_str());
  }
  server_thread.join();
  return 0;
}
