// multi_tenant: many unikernels sharing one GPU through Cricket.
//
// The paper's closing motivation (§5): "the use case of unikernels involves
// using many unikernels to run isolated applications... our approach allows
// the flexibility of sharing GPU devices across many unikernels, managing
// the shared access through configurable schedulers." This example boots
// several Hermit-style guests, each running its own histogram computation
// against the same A100, under the fair-share kernel scheduler — including
// one deliberately greedy tenant.
//
//   $ ./multi_tenant [tenants]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "sim/stats.hpp"
#include "workloads/histogram.hpp"
#include "workloads/kernels.hpp"

int main(int argc, char** argv) {
  using namespace cricket;
  const int tenants = argc > 1 ? std::atoi(argv[1]) : 4;

  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  core::ServerOptions options;
  options.scheduler = core::SchedulerPolicy::kFairShare;
  core::CricketServer fair_server(*node, options);

  std::printf("%d unikernel tenants sharing one A100 (fair-share "
              "scheduler)\n",
              tenants);

  const auto environment = env::make_environment(env::EnvKind::kRustyHermit);
  std::vector<std::thread> serve_threads;
  std::vector<std::thread> guests;
  std::vector<workloads::WorkloadReport> reports(
      static_cast<std::size_t>(tenants));

  for (int t = 0; t < tenants; ++t) {
    auto conn = env::connect(environment, node->clock());
    serve_threads.push_back(fair_server.serve_async(std::move(conn.server)));
    guests.emplace_back([&, t, guest = std::move(conn.guest)]() mutable {
      core::RemoteCudaApi api(
          std::move(guest), node->clock(),
          core::ClientConfig{.flavor = environment.flavor,
                             .profile = environment.profile});
      workloads::HistogramConfig cfg;
      cfg.data_bytes = 1 << 20;
      // Tenant 0 is greedy: 4x the kernel launches of everyone else.
      cfg.iterations = t == 0 ? 400 : 100;
      reports[static_cast<std::size_t>(t)] = workloads::run_histogram(
          api, node->clock(), environment.flavor, cfg);
    });
  }
  for (auto& g : guests) g.join();
  for (auto& s : serve_threads) s.join();

  std::printf("\n%-8s %10s %12s %12s %10s\n", "tenant", "launches",
              "exec (virt)", "verified", "role");
  for (int t = 0; t < tenants; ++t) {
    const auto& r = reports[static_cast<std::size_t>(t)];
    std::printf("%-8d %10llu %12s %12s %10s\n", t,
                static_cast<unsigned long long>(r.kernel_launches),
                sim::format_nanos(static_cast<double>(r.exec_ns)).c_str(),
                r.verified ? "yes" : "NO", t == 0 ? "greedy" : "fair");
  }
  std::printf("\nsessions served: %llu, total RPCs: %llu\n",
              static_cast<unsigned long long>(
                  fair_server.stats().sessions.load()),
              static_cast<unsigned long long>(fair_server.stats().rpcs.load()));
  std::printf("every tenant's histogram verified against the CPU reference; "
              "the greedy tenant was throttled by the fair-share scheduler\n");
  return 0;
}
