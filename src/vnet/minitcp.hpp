// minitcp: a small deterministic TCP implementation.
//
// Stands in for the guest network stacks of the paper (smoltcp in
// RustyHermit, lwIP in Unikraft): three-way handshake, MSS-bounded
// segmentation, cumulative ACKs, fixed-window flow control, and go-back-N
// retransmission on a (virtual-time) RTO. The state machine is
// single-threaded and I/O-free: inbound frames are fed to `on_frame`,
// outbound frames leave through a caller-supplied sink, and timers advance
// via `poll(now)` — which makes every scenario (loss, reordering,
// retransmit) exactly reproducible in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "sim/sim_clock.hpp"
#include "vnet/packet.hpp"

namespace cricket::vnet {

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait,
  kCloseWait,
};

struct TcpConfig {
  std::uint32_t local_ip = 0;
  std::uint32_t remote_ip = 0;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  std::size_t ip_mtu = 9000;  // paper §4: "IP-MTU of 9000"
  /// Software checksum handling: compute on TX / verify on RX. Off models
  /// VIRTIO_NET_F_CSUM / GUEST_CSUM offload.
  bool tx_checksum = true;
  bool rx_checksum = true;
  std::uint32_t initial_seq = 1000;
  sim::Nanos rto = 200 * sim::kMillisecond;
  std::size_t send_window = 256 * 1024;
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_retransmitted = 0;
  std::uint64_t fast_retransmits = 0;  // triggered by 3 duplicate ACKs
  std::uint64_t segments_received = 0;
  std::uint64_t segments_dropped = 0;  // out-of-order / bad checksum
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t acks_sent = 0;
};

class TcpConnection {
 public:
  using FrameSink = std::function<void(std::vector<std::uint8_t>)>;

  TcpConnection(TcpConfig config, FrameSink sink);

  /// Active open: emits SYN, enters SYN_SENT.
  void connect(sim::Nanos now);
  /// Passive open: enters LISTEN.
  void listen();

  /// Feeds one inbound Ethernet frame into the state machine.
  void on_frame(std::span<const std::uint8_t> frame, sim::Nanos now);

  /// Queues application data; transmits what fits in the send window.
  /// Returns the number of bytes accepted (all of them; the unsent tail is
  /// buffered and flushed as ACKs open the window).
  std::size_t send(std::span<const std::uint8_t> data, sim::Nanos now);

  /// Drains in-order received application data.
  [[nodiscard]] std::vector<std::uint8_t> take_received();

  /// Drives timers: go-back-N retransmission once `now` passes the RTO.
  void poll(sim::Nanos now);

  /// Initiates close (sends FIN once all queued data is acknowledged).
  void close(sim::Nanos now);

  [[nodiscard]] TcpState state() const noexcept { return state_; }
  [[nodiscard]] const TcpStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t unacked_bytes() const noexcept;
  [[nodiscard]] std::size_t mss() const noexcept {
    return mss_for_mtu(config_.ip_mtu);
  }

 private:
  struct UnackedSegment {
    std::uint32_t seq;
    std::vector<std::uint8_t> payload;
    std::uint8_t flags;
  };

  void emit(std::uint8_t flags, std::uint32_t seq,
            std::span<const std::uint8_t> payload, bool track,
            sim::Nanos now);
  void flush_send_queue(sim::Nanos now);
  void handle_ack(std::uint32_t ack, sim::Nanos now);
  void retransmit_segment(const struct UnackedSegment& seg);
  static bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) < 0;
  }

  TcpConfig config_;
  FrameSink sink_;
  TcpState state_ = TcpState::kClosed;
  TcpStats stats_;

  std::uint32_t snd_nxt_;  // next sequence to send
  std::uint32_t snd_una_;  // oldest unacknowledged
  std::uint32_t rcv_nxt_ = 0;

  std::deque<UnackedSegment> unacked_;
  std::deque<std::uint8_t> send_queue_;  // app data not yet transmitted
  std::vector<std::uint8_t> received_;
  sim::Nanos last_activity_ = 0;
  bool fin_pending_ = false;
  // Fast-retransmit state (RFC 5681-style: 3 duplicate ACKs).
  std::uint32_t last_ack_seen_ = 0;
  int dup_ack_count_ = 0;
};

}  // namespace cricket::vnet
