// Virtio-net guest transport and the cost-charging transport decorator.
//
// VirtioNetTransport is the data path of a unikernel / Linux-VM guest
// (paper Fig. 4): application bytes are segmented into real
// Ethernet/IPv4/TCP frames (checksummed in software unless the virtio
// checksum offloads are negotiated), pushed through a real split virtqueue
// to a host backend thread, which unwraps them onto the "wire" (a byte
// queue toward the Cricket server). Receive is the mirror image, with
// MRG_RXBUF governing how many bytes arrive per posted buffer. All guest
// CPU mechanisms additionally charge virtual time via the NetworkProfile.
//
// ShapedTransport is the light-weight variant for native (non-virtualized)
// rows: it only charges host-stack costs around an inner transport.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/transport.hpp"
#include "sim/sim_clock.hpp"
#include "vnet/cost_model.hpp"
#include "vnet/virtqueue.hpp"

namespace cricket::vnet {

struct TransportStats {
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t checksums_computed = 0;  // software checksum operations
};

namespace detail {

/// Per-instance counter block for VirtioNetTransport, backed by the global
/// obs registry (series `cricket_vnet_*_total{transport="vnetN",dir=...}`).
/// The transport contract allows one sender plus one receiver concurrently,
/// and both paths compute software checksums — obs::Counter's relaxed
/// atomics make the concurrent bumps and a stats() reader race-free.
struct TransportCounters {
  explicit TransportCounters(const std::string& instance);

  obs::Counter& frames_tx;
  obs::Counter& frames_rx;
  obs::Counter& bytes_tx;
  obs::Counter& bytes_rx;
  obs::Counter& checksums_tx;
  obs::Counter& checksums_rx;

  [[nodiscard]] TransportStats snapshot() const noexcept {
    TransportStats s;
    s.frames_tx = frames_tx.value();
    s.frames_rx = frames_rx.value();
    s.bytes_tx = bytes_tx.value();
    s.bytes_rx = bytes_rx.value();
    s.checksums_computed = checksums_tx.value() + checksums_rx.value();
    return s;
  }
};

}  // namespace detail

/// Charges NetworkProfile costs around an inner transport. Used for the
/// native C / native Rust rows of Table 1 (host kernel TCP, no hypervisor).
class ShapedTransport final : public rpc::Transport {
 public:
  ShapedTransport(NetworkProfile profile, sim::SimClock& clock,
                  std::unique_ptr<rpc::Transport> inner)
      : profile_(profile), clock_(&clock), inner_(std::move(inner)) {}

  void send(std::span<const std::uint8_t> data) override {
    obs::Span span(obs::Layer::kNetTx, nullptr, data.size());
    clock_->advance(tx_cpu_cost(profile_, data.size()) +
                    wire_time(profile_, data.size()));
    inner_->send(data);
  }

  std::size_t recv(std::span<std::uint8_t> out) override {
    obs::Span span(obs::Layer::kNetRx);
    const std::size_t n = inner_->recv(out);
    if (n > 0) {
      clock_->advance(rx_cpu_cost(profile_, n));
      span.set_arg(n);
    } else {
      span.cancel();  // EOF: nothing happened worth a trace slice
    }
    return n;
  }

  void shutdown() override { inner_->shutdown(); }

  bool set_recv_timeout(std::chrono::nanoseconds timeout) override {
    // Shaping charges time but does not buffer, so the inner transport's
    // timed recv (pipe or TCP) carries the deadline unchanged.
    return inner_->set_recv_timeout(timeout);
  }

 private:
  NetworkProfile profile_;
  sim::SimClock* clock_;
  std::unique_ptr<rpc::Transport> inner_;
};

/// Guest-side virtio-net transport. One instance per guest connection; owns
/// the guest memory arena, the TX/RX virtqueues, and two host backend
/// threads bridging the queues to the wire byte-queues.
class VirtioNetTransport final : public rpc::Transport {
 public:
  VirtioNetTransport(NetworkProfile profile, sim::SimClock& clock,
                     std::shared_ptr<rpc::ByteQueue> wire_tx,
                     std::shared_ptr<rpc::ByteQueue> wire_rx);
  ~VirtioNetTransport() override;

  VirtioNetTransport(const VirtioNetTransport&) = delete;
  VirtioNetTransport& operator=(const VirtioNetTransport&) = delete;

  void send(std::span<const std::uint8_t> data) override;
  std::size_t recv(std::span<std::uint8_t> out) override;
  void shutdown() override;

  /// Returns a snapshot copy (counters advance concurrently on the sender
  /// and receiver threads).
  [[nodiscard]] TransportStats stats() const noexcept {
    return stats_.snapshot();
  }
  [[nodiscard]] const NetworkProfile& profile() const noexcept {
    return profile_;
  }
  /// Virtqueue notification counters (kicks = VM exits on the TX path).
  [[nodiscard]] std::uint64_t tx_kicks() const noexcept { return tx_.kicks(); }
  [[nodiscard]] std::uint64_t tx_interrupts() const noexcept {
    return tx_.interrupts();
  }
  [[nodiscard]] std::uint64_t rx_kicks() const noexcept { return rx_.kicks(); }
  [[nodiscard]] std::uint64_t rx_interrupts() const noexcept {
    return rx_.interrupts();
  }

 private:
  void tx_backend();
  void rx_backend();
  void reclaim_tx_descriptors(bool wait);
  void post_rx_buffer();

  NetworkProfile profile_;
  sim::SimClock* clock_;
  std::shared_ptr<rpc::ByteQueue> wire_tx_;
  std::shared_ptr<rpc::ByteQueue> wire_rx_;

  // One arena per queue: Virtqueue maps descriptor id -> arena offset, so a
  // shared arena would alias TX frames with posted RX buffers as soon as
  // both directions are active at once (pipelined clients do this; the
  // one-call-at-a-time synchronous client never did).
  GuestMemory tx_memory_;
  GuestMemory rx_memory_;
  Virtqueue tx_;
  Virtqueue rx_;

  std::uint32_t tx_seq_ = 1;            // sender thread only
  std::deque<std::uint8_t> rx_pending_;  // receiver thread only
  detail::TransportCounters stats_;

  std::thread tx_thread_;
  std::thread rx_thread_;
  std::atomic<bool> stopping_{false};

  static constexpr std::uint16_t kQueueSize = 256;
  static constexpr std::size_t kHeaderRoom = 128;
};

}  // namespace cricket::vnet
