// Network cost model: where the paper's measured overheads come from.
//
// The evaluation (§4.2) attributes the unikernel/VM slowdowns to concrete
// mechanisms: virtualization of the network interface (VM exits per queue
// notification), guest-side network stack work per packet, checksum
// computation when VIRTIO_NET_F_CSUM/GUEST_CSUM are absent, per-MSS
// segmentation when TSO is absent (vs 64 KiB super-frames with it), receive
// buffer handling without MRG_RXBUF, internal copies, and guest context
// switches (absent in single-address-space unikernels). Each mechanism is a
// parameter here; environment presets (src/env) instantiate them per Table 1
// row, and the transports charge the resulting virtual time.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/sim_clock.hpp"
#include "vnet/packet.hpp"

namespace cricket::vnet {

/// Virtio-net feature bits (virtio 1.1 §5.1.3) — the ones the paper names.
constexpr std::uint64_t kVirtioNetFCsum = 1ull << 0;       // TX csum offload
constexpr std::uint64_t kVirtioNetFGuestCsum = 1ull << 1;  // RX csum offload
constexpr std::uint64_t kVirtioNetFGuestTso4 = 1ull << 7;
constexpr std::uint64_t kVirtioNetFHostTso4 = 1ull << 11;  // TX segmentation
constexpr std::uint64_t kVirtioNetFMrgRxbuf = 1ull << 15;

struct OffloadFeatures {
  bool tx_checksum = false;  // VIRTIO_NET_F_CSUM
  bool rx_checksum = false;  // VIRTIO_NET_F_GUEST_CSUM
  bool tso = false;          // VIRTIO_NET_F_HOST_TSO4: 64 KiB TX frames
  bool mrg_rxbuf = false;    // VIRTIO_NET_F_MRG_RXBUF: flexible RX buffers
  bool rx_coalesce = false;  // VIRTIO_NET_F_GUEST_TSO4 / GRO: 64 KiB RX units
  bool scatter_gather = false;  // zero-copy TX queueing

  [[nodiscard]] std::uint64_t feature_bits() const noexcept;
  [[nodiscard]] static OffloadFeatures from_bits(std::uint64_t bits) noexcept;
};

/// Guest-side (and hypervisor) CPU costs, charged to virtual time.
struct GuestCosts {
  /// Socket syscall / guest kernel entry per send/recv call. Zero for
  /// unikernels (single address space, no privilege transition).
  sim::Nanos syscall_ns = 0;
  /// Network stack processing per TX/RX packet (headers, queue management).
  sim::Nanos per_packet_ns = 0;
  /// Software checksum speed. Only paid when the matching offload is off.
  double checksum_ns_per_byte = 0.0;
  /// Internal buffer copies (paper §3.1: Hermit "reduced the amount of
  /// internal copies").
  double copy_ns_per_byte = 0.0;
  int tx_copies = 1;
  int rx_copies = 1;
  /// VM exit + host handling per virtqueue kick / interrupt.
  sim::Nanos vm_exit_ns = 0;
  /// Segments per kick in bulk transmission. A mature virtio driver
  /// suppresses notifications (event-idx) and batches many segments per VM
  /// exit; simple unikernel drivers kick per packet.
  int kick_batch = 1;
  /// Extra RX cost per descriptor when MRG_RXBUF is unavailable.
  sim::Nanos rx_per_buffer_ns = 0;
};

/// Physical link: 100 Gbit/s Ethernet (IPoIB on ConnectX-5) in the paper.
struct LinkModel {
  double bandwidth_gbps = 100.0 / 8.0;  // GB/s
  sim::Nanos one_way_latency_ns = 6'000;  // IPoIB-class one-way latency
};

/// Everything a transport needs to charge realistic virtual time.
struct NetworkProfile {
  OffloadFeatures offloads;
  GuestCosts guest;
  LinkModel link;
  std::size_t ip_mtu = 9000;
  bool virtualized = false;  // false = native host networking

  [[nodiscard]] std::size_t mss() const noexcept {
    return mss_for_mtu(ip_mtu);
  }
  /// TSO/GRO super-frame payload: bounded by the IPv4 total-length field
  /// (64 KiB including headers), as with real TSO_V4.
  static constexpr std::size_t kSuperFrame =
      65535 - kIpv4HeaderLen - kTcpHeaderLen;

  /// Bytes per TX "packet" hitting the stack: ~64 KiB super-frames with TSO,
  /// one MSS otherwise.
  [[nodiscard]] std::size_t tx_segment_size() const noexcept {
    return offloads.tso ? kSuperFrame : mss();
  }
  /// Bytes per RX unit the guest stack processes: ~64 KiB coalesced units
  /// with GRO/GUEST_TSO4 (Linux guests), one MSS otherwise (the unikernel
  /// stacks process every wire segment individually).
  [[nodiscard]] std::size_t rx_buffer_size() const noexcept {
    return offloads.rx_coalesce ? kSuperFrame : mss();
  }
};

/// Guest-side cost of transmitting `bytes` (excluding wire time).
[[nodiscard]] sim::Nanos tx_cpu_cost(const NetworkProfile& p,
                                     std::size_t bytes) noexcept;
/// Guest-side cost of receiving `bytes` (excluding wire time).
[[nodiscard]] sim::Nanos rx_cpu_cost(const NetworkProfile& p,
                                     std::size_t bytes) noexcept;
/// Wire time for `bytes` in one direction (serialization + propagation).
[[nodiscard]] sim::Nanos wire_time(const NetworkProfile& p,
                                   std::size_t bytes) noexcept;

}  // namespace cricket::vnet
