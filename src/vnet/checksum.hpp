// Internet checksum (RFC 1071) and the TCP pseudo-header checksum.
//
// Checksumming is a protagonist of the paper's evaluation: RustyHermit
// gained VIRTIO_NET_F_CSUM/GUEST_CSUM to *avoid* computing these per packet
// (§3.1), Unikraft cannot yet, and disabling transmit checksum offload in
// the Linux VM collapses its bandwidth (§4.2). The real computation lives
// here so the simulated guests genuinely pay (or skip) it.
#pragma once

#include <cstdint>
#include <span>

namespace cricket::vnet {

/// One's-complement sum over `data` folded to 16 bits (RFC 1071). The
/// returned value is the checksum field value (already complemented).
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept;

/// Incremental variant: returns the raw 32-bit accumulator for composing
/// multi-part checksums (pseudo-header + payload).
[[nodiscard]] std::uint32_t checksum_accumulate(
    std::span<const std::uint8_t> data, std::uint32_t acc) noexcept;

/// Folds an accumulator and complements it into a checksum field value.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t acc) noexcept;

/// TCP checksum over IPv4 pseudo-header + TCP header + payload. `segment`
/// must contain the TCP header with its checksum field zeroed.
[[nodiscard]] std::uint16_t tcp_checksum(
    std::uint32_t src_ip, std::uint32_t dst_ip,
    std::span<const std::uint8_t> segment) noexcept;

}  // namespace cricket::vnet
