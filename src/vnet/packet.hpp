// Ethernet / IPv4 / TCP frame codecs for the simulated network path.
//
// These are real wire-format encoders/parsers (big-endian fields, verified
// checksums) so the virtio data path carries genuine packets and the guests'
// checksum/segmentation work is authentic, not a stand-in constant.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace cricket::vnet {

class PacketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using MacAddr = std::array<std::uint8_t, 6>;

constexpr std::size_t kEthHeaderLen = 14;
constexpr std::size_t kIpv4HeaderLen = 20;  // no options
constexpr std::size_t kTcpHeaderLen = 20;   // no options
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/// TCP flag bits.
constexpr std::uint8_t kTcpFin = 0x01;
constexpr std::uint8_t kTcpSyn = 0x02;
constexpr std::uint8_t kTcpRst = 0x04;
constexpr std::uint8_t kTcpPsh = 0x08;
constexpr std::uint8_t kTcpAck = 0x10;

struct EthHeader {
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ethertype = kEtherTypeIpv4;
};

struct Ipv4Header {
  std::uint16_t total_len = 0;  // header + payload
  std::uint16_t ident = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 6;  // TCP
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t checksum = 0;  // filled by encoder / verified by parser
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0xFFFF;
  std::uint16_t checksum = 0;
};

/// A parsed frame (headers + payload view copied out).
struct ParsedFrame {
  EthHeader eth;
  Ipv4Header ip;
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;
};

/// Builds a complete Ethernet+IPv4+TCP frame. If `fill_checksums` is true the
/// IP and TCP checksums are computed (the software path); if false they are
/// left zero, standing for checksum offload where the "NIC" (host) fills or
/// ignores them.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const EthHeader& eth, const Ipv4Header& ip, const TcpHeader& tcp,
    std::span<const std::uint8_t> payload, bool fill_checksums);

/// Parses and structurally validates a frame. If `verify_checksums` is true,
/// bad IP/TCP checksums throw PacketError (the software receive path); when
/// offloaded, validation is skipped (the "NIC" already did it).
[[nodiscard]] ParsedFrame parse_frame(std::span<const std::uint8_t> frame,
                                      bool verify_checksums);

/// Maximum TCP payload per frame for a given IP MTU (9000 in the paper §4).
[[nodiscard]] constexpr std::size_t mss_for_mtu(std::size_t ip_mtu) noexcept {
  return ip_mtu - kIpv4HeaderLen - kTcpHeaderLen;
}

}  // namespace cricket::vnet
