#include "vnet/minitcp.hpp"

#include <algorithm>
#include <utility>

namespace cricket::vnet {
namespace {

constexpr MacAddr kGuestMac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
constexpr MacAddr kHostMac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};

}  // namespace

TcpConnection::TcpConnection(TcpConfig config, FrameSink sink)
    : config_(config),
      sink_(std::move(sink)),
      snd_nxt_(config.initial_seq),
      snd_una_(config.initial_seq) {}

void TcpConnection::emit(std::uint8_t flags, std::uint32_t seq,
                         std::span<const std::uint8_t> payload, bool track,
                         sim::Nanos now) {
  EthHeader eth{.dst = kHostMac, .src = kGuestMac};
  Ipv4Header ip;
  ip.src = config_.local_ip;
  ip.dst = config_.remote_ip;
  ip.ident = static_cast<std::uint16_t>(stats_.segments_sent);
  TcpHeader tcp;
  tcp.src_port = config_.local_port;
  tcp.dst_port = config_.remote_port;
  tcp.seq = seq;
  tcp.ack = rcv_nxt_;
  tcp.flags = flags;

  sink_(encode_frame(eth, ip, tcp, payload, config_.tx_checksum));
  ++stats_.segments_sent;
  stats_.bytes_sent += payload.size();
  if (flags & kTcpAck) ++stats_.acks_sent;
  if (track) {
    unacked_.push_back(UnackedSegment{
        seq, {payload.begin(), payload.end()}, flags});
    last_activity_ = now;
  }
}

void TcpConnection::connect(sim::Nanos now) {
  if (state_ != TcpState::kClosed) throw PacketError("connect: not closed");
  state_ = TcpState::kSynSent;
  emit(kTcpSyn, snd_nxt_, {}, /*track=*/true, now);
  ++snd_nxt_;  // SYN consumes one sequence number
}

void TcpConnection::listen() {
  if (state_ != TcpState::kClosed) throw PacketError("listen: not closed");
  state_ = TcpState::kListen;
}

std::size_t TcpConnection::unacked_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& seg : unacked_) n += seg.payload.size();
  return n;
}

void TcpConnection::retransmit_segment(const UnackedSegment& seg) {
  EthHeader eth{.dst = kHostMac, .src = kGuestMac};
  Ipv4Header ip;
  ip.src = config_.local_ip;
  ip.dst = config_.remote_ip;
  TcpHeader tcp;
  tcp.src_port = config_.local_port;
  tcp.dst_port = config_.remote_port;
  tcp.seq = seg.seq;
  tcp.ack = rcv_nxt_;
  tcp.flags = static_cast<std::uint8_t>(seg.flags | kTcpAck);
  sink_(encode_frame(eth, ip, tcp, seg.payload, config_.tx_checksum));
  ++stats_.segments_sent;
  ++stats_.segments_retransmitted;
}

void TcpConnection::handle_ack(std::uint32_t ack, sim::Nanos now) {
  if (seq_lt(snd_nxt_ + 1, ack)) return;  // acks data we never sent

  // RFC 5681-style fast retransmit: three ACKs for the same sequence while
  // data is outstanding mean the next segment was lost — resend it without
  // waiting for the RTO.
  if (ack == last_ack_seen_ && !unacked_.empty()) {
    if (++dup_ack_count_ == 3) {
      ++stats_.fast_retransmits;
      retransmit_segment(unacked_.front());
      last_activity_ = now;  // restart the RTO
      // Re-arm: if the retransmit is also lost and the peer keeps ACKing
      // the same sequence, three further duplicates must be able to fire
      // again — without this the counter runs 4, 5, … past the trigger and
      // a second loss stalls until the full RTO.
      dup_ack_count_ = 0;
    }
  } else {
    last_ack_seen_ = ack;
    dup_ack_count_ = 0;
  }

  while (!unacked_.empty()) {
    const auto& seg = unacked_.front();
    const std::uint32_t seg_end =
        seg.seq + static_cast<std::uint32_t>(seg.payload.size()) +
        ((seg.flags & (kTcpSyn | kTcpFin)) ? 1 : 0);
    if (seq_lt(ack, seg_end)) break;  // not fully acknowledged
    unacked_.pop_front();
  }
  if (seq_lt(snd_una_, ack)) snd_una_ = ack;
}

void TcpConnection::flush_send_queue(sim::Nanos now) {
  const std::size_t max_seg = mss();
  while (!send_queue_.empty() &&
         unacked_bytes() + max_seg <= config_.send_window) {
    const std::size_t n = std::min(max_seg, send_queue_.size());
    std::vector<std::uint8_t> payload(send_queue_.begin(),
                                      send_queue_.begin() +
                                          static_cast<std::ptrdiff_t>(n));
    send_queue_.erase(send_queue_.begin(),
                      send_queue_.begin() + static_cast<std::ptrdiff_t>(n));
    emit(static_cast<std::uint8_t>(kTcpAck | kTcpPsh), snd_nxt_, payload,
         /*track=*/true, now);
    snd_nxt_ += static_cast<std::uint32_t>(n);
  }
  if (fin_pending_ && send_queue_.empty() && unacked_.empty()) {
    fin_pending_ = false;
    emit(static_cast<std::uint8_t>(kTcpFin | kTcpAck), snd_nxt_, {},
         /*track=*/true, now);
    ++snd_nxt_;
    state_ = TcpState::kFinWait;
  }
}

std::size_t TcpConnection::send(std::span<const std::uint8_t> data,
                                sim::Nanos now) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait)
    throw PacketError("send: connection not established");
  send_queue_.insert(send_queue_.end(), data.begin(), data.end());
  flush_send_queue(now);
  return data.size();
}

std::vector<std::uint8_t> TcpConnection::take_received() {
  return std::exchange(received_, {});
}

void TcpConnection::on_frame(std::span<const std::uint8_t> frame,
                             sim::Nanos now) {
  ParsedFrame parsed;
  try {
    parsed = parse_frame(frame, config_.rx_checksum);
  } catch (const PacketError&) {
    ++stats_.segments_dropped;
    return;
  }
  if (parsed.tcp.dst_port != config_.local_port) {
    ++stats_.segments_dropped;
    return;
  }
  ++stats_.segments_received;
  const TcpHeader& tcp = parsed.tcp;

  switch (state_) {
    case TcpState::kListen:
      if (tcp.flags & kTcpSyn) {
        rcv_nxt_ = tcp.seq + 1;
        state_ = TcpState::kSynReceived;
        emit(static_cast<std::uint8_t>(kTcpSyn | kTcpAck), snd_nxt_, {},
             /*track=*/true, now);
        ++snd_nxt_;
      }
      return;

    case TcpState::kSynSent:
      if ((tcp.flags & kTcpSyn) && (tcp.flags & kTcpAck)) {
        rcv_nxt_ = tcp.seq + 1;
        handle_ack(tcp.ack, now);
        state_ = TcpState::kEstablished;
        emit(kTcpAck, snd_nxt_, {}, /*track=*/false, now);
      }
      return;

    case TcpState::kSynReceived:
      if (tcp.flags & kTcpAck) {
        handle_ack(tcp.ack, now);
        state_ = TcpState::kEstablished;
      }
      return;

    case TcpState::kEstablished:
    case TcpState::kFinWait:
    case TcpState::kCloseWait: {
      if (tcp.flags & kTcpAck) {
        handle_ack(tcp.ack, now);
        flush_send_queue(now);
      }
      bool advanced = false;
      if (!parsed.payload.empty()) {
        if (tcp.seq == rcv_nxt_) {
          received_.insert(received_.end(), parsed.payload.begin(),
                           parsed.payload.end());
          rcv_nxt_ += static_cast<std::uint32_t>(parsed.payload.size());
          stats_.bytes_received += parsed.payload.size();
          advanced = true;
        } else {
          // Go-back-N receiver: drop out-of-order data, re-ACK rcv_nxt_.
          ++stats_.segments_dropped;
        }
      }
      if (tcp.flags & kTcpFin) {
        if (tcp.seq + (parsed.payload.empty()
                           ? 0
                           : static_cast<std::uint32_t>(parsed.payload.size())) ==
            rcv_nxt_) {
          ++rcv_nxt_;
          advanced = true;
          if (state_ == TcpState::kEstablished)
            state_ = TcpState::kCloseWait;
          else if (state_ == TcpState::kFinWait)
            state_ = TcpState::kClosed;
        }
      }
      if (advanced || !parsed.payload.empty())
        emit(kTcpAck, snd_nxt_, {}, /*track=*/false, now);
      return;
    }

    case TcpState::kClosed:
      ++stats_.segments_dropped;
      return;
  }
}

void TcpConnection::poll(sim::Nanos now) {
  if (unacked_.empty()) return;
  if (now - last_activity_ < config_.rto) return;
  // Go-back-N: retransmit everything outstanding.
  last_activity_ = now;
  for (const auto& seg : unacked_) retransmit_segment(seg);
}

void TcpConnection::close(sim::Nanos now) {
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    fin_pending_ = true;
    flush_send_queue(now);
  } else {
    state_ = TcpState::kClosed;
  }
}

}  // namespace cricket::vnet
