#include "vnet/virtqueue.hpp"

#include <algorithm>
#include <cstring>

namespace cricket::vnet {

std::uint32_t VirtqChain::readable_len() const noexcept {
  std::uint32_t n = 0;
  for (const auto& d : descs)
    if (!(d.flags & kDescWrite)) n += d.len;
  return n;
}

std::uint32_t VirtqChain::writable_len() const noexcept {
  std::uint32_t n = 0;
  for (const auto& d : descs)
    if (d.flags & kDescWrite) n += d.len;
  return n;
}

Virtqueue::Virtqueue(GuestMemory& memory, std::uint16_t queue_size)
    : memory_(&memory), queue_size_(queue_size), desc_table_(queue_size) {
  if (queue_size == 0 || (queue_size & (queue_size - 1)) != 0)
    throw VirtqError("queue size must be a power of two");
  if (memory.size() / queue_size == 0)
    throw VirtqError("guest memory too small for queue");
  free_list_.reserve(queue_size);
  for (std::uint16_t i = 0; i < queue_size; ++i)
    free_list_.push_back(static_cast<std::uint16_t>(queue_size - 1 - i));
}

std::uint16_t Virtqueue::alloc_desc_locked() {
  if (free_list_.empty()) throw VirtqError("descriptor table exhausted");
  const std::uint16_t id = free_list_.back();
  free_list_.pop_back();
  return id;
}

void Virtqueue::free_chain_locked(std::uint16_t head) {
  std::uint16_t cur = head;
  for (;;) {
    const VirtqDesc d = desc_table_[cur];
    free_list_.push_back(cur);
    if (!(d.flags & kDescNext)) break;
    cur = d.next;
  }
}

VirtqChain Virtqueue::resolve_chain_locked(std::uint16_t head) const {
  VirtqChain chain;
  chain.head = head;
  std::uint16_t cur = head;
  for (std::size_t guard = 0; guard <= queue_size_; ++guard) {
    const VirtqDesc d = desc_table_[cur];
    chain.descs.push_back(d);
    if (!(d.flags & kDescNext)) return chain;
    cur = d.next;
  }
  throw VirtqError("descriptor chain loop");
}

std::optional<std::uint16_t> Virtqueue::add_chain(
    std::span<const std::span<const std::uint8_t>> out,
    std::span<const std::uint32_t> in_lens) {
  const std::size_t needed = out.size() + in_lens.size();
  if (needed == 0) throw VirtqError("empty descriptor chain");

  sim::MutexLock lock(mu_);
  if (free_list_.size() < needed) return std::nullopt;

  const std::uint64_t slot = memory_->size() / queue_size_;
  std::vector<std::uint16_t> ids;
  ids.reserve(needed);
  for (std::size_t i = 0; i < needed; ++i) ids.push_back(alloc_desc_locked());

  std::size_t idx = 0;
  for (const auto& buf : out) {
    if (buf.size() > slot) throw VirtqError("buffer exceeds descriptor slot");
    const std::uint16_t id = ids[idx];
    VirtqDesc& d = desc_table_[id];
    d.addr = static_cast<std::uint64_t>(id) * slot;
    d.len = static_cast<std::uint32_t>(buf.size());
    d.flags = idx + 1 < needed ? kDescNext : 0;
    d.next = idx + 1 < needed ? ids[idx + 1] : 0;
    auto dst = memory_->at(d.addr, d.len);
    std::copy(buf.begin(), buf.end(), dst.begin());
    ++idx;
  }
  for (const auto len : in_lens) {
    if (len > slot) throw VirtqError("buffer exceeds descriptor slot");
    const std::uint16_t id = ids[idx];
    VirtqDesc& d = desc_table_[id];
    d.addr = static_cast<std::uint64_t>(id) * slot;
    d.len = len;
    d.flags = static_cast<std::uint16_t>(
        kDescWrite | (idx + 1 < needed ? kDescNext : 0));
    d.next = idx + 1 < needed ? ids[idx + 1] : 0;
    ++idx;
  }
  return ids.front();
}

void Virtqueue::kick(std::uint16_t head) {
  {
    sim::MutexLock lock(mu_);
    avail_ring_.push_back(head);
    ++kick_count_;
  }
  avail_cv_.notify_one();
}

std::optional<VirtqChain> Virtqueue::pop_avail(bool wait) {
  sim::MutexLock lock(mu_);
  if (wait)
    while (!shutdown_ && avail_ring_.empty()) avail_cv_.wait(mu_);
  if (avail_ring_.empty()) return std::nullopt;
  const std::uint16_t head = avail_ring_.front();
  avail_ring_.erase(avail_ring_.begin());
  return resolve_chain_locked(head);
}

std::vector<std::uint8_t> Virtqueue::gather(const VirtqChain& chain) {
  std::vector<std::uint8_t> out;
  out.reserve(chain.readable_len());
  sim::MutexLock lock(mu_);
  for (const auto& d : chain.descs) {
    if (d.flags & kDescWrite) continue;
    const auto src = memory_->at(d.addr, d.len);
    out.insert(out.end(), src.begin(), src.end());
  }
  return out;
}

std::uint32_t Virtqueue::scatter(const VirtqChain& chain,
                                 std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  sim::MutexLock lock(mu_);
  for (const auto& d : chain.descs) {
    if (!(d.flags & kDescWrite)) continue;
    const std::size_t n = std::min<std::size_t>(d.len, data.size() - off);
    if (n == 0) break;
    auto dst = memory_->at(d.addr, static_cast<std::uint32_t>(n));
    std::memcpy(dst.data(), data.data() + off, n);
    off += n;
  }
  return static_cast<std::uint32_t>(off);
}

void Virtqueue::push_used(std::uint16_t head, std::uint32_t written) {
  {
    sim::MutexLock lock(mu_);
    used_ring_.emplace_back(head, written);
    ++interrupt_count_;
  }
  used_cv_.notify_one();
}

std::optional<std::pair<std::uint16_t, std::uint32_t>> Virtqueue::take_used(
    bool wait) {
  sim::MutexLock lock(mu_);
  if (wait)
    while (!shutdown_ && used_ring_.empty()) used_cv_.wait(mu_);
  if (used_ring_.empty()) return std::nullopt;
  const auto entry = used_ring_.front();
  used_ring_.erase(used_ring_.begin());
  return entry;
}

std::vector<std::uint8_t> Virtqueue::read_in_buffers(std::uint16_t head,
                                                     std::uint32_t written) {
  sim::MutexLock lock(mu_);
  const VirtqChain chain = resolve_chain_locked(head);
  std::vector<std::uint8_t> out;
  out.reserve(written);
  std::uint32_t remaining = written;
  for (const auto& d : chain.descs) {
    if (!(d.flags & kDescWrite) || remaining == 0) continue;
    const std::uint32_t n = std::min(d.len, remaining);
    const auto src = memory_->at(d.addr, n);
    out.insert(out.end(), src.begin(), src.end());
    remaining -= n;
  }
  free_chain_locked(head);
  return out;
}

void Virtqueue::recycle(std::uint16_t head) {
  sim::MutexLock lock(mu_);
  free_chain_locked(head);
}

void Virtqueue::shutdown() {
  {
    sim::MutexLock lock(mu_);
    shutdown_ = true;
  }
  avail_cv_.notify_all();
  used_cv_.notify_all();
}

std::uint64_t Virtqueue::kicks() const noexcept {
  sim::MutexLock lock(mu_);
  return kick_count_;
}

std::uint64_t Virtqueue::interrupts() const noexcept {
  sim::MutexLock lock(mu_);
  return interrupt_count_;
}

}  // namespace cricket::vnet
