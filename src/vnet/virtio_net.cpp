#include "vnet/virtio_net.hpp"

#include <algorithm>

namespace cricket::vnet {
namespace {

constexpr MacAddr kGuestMac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
constexpr MacAddr kHostMac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
constexpr std::uint32_t kGuestIp = 0x0A000002;  // 10.0.0.2
constexpr std::uint32_t kHostIp = 0x0A000001;   // 10.0.0.1
constexpr std::uint16_t kGuestPort = 40000;
constexpr std::uint16_t kCricketPort = 49152;

}  // namespace

namespace detail {

TransportCounters::TransportCounters(const std::string& instance)
    : frames_tx(obs::Registry::global().counter(
          "cricket_vnet_frames_total",
          {{"transport", instance}, {"dir", "tx"}},
          "Ethernet frames through the virtio-net transport")),
      frames_rx(obs::Registry::global().counter(
          "cricket_vnet_frames_total",
          {{"transport", instance}, {"dir", "rx"}})),
      bytes_tx(obs::Registry::global().counter(
          "cricket_vnet_bytes_total",
          {{"transport", instance}, {"dir", "tx"}},
          "Payload bytes through the virtio-net transport")),
      bytes_rx(obs::Registry::global().counter(
          "cricket_vnet_bytes_total",
          {{"transport", instance}, {"dir", "rx"}})),
      checksums_tx(obs::Registry::global().counter(
          "cricket_vnet_checksums_total",
          {{"transport", instance}, {"dir", "tx"}},
          "Software checksum operations (no offload negotiated)")),
      checksums_rx(obs::Registry::global().counter(
          "cricket_vnet_checksums_total",
          {{"transport", instance}, {"dir", "rx"}})) {}

}  // namespace detail

VirtioNetTransport::VirtioNetTransport(NetworkProfile profile,
                                       sim::SimClock& clock,
                                       std::shared_ptr<rpc::ByteQueue> wire_tx,
                                       std::shared_ptr<rpc::ByteQueue> wire_rx)
    : profile_(profile),
      clock_(&clock),
      wire_tx_(std::move(wire_tx)),
      wire_rx_(std::move(wire_rx)),
      // Each descriptor slot must hold the largest buffer we ever queue:
      // 64 KiB super-frames (TSO / MRG_RXBUF) plus header room.
      tx_memory_(static_cast<std::size_t>(kQueueSize) * (65536 + kHeaderRoom)),
      rx_memory_(static_cast<std::size_t>(kQueueSize) * (65536 + kHeaderRoom)),
      tx_(tx_memory_, kQueueSize),
      rx_(rx_memory_, kQueueSize),
      stats_(obs::Registry::global().unique_label("vnet")) {
  // Pre-post receive buffers, as a real driver does at device bring-up.
  for (int i = 0; i < 64; ++i) post_rx_buffer();
  tx_thread_ = std::thread([this] { tx_backend(); });
  rx_thread_ = std::thread([this] { rx_backend(); });
}

VirtioNetTransport::~VirtioNetTransport() {
  shutdown();
  tx_.shutdown();
  rx_.shutdown();
  if (tx_thread_.joinable()) tx_thread_.join();
  if (rx_thread_.joinable()) rx_thread_.join();
}

void VirtioNetTransport::post_rx_buffer() {
  const std::uint32_t len = static_cast<std::uint32_t>(
      profile_.rx_buffer_size() + kHeaderRoom);
  const std::uint32_t lens[1] = {len};
  const auto head = rx_.add_chain({}, lens);
  if (head) rx_.kick(*head);
}

void VirtioNetTransport::reclaim_tx_descriptors(bool wait) {
  while (auto used = tx_.take_used(wait)) {
    tx_.recycle(used->first);
    wait = false;  // only block for the first one
  }
}

void VirtioNetTransport::send(std::span<const std::uint8_t> data) {
  if (stopping_.load()) throw rpc::TransportError("transport shut down");
  obs::Span span(obs::Layer::kVnetTx, nullptr, data.size());
  // Charge the guest CPU + wire once for the whole burst; the per-frame
  // machinery below does the real (functional) work.
  clock_->advance(tx_cpu_cost(profile_, data.size()) +
                  wire_time(profile_, data.size()));

  const std::size_t seg = profile_.tx_segment_size();
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(seg, data.size() - off);
    EthHeader eth{.dst = kHostMac, .src = kGuestMac};
    Ipv4Header ip;
    ip.src = kGuestIp;
    ip.dst = kHostIp;
    TcpHeader tcp;
    tcp.src_port = kGuestPort;
    tcp.dst_port = kCricketPort;
    tcp.seq = tx_seq_;
    tcp.flags = static_cast<std::uint8_t>(kTcpAck | kTcpPsh);
    // Software checksum (real computation) unless offloaded to the host.
    const bool sw_csum = !profile_.offloads.tx_checksum;
    const auto frame = encode_frame(eth, ip, tcp, data.subspan(off, n),
                                    /*fill_checksums=*/sw_csum);
    if (sw_csum) stats_.checksums_tx.inc();
    tx_seq_ += static_cast<std::uint32_t>(n);

    const std::span<const std::uint8_t> bufs[1] = {frame};
    std::optional<std::uint16_t> head;
    while (!(head = tx_.add_chain(bufs, {}))) {
      reclaim_tx_descriptors(/*wait=*/true);  // ring full: wait for backend
      if (stopping_.load()) throw rpc::TransportError("transport shut down");
    }
    tx_.kick(*head);
    stats_.frames_tx.inc();
    stats_.bytes_tx.inc(n);
    off += n;
  } while (off < data.size());
  reclaim_tx_descriptors(/*wait=*/false);
}

void VirtioNetTransport::tx_backend() {
  for (;;) {
    auto chain = tx_.pop_avail(/*wait=*/true);
    if (!chain) return;  // shutdown
    const auto frame = tx_.gather(*chain);
    tx_.push_used(chain->head, 0);
    // Host TAP side: unwrap the frame; checksums are trusted (the host
    // verifies or fills them at line rate in hardware).
    try {
      const ParsedFrame parsed = parse_frame(frame, /*verify=*/false);
      if (!parsed.payload.empty()) wire_tx_->push(parsed.payload);
    } catch (const PacketError&) {
      // Malformed frame: a real TAP would drop it silently.
    } catch (const rpc::TransportError&) {
      return;  // wire closed
    }
  }
}

void VirtioNetTransport::rx_backend() {
  std::uint32_t host_seq = 1;
  std::vector<std::uint8_t> buf(profile_.rx_buffer_size());
  for (;;) {
    std::size_t n = 0;
    try {
      n = wire_rx_->pop(buf);
    } catch (const rpc::TransportError&) {
      n = 0;
    }
    if (n == 0) {
      rx_.shutdown();  // wakes a blocked recv(), which then returns EOF
      return;
    }
    // The host NIC always delivers frames with valid checksums filled.
    EthHeader eth{.dst = kGuestMac, .src = kHostMac};
    Ipv4Header ip;
    ip.src = kHostIp;
    ip.dst = kGuestIp;
    TcpHeader tcp;
    tcp.src_port = kCricketPort;
    tcp.dst_port = kGuestPort;
    tcp.seq = host_seq;
    tcp.flags = static_cast<std::uint8_t>(kTcpAck | kTcpPsh);
    const auto frame = encode_frame(eth, ip, tcp,
                                    std::span(buf.data(), n),
                                    /*fill_checksums=*/true);
    host_seq += static_cast<std::uint32_t>(n);

    auto chain = rx_.pop_avail(/*wait=*/true);
    if (!chain) return;  // shutdown
    const std::uint32_t written =
        rx_.scatter(*chain, frame);
    rx_.push_used(chain->head, written);
  }
}

std::size_t VirtioNetTransport::recv(std::span<std::uint8_t> out) {
  obs::Span span(obs::Layer::kVnetRx);
  // Drain the used ring in one go: block for the first frame if nothing is
  // pending, then opportunistically take every already-completed frame. One
  // recv() spans many frames, as one socket read does on a real guest —
  // per-frame stack costs are still charged per frame by rx_cpu_cost.
  while (rx_pending_.size() < out.size()) {
    const bool wait = rx_pending_.empty();
    auto used = rx_.take_used(wait);
    if (!used) {
      if (rx_pending_.empty()) return 0;  // shutdown: clean EOF
      break;                              // no more completions right now
    }
    const auto frame = rx_.read_in_buffers(used->first, used->second);
    post_rx_buffer();  // replenish the ring
    try {
      // Software checksum verification (real computation) unless the
      // GUEST_CSUM offload lets the guest trust the host.
      const bool sw_csum = !profile_.offloads.rx_checksum;
      const ParsedFrame parsed = parse_frame(frame, /*verify=*/sw_csum);
      if (sw_csum) stats_.checksums_rx.inc();
      rx_pending_.insert(rx_pending_.end(), parsed.payload.begin(),
                         parsed.payload.end());
      stats_.frames_rx.inc();
      stats_.bytes_rx.inc(parsed.payload.size());
    } catch (const PacketError&) {
      // Corrupt frame dropped; reliable wire makes this benign.
    }
  }
  const std::size_t n = std::min(out.size(), rx_pending_.size());
  std::copy_n(rx_pending_.begin(), n, out.begin());
  rx_pending_.erase(rx_pending_.begin(),
                    rx_pending_.begin() + static_cast<std::ptrdiff_t>(n));
  clock_->advance(rx_cpu_cost(profile_, n));
  if (n > 0) {
    span.set_arg(n);
  } else {
    span.cancel();  // shutdown EOF
  }
  return n;
}

void VirtioNetTransport::shutdown() {
  if (stopping_.exchange(true)) return;
  wire_tx_->close();
}

}  // namespace cricket::vnet
