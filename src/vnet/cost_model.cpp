#include "vnet/cost_model.hpp"

namespace cricket::vnet {
namespace {

std::size_t div_ceil(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

std::uint64_t OffloadFeatures::feature_bits() const noexcept {
  std::uint64_t bits = 0;
  if (tx_checksum) bits |= kVirtioNetFCsum;
  if (rx_checksum) bits |= kVirtioNetFGuestCsum;
  if (tso) bits |= kVirtioNetFHostTso4;
  if (mrg_rxbuf) bits |= kVirtioNetFMrgRxbuf;
  if (rx_coalesce) bits |= kVirtioNetFGuestTso4;
  return bits;
}

OffloadFeatures OffloadFeatures::from_bits(std::uint64_t bits) noexcept {
  OffloadFeatures f;
  f.tx_checksum = bits & kVirtioNetFCsum;
  f.rx_checksum = bits & kVirtioNetFGuestCsum;
  f.tso = bits & kVirtioNetFHostTso4;
  f.mrg_rxbuf = bits & kVirtioNetFMrgRxbuf;
  f.rx_coalesce = bits & kVirtioNetFGuestTso4;
  return f;
}

sim::Nanos tx_cpu_cost(const NetworkProfile& p, std::size_t bytes) noexcept {
  const std::size_t segments =
      bytes == 0 ? 1 : div_ceil(bytes, p.tx_segment_size());
  sim::Nanos cost = p.guest.syscall_ns;
  cost += static_cast<sim::Nanos>(segments) * p.guest.per_packet_ns;
  if (p.virtualized) {
    const std::size_t batch =
        p.guest.kick_batch > 0 ? static_cast<std::size_t>(p.guest.kick_batch)
                               : 1;
    cost += static_cast<sim::Nanos>(div_ceil(segments, batch)) *
            p.guest.vm_exit_ns;
  }
  if (!p.offloads.tx_checksum)
    cost += static_cast<sim::Nanos>(p.guest.checksum_ns_per_byte *
                                    static_cast<double>(bytes));
  const int copies =
      p.guest.tx_copies - (p.offloads.scatter_gather ? 1 : 0);
  if (copies > 0)
    cost += static_cast<sim::Nanos>(p.guest.copy_ns_per_byte *
                                    static_cast<double>(copies) *
                                    static_cast<double>(bytes));
  return cost;
}

sim::Nanos rx_cpu_cost(const NetworkProfile& p, std::size_t bytes) noexcept {
  const std::size_t buffers =
      bytes == 0 ? 1 : div_ceil(bytes, p.rx_buffer_size());
  sim::Nanos cost = p.guest.syscall_ns;
  cost += static_cast<sim::Nanos>(buffers) * p.guest.per_packet_ns;
  if (p.virtualized) {
    const std::size_t batch =
        p.guest.kick_batch > 0 ? static_cast<std::size_t>(p.guest.kick_batch)
                               : 1;
    cost += static_cast<sim::Nanos>(div_ceil(buffers, batch)) *
            p.guest.vm_exit_ns;
  }
  if (!p.offloads.mrg_rxbuf)
    cost += static_cast<sim::Nanos>(buffers) * p.guest.rx_per_buffer_ns;
  if (!p.offloads.rx_checksum)
    cost += static_cast<sim::Nanos>(p.guest.checksum_ns_per_byte *
                                    static_cast<double>(bytes));
  if (p.guest.rx_copies > 0)
    cost += static_cast<sim::Nanos>(p.guest.copy_ns_per_byte *
                                    static_cast<double>(p.guest.rx_copies) *
                                    static_cast<double>(bytes));
  return cost;
}

sim::Nanos wire_time(const NetworkProfile& p, std::size_t bytes) noexcept {
  return p.link.one_way_latency_ns +
         static_cast<sim::Nanos>(static_cast<double>(bytes) /
                                 (p.link.bandwidth_gbps * 1e9) * 1e9);
}

}  // namespace cricket::vnet
