#include "vnet/checksum.hpp"

namespace cricket::vnet {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += (std::uint32_t{data[i]} << 8) | data[i + 1];
  if (i < data.size()) acc += std::uint32_t{data[i]} << 8;  // odd trailing byte
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return checksum_finish(checksum_accumulate(data, 0));
}

std::uint16_t tcp_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                           std::span<const std::uint8_t> segment) noexcept {
  const std::uint8_t pseudo[12] = {
      static_cast<std::uint8_t>(src_ip >> 24),
      static_cast<std::uint8_t>(src_ip >> 16),
      static_cast<std::uint8_t>(src_ip >> 8),
      static_cast<std::uint8_t>(src_ip),
      static_cast<std::uint8_t>(dst_ip >> 24),
      static_cast<std::uint8_t>(dst_ip >> 16),
      static_cast<std::uint8_t>(dst_ip >> 8),
      static_cast<std::uint8_t>(dst_ip),
      0,
      6,  // protocol: TCP
      static_cast<std::uint8_t>(segment.size() >> 8),
      static_cast<std::uint8_t>(segment.size()),
  };
  std::uint32_t acc = checksum_accumulate(pseudo, 0);
  acc = checksum_accumulate(segment, acc);
  return checksum_finish(acc);
}

}  // namespace cricket::vnet
