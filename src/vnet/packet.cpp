#include "vnet/packet.hpp"

#include <cstring>

#include "vnet/checksum.hpp"

namespace cricket::vnet {
namespace {

void put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void put32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

std::uint32_t get32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const EthHeader& eth,
                                       const Ipv4Header& ip,
                                       const TcpHeader& tcp,
                                       std::span<const std::uint8_t> payload,
                                       bool fill_checksums) {
  const std::size_t ip_total = kIpv4HeaderLen + kTcpHeaderLen + payload.size();
  if (ip_total > 0xFFFF) throw PacketError("IPv4 packet too large");

  std::vector<std::uint8_t> frame(kEthHeaderLen + ip_total);
  std::uint8_t* e = frame.data();
  std::memcpy(e, eth.dst.data(), 6);
  std::memcpy(e + 6, eth.src.data(), 6);
  put16(e + 12, eth.ethertype);

  std::uint8_t* i = e + kEthHeaderLen;
  i[0] = 0x45;  // version 4, IHL 5
  i[1] = 0;     // DSCP/ECN
  put16(i + 2, static_cast<std::uint16_t>(ip_total));
  put16(i + 4, ip.ident);
  put16(i + 6, 0x4000);  // DF, no fragments
  i[8] = ip.ttl;
  i[9] = ip.protocol;
  put16(i + 10, 0);  // checksum placeholder
  put32(i + 12, ip.src);
  put32(i + 16, ip.dst);

  std::uint8_t* t = i + kIpv4HeaderLen;
  put16(t + 0, tcp.src_port);
  put16(t + 2, tcp.dst_port);
  put32(t + 4, tcp.seq);
  put32(t + 8, tcp.ack);
  t[12] = 5 << 4;  // data offset: 5 words
  t[13] = tcp.flags;
  put16(t + 14, tcp.window);
  put16(t + 16, 0);  // checksum placeholder
  put16(t + 18, 0);  // urgent pointer

  if (!payload.empty())
    std::memcpy(t + kTcpHeaderLen, payload.data(), payload.size());

  if (fill_checksums) {
    put16(i + 10, internet_checksum({i, kIpv4HeaderLen}));
    const std::uint16_t tsum = tcp_checksum(
        ip.src, ip.dst, {t, kTcpHeaderLen + payload.size()});
    put16(t + 16, tsum);
  }
  return frame;
}

ParsedFrame parse_frame(std::span<const std::uint8_t> frame,
                        bool verify_checksums) {
  if (frame.size() < kEthHeaderLen + kIpv4HeaderLen + kTcpHeaderLen)
    throw PacketError("frame too short");
  ParsedFrame out;
  const std::uint8_t* e = frame.data();
  std::memcpy(out.eth.dst.data(), e, 6);
  std::memcpy(out.eth.src.data(), e + 6, 6);
  out.eth.ethertype = get16(e + 12);
  if (out.eth.ethertype != kEtherTypeIpv4)
    throw PacketError("not an IPv4 frame");

  const std::uint8_t* i = e + kEthHeaderLen;
  if ((i[0] >> 4) != 4) throw PacketError("not IPv4");
  const std::size_t ihl = static_cast<std::size_t>(i[0] & 0x0F) * 4;
  if (ihl != kIpv4HeaderLen) throw PacketError("IPv4 options unsupported");
  out.ip.total_len = get16(i + 2);
  if (out.ip.total_len + kEthHeaderLen > frame.size())
    throw PacketError("IPv4 total length beyond frame");
  out.ip.ident = get16(i + 4);
  out.ip.ttl = i[8];
  out.ip.protocol = i[9];
  if (out.ip.protocol != 6) throw PacketError("not TCP");
  out.ip.checksum = get16(i + 10);
  out.ip.src = get32(i + 12);
  out.ip.dst = get32(i + 16);
  if (verify_checksums && internet_checksum({i, kIpv4HeaderLen}) != 0)
    throw PacketError("bad IPv4 header checksum");

  const std::uint8_t* t = i + kIpv4HeaderLen;
  out.tcp.src_port = get16(t + 0);
  out.tcp.dst_port = get16(t + 2);
  out.tcp.seq = get32(t + 4);
  out.tcp.ack = get32(t + 8);
  const std::size_t doff = static_cast<std::size_t>(t[12] >> 4) * 4;
  if (doff != kTcpHeaderLen) throw PacketError("TCP options unsupported");
  out.tcp.flags = t[13];
  out.tcp.window = get16(t + 14);
  out.tcp.checksum = get16(t + 16);

  const std::size_t seg_len = out.ip.total_len - kIpv4HeaderLen;
  if (verify_checksums) {
    // Sum over the whole segment including the transmitted checksum must be
    // zero (i.e. finish() yields 0).
    if (tcp_checksum(out.ip.src, out.ip.dst, {t, seg_len}) != 0)
      throw PacketError("bad TCP checksum");
  }
  const std::size_t payload_len = seg_len - kTcpHeaderLen;
  out.payload.assign(t + kTcpHeaderLen, t + kTcpHeaderLen + payload_len);
  return out;
}

}  // namespace cricket::vnet
