// Split virtqueue (virtio 1.x "split ring") implementation.
//
// RustyHermit and Unikraft reach the host network through virtio-net queues
// (paper §3.1/§4: "a TAP device using virtio for network virtualization").
// This is a faithful split-ring model: a descriptor table whose entries
// address a guest memory arena, an available ring the driver fills, and a
// used ring the device fills. Notifications ("kicks" guest→device and
// "interrupts" device→guest) are condition variables; the cost model charges
// VM-exit time per kick at a higher layer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/annotations.hpp"

namespace cricket::vnet {

class VirtqError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Flat guest-physical memory arena descriptors point into.
class GuestMemory {
 public:
  explicit GuestMemory(std::size_t size) : mem_(size) {}

  [[nodiscard]] std::span<std::uint8_t> at(std::uint64_t addr,
                                           std::uint32_t len) {
    if (addr + len > mem_.size())
      throw VirtqError("descriptor addresses outside guest memory");
    return {mem_.data() + addr, len};
  }
  [[nodiscard]] std::size_t size() const noexcept { return mem_.size(); }

 private:
  std::vector<std::uint8_t> mem_;
};

/// Virtio descriptor flags.
constexpr std::uint16_t kDescNext = 1;   // chained to `next`
constexpr std::uint16_t kDescWrite = 2;  // device-writable (RX buffer)

struct VirtqDesc {
  std::uint64_t addr = 0;
  std::uint32_t len = 0;
  std::uint16_t flags = 0;
  std::uint16_t next = 0;
};

/// One element the device popped from the available ring: the head index
/// plus the resolved descriptor chain.
struct VirtqChain {
  std::uint16_t head = 0;
  std::vector<VirtqDesc> descs;

  /// Total length of device-readable / device-writable parts.
  [[nodiscard]] std::uint32_t readable_len() const noexcept;
  [[nodiscard]] std::uint32_t writable_len() const noexcept;
};

/// A single split virtqueue. The driver side and device side may run on
/// different threads; all state is protected by one mutex.
class Virtqueue {
 public:
  Virtqueue(GuestMemory& memory, std::uint16_t queue_size);

  // ------------------------------ driver side ----------------------------
  /// Allocates descriptors for a chain: `out` spans are device-readable
  /// (copied into guest memory), `in_lens` are device-writable buffer sizes.
  /// Returns the head descriptor index, or nullopt if the table is full.
  std::optional<std::uint16_t> add_chain(
      std::span<const std::span<const std::uint8_t>> out,
      std::span<const std::uint32_t> in_lens) CRICKET_EXCLUDES(mu_);

  /// Exposes the chain on the available ring and notifies the device.
  void kick(std::uint16_t head) CRICKET_EXCLUDES(mu_);

  /// Completed chain from the used ring: (head, bytes written by device).
  /// Blocks when `wait`; otherwise returns nullopt if none pending.
  std::optional<std::pair<std::uint16_t, std::uint32_t>> take_used(bool wait)
      CRICKET_EXCLUDES(mu_);

  /// Reads back a device-written ("in") buffer of a completed chain and
  /// frees the chain's descriptors.
  [[nodiscard]] std::vector<std::uint8_t> read_in_buffers(
      std::uint16_t head, std::uint32_t written) CRICKET_EXCLUDES(mu_);
  /// Frees a chain's descriptors without reading (TX completion).
  void recycle(std::uint16_t head) CRICKET_EXCLUDES(mu_);

  // ------------------------------ device side ----------------------------
  /// Next available chain; blocks when `wait` (returns nullopt on shutdown
  /// or, for non-waiting calls, when the ring is empty).
  std::optional<VirtqChain> pop_avail(bool wait) CRICKET_EXCLUDES(mu_);

  /// Copies device-readable chain content out of guest memory.
  [[nodiscard]] std::vector<std::uint8_t> gather(const VirtqChain& chain)
      CRICKET_EXCLUDES(mu_);
  /// Scatters `data` into the chain's device-writable buffers; returns bytes
  /// written (trailing data is truncated if the chain is too small).
  std::uint32_t scatter(const VirtqChain& chain,
                        std::span<const std::uint8_t> data)
      CRICKET_EXCLUDES(mu_);
  /// Marks the chain used and notifies the driver.
  void push_used(std::uint16_t head, std::uint32_t written)
      CRICKET_EXCLUDES(mu_);

  void shutdown() CRICKET_EXCLUDES(mu_);

  [[nodiscard]] std::uint16_t queue_size() const noexcept {
    return queue_size_;
  }
  [[nodiscard]] std::uint64_t kicks() const noexcept CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t interrupts() const noexcept
      CRICKET_EXCLUDES(mu_);

 private:
  std::uint16_t alloc_desc_locked() CRICKET_REQUIRES(mu_);
  void free_chain_locked(std::uint16_t head) CRICKET_REQUIRES(mu_);
  VirtqChain resolve_chain_locked(std::uint16_t head) const
      CRICKET_REQUIRES(mu_);

  GuestMemory* memory_;
  std::uint16_t queue_size_;
  std::vector<VirtqDesc> desc_table_ CRICKET_GUARDED_BY(mu_);
  // FIFO of heads.
  std::vector<std::uint16_t> avail_ring_ CRICKET_GUARDED_BY(mu_);
  std::vector<std::pair<std::uint16_t, std::uint32_t>> used_ring_
      CRICKET_GUARDED_BY(mu_);
  std::vector<std::uint16_t> free_list_ CRICKET_GUARDED_BY(mu_);
  // Per-chain bookkeeping of allocated arena regions (addr reuse).
  std::uint64_t arena_next_ = 0;

  mutable sim::Mutex mu_;
  sim::CondVar avail_cv_;  // device waits for kicks
  sim::CondVar used_cv_;   // driver waits for interrupts
  bool shutdown_ CRICKET_GUARDED_BY(mu_) = false;
  std::uint64_t kick_count_ CRICKET_GUARDED_BY(mu_) = 0;
  std::uint64_t interrupt_count_ CRICKET_GUARDED_BY(mu_) = 0;
};

}  // namespace cricket::vnet
