#include "gpusim/kernel.hpp"

namespace cricket::gpusim {

void KernelRegistry::register_kernel(const std::string& name, KernelFunc fn) {
  sim::MutexLock lock(mu_);
  kernels_[name] = std::move(fn);
}

KernelFunc KernelRegistry::find(const std::string& name) const {
  sim::MutexLock lock(mu_);
  const auto it = kernels_.find(name);
  if (it == kernels_.end())
    throw LaunchError("no kernel implementation registered for '" + name +
                      "'");
  return it->second;
}

bool KernelRegistry::contains(const std::string& name) const {
  sim::MutexLock lock(mu_);
  return kernels_.contains(name);
}

std::size_t KernelRegistry::size() const {
  sim::MutexLock lock(mu_);
  return kernels_.size();
}

}  // namespace cricket::gpusim
