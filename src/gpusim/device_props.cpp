#include "gpusim/device_props.hpp"

namespace cricket::gpusim {

DeviceProps a100_props() {
  DeviceProps p;
  p.name = "NVIDIA A100-SXM4-40GB";
  p.sm_arch = 80;
  p.sm_count = 108;
  p.clock_mhz = 1410;
  p.mem_bytes = 40ull << 30;
  p.mem_bandwidth_gbps = 1555.0;
  p.pcie_bandwidth_gbps = 24.0;  // PCIe 4.0 x16 effective
  p.peak_fp32_tflops = 19.5;
  return p;
}

DeviceProps t4_props() {
  DeviceProps p;
  p.name = "NVIDIA T4";
  p.sm_arch = 75;
  p.sm_count = 40;
  p.clock_mhz = 1590;
  p.mem_bytes = 16ull << 30;
  p.mem_bandwidth_gbps = 320.0;
  p.pcie_bandwidth_gbps = 12.0;  // PCIe 3.0 x16 effective
  p.peak_fp32_tflops = 8.1;
  return p;
}

DeviceProps p40_props() {
  DeviceProps p;
  p.name = "NVIDIA P40";
  p.sm_arch = 61;
  p.sm_count = 30;
  p.clock_mhz = 1531;
  p.mem_bytes = 24ull << 30;
  p.mem_bandwidth_gbps = 346.0;
  p.pcie_bandwidth_gbps = 12.0;
  p.peak_fp32_tflops = 11.8;
  return p;
}

}  // namespace cricket::gpusim
