// Fixed-size thread pool with a blocking parallel_for, used by the kernel
// execution engine to spread grid work across host cores.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "sim/annotations.hpp"

namespace cricket::gpusim {

class ThreadPool {
 public:
  /// `n_threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), chunked across the pool; blocks until all
  /// iterations finish. Exceptions from `fn` propagate (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) once per chunk — cheaper when the body is tiny.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task) CRICKET_EXCLUDES(mu_);
  void worker_loop() CRICKET_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  sim::Mutex mu_;
  sim::CondVar cv_;
  std::queue<std::function<void()>> tasks_ CRICKET_GUARDED_BY(mu_);
  bool stopping_ CRICKET_GUARDED_BY(mu_) = false;
};

}  // namespace cricket::gpusim
