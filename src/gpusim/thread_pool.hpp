// Fixed-size thread pool with a blocking parallel_for, used by the kernel
// execution engine to spread grid work across host cores.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cricket::gpusim {

class ThreadPool {
 public:
  /// `n_threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), chunked across the pool; blocks until all
  /// iterations finish. Exceptions from `fn` propagate (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) once per chunk — cheaper when the body is tiny.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cricket::gpusim
