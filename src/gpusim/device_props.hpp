// Device property sheets for the GPUs in the paper's testbed (§4: one A100,
// two T4s, one P40 in the GPU node). The analytic timing model derives kernel
// execution and copy times from these numbers.
#pragma once

#include <cstdint>
#include <string>

namespace cricket::gpusim {

struct DeviceProps {
  std::string name;
  std::uint32_t sm_arch = 80;         // compute capability * 10
  std::uint32_t sm_count = 108;
  std::uint32_t clock_mhz = 1410;
  std::uint64_t mem_bytes = 0;
  double mem_bandwidth_gbps = 0;      // device memory, GB/s
  double pcie_bandwidth_gbps = 0;     // host<->device, GB/s (effective)
  double peak_fp32_tflops = 0;
  /// Fixed driver-side kernel launch latency (what a local, non-virtualized
  /// cudaLaunchKernel costs) — the baseline the RPC forwarding adds to.
  std::int64_t launch_latency_ns = 4'000;
  /// Fixed per-call driver overhead for trivial APIs (cudaGetDeviceCount).
  std::int64_t api_latency_ns = 600;
  /// cudaMalloc/cudaFree bookkeeping cost.
  std::int64_t alloc_latency_ns = 2'500;
};

/// NVIDIA A100-SXM4-40GB (Ampere, sm_80) — the GPU used in every evaluation
/// figure of the paper.
[[nodiscard]] DeviceProps a100_props();
/// NVIDIA T4 (Turing, sm_75).
[[nodiscard]] DeviceProps t4_props();
/// NVIDIA P40 (Pascal, sm_61).
[[nodiscard]] DeviceProps p40_props();

}  // namespace cricket::gpusim
