#include "gpusim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace cricket::gpusim {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0)
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    sim::MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    sim::MutexLock lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sim::MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mu_);
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error;
  sim::Mutex err_mu;
  sim::Mutex done_mu;
  sim::CondVar done_cv;

  std::size_t launched = 0;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    ++launched;
    remaining.fetch_add(1, std::memory_order_relaxed);
    enqueue([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        sim::MutexLock lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        sim::MutexLock lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  (void)launched;
  {
    sim::MutexLock lock(done_mu);
    while (remaining.load(std::memory_order_acquire) != 0) done_cv.wait(done_mu);
  }
  // All workers are past their err_mu sections once remaining hits zero, but
  // take the lock anyway: the happens-before chain through `remaining` is too
  // subtle to lean on, and the uncontended acquire is free.
  sim::MutexLock lock(err_mu);
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace cricket::gpusim
