// The simulated GPU device: memory, modules, streams, events, launches.
//
// Execution semantics follow CUDA: kernel launches and async memcpys are
// enqueued on streams and complete in virtual time; synchronization calls
// advance the virtual clock to the relevant completion timestamp. The actual
// computation of a kernel runs immediately (on host threads) so results are
// available synchronously — only the *timing* is deferred, which is exactly
// what the paper's measurements are about.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fatbin/fatbin.hpp"
#include "gpusim/device_props.hpp"
#include "obs/metrics.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/thread_pool.hpp"
#include "sim/annotations.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::gpusim {

using ModuleId = std::uint64_t;
using FuncId = std::uint64_t;
using StreamId = std::uint64_t;
using EventId = std::uint64_t;

/// The default stream (stream 0), always valid.
constexpr StreamId kDefaultStream = 0;

struct DeviceStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t bytes_d2d = 0;
  std::uint64_t modules_loaded = 0;
  /// Virtual ns the device spent executing kernels and moving bytes —
  /// the per-device utilization figure multi-tenant sharding balances.
  std::uint64_t busy_ns = 0;
};

namespace detail {

/// Per-device counter block backed by the global obs registry (series
/// `cricket_gpu_*_total{device="gpuN",...}`). Bumps are relaxed atomics, so
/// transfer accounting no longer rides the device mutex and stats() readers
/// never contend with in-flight launches.
struct DeviceCounters {
  explicit DeviceCounters(const std::string& instance);

  obs::Counter& kernels_launched;
  obs::Counter& bytes_h2d;
  obs::Counter& bytes_d2h;
  obs::Counter& bytes_d2d;
  obs::Counter& modules_loaded;
  obs::Counter& busy_ns;

  [[nodiscard]] DeviceStats snapshot() const noexcept {
    DeviceStats s;
    s.kernels_launched = kernels_launched.value();
    s.bytes_h2d = bytes_h2d.value();
    s.bytes_d2h = bytes_d2h.value();
    s.bytes_d2d = bytes_d2d.value();
    s.modules_loaded = modules_loaded.value();
    s.busy_ns = busy_ns.value();
    return s;
  }
};

}  // namespace detail

class DeviceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializable full-device state (see Device::snapshot / Device::restore).
struct DeviceSnapshot {
  struct AllocationRecord {
    DevPtr addr = 0;
    std::uint64_t size = 0;
    std::vector<std::uint8_t> bytes;
  };
  struct ModuleRecord {
    ModuleId id = 0;
    std::vector<std::uint8_t> image;  // re-serialized cubin
    std::vector<std::pair<std::string, DevPtr>> globals;
  };
  struct FunctionRecord {
    FuncId id = 0;
    ModuleId module = 0;
    std::string kernel_name;
  };

  std::uint64_t next_id = 1;
  std::vector<AllocationRecord> allocations;  // excludes module globals
  std::vector<ModuleRecord> modules;
  std::vector<FunctionRecord> functions;
  std::vector<std::pair<StreamId, std::int64_t>> streams;
  std::vector<std::pair<EventId, std::int64_t>> events;
};

/// Selects the slice of device state one migrating session owns (the
/// Cricket server tracks these per session). Module globals do not appear
/// here — they are live allocations owned by the module, and
/// Device::snapshot_subset includes the globals of every listed module
/// automatically.
struct DeviceStateFilter {
  std::vector<DevPtr> allocations;  // base addresses from Device::malloc
  std::vector<ModuleId> modules;
  std::vector<StreamId> streams;  // non-default; stream 0 always included
  std::vector<EventId> events;
};

class Device {
 public:
  /// `clock`, `registry` and `pool` are owned by the caller and must outlive
  /// the device (a GPU node bundles them; see cricket::server).
  Device(DeviceProps props, sim::SimClock& clock, KernelRegistry& registry,
         ThreadPool& pool);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // ------------------------------- memory --------------------------------
  [[nodiscard]] DevPtr malloc(std::uint64_t size);
  /// Wiretaint seam: malloc with a wire-derived size. A size larger than
  /// the device itself is refused as OutOfMemory (the allocator's own
  /// in-band error) without leaving the taint domain.
  [[nodiscard]] DevPtr malloc_validated(xdr::Untrusted<std::uint64_t> size);
  void free(DevPtr ptr);
  void memset(DevPtr ptr, int value, std::uint64_t len);
  /// Wiretaint seam: memset with a wire-derived length (MemoryError when
  /// no allocation could ever satisfy it).
  void memset_validated(DevPtr ptr, int value,
                        xdr::Untrusted<std::uint64_t> len);
  /// Synchronous copies: wait for the device, move bytes, charge PCIe time.
  void memcpy_h2d(DevPtr dst, std::span<const std::uint8_t> src)
      CRICKET_EXCLUDES(mu_);
  void memcpy_d2h(std::span<std::uint8_t> dst, DevPtr src)
      CRICKET_EXCLUDES(mu_);
  void memcpy_d2d(DevPtr dst, DevPtr src, std::uint64_t len)
      CRICKET_EXCLUDES(mu_);
  /// Wiretaint seam: device-to-device copy with a wire-derived length.
  void memcpy_d2d_validated(DevPtr dst, DevPtr src,
                            xdr::Untrusted<std::uint64_t> len)
      CRICKET_EXCLUDES(mu_);
  /// Async copies: charged to the stream timeline instead of blocking.
  void memcpy_h2d_async(DevPtr dst, std::span<const std::uint8_t> src,
                        StreamId stream) CRICKET_EXCLUDES(mu_);
  void memcpy_d2h_async(std::span<std::uint8_t> dst, DevPtr src,
                        StreamId stream) CRICKET_EXCLUDES(mu_);

  [[nodiscard]] MemoryManager& memory() noexcept { return memory_; }

  // ------------------------------- modules -------------------------------
  /// Loads a cubin/fatbin image (possibly compressed); allocates + initializes
  /// module globals in device memory.
  [[nodiscard]] ModuleId load_module(std::span<const std::uint8_t> image)
      CRICKET_EXCLUDES(mu_);
  void unload_module(ModuleId mod) CRICKET_EXCLUDES(mu_);
  [[nodiscard]] FuncId get_function(ModuleId mod, const std::string& name)
      CRICKET_EXCLUDES(mu_);
  /// Device address of a module __device__ global.
  [[nodiscard]] DevPtr get_global(ModuleId mod, const std::string& name)
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] const fatbin::KernelDescriptor& function_desc(FuncId fn) const
      CRICKET_EXCLUDES(mu_);

  // ------------------------------- launch --------------------------------
  /// Validates geometry and parameters against the kernel descriptor, runs
  /// the registered implementation, and charges its modelled execution time
  /// to `stream`'s timeline. Returns the device execution time charged
  /// (used by the Cricket scheduler for per-session accounting).
  sim::Nanos launch(FuncId fn, Dim3 grid, Dim3 block,
                    std::uint32_t shared_bytes, StreamId stream,
                    std::span<const std::uint8_t> params)
      CRICKET_EXCLUDES(mu_);

  /// Charges the timeline for work executed by an internal library routine
  /// (culibs GEMM/LU run device-side as fused kernels): `launches` kernel
  /// submissions plus roofline execution for the given flops/bytes.
  void charge_internal_kernel(StreamId stream, double flops, double dram_bytes,
                              std::uint64_t launches = 1)
      CRICKET_EXCLUDES(mu_);

  // --------------------------- streams & events --------------------------
  [[nodiscard]] StreamId stream_create() CRICKET_EXCLUDES(mu_);
  void stream_destroy(StreamId stream) CRICKET_EXCLUDES(mu_);
  /// Blocks (virtually) until the stream's queued work completes.
  void stream_synchronize(StreamId stream) CRICKET_EXCLUDES(mu_);
  void device_synchronize() CRICKET_EXCLUDES(mu_);
  /// cudaStreamWaitEvent: subsequent work on `stream` starts no earlier
  /// than the event's recorded timestamp (cross-stream dependency).
  void stream_wait_event(StreamId stream, EventId event) CRICKET_EXCLUDES(mu_);

  /// Virtual timestamp at which `stream`'s queued work completes (used by
  /// the Cricket scheduler to attribute device time to sessions).
  [[nodiscard]] std::int64_t stream_completion_time(StreamId stream) const
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] EventId event_create() CRICKET_EXCLUDES(mu_);
  void event_destroy(EventId event) CRICKET_EXCLUDES(mu_);
  /// Captures the stream's completion timestamp at record time.
  void event_record(EventId event, StreamId stream) CRICKET_EXCLUDES(mu_);
  void event_synchronize(EventId event) CRICKET_EXCLUDES(mu_);
  /// Milliseconds of virtual device time between two recorded events.
  [[nodiscard]] float event_elapsed_ms(EventId start, EventId stop) const
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] const DeviceProps& props() const noexcept { return props_; }
  /// Modelled PCIe transfer time for `bytes` (latency + bandwidth term) —
  /// public so the Cricket server can attribute large-copy device time to
  /// tenants without duplicating the cost model.
  [[nodiscard]] sim::Nanos copy_time(std::uint64_t bytes) const noexcept;
  /// Returns a snapshot copy assembled from the atomic obs counters —
  /// lock-free, so readers never contend with in-flight launches.
  [[nodiscard]] DeviceStats stats() const noexcept {
    return counters_.snapshot();
  }
  [[nodiscard]] sim::SimClock& clock() noexcept { return *clock_; }

  /// Timing-only launches: kernels skip arithmetic but charge modelled cost.
  /// See LaunchContext::timing_only. Atomic: benchmarks flip it while the
  /// serving thread is mid-launch.
  void set_timing_only(bool value) noexcept {
    timing_only_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] bool timing_only() const noexcept {
    return timing_only_.load(std::memory_order_relaxed);
  }

  // ---------------------- checkpoint / restart support --------------------
  /// Captures the complete device state: live allocations with contents,
  /// loaded modules, resolved functions, streams, events, and the handle
  /// counter — everything needed for Cricket checkpoint/restart (the paper's
  /// §1/§5 capability).
  [[nodiscard]] struct DeviceSnapshot snapshot() const CRICKET_EXCLUDES(mu_);
  /// Restores a snapshot into this device. The device must be pristine (no
  /// allocations, modules, or non-default streams); handles and device
  /// pointers held by clients stay valid afterwards.
  void restore(const struct DeviceSnapshot& snap) CRICKET_EXCLUDES(mu_);

  /// Captures only the state selected by `filter` (one session's slice, for
  /// live migration): the listed allocations plus the globals of every
  /// listed module, the listed modules with the functions resolved from
  /// them, the listed streams (plus the default stream's timeline), and the
  /// listed events. Throws DeviceError when the filter names state the
  /// device does not hold.
  [[nodiscard]] struct DeviceSnapshot snapshot_subset(
      const DeviceStateFilter& filter) const CRICKET_EXCLUDES(mu_);

  /// Merges a (typically subset) snapshot into a live device without the
  /// pristine requirement: used on a migration target, where the tenant
  /// lands on a reserved device so nothing can collide. Atomic: the whole
  /// image is validated first — handle-id and address-range collisions
  /// (against live state AND between the records themselves), placement
  /// feasibility, parseable module images, resolvable function records —
  /// and any refusal throws DeviceError before a single record lands. The
  /// default stream's finish time merges via max, and the handle counter
  /// advances to cover the imported ids.
  void restore_merge(const struct DeviceSnapshot& snap) CRICKET_EXCLUDES(mu_);

  /// Multi-snapshot form: merges every snapshot or none — one migration
  /// image's sessions land all-or-nothing, so a refused import can never
  /// leave earlier sessions' state orphaned on the device.
  void restore_merge(std::span<const struct DeviceSnapshot* const> snaps)
      CRICKET_EXCLUDES(mu_);

 private:
  struct Module {
    fatbin::CubinImage image;
    std::map<std::string, DevPtr> globals;
  };
  struct Function {
    ModuleId module;
    const fatbin::KernelDescriptor* desc;  // points into Module::image
  };

  [[nodiscard]] sim::Nanos exec_time(const LaunchContext& ctx) const noexcept;
  std::int64_t& stream_finish(StreamId stream) CRICKET_REQUIRES(mu_);

  DeviceProps props_;
  sim::SimClock* clock_;
  KernelRegistry* registry_;
  ThreadPool* pool_;
  MemoryManager memory_;

  mutable sim::Mutex mu_;
  std::map<ModuleId, Module> modules_ CRICKET_GUARDED_BY(mu_);
  std::map<FuncId, Function> functions_ CRICKET_GUARDED_BY(mu_);
  // stream -> finish timestamp
  std::map<StreamId, std::int64_t> streams_ CRICKET_GUARDED_BY(mu_);
  // event -> recorded timestamp
  std::map<EventId, std::int64_t> events_ CRICKET_GUARDED_BY(mu_);
  std::uint64_t next_id_ CRICKET_GUARDED_BY(mu_) = 1;
  detail::DeviceCounters counters_;  // atomic; needs no mutex
  std::atomic<bool> timing_only_{false};
};

}  // namespace cricket::gpusim
