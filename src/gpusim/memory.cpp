#include "gpusim/memory.hpp"

#include <cstring>

namespace cricket::gpusim {

MemoryManager::MemoryManager(std::uint64_t capacity, DevPtr base)
    : capacity_(capacity), base_(base) {
  free_.emplace(base_, capacity_);
}

DevPtr MemoryManager::allocate(std::uint64_t size) {
  if (size == 0) throw MemoryError("zero-byte device allocation");
  // Checked before the round-up: a size near UINT64_MAX would wrap the
  // granularity arithmetic to a tiny padded size and corrupt accounting.
  if (size > capacity_) throw OutOfMemory("device out of memory");
  const std::uint64_t padded =
      (size + kGranularity - 1) / kGranularity * kGranularity;
  sim::MutexLock lock(mu_);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < padded) continue;
    const DevPtr addr = it->first;
    const std::uint64_t hole = it->second;
    free_.erase(it);
    if (hole > padded) free_.emplace(addr + padded, hole - padded);
    Allocation a;
    a.size = size;
    a.padded_size = padded;
    a.storage.assign(size, 0);
    allocs_.emplace(addr, std::move(a));
    in_use_ += padded;
    return addr;
  }
  throw OutOfMemory("device out of memory");
}

void MemoryManager::allocate_at(DevPtr ptr, std::uint64_t size) {
  if (size == 0) throw MemoryError("zero-byte device allocation");
  if (size > capacity_) throw OutOfMemory("device out of memory");
  const std::uint64_t padded =
      (size + kGranularity - 1) / kGranularity * kGranularity;
  sim::MutexLock lock(mu_);
  // Find the free hole containing [ptr, ptr + padded).
  auto it = free_.upper_bound(ptr);
  if (it == free_.begin()) throw MemoryError("address not in a free hole");
  --it;
  const DevPtr hole_start = it->first;
  const std::uint64_t hole_len = it->second;
  // Overflow-safe form of `ptr + padded > hole_start + hole_len`: a
  // restore image placing an allocation near the top of the address space
  // must not wrap the end computation past the check.
  if (ptr < hole_start || ptr - hole_start > hole_len ||
      padded > hole_len - (ptr - hole_start))
    throw MemoryError("address range not entirely free");
  free_.erase(it);
  if (ptr > hole_start) free_.emplace(hole_start, ptr - hole_start);
  const std::uint64_t tail = hole_start + hole_len - (ptr + padded);
  if (tail > 0) free_.emplace(ptr + padded, tail);
  Allocation a;
  a.size = size;
  a.padded_size = padded;
  a.storage.assign(size, 0);
  allocs_.emplace(ptr, std::move(a));
  in_use_ += padded;
}

bool MemoryManager::can_allocate_at(DevPtr ptr, std::uint64_t size) const
    noexcept {
  if (size == 0 || size > capacity_) return false;
  const std::uint64_t padded =
      (size + kGranularity - 1) / kGranularity * kGranularity;
  sim::MutexLock lock(mu_);
  auto it = free_.upper_bound(ptr);
  if (it == free_.begin()) return false;
  --it;
  return ptr >= it->first && ptr - it->first <= it->second &&
         padded <= it->second - (ptr - it->first);
}

bool MemoryManager::can_allocate_at_validated(
    xdr::Untrusted<DevPtr> ptr, xdr::Untrusted<std::uint64_t> size) const
    noexcept {
  // Wire-derived placement: both scalars leave the taint domain only after
  // proving they describe a range the device address space can even hold.
  DevPtr p = 0;
  std::uint64_t s = 0;
  if (!ptr.try_validate(base_ + capacity_ - 1, p)) return false;
  if (!size.try_validate(capacity_, s)) return false;
  return can_allocate_at(p, s);
}

void MemoryManager::free(DevPtr ptr) {
  sim::MutexLock lock(mu_);
  const auto it = allocs_.find(ptr);
  if (it == allocs_.end())
    throw MemoryError("free of invalid or already-freed device pointer");
  std::uint64_t start = ptr;
  std::uint64_t len = it->second.padded_size;
  in_use_ -= len;
  allocs_.erase(it);

  // Coalesce with successor hole.
  const auto next = free_.lower_bound(start);
  if (next != free_.end() && next->first == start + len) {
    len += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor hole.
  const auto succ = free_.lower_bound(start);
  if (succ != free_.begin()) {
    const auto prev = std::prev(succ);
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(start, len);
}

std::span<std::uint8_t> MemoryManager::resolve(DevPtr ptr, std::uint64_t len) {
  sim::MutexLock lock(mu_);
  auto it = allocs_.upper_bound(ptr);
  if (it == allocs_.begin())
    throw MemoryError("device pointer outside any allocation");
  --it;
  const std::uint64_t off = ptr - it->first;
  // Overflow-safe form of `off + len > size`: a hostile length near
  // UINT64_MAX must not wrap the sum below the bound and hand out a span
  // far beyond the backing storage.
  if (off > it->second.size || len > it->second.size - off)
    throw MemoryError("device access beyond allocation bounds");
  return {it->second.storage.data() + off, len};
}

std::span<std::uint8_t> MemoryManager::resolve_validated(
    DevPtr ptr, xdr::Untrusted<std::uint64_t> len) {
  std::uint64_t l = 0;
  if (!len.try_validate(capacity_, l))
    throw MemoryError("wire-declared length exceeds device capacity");
  return resolve(ptr, l);
}

std::span<const std::uint8_t> MemoryManager::resolve(DevPtr ptr,
                                                     std::uint64_t len) const {
  return const_cast<MemoryManager*>(this)->resolve(ptr, len);
}

void MemoryManager::memset(DevPtr ptr, int value, std::uint64_t len) {
  const auto span = resolve(ptr, len);
  std::memset(span.data(), value, span.size());
}

void MemoryManager::memset_validated(DevPtr ptr, int value,
                                     xdr::Untrusted<std::uint64_t> len) {
  const auto span = resolve_validated(ptr, len);
  std::memset(span.data(), value, span.size());
}

std::uint64_t MemoryManager::bytes_in_use() const noexcept {
  sim::MutexLock lock(mu_);
  return in_use_;
}

std::size_t MemoryManager::allocation_count() const noexcept {
  sim::MutexLock lock(mu_);
  return allocs_.size();
}

std::vector<std::pair<DevPtr, std::uint64_t>> MemoryManager::live() const {
  sim::MutexLock lock(mu_);
  std::vector<std::pair<DevPtr, std::uint64_t>> out;
  out.reserve(allocs_.size());
  for (const auto& [addr, a] : allocs_) out.emplace_back(addr, a.size);
  return out;
}

}  // namespace cricket::gpusim
