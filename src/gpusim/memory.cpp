#include "gpusim/memory.hpp"

#include <cstring>

namespace cricket::gpusim {

MemoryManager::MemoryManager(std::uint64_t capacity, DevPtr base)
    : capacity_(capacity), base_(base) {
  free_.emplace(base_, capacity_);
}

DevPtr MemoryManager::allocate(std::uint64_t size) {
  if (size == 0) throw MemoryError("zero-byte device allocation");
  const std::uint64_t padded =
      (size + kGranularity - 1) / kGranularity * kGranularity;
  sim::MutexLock lock(mu_);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < padded) continue;
    const DevPtr addr = it->first;
    const std::uint64_t hole = it->second;
    free_.erase(it);
    if (hole > padded) free_.emplace(addr + padded, hole - padded);
    Allocation a;
    a.size = size;
    a.padded_size = padded;
    a.storage.assign(size, 0);
    allocs_.emplace(addr, std::move(a));
    in_use_ += padded;
    return addr;
  }
  throw OutOfMemory("device out of memory");
}

void MemoryManager::allocate_at(DevPtr ptr, std::uint64_t size) {
  if (size == 0) throw MemoryError("zero-byte device allocation");
  const std::uint64_t padded =
      (size + kGranularity - 1) / kGranularity * kGranularity;
  sim::MutexLock lock(mu_);
  // Find the free hole containing [ptr, ptr + padded).
  auto it = free_.upper_bound(ptr);
  if (it == free_.begin()) throw MemoryError("address not in a free hole");
  --it;
  const DevPtr hole_start = it->first;
  const std::uint64_t hole_len = it->second;
  if (ptr < hole_start || ptr + padded > hole_start + hole_len)
    throw MemoryError("address range not entirely free");
  free_.erase(it);
  if (ptr > hole_start) free_.emplace(hole_start, ptr - hole_start);
  const std::uint64_t tail = hole_start + hole_len - (ptr + padded);
  if (tail > 0) free_.emplace(ptr + padded, tail);
  Allocation a;
  a.size = size;
  a.padded_size = padded;
  a.storage.assign(size, 0);
  allocs_.emplace(ptr, std::move(a));
  in_use_ += padded;
}

bool MemoryManager::can_allocate_at(DevPtr ptr, std::uint64_t size) const
    noexcept {
  if (size == 0) return false;
  const std::uint64_t padded =
      (size + kGranularity - 1) / kGranularity * kGranularity;
  sim::MutexLock lock(mu_);
  auto it = free_.upper_bound(ptr);
  if (it == free_.begin()) return false;
  --it;
  return ptr >= it->first && ptr + padded <= it->first + it->second;
}

void MemoryManager::free(DevPtr ptr) {
  sim::MutexLock lock(mu_);
  const auto it = allocs_.find(ptr);
  if (it == allocs_.end())
    throw MemoryError("free of invalid or already-freed device pointer");
  std::uint64_t start = ptr;
  std::uint64_t len = it->second.padded_size;
  in_use_ -= len;
  allocs_.erase(it);

  // Coalesce with successor hole.
  const auto next = free_.lower_bound(start);
  if (next != free_.end() && next->first == start + len) {
    len += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor hole.
  const auto succ = free_.lower_bound(start);
  if (succ != free_.begin()) {
    const auto prev = std::prev(succ);
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(start, len);
}

std::span<std::uint8_t> MemoryManager::resolve(DevPtr ptr, std::uint64_t len) {
  sim::MutexLock lock(mu_);
  auto it = allocs_.upper_bound(ptr);
  if (it == allocs_.begin())
    throw MemoryError("device pointer outside any allocation");
  --it;
  const std::uint64_t off = ptr - it->first;
  if (off + len > it->second.size)
    throw MemoryError("device access beyond allocation bounds");
  return {it->second.storage.data() + off, len};
}

std::span<const std::uint8_t> MemoryManager::resolve(DevPtr ptr,
                                                     std::uint64_t len) const {
  return const_cast<MemoryManager*>(this)->resolve(ptr, len);
}

void MemoryManager::memset(DevPtr ptr, int value, std::uint64_t len) {
  const auto span = resolve(ptr, len);
  std::memset(span.data(), value, span.size());
}

std::uint64_t MemoryManager::bytes_in_use() const noexcept {
  sim::MutexLock lock(mu_);
  return in_use_;
}

std::size_t MemoryManager::allocation_count() const noexcept {
  sim::MutexLock lock(mu_);
  return allocs_.size();
}

std::vector<std::pair<DevPtr, std::uint64_t>> MemoryManager::live() const {
  sim::MutexLock lock(mu_);
  std::vector<std::pair<DevPtr, std::uint64_t>> out;
  out.reserve(allocs_.size());
  for (const auto& [addr, a] : allocs_) out.emplace_back(addr, a.size);
  return out;
}

}  // namespace cricket::gpusim
