#include "gpusim/device.hpp"

#include <algorithm>
#include <set>

#include "obs/trace.hpp"

namespace cricket::gpusim {

namespace detail {

DeviceCounters::DeviceCounters(const std::string& instance)
    : kernels_launched(obs::Registry::global().counter(
          "cricket_gpu_kernels_launched_total", {{"device", instance}},
          "Kernel launches executed by the simulated device")),
      bytes_h2d(obs::Registry::global().counter(
          "cricket_gpu_copy_bytes_total",
          {{"device", instance}, {"dir", "h2d"}},
          "Bytes moved by device copies")),
      bytes_d2h(obs::Registry::global().counter(
          "cricket_gpu_copy_bytes_total",
          {{"device", instance}, {"dir", "d2h"}})),
      bytes_d2d(obs::Registry::global().counter(
          "cricket_gpu_copy_bytes_total",
          {{"device", instance}, {"dir", "d2d"}})),
      modules_loaded(obs::Registry::global().counter(
          "cricket_gpu_modules_loaded_total", {{"device", instance}},
          "Fatbin/cubin modules loaded")),
      busy_ns(obs::Registry::global().counter(
          "cricket_gpu_busy_ns_total", {{"device", instance}},
          "Virtual ns spent executing kernels and moving bytes")) {}

}  // namespace detail

Device::Device(DeviceProps props, sim::SimClock& clock,
               KernelRegistry& registry, ThreadPool& pool)
    : props_(std::move(props)),
      clock_(&clock),
      registry_(&registry),
      pool_(&pool),
      memory_(props_.mem_bytes),
      counters_(obs::Registry::global().unique_label("gpu")) {
  streams_.emplace(kDefaultStream, 0);
}

// --------------------------------- memory ----------------------------------

DevPtr Device::malloc(std::uint64_t size) {
  clock_->advance(props_.alloc_latency_ns);
  return memory_.allocate(size);
}

DevPtr Device::malloc_validated(xdr::Untrusted<std::uint64_t> size) {
  std::uint64_t plain = 0;
  if (!size.try_validate(memory_.capacity(), plain))
    throw OutOfMemory("device out of memory");
  return malloc(plain);
}

void Device::free(DevPtr ptr) {
  clock_->advance(props_.alloc_latency_ns);
  memory_.free(ptr);
}

void Device::memset(DevPtr ptr, int value, std::uint64_t len) {
  memory_.memset(ptr, value, len);
  clock_->advance(static_cast<sim::Nanos>(
      static_cast<double>(len) / (props_.mem_bandwidth_gbps * 1e9) * 1e9));
}

void Device::memset_validated(DevPtr ptr, int value,
                              xdr::Untrusted<std::uint64_t> len) {
  std::uint64_t plain = 0;
  if (!len.try_validate(memory_.capacity(), plain))
    throw MemoryError("wire-declared length exceeds device capacity");
  memset(ptr, value, plain);
}

sim::Nanos Device::copy_time(std::uint64_t bytes) const noexcept {
  // PCIe latency + bandwidth term.
  constexpr sim::Nanos kPcieLatency = 1'200;
  return kPcieLatency +
         static_cast<sim::Nanos>(static_cast<double>(bytes) /
                                 (props_.pcie_bandwidth_gbps * 1e9) * 1e9);
}

void Device::memcpy_h2d(DevPtr dst, std::span<const std::uint8_t> src) {
  obs::Span trace(obs::Layer::kGpuMemcpy, "gpu.memcpy_h2d", src.size());
  device_synchronize();
  const auto span = memory_.resolve(dst, src.size());
  std::copy(src.begin(), src.end(), span.begin());
  clock_->advance(copy_time(src.size()));
  counters_.bytes_h2d.inc(src.size());
  counters_.busy_ns.inc(static_cast<std::uint64_t>(copy_time(src.size())));
}

void Device::memcpy_d2h(std::span<std::uint8_t> dst, DevPtr src) {
  obs::Span trace(obs::Layer::kGpuMemcpy, "gpu.memcpy_d2h", dst.size());
  device_synchronize();
  const auto span = memory_.resolve(src, dst.size());
  std::copy(span.begin(), span.end(), dst.begin());
  clock_->advance(copy_time(dst.size()));
  counters_.bytes_d2h.inc(dst.size());
  counters_.busy_ns.inc(static_cast<std::uint64_t>(copy_time(dst.size())));
}

void Device::memcpy_d2d(DevPtr dst, DevPtr src, std::uint64_t len) {
  obs::Span trace(obs::Layer::kGpuMemcpy, "gpu.memcpy_d2d", len);
  device_synchronize();
  // Resolve source first so overlapping-copy errors surface before writes.
  const auto s = memory_.resolve(src, len);
  const auto d = memory_.resolve(dst, len);
  std::copy(s.begin(), s.end(), d.begin());
  // On-device copy moves at memory bandwidth (read + write).
  const auto d2d_ns = static_cast<sim::Nanos>(
      2.0 * static_cast<double>(len) / (props_.mem_bandwidth_gbps * 1e9) *
      1e9);
  clock_->advance(d2d_ns);
  counters_.bytes_d2d.inc(len);
  counters_.busy_ns.inc(static_cast<std::uint64_t>(d2d_ns));
}

void Device::memcpy_d2d_validated(DevPtr dst, DevPtr src,
                                  xdr::Untrusted<std::uint64_t> len) {
  std::uint64_t plain = 0;
  if (!len.try_validate(memory_.capacity(), plain))
    throw MemoryError("wire-declared length exceeds device capacity");
  memcpy_d2d(dst, src, plain);
}

void Device::memcpy_h2d_async(DevPtr dst, std::span<const std::uint8_t> src,
                              StreamId stream) {
  obs::Span trace(obs::Layer::kGpuMemcpy, "gpu.memcpy_h2d_async", src.size());
  const auto span = memory_.resolve(dst, src.size());
  std::copy(src.begin(), src.end(), span.begin());
  counters_.bytes_h2d.inc(src.size());
  counters_.busy_ns.inc(static_cast<std::uint64_t>(copy_time(src.size())));
  sim::MutexLock lock(mu_);
  auto& finish = stream_finish(stream);
  finish = std::max(finish, clock_->now()) + copy_time(src.size());
}

void Device::memcpy_d2h_async(std::span<std::uint8_t> dst, DevPtr src,
                              StreamId stream) {
  obs::Span trace(obs::Layer::kGpuMemcpy, "gpu.memcpy_d2h_async", dst.size());
  const auto span = memory_.resolve(src, dst.size());
  std::copy(span.begin(), span.end(), dst.begin());
  counters_.bytes_d2h.inc(dst.size());
  counters_.busy_ns.inc(static_cast<std::uint64_t>(copy_time(dst.size())));
  sim::MutexLock lock(mu_);
  auto& finish = stream_finish(stream);
  finish = std::max(finish, clock_->now()) + copy_time(dst.size());
}

// --------------------------------- modules ---------------------------------

ModuleId Device::load_module(std::span<const std::uint8_t> image) {
  Module mod;
  // Explicit ingest cap: `image` arrives straight from rpc_module_load, so
  // the decompressor must never allocate past what the wire contract allows
  // (kMaxModuleBytes mirrors CRICKET_MAX_PAYLOAD; src/cricket asserts it).
  mod.image = fatbin::extract_metadata(image, props_.sm_arch,
                                       fatbin::kMaxModuleBytes);

  // Allocate and initialize module globals in device memory.
  for (const auto& g : mod.image.globals) {
    if (g.size == 0) continue;
    const DevPtr addr = memory_.allocate(g.size);
    if (!g.init.empty()) {
      const auto span = memory_.resolve(addr, g.size);
      std::copy(g.init.begin(), g.init.end(), span.begin());
    }
    mod.globals.emplace(g.name, addr);
  }

  // Charge load time: metadata parse + code upload over PCIe.
  clock_->advance(50 * sim::kMicrosecond + copy_time(image.size()));

  counters_.modules_loaded.inc();
  sim::MutexLock lock(mu_);
  const ModuleId id = next_id_++;
  modules_.emplace(id, std::move(mod));
  return id;
}

void Device::unload_module(ModuleId mod) {
  sim::MutexLock lock(mu_);
  const auto it = modules_.find(mod);
  if (it == modules_.end()) throw DeviceError("unload of unknown module");
  for (const auto& [name, addr] : it->second.globals) memory_.free(addr);
  // Invalidate functions resolved from this module.
  for (auto fit = functions_.begin(); fit != functions_.end();) {
    if (fit->second.module == mod)
      fit = functions_.erase(fit);
    else
      ++fit;
  }
  modules_.erase(it);
}

FuncId Device::get_function(ModuleId mod, const std::string& name) {
  sim::MutexLock lock(mu_);
  const auto it = modules_.find(mod);
  if (it == modules_.end()) throw DeviceError("unknown module handle");
  const auto* desc = it->second.image.find_kernel(name);
  if (!desc) throw DeviceError("kernel '" + name + "' not found in module");
  const FuncId id = next_id_++;
  functions_.emplace(id, Function{mod, desc});
  return id;
}

DevPtr Device::get_global(ModuleId mod, const std::string& name) {
  sim::MutexLock lock(mu_);
  const auto it = modules_.find(mod);
  if (it == modules_.end()) throw DeviceError("unknown module handle");
  const auto git = it->second.globals.find(name);
  if (git == it->second.globals.end())
    throw DeviceError("global '" + name + "' not found in module");
  return git->second;
}

const fatbin::KernelDescriptor& Device::function_desc(FuncId fn) const {
  sim::MutexLock lock(mu_);
  const auto it = functions_.find(fn);
  if (it == functions_.end()) throw DeviceError("unknown function handle");
  return *it->second.desc;
}

// --------------------------------- launch ----------------------------------

sim::Nanos Device::exec_time(const LaunchContext& ctx) const noexcept {
  // Roofline: compute-bound or memory-bound, whichever dominates, plus a
  // minimum per-launch device-side latency.
  const double t_flops =
      ctx.charged_flops() / (props_.peak_fp32_tflops * 1e12);
  const double t_mem =
      ctx.charged_dram_bytes() / (props_.mem_bandwidth_gbps * 1e9);
  const double t = std::max(t_flops, t_mem);
  return std::max<sim::Nanos>(2 * sim::kMicrosecond,
                              static_cast<sim::Nanos>(t * 1e9));
}

sim::Nanos Device::launch(FuncId fn, Dim3 grid, Dim3 block,
                          std::uint32_t shared_bytes, StreamId stream,
                          std::span<const std::uint8_t> params) {
  obs::Span trace(obs::Layer::kGpuLaunch, nullptr,
                  static_cast<std::uint64_t>(grid.count()) * block.count());
  const fatbin::KernelDescriptor* desc;
  {
    sim::MutexLock lock(mu_);
    const auto it = functions_.find(fn);
    if (it == functions_.end()) throw DeviceError("unknown function handle");
    desc = it->second.desc;
    if (!streams_.contains(stream)) throw DeviceError("unknown stream");
  }

  if (grid.count() == 0 || block.count() == 0)
    throw LaunchError("launch geometry must be non-zero");
  if (block.count() > desc->max_threads_per_block)
    throw LaunchError("block exceeds kernel's max threads per block");
  if (shared_bytes > kMaxSharedBytes)  // A100 max dynamic shared memory
    throw LaunchError("dynamic shared memory request too large");
  if (params.size() != desc->param_buffer_size())
    throw LaunchError("parameter buffer size mismatch for '" + desc->name +
                      "': got " + std::to_string(params.size()) + ", want " +
                      std::to_string(desc->param_buffer_size()));

  const KernelFunc impl = registry_->find(desc->name);
  LaunchContext ctx(*desc, grid, block, shared_bytes, params, memory_, *pool_,
                    timing_only());
  impl(ctx);  // real computation happens here (unless timing-only)

  // Host pays the submission latency; the device timeline absorbs execution.
  clock_->advance(props_.launch_latency_ns);
  const sim::Nanos exec = exec_time(ctx);
  counters_.kernels_launched.inc();
  counters_.busy_ns.inc(static_cast<std::uint64_t>(exec));
  sim::MutexLock lock(mu_);
  auto& finish = stream_finish(stream);
  finish = std::max(finish, clock_->now()) + exec;
  return exec;
}

void Device::charge_internal_kernel(StreamId stream, double flops,
                                    double dram_bytes,
                                    std::uint64_t launches) {
  if (launches == 0) return;
  clock_->advance(props_.launch_latency_ns *
                  static_cast<sim::Nanos>(launches));
  const double t_flops = flops / (props_.peak_fp32_tflops * 1e12);
  const double t_mem = dram_bytes / (props_.mem_bandwidth_gbps * 1e9);
  // Library routines issue many small back-to-back kernels (cusolver panel
  // factorization); kernel-to-kernel gaps dominate, ~8us per launch.
  const auto exec =
      std::max<sim::Nanos>(static_cast<sim::Nanos>(launches) * 8 *
                               sim::kMicrosecond,
                           static_cast<sim::Nanos>(std::max(t_flops, t_mem) *
                                                   1e9));
  counters_.kernels_launched.inc(launches);
  counters_.busy_ns.inc(static_cast<std::uint64_t>(exec));
  sim::MutexLock lock(mu_);
  auto& finish = stream_finish(stream);
  finish = std::max(finish, clock_->now()) + exec;
}

// ------------------------- checkpoint / restart -----------------------------

DeviceSnapshot Device::snapshot() const {
  sim::MutexLock lock(mu_);
  DeviceSnapshot snap;
  snap.next_id = next_id_;
  for (const auto& [addr, size] : memory_.live()) {
    DeviceSnapshot::AllocationRecord rec;
    rec.addr = addr;
    rec.size = size;
    const auto span = memory_.resolve(addr, size);
    rec.bytes.assign(span.begin(), span.end());
    snap.allocations.push_back(std::move(rec));
  }
  for (const auto& [id, mod] : modules_) {
    DeviceSnapshot::ModuleRecord rec;
    rec.id = id;
    rec.image = fatbin::cubin_serialize(mod.image);
    for (const auto& [name, addr] : mod.globals)
      rec.globals.emplace_back(name, addr);
    snap.modules.push_back(std::move(rec));
  }
  for (const auto& [id, fn] : functions_)
    snap.functions.push_back(
        DeviceSnapshot::FunctionRecord{id, fn.module, fn.desc->name});
  for (const auto& [id, finish] : streams_) snap.streams.emplace_back(id, finish);
  for (const auto& [id, ts] : events_) snap.events.emplace_back(id, ts);
  return snap;
}

void Device::restore(const DeviceSnapshot& snap) {
  sim::MutexLock lock(mu_);
  if (memory_.allocation_count() != 0 || !modules_.empty() ||
      !events_.empty() || streams_.size() != 1)
    throw DeviceError("restore requires a pristine device");

  // Device memory first: every client-held pointer must resolve afterwards
  // (module globals are live allocations and are included here).
  for (const auto& rec : snap.allocations) {
    memory_.allocate_at(rec.addr, rec.size);
    const auto span = memory_.resolve(rec.addr, rec.size);
    std::copy(rec.bytes.begin(), rec.bytes.end(), span.begin());
  }
  // Modules: re-parse images and re-bind their global address maps without
  // allocating (the backing allocations were restored above).
  for (const auto& rec : snap.modules) {
    Module mod;
    mod.image = fatbin::cubin_parse(rec.image);
    for (const auto& [name, addr] : rec.globals) mod.globals.emplace(name, addr);
    modules_.emplace(rec.id, std::move(mod));
  }
  for (const auto& rec : snap.functions) {
    const auto it = modules_.find(rec.module);
    if (it == modules_.end())
      throw DeviceError("snapshot function references missing module");
    const auto* desc = it->second.image.find_kernel(rec.kernel_name);
    if (!desc) throw DeviceError("snapshot function kernel not in module");
    functions_.emplace(rec.id, Function{rec.module, desc});
  }
  streams_.clear();
  streams_.emplace(kDefaultStream, 0);
  for (const auto& [id, finish] : snap.streams) streams_[id] = finish;
  for (const auto& [id, ts] : snap.events) events_[id] = ts;
  next_id_ = snap.next_id;
}

DeviceSnapshot Device::snapshot_subset(const DeviceStateFilter& filter) const {
  sim::MutexLock lock(mu_);
  DeviceSnapshot snap;
  snap.next_id = next_id_;

  // The allocation set: everything listed, plus each listed module's
  // globals (live allocations the session does not track individually).
  std::set<DevPtr> want(filter.allocations.begin(), filter.allocations.end());
  for (const ModuleId id : filter.modules) {
    const auto it = modules_.find(id);
    if (it == modules_.end())
      throw DeviceError("snapshot filter references unknown module");
    for (const auto& [name, addr] : it->second.globals) want.insert(addr);
  }
  for (const auto& [addr, size] : memory_.live()) {
    if (want.erase(addr) == 0) continue;
    DeviceSnapshot::AllocationRecord rec;
    rec.addr = addr;
    rec.size = size;
    const auto span = memory_.resolve(addr, size);
    rec.bytes.assign(span.begin(), span.end());
    snap.allocations.push_back(std::move(rec));
  }
  if (!want.empty())
    throw DeviceError("snapshot filter references unknown allocation");

  for (const ModuleId id : filter.modules) {
    const Module& mod = modules_.at(id);  // presence checked above
    DeviceSnapshot::ModuleRecord rec;
    rec.id = id;
    rec.image = fatbin::cubin_serialize(mod.image);
    for (const auto& [name, addr] : mod.globals)
      rec.globals.emplace_back(name, addr);
    snap.modules.push_back(std::move(rec));
  }
  const std::set<ModuleId> mods(filter.modules.begin(), filter.modules.end());
  for (const auto& [id, fn] : functions_) {
    if (mods.find(fn.module) == mods.end()) continue;
    snap.functions.push_back(
        DeviceSnapshot::FunctionRecord{id, fn.module, fn.desc->name});
  }
  snap.streams.emplace_back(kDefaultStream, streams_.at(kDefaultStream));
  for (const StreamId id : filter.streams) {
    const auto it = streams_.find(id);
    if (it == streams_.end())
      throw DeviceError("snapshot filter references unknown stream");
    if (id != kDefaultStream) snap.streams.emplace_back(id, it->second);
  }
  for (const EventId id : filter.events) {
    const auto it = events_.find(id);
    if (it == events_.end())
      throw DeviceError("snapshot filter references unknown event");
    snap.events.emplace_back(id, it->second);
  }
  return snap;
}

void Device::restore_merge(const DeviceSnapshot& snap) {
  const DeviceSnapshot* one[] = {&snap};
  restore_merge(std::span<const DeviceSnapshot* const>(one));
}

void Device::restore_merge(std::span<const DeviceSnapshot* const> snaps) {
  sim::MutexLock lock(mu_);
  // ---- validate: every check runs before any mutation, so a refused
  // image (from any of its snapshots) leaves the device untouched. ----

  // Handle-id disjointness, against the live tables and across snapshots.
  std::set<ModuleId> new_modules;
  std::set<FuncId> new_functions;
  std::set<StreamId> new_streams;
  std::set<EventId> new_events;
  for (const DeviceSnapshot* snap : snaps) {
    for (const auto& rec : snap->modules)
      if (modules_.find(rec.id) != modules_.end() ||
          !new_modules.insert(rec.id).second)
        throw DeviceError("merge collision: module id already in use");
    for (const auto& rec : snap->functions)
      if (functions_.find(rec.id) != functions_.end() ||
          !new_functions.insert(rec.id).second)
        throw DeviceError("merge collision: function id already in use");
    for (const auto& [id, finish] : snap->streams)
      if (id != kDefaultStream && (streams_.find(id) != streams_.end() ||
                                   !new_streams.insert(id).second))
        throw DeviceError("merge collision: stream id already in use");
    for (const auto& [id, ts] : snap->events)
      if (events_.find(id) != events_.end() || !new_events.insert(id).second)
        throw DeviceError("merge collision: event id already in use");
  }

  // Allocations: each record must be placeable in free memory right now,
  // and the records must be pairwise disjoint once padded to allocator
  // granularity. Together that guarantees the sequential allocate_at calls
  // below all succeed: disjoint ranges inside one free hole stay
  // individually placeable as earlier placements split it.
  std::vector<std::pair<DevPtr, std::uint64_t>> placed;  // (addr, padded len)
  for (const DeviceSnapshot* snap : snaps)
    for (const auto& rec : snap->allocations) {
      if (rec.bytes.size() != rec.size)
        throw DeviceError("merge allocation contents do not match its size");
      // Snapshot records are wire-derived (migration images arrive off the
      // network), so the placement scalars go through the taint domain:
      // an address or size the device address space cannot even hold is
      // refused here, before any padding arithmetic could wrap.
      const xdr::Untrusted<DevPtr> rec_addr(rec.addr);
      const xdr::Untrusted<std::uint64_t> rec_size(rec.size);
      if (!memory_.can_allocate_at_validated(rec_addr, rec_size))
        throw DeviceError("merge collision: allocation address overlap");
      placed.emplace_back(rec.addr,
                          (rec.size + MemoryManager::kGranularity - 1) /
                              MemoryManager::kGranularity *
                              MemoryManager::kGranularity);
    }
  std::sort(placed.begin(), placed.end());
  for (std::size_t i = 0; i + 1 < placed.size(); ++i) {
    // Saturating end computation: a record placed near the top of the
    // address space must overlap-check correctly instead of wrapping.
    const auto end =
        xdr::Untrusted<DevPtr>(placed[i].first) + placed[i].second;
    if (end > placed[i + 1].first)
      throw DeviceError("merge collision: allocation address overlap");
  }

  // Modules: parse every image up front (a malformed one must refuse the
  // merge before any record lands); the parses are reused below.
  std::map<ModuleId, Module> parsed;
  for (const DeviceSnapshot* snap : snaps)
    for (const auto& rec : snap->modules) {
      Module mod;
      mod.image = fatbin::cubin_parse(rec.image);
      for (const auto& [name, addr] : rec.globals)
        mod.globals.emplace(name, addr);
      parsed.emplace(rec.id, std::move(mod));
    }

  // Function records must resolve against a live or incoming module.
  for (const DeviceSnapshot* snap : snaps)
    for (const auto& rec : snap->functions) {
      const fatbin::CubinImage* image = nullptr;
      if (const auto pit = parsed.find(rec.module); pit != parsed.end())
        image = &pit->second.image;
      else if (const auto mit = modules_.find(rec.module);
               mit != modules_.end())
        image = &mit->second.image;
      if (image == nullptr)
        throw DeviceError("snapshot function references missing module");
      if (image->find_kernel(rec.kernel_name) == nullptr)
        throw DeviceError("snapshot function kernel not in module");
    }

  // ---- mutate: everything below was proven to succeed above. ----
  for (const DeviceSnapshot* snap : snaps)
    for (const auto& rec : snap->allocations) {
      memory_.allocate_at(rec.addr, rec.size);
      const auto span = memory_.resolve(rec.addr, rec.size);
      std::copy(rec.bytes.begin(), rec.bytes.end(), span.begin());
    }
  for (auto& [id, mod] : parsed) modules_.emplace(id, std::move(mod));
  for (const DeviceSnapshot* snap : snaps) {
    for (const auto& rec : snap->functions) {
      const auto it = modules_.find(rec.module);
      functions_.emplace(
          rec.id,
          Function{rec.module, it->second.image.find_kernel(rec.kernel_name)});
    }
    for (const auto& [id, finish] : snap->streams) {
      auto& slot = streams_[id];  // default exists; collisions rejected above
      slot = std::max(slot, finish);
    }
    for (const auto& [id, ts] : snap->events) events_[id] = ts;
    next_id_ = std::max(next_id_, snap->next_id);
  }
}

// ----------------------------- streams & events ----------------------------

std::int64_t& Device::stream_finish(StreamId stream) {
  const auto it = streams_.find(stream);
  if (it == streams_.end()) throw DeviceError("unknown stream");
  return it->second;
}

StreamId Device::stream_create() {
  sim::MutexLock lock(mu_);
  const StreamId id = next_id_++;
  streams_.emplace(id, 0);
  return id;
}

void Device::stream_destroy(StreamId stream) {
  if (stream == kDefaultStream)
    throw DeviceError("cannot destroy the default stream");
  sim::MutexLock lock(mu_);
  if (streams_.erase(stream) == 0) throw DeviceError("unknown stream");
}

void Device::stream_synchronize(StreamId stream) {
  obs::Span trace(obs::Layer::kGpuSync, "gpu.sync_stream");
  std::int64_t finish;
  {
    sim::MutexLock lock(mu_);
    finish = stream_finish(stream);
  }
  const auto now = clock_->now();
  if (finish > now) clock_->advance(finish - now);
}

void Device::device_synchronize() {
  obs::Span trace(obs::Layer::kGpuSync, "gpu.sync_device");
  std::int64_t finish = 0;
  {
    sim::MutexLock lock(mu_);
    for (const auto& [id, f] : streams_) finish = std::max(finish, f);
  }
  const auto now = clock_->now();
  if (finish > now) clock_->advance(finish - now);
}

std::int64_t Device::stream_completion_time(StreamId stream) const {
  sim::MutexLock lock(mu_);
  const auto it = streams_.find(stream);
  if (it == streams_.end()) throw DeviceError("unknown stream");
  return it->second;
}

void Device::stream_wait_event(StreamId stream, EventId event) {
  sim::MutexLock lock(mu_);
  const auto it = events_.find(event);
  if (it == events_.end()) throw DeviceError("unknown event");
  auto& finish = stream_finish(stream);
  if (it->second > finish) finish = it->second;  // unrecorded (-1) is a no-op
}

EventId Device::event_create() {
  sim::MutexLock lock(mu_);
  const EventId id = next_id_++;
  events_.emplace(id, -1);
  return id;
}

void Device::event_destroy(EventId event) {
  sim::MutexLock lock(mu_);
  if (events_.erase(event) == 0) throw DeviceError("unknown event");
}

void Device::event_record(EventId event, StreamId stream) {
  sim::MutexLock lock(mu_);
  const auto it = events_.find(event);
  if (it == events_.end()) throw DeviceError("unknown event");
  it->second = std::max(stream_finish(stream), clock_->now());
}

void Device::event_synchronize(EventId event) {
  std::int64_t ts;
  {
    sim::MutexLock lock(mu_);
    const auto it = events_.find(event);
    if (it == events_.end()) throw DeviceError("unknown event");
    if (it->second < 0) return;  // never recorded: CUDA treats as complete
    ts = it->second;
  }
  const auto now = clock_->now();
  if (ts > now) clock_->advance(ts - now);
}

float Device::event_elapsed_ms(EventId start, EventId stop) const {
  sim::MutexLock lock(mu_);
  const auto a = events_.find(start);
  const auto b = events_.find(stop);
  if (a == events_.end() || b == events_.end())
    throw DeviceError("unknown event");
  if (a->second < 0 || b->second < 0)
    throw DeviceError("event not recorded");
  return static_cast<float>(b->second - a->second) / 1e6f;
}

}  // namespace cricket::gpusim
