// Simulated device memory manager.
//
// Allocations get addresses in a synthetic device VA range; the backing
// storage is host memory. The manager enforces the properties the paper's
// RPC-Lib client guarantees through Rust lifetimes (§3.4: "we can guarantee
// the absence of use-after-free and double-free errors for the CUDA
// allocation API") — here they are runtime-checked: freeing twice, or
// touching memory outside a live allocation, throws.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/annotations.hpp"
#include "xdr/taint.hpp"

namespace cricket::gpusim {

/// Device pointer: an address in the simulated device VA space. 0 is null.
using DevPtr = std::uint64_t;

class MemoryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class OutOfMemory : public MemoryError {
 public:
  using MemoryError::MemoryError;
};

/// Thread-safe simulated device heap with a coalescing first-fit free list.
class MemoryManager {
 public:
  /// `capacity` is the device memory size; addresses start at `base`.
  explicit MemoryManager(std::uint64_t capacity,
                         DevPtr base = 0x0007'0000'0000'0000ULL);

  /// Allocates `size` bytes (rounded up to 256-byte granularity, like the
  /// CUDA allocator). Throws OutOfMemory when it does not fit.
  [[nodiscard]] DevPtr allocate(std::uint64_t size) CRICKET_EXCLUDES(mu_);

  /// Places an allocation at an exact device address (checkpoint restore:
  /// client-held pointers must stay valid). Throws MemoryError if the range
  /// is not entirely inside one free hole.
  void allocate_at(DevPtr ptr, std::uint64_t size) CRICKET_EXCLUDES(mu_);

  /// Whether allocate_at(ptr, size) would succeed right now — the same
  /// checks, mutation-free. Lets restore_merge validate a whole batch of
  /// placements before committing to any of them.
  [[nodiscard]] bool can_allocate_at(DevPtr ptr, std::uint64_t size) const
      noexcept CRICKET_EXCLUDES(mu_);

  /// Wiretaint seam: can_allocate_at for wire-derived placement records
  /// (checkpoint restore, migration images). The scalars leave the taint
  /// domain only after proving they fit the device address space; anything
  /// implausible is simply "no".
  [[nodiscard]] bool can_allocate_at_validated(
      xdr::Untrusted<DevPtr> ptr, xdr::Untrusted<std::uint64_t> size) const
      noexcept CRICKET_EXCLUDES(mu_);

  /// Frees an allocation; `ptr` must be the exact value returned by
  /// allocate. Double-free or a bogus pointer throws MemoryError.
  void free(DevPtr ptr) CRICKET_EXCLUDES(mu_);

  /// Resolves [ptr, ptr+len) to backing storage; the range must lie inside
  /// one live allocation (CUDA forbids cross-allocation arithmetic too).
  [[nodiscard]] std::span<std::uint8_t> resolve(DevPtr ptr, std::uint64_t len)
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::span<const std::uint8_t> resolve(DevPtr ptr,
                                                      std::uint64_t len) const
      CRICKET_EXCLUDES(mu_);

  /// Wiretaint seam: resolve with a wire-derived length. A length no
  /// allocation could ever satisfy (> capacity) is refused as MemoryError
  /// before resolve() runs, so the caller keeps its in-band error code.
  [[nodiscard]] std::span<std::uint8_t> resolve_validated(
      DevPtr ptr, xdr::Untrusted<std::uint64_t> len) CRICKET_EXCLUDES(mu_);

  void memset(DevPtr ptr, int value, std::uint64_t len) CRICKET_EXCLUDES(mu_);

  /// Wiretaint seam: memset with a wire-derived length (see
  /// resolve_validated for the refusal contract).
  void memset_validated(DevPtr ptr, int value,
                        xdr::Untrusted<std::uint64_t> len)
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t bytes_in_use() const noexcept
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t allocation_count() const noexcept
      CRICKET_EXCLUDES(mu_);

  /// Enumerates live allocations (pointer, size) — used by checkpoint.
  [[nodiscard]] std::vector<std::pair<DevPtr, std::uint64_t>> live() const
      CRICKET_EXCLUDES(mu_);

  static constexpr std::uint64_t kGranularity = 256;

 private:
  struct Allocation {
    std::uint64_t size;          // requested size
    std::uint64_t padded_size;   // rounded to granularity
    std::vector<std::uint8_t> storage;
  };

  // Both maps are keyed by device address. free_ maps start -> length of a
  // free hole; coalescing happens on free().
  mutable sim::Mutex mu_;
  std::map<DevPtr, Allocation> allocs_ CRICKET_GUARDED_BY(mu_);
  std::map<DevPtr, std::uint64_t> free_ CRICKET_GUARDED_BY(mu_);
  std::uint64_t capacity_;
  std::uint64_t in_use_ CRICKET_GUARDED_BY(mu_) = 0;
  DevPtr base_;
};

}  // namespace cricket::gpusim
