// Kernel registry and launch context.
//
// Real cubins carry machine code; our pseudo-ISA blobs cannot execute, so the
// simulator binds kernel *names* (from cubin metadata) to host callables
// registered in a KernelRegistry. A kernel implementation receives a
// LaunchContext giving it the launch geometry, a typed view of the parameter
// buffer (laid out exactly per the cubin's KernelParam metadata), access to
// device memory, a thread pool for real parallel execution, and cost-
// reporting hooks that feed the analytic timing model.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>

#include "fatbin/cubin.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/thread_pool.hpp"
#include "sim/annotations.hpp"

namespace cricket::gpusim {

class LaunchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return std::uint64_t{x} * y * z;
  }
  bool operator==(const Dim3&) const = default;
};

/// CUDA's per-dimension launch-geometry ceiling (grid.x on every supported
/// arch); anything above it can only be a hostile or corrupt wire value.
inline constexpr std::uint32_t kMaxLaunchDim = 0x7FFFFFFFu;
/// A100 maximum dynamic shared memory per block.
inline constexpr std::uint32_t kMaxSharedBytes = 164 * 1024;

/// Wiretaint seam for launch geometry: wire-derived dimensions leave the
/// taint domain only through a range proof. Failures surface as
/// LaunchError so callers keep the kLaunchFailure error-code contract a
/// zero-dimension launch has always had.
inline Dim3 validated_dim3(xdr::Untrusted<std::uint32_t> x,
                           xdr::Untrusted<std::uint32_t> y,
                           xdr::Untrusted<std::uint32_t> z,
                           const char* what = "launch geometry") {
  try {
    return Dim3{x.validate_range(1, kMaxLaunchDim, what),
                y.validate_range(1, kMaxLaunchDim, what),
                z.validate_range(1, kMaxLaunchDim, what)};
  } catch (const xdr::TaintError& e) {
    throw LaunchError(e.what());
  }
}

/// Wiretaint seam for the dynamic shared-memory request (same LaunchError
/// contract as validated_dim3).
inline std::uint32_t validated_shared_bytes(
    xdr::Untrusted<std::uint32_t> shared_bytes) {
  try {
    return shared_bytes.validate(kMaxSharedBytes, "dynamic shared memory");
  } catch (const xdr::TaintError& e) {
    throw LaunchError(e.what());
  }
}

/// Everything a simulated kernel sees while "executing".
class LaunchContext {
 public:
  LaunchContext(const fatbin::KernelDescriptor& desc, Dim3 grid, Dim3 block,
                std::uint32_t shared_bytes,
                std::span<const std::uint8_t> param_buffer,
                MemoryManager& memory, ThreadPool& pool,
                bool timing_only = false)
      : desc_(&desc),
        grid_(grid),
        block_(block),
        shared_bytes_(shared_bytes),
        params_(param_buffer),
        memory_(&memory),
        pool_(&pool),
        timing_only_(timing_only) {}

  /// When true, the kernel should skip its arithmetic but still charge its
  /// modelled cost — used by benchmark harnesses that repeat one verified
  /// computation many thousand times (the paper's 100 000-iteration loops)
  /// where only the virtual-time accounting matters.
  [[nodiscard]] bool timing_only() const noexcept { return timing_only_; }

  [[nodiscard]] Dim3 grid() const noexcept { return grid_; }
  [[nodiscard]] Dim3 block() const noexcept { return block_; }
  [[nodiscard]] std::uint32_t shared_bytes() const noexcept {
    return shared_bytes_;
  }
  [[nodiscard]] std::uint64_t total_threads() const noexcept {
    return grid_.count() * block_.count();
  }

  /// Typed read of parameter `i`; validates size against the descriptor.
  template <typename T>
  [[nodiscard]] T param(std::size_t i) const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (i >= desc_->params.size())
      throw LaunchError("parameter index out of range");
    if (desc_->params[i].size != sizeof(T))
      throw LaunchError("parameter size mismatch for '" + desc_->name + "'");
    const std::uint32_t off = desc_->param_offset(i);
    T v;
    std::memcpy(&v, params_.data() + off, sizeof(T));
    return v;
  }

  /// Reads parameter `i` as a device pointer (must be flagged is_pointer).
  [[nodiscard]] DevPtr ptr_param(std::size_t i) const {
    if (i >= desc_->params.size())
      throw LaunchError("parameter index out of range");
    if (!desc_->params[i].is_pointer)
      throw LaunchError("parameter is not a device pointer");
    return param<DevPtr>(i);
  }

  /// Resolves device memory for reading/writing.
  [[nodiscard]] std::span<std::uint8_t> mem(DevPtr ptr, std::uint64_t len) {
    return memory_->resolve(ptr, len);
  }
  template <typename T>
  [[nodiscard]] std::span<T> mem_as(DevPtr ptr, std::uint64_t count) {
    auto raw = memory_->resolve(ptr, count * sizeof(T));
    return {reinterpret_cast<T*>(raw.data()), count};
  }

  [[nodiscard]] ThreadPool& pool() noexcept { return *pool_; }

  /// Cost reporting: the timing model converts accumulated flops/bytes into
  /// kernel execution time on the simulated device.
  void charge_flops(double flops) noexcept { flops_ += flops; }
  void charge_dram_bytes(double bytes) noexcept { dram_bytes_ += bytes; }

  [[nodiscard]] double charged_flops() const noexcept { return flops_; }
  [[nodiscard]] double charged_dram_bytes() const noexcept {
    return dram_bytes_;
  }

 private:
  const fatbin::KernelDescriptor* desc_;
  Dim3 grid_, block_;
  std::uint32_t shared_bytes_;
  std::span<const std::uint8_t> params_;
  MemoryManager* memory_;
  ThreadPool* pool_;
  bool timing_only_ = false;
  double flops_ = 0;
  double dram_bytes_ = 0;
};

using KernelFunc = std::function<void(LaunchContext&)>;

/// Name -> implementation map. Thread-safe. One registry is typically shared
/// by all devices of a simulated GPU node.
class KernelRegistry {
 public:
  /// Registering the same name twice replaces the implementation (mirrors
  /// module reloading).
  void register_kernel(const std::string& name, KernelFunc fn)
      CRICKET_EXCLUDES(mu_);

  /// Returns the implementation or throws LaunchError (the moral equivalent
  /// of CUDA_ERROR_NOT_FOUND at cuModuleGetFunction time).
  [[nodiscard]] KernelFunc find(const std::string& name) const
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] bool contains(const std::string& name) const
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::size_t size() const CRICKET_EXCLUDES(mu_);

 private:
  mutable sim::Mutex mu_;
  std::map<std::string, KernelFunc> kernels_ CRICKET_GUARDED_BY(mu_);
};

}  // namespace cricket::gpusim
