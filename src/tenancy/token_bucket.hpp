// Token bucket over the virtual clock: the bytes/sec admission rate limit.
//
// Tokens are bytes. The bucket refills continuously at `rate` bytes per
// virtual second up to `burst` and is consumed by whole records at
// admission time. All arithmetic is integer (128-bit intermediate), so a
// replayed virtual-time schedule always reproduces the same admit/reject
// sequence — the property the scheduler-determinism tests pin down.
//
// Synchronization contract: externally synchronized. The bucket carries no
// lock of its own; every instance lives inside SessionManager::Tenant, in a
// map annotated CRICKET_GUARDED_BY(mu_), and is only touched with that lock
// held. Callers embedding a TokenBucket elsewhere must provide their own
// mutex (tests/mcheck_test.cpp ModelTenancy does exactly that, and the
// interleaving explorer verifies the guarded usage admits exactly once).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/sim_clock.hpp"

namespace cricket::tenancy {

class TokenBucket {
 public:
  /// rate == 0 disables the limit (try_take always succeeds).
  TokenBucket(std::uint64_t rate_bytes_per_sec, std::uint64_t burst_bytes)
      : rate_(rate_bytes_per_sec),
        burst_(std::max<std::uint64_t>(burst_bytes, 1)),
        tokens_(burst_) {}

  /// Takes `bytes` tokens if available at virtual time `now`; refuses (and
  /// takes nothing) otherwise. A request larger than the burst capacity can
  /// never succeed and is refused outright rather than stalling forever.
  [[nodiscard]] bool try_take(std::uint64_t bytes, sim::Nanos now) {
    if (rate_ == 0) return true;
    refill(now);
    if (bytes > tokens_) return false;
    tokens_ -= bytes;
    return true;
  }

  [[nodiscard]] std::uint64_t available(sim::Nanos now) {
    if (rate_ == 0) return ~std::uint64_t{0};
    refill(now);
    return tokens_;
  }

  /// Migration support: the current token level, refilled to `now` first so
  /// the exported value is what the tenant would actually have. Paired with
  /// set_tokens on the target so moving a tenant neither refills nor drains
  /// its bucket.
  [[nodiscard]] std::uint64_t tokens(sim::Nanos now) {
    refill(now);
    return tokens_;
  }

  /// Seeds the level (clamped to burst) and anchors refill at `now` — the
  /// source and target run separate virtual clocks, so importing the source
  /// refill timestamp would stall or inflate the refill stream.
  void set_tokens(std::uint64_t tokens, sim::Nanos now) noexcept {
    tokens_ = std::min(tokens, burst_);
    last_refill_ = now;
  }

 private:
  void refill(sim::Nanos now) {
    if (now <= last_refill_) return;
    const auto delta = static_cast<std::uint64_t>(now - last_refill_);
    // bytes = delta_ns * rate / 1e9, exact in 128-bit.
    const unsigned __int128 added =
        static_cast<unsigned __int128>(delta) * rate_ / sim::kSecond;
    if (added > 0) {
      tokens_ = static_cast<std::uint64_t>(
          std::min<unsigned __int128>(burst_, tokens_ + added));
      // Only advance past time actually converted into tokens, so sub-token
      // remainders accumulate instead of being lost to rounding.
      last_refill_ += static_cast<sim::Nanos>(added * sim::kSecond / rate_);
    }
  }

  std::uint64_t rate_;
  std::uint64_t burst_;
  std::uint64_t tokens_;
  sim::Nanos last_refill_ = 0;
};

}  // namespace cricket::tenancy
