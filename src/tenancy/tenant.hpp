// Multi-tenant vocabulary: identities, quotas, per-tenant accounting.
//
// The paper's closing argument (§5) is that unikernels deploy in large
// numbers, so one Cricket server must share its GPUs across many guests.
// A tenant is the unit of isolation: one customer/VM-image identity that
// may open several sessions (connections), owns a quota envelope enforced
// at admission, and competes for device time under the two-level fair-share
// scheduler (src/cricket/scheduler.hpp) with a configurable weight and
// priority.
#pragma once

#include <cstdint>
#include <string>

namespace cricket::tenancy {

/// Opaque tenant identity, assigned at registration. 0 is never a valid
/// tenant.
using TenantId = std::uint64_t;
inline constexpr TenantId kInvalidTenant = 0;

/// Why admission refused a call. The quota reasons mirror
/// rpc::QuotaReason one-to-one; kUnknownTenant precedes quota checks and
/// maps to an RFC 5531 auth denial instead of the quota status.
enum class RejectReason : std::uint32_t {
  kUnknownTenant = 0,
  kRateLimited = 1,
  kOutstandingCalls = 2,
  kDeviceMemory = 3,
  kSessionLimit = 4,
  /// The tenant is frozen while its sessions live-migrate to another
  /// server; maps to the retryable AcceptStat::kMigrating reply.
  kMigrating = 5,
};
inline constexpr std::uint32_t kRejectReasonCount = 6;

[[nodiscard]] constexpr const char* reject_reason_name(
    RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kUnknownTenant: return "unknown_tenant";
    case RejectReason::kRateLimited: return "rate_limited";
    case RejectReason::kOutstandingCalls: return "outstanding_calls";
    case RejectReason::kDeviceMemory: return "device_memory";
    case RejectReason::kSessionLimit: return "session_limit";
    case RejectReason::kMigrating: return "migrating";
  }
  return "unknown";
}

/// Per-tenant quota envelope, enforced at admission (before argument
/// decode) and at allocation time. Zero means "unlimited" for the rate
/// limit only; the other limits are hard caps.
struct TenantQuota {
  /// Total device memory the tenant's live allocations may hold.
  std::uint64_t device_mem_bytes = 4ull << 30;
  /// Decoded-but-unreplied calls across all of the tenant's sessions.
  std::uint32_t max_outstanding_calls = 64;
  /// Ingress wire bytes per *virtual* second (token bucket); 0 = unlimited.
  std::uint64_t bytes_per_sec = 0;
  /// Token-bucket burst capacity.
  std::uint64_t burst_bytes = 1ull << 20;
  /// Concurrent sessions (connections).
  std::uint32_t max_sessions = 16;
};

/// Registration-time description of a tenant.
struct TenantSpec {
  /// AUTH_SYS machinename the tenant's clients present as credential.
  std::string name;
  /// Fair-share weight: device time is apportioned proportionally to
  /// weight among contending tenants of the same priority.
  std::uint32_t weight = 1;
  /// Priority class: a tenant never waits for lower-priority tenants.
  std::uint32_t priority = 0;
  TenantQuota quota;
};

/// Point-in-time accounting snapshot for one tenant.
struct TenantStats {
  std::uint64_t calls_admitted = 0;
  std::uint64_t calls_rejected = 0;
  std::uint64_t rejected_by_reason[kRejectReasonCount] = {};
  /// Device time attributed to the tenant (kernel execution + modelled
  /// large-transfer time), virtual ns.
  std::uint64_t device_ns = 0;
  std::uint64_t mem_used_bytes = 0;
  std::uint64_t mem_peak_bytes = 0;
  std::uint32_t open_sessions = 0;
  std::uint32_t outstanding_calls = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
};

}  // namespace cricket::tenancy
