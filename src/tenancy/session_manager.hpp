// SessionManager: tenant registry, credential authentication, device
// sharding, and quota enforcement at admission.
//
// One SessionManager serves one CricketServer. Tenants register with a
// name (the AUTH_SYS machinename their clients present), a fair-share
// weight/priority, and a quota envelope. Each incoming connection becomes
// a session bound to exactly one tenant at its first call; per-call
// admission (outstanding-call cap + bytes/sec token bucket) then runs on
// the connection's reader thread before any argument decode, and
// rejections are answered with the typed kQuotaExceeded reply — the
// connection always survives.
//
// Sharding: a tenant's sessions land on one simulated gpusim device chosen
// by a consistent hash of the TenantId, so a tenant's allocations and
// kernels stay device-local and per-device accounting stays meaningful.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "rpc/rpc_msg.hpp"
#include "sim/annotations.hpp"
#include "sim/sim_clock.hpp"
#include "tenancy/tenant.hpp"
#include "xdr/taint.hpp"
#include "tenancy/token_bucket.hpp"

namespace cricket::tenancy {

/// Admission verdict for one call/session.
struct Admission {
  bool admitted = true;
  RejectReason reason = RejectReason::kUnknownTenant;

  static Admission ok() { return {true, RejectReason::kUnknownTenant}; }
  static Admission reject(RejectReason r) { return {false, r}; }
};

/// Portable dynamic state of one tenant, for live migration: the quota spec
/// plus the accounting that must survive the move. Outstanding calls are
/// deliberately absent — a migration quiesces (drains) the tenant before
/// exporting, so there is nothing in flight to carry. Live open_sessions are
/// also absent: sessions re-open on the target as clients reconnect.
struct TenantExport {
  TenantSpec spec;
  /// Token-bucket level at export time (anti-gaming: a migration must not
  /// hand the tenant a freshly refilled bucket).
  std::uint64_t bucket_tokens = ~0ull;
  std::uint64_t mem_used_bytes = 0;
  std::uint64_t mem_peak_bytes = 0;
  std::uint64_t calls_admitted = 0;
  std::uint64_t calls_rejected = 0;
  std::uint64_t device_ns = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
};

struct SessionManagerOptions {
  /// Simulated gpusim devices the server exposes; sessions shard across
  /// them consistently by tenant.
  std::uint32_t device_count = 1;
  /// When non-empty, credentials that match no registered tenant (including
  /// AUTH_NONE) are admitted as this tenant — it must itself be registered.
  /// Empty = unknown credentials are rejected with an auth denial.
  std::string default_tenant;
};

class SessionManager {
 public:
  explicit SessionManager(sim::SimClock& clock,
                          SessionManagerOptions options = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers (or re-configures) a tenant keyed by spec.name. Returns its
  /// id; registering an existing name updates weight/priority/quota in
  /// place and keeps the id and accounting.
  TenantId register_tenant(const TenantSpec& spec) CRICKET_EXCLUDES(mu_);

  /// Credential → tenant: AUTH_SYS machinename lookup, with the configured
  /// default tenant as fallback. nullopt = reject with an auth denial.
  [[nodiscard]] std::optional<TenantId> authenticate(
      const rpc::OpaqueAuth& cred) const CRICKET_EXCLUDES(mu_);

  /// Tenant → device shard: a migration pin when one is set (see
  /// pin_shard), otherwise the consistent hash (FNV-1a of the id mod
  /// device_count).
  [[nodiscard]] std::uint32_t shard_device(TenantId tenant) const
      CRICKET_EXCLUDES(mu_);

  /// Pins a tenant to a specific device, overriding the consistent hash.
  /// Migration uses this on the target: the moved tenant lands on a
  /// reserved pristine device so restored allocation addresses and handle
  /// ids can never collide with residents.
  void pin_shard(TenantId tenant, std::uint32_t device) CRICKET_EXCLUDES(mu_);

  /// Session lifecycle. open_session enforces quota.max_sessions.
  [[nodiscard]] Admission open_session(TenantId tenant, std::uint64_t session)
      CRICKET_EXCLUDES(mu_);
  void close_session(TenantId tenant, std::uint64_t session)
      CRICKET_EXCLUDES(mu_);

  /// Per-call admission: outstanding-call cap, then the bytes/sec token
  /// bucket charged with the record's wire size. An admitted call must be
  /// balanced by complete_call once its reply exists.
  [[nodiscard]] Admission admit_call(TenantId tenant, std::uint64_t wire_bytes)
      CRICKET_EXCLUDES(mu_);
  void complete_call(TenantId tenant) CRICKET_EXCLUDES(mu_);

  /// Migration freeze. While a tenant is draining, admit_call and
  /// open_session refuse everything with RejectReason::kMigrating (the
  /// typed, always-retryable reply) and no new work enters; wait_quiesced
  /// then blocks until the calls admitted before the freeze have all been
  /// balanced by complete_call. end_drain lifts the freeze (abort path —
  /// a committed migration instead flips the redirect while still frozen).
  void begin_drain(TenantId tenant) CRICKET_EXCLUDES(mu_);
  void end_drain(TenantId tenant) CRICKET_EXCLUDES(mu_);
  [[nodiscard]] bool draining(TenantId tenant) const CRICKET_EXCLUDES(mu_);
  /// True when outstanding calls hit zero before the timeout.
  [[nodiscard]] bool wait_quiesced(TenantId tenant,
                                   std::chrono::nanoseconds timeout)
      CRICKET_EXCLUDES(mu_);

  /// Snapshots a tenant's migratable state (see TenantExport). Refills the
  /// token bucket to "now" first, hence non-const. nullopt for unknown ids.
  [[nodiscard]] std::optional<TenantExport> export_tenant(TenantId tenant)
      CRICKET_EXCLUDES(mu_);
  /// Registers (or re-configures) the tenant from an export and seeds its
  /// bucket level and accounting. Returns the local tenant id (ids are
  /// per-manager; only the name is stable across servers).
  TenantId import_tenant(const TenantExport& exp) CRICKET_EXCLUDES(mu_);

  /// Device-memory accounting: charge at cudaMalloc, release at cudaFree /
  /// session teardown. try_charge refuses (and charges nothing) past quota.
  [[nodiscard]] bool try_charge_memory(TenantId tenant, std::uint64_t bytes)
      CRICKET_EXCLUDES(mu_);
  /// Wiretaint seam: charge a wire-derived byte count. The value leaves
  /// the taint domain only after the (saturating) quota check admits it;
  /// on success `charged` holds the validated plain count for bookkeeping.
  [[nodiscard]] bool try_charge_memory(TenantId tenant,
                                       xdr::Untrusted<std::uint64_t> bytes,
                                       std::uint64_t& charged)
      CRICKET_EXCLUDES(mu_);
  void release_memory(TenantId tenant, std::uint64_t bytes)
      CRICKET_EXCLUDES(mu_);
  /// True when the tenant's live allocations already reach quota — lets
  /// admission refuse a cudaMalloc before decode.
  [[nodiscard]] bool memory_exhausted(TenantId tenant) const
      CRICKET_EXCLUDES(mu_);

  /// Attributes device time (kernel execution, modelled large-copy time) to
  /// the tenant: stats + cricket_tenant_device_ns_total{tenant=...}.
  void note_device_time(TenantId tenant, sim::Nanos ns) CRICKET_EXCLUDES(mu_);
  /// Per-tenant launch latency (admission wait + execution), virtual ns.
  void observe_launch_latency(TenantId tenant, sim::Nanos ns)
      CRICKET_EXCLUDES(mu_);

  /// Counts a rejection that happened outside admit_call/open_session (auth
  /// failures, malloc-time memory refusals), so the
  /// cricket_tenant_admission_rejected_total{reason} series stays complete.
  void count_rejection(TenantId tenant, RejectReason reason)
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] std::optional<TenantSpec> spec(TenantId tenant) const
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::optional<TenantId> find(const std::string& name) const
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] TenantStats stats(TenantId tenant) const CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::uint32_t device_count() const noexcept {
    return options_.device_count;
  }

 private:
  struct Tenant {
    TenantSpec spec;
    TokenBucket bucket{0, 1};  // reconfigured at registration
    TenantStats stats;
    /// Migration freeze flag (see begin_drain).
    bool draining = false;
    /// Migration shard pin; ~0u = unpinned (use the consistent hash).
    std::uint32_t pinned_device = ~0u;
    /// Cached instrument references (stable for the registry's lifetime).
    obs::Counter* device_ns_total = nullptr;
    obs::Histogram* launch_latency = nullptr;
  };

  Tenant* find_locked(TenantId tenant) CRICKET_REQUIRES(mu_);
  const Tenant* find_locked(TenantId tenant) const CRICKET_REQUIRES(mu_);
  void count_rejection_locked(Tenant* t, RejectReason reason)
      CRICKET_REQUIRES(mu_);

  sim::SimClock* clock_;
  SessionManagerOptions options_;
  mutable sim::Mutex mu_;
  /// Signalled by complete_call whenever a draining tenant's outstanding
  /// count drops; wait_quiesced sleeps on it.
  mutable sim::CondVar quiesce_cv_;
  std::map<TenantId, Tenant> tenants_ CRICKET_GUARDED_BY(mu_);
  std::map<std::string, TenantId> by_name_ CRICKET_GUARDED_BY(mu_);
  TenantId next_id_ CRICKET_GUARDED_BY(mu_) = 1;
  /// Global per-reason rejection counters, resolved once at construction.
  obs::Counter* rejected_[kRejectReasonCount] = {};
};

}  // namespace cricket::tenancy
