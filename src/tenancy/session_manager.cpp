#include "tenancy/session_manager.hpp"

#include <algorithm>

namespace cricket::tenancy {

namespace {

/// FNV-1a over the tenant id: the consistent shard hash. Deliberately
/// independent of registration order so adding tenants never migrates
/// existing ones between devices.
std::uint64_t shard_hash(TenantId tenant) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(tenant >> (8 * i));
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

SessionManager::SessionManager(sim::SimClock& clock,
                               SessionManagerOptions options)
    : clock_(&clock), options_(std::move(options)) {
  if (options_.device_count == 0) options_.device_count = 1;
  for (std::uint32_t r = 0; r < kRejectReasonCount; ++r) {
    rejected_[r] = &obs::Registry::global().counter(
        "cricket_tenant_admission_rejected_total",
        {{"reason", reject_reason_name(static_cast<RejectReason>(r))}},
        "Calls/sessions rejected at tenant admission, by reason");
  }
}

TenantId SessionManager::register_tenant(const TenantSpec& spec) {
  sim::MutexLock lock(mu_);
  const auto named = by_name_.find(spec.name);
  if (named != by_name_.end()) {
    Tenant& t = tenants_.at(named->second);
    t.spec = spec;
    t.bucket = TokenBucket(spec.quota.bytes_per_sec, spec.quota.burst_bytes);
    return named->second;
  }
  const TenantId id = next_id_++;
  Tenant t;
  t.spec = spec;
  t.bucket = TokenBucket(spec.quota.bytes_per_sec, spec.quota.burst_bytes);
  t.device_ns_total = &obs::Registry::global().counter(
      "cricket_tenant_device_ns_total", {{"tenant", spec.name}},
      "Device time attributed to the tenant (virtual ns)");
  t.launch_latency = &obs::Registry::global().histogram(
      "cricket_tenant_launch_latency_ns", {{"tenant", spec.name}},
      "Per-tenant kernel launch latency: admission wait + execution "
      "(virtual ns)");
  tenants_.emplace(id, std::move(t));
  by_name_.emplace(spec.name, id);
  return id;
}

std::optional<TenantId> SessionManager::authenticate(
    const rpc::OpaqueAuth& cred) const {
  std::string name;
  if (cred.flavor == rpc::AuthFlavor::kSys) {
    try {
      name = rpc::AuthSysParms::from_opaque(cred).machinename;
    } catch (const rpc::RpcFormatError&) {
      name.clear();  // malformed AUTH_SYS body: treat as anonymous
    } catch (const xdr::XdrError&) {
      name.clear();
    }
  }
  sim::MutexLock lock(mu_);
  if (!name.empty()) {
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
  }
  if (!options_.default_tenant.empty()) {
    const auto it = by_name_.find(options_.default_tenant);
    if (it != by_name_.end()) return it->second;
  }
  return std::nullopt;
}

std::uint32_t SessionManager::shard_device(TenantId tenant) const {
  sim::MutexLock lock(mu_);
  const Tenant* t = find_locked(tenant);
  if (t != nullptr && t->pinned_device != ~0u)
    return t->pinned_device % options_.device_count;
  return static_cast<std::uint32_t>(shard_hash(tenant) %
                                    options_.device_count);
}

void SessionManager::pin_shard(TenantId tenant, std::uint32_t device) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t != nullptr) t->pinned_device = device;
}

SessionManager::Tenant* SessionManager::find_locked(TenantId tenant) {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

const SessionManager::Tenant* SessionManager::find_locked(
    TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

void SessionManager::count_rejection_locked(Tenant* t, RejectReason reason) {
  rejected_[static_cast<std::uint32_t>(reason)]->inc();
  if (t != nullptr) {
    ++t->stats.calls_rejected;
    ++t->stats.rejected_by_reason[static_cast<std::uint32_t>(reason)];
  }
}

Admission SessionManager::open_session(TenantId tenant, std::uint64_t) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) {
    count_rejection_locked(nullptr, RejectReason::kUnknownTenant);
    return Admission::reject(RejectReason::kUnknownTenant);
  }
  if (t->draining) {
    count_rejection_locked(t, RejectReason::kMigrating);
    return Admission::reject(RejectReason::kMigrating);
  }
  if (t->stats.open_sessions >= t->spec.quota.max_sessions) {
    count_rejection_locked(t, RejectReason::kSessionLimit);
    return Admission::reject(RejectReason::kSessionLimit);
  }
  ++t->stats.open_sessions;
  ++t->stats.sessions_opened;
  return Admission::ok();
}

void SessionManager::close_session(TenantId tenant, std::uint64_t) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr || t->stats.open_sessions == 0) return;
  --t->stats.open_sessions;
  ++t->stats.sessions_closed;
}

Admission SessionManager::admit_call(TenantId tenant,
                                     std::uint64_t wire_bytes) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) {
    count_rejection_locked(nullptr, RejectReason::kUnknownTenant);
    return Admission::reject(RejectReason::kUnknownTenant);
  }
  if (t->draining) {
    count_rejection_locked(t, RejectReason::kMigrating);
    return Admission::reject(RejectReason::kMigrating);
  }
  if (t->stats.outstanding_calls >= t->spec.quota.max_outstanding_calls) {
    count_rejection_locked(t, RejectReason::kOutstandingCalls);
    return Admission::reject(RejectReason::kOutstandingCalls);
  }
  if (!t->bucket.try_take(wire_bytes, clock_->now())) {
    count_rejection_locked(t, RejectReason::kRateLimited);
    return Admission::reject(RejectReason::kRateLimited);
  }
  ++t->stats.outstanding_calls;
  ++t->stats.calls_admitted;
  return Admission::ok();
}

void SessionManager::complete_call(TenantId tenant) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t != nullptr && t->stats.outstanding_calls > 0) {
    --t->stats.outstanding_calls;
    if (t->draining) quiesce_cv_.notify_all();
  }
}

void SessionManager::begin_drain(TenantId tenant) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t != nullptr) t->draining = true;
}

void SessionManager::end_drain(TenantId tenant) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t != nullptr) t->draining = false;
}

bool SessionManager::draining(TenantId tenant) const {
  sim::MutexLock lock(mu_);
  const Tenant* t = find_locked(tenant);
  return t != nullptr && t->draining;
}

bool SessionManager::wait_quiesced(TenantId tenant,
                                   std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  sim::MutexLock lock(mu_);
  for (;;) {
    const Tenant* t = find_locked(tenant);
    if (t == nullptr) return false;
    if (t->stats.outstanding_calls == 0) return true;
    if (quiesce_cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      const Tenant* again = find_locked(tenant);
      return again != nullptr && again->stats.outstanding_calls == 0;
    }
  }
}

std::optional<TenantExport> SessionManager::export_tenant(TenantId tenant) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return std::nullopt;
  TenantExport exp;
  exp.spec = t->spec;
  exp.bucket_tokens = t->bucket.tokens(clock_->now());
  exp.mem_used_bytes = t->stats.mem_used_bytes;
  exp.mem_peak_bytes = t->stats.mem_peak_bytes;
  exp.calls_admitted = t->stats.calls_admitted;
  exp.calls_rejected = t->stats.calls_rejected;
  exp.device_ns = t->stats.device_ns;
  exp.sessions_opened = t->stats.sessions_opened;
  exp.sessions_closed = t->stats.sessions_closed;
  return exp;
}

TenantId SessionManager::import_tenant(const TenantExport& exp) {
  const TenantId id = register_tenant(exp.spec);
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(id);
  if (t == nullptr) return id;  // unreachable: register_tenant just made it
  t->bucket.set_tokens(exp.bucket_tokens, clock_->now());
  t->stats.mem_used_bytes = exp.mem_used_bytes;
  t->stats.mem_peak_bytes = std::max(exp.mem_peak_bytes, exp.mem_used_bytes);
  t->stats.calls_admitted = exp.calls_admitted;
  t->stats.calls_rejected = exp.calls_rejected;
  t->stats.device_ns = exp.device_ns;
  t->stats.sessions_opened = exp.sessions_opened;
  t->stats.sessions_closed = exp.sessions_closed;
  return id;
}

bool SessionManager::try_charge_memory(TenantId tenant, std::uint64_t bytes) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return false;
  // Saturating form of `used + bytes > quota`: a request near UINT64_MAX
  // must not wrap the sum below quota and mint unlimited memory.
  const auto would_use =
      xdr::Untrusted<std::uint64_t>(t->stats.mem_used_bytes) + bytes;
  if (would_use > t->spec.quota.device_mem_bytes) {
    count_rejection_locked(t, RejectReason::kDeviceMemory);
    return false;
  }
  t->stats.mem_used_bytes += bytes;
  t->stats.mem_peak_bytes =
      std::max(t->stats.mem_peak_bytes, t->stats.mem_used_bytes);
  return true;
}

bool SessionManager::try_charge_memory(TenantId tenant,
                                       xdr::Untrusted<std::uint64_t> bytes,
                                       std::uint64_t& charged) {
  // The admitted count is provably <= the tenant's quota, so unwrapping
  // through that bound is the validation.
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return false;
  const std::uint64_t quota = t->spec.quota.device_mem_bytes;
  std::uint64_t plain = 0;
  // `used > quota` can happen transiently when a re-configure shrank the
  // quota under live allocations; refuse new charges outright then.
  if (t->stats.mem_used_bytes > quota || !bytes.try_validate(quota, plain) ||
      plain > quota - t->stats.mem_used_bytes) {
    count_rejection_locked(t, RejectReason::kDeviceMemory);
    return false;
  }
  t->stats.mem_used_bytes += plain;
  t->stats.mem_peak_bytes =
      std::max(t->stats.mem_peak_bytes, t->stats.mem_used_bytes);
  charged = plain;
  return true;
}

void SessionManager::release_memory(TenantId tenant, std::uint64_t bytes) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return;
  t->stats.mem_used_bytes -= std::min(t->stats.mem_used_bytes, bytes);
}

bool SessionManager::memory_exhausted(TenantId tenant) const {
  sim::MutexLock lock(mu_);
  const Tenant* t = find_locked(tenant);
  return t != nullptr &&
         t->stats.mem_used_bytes >= t->spec.quota.device_mem_bytes;
}

void SessionManager::note_device_time(TenantId tenant, sim::Nanos ns) {
  if (ns <= 0) return;
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return;
  t->stats.device_ns += static_cast<std::uint64_t>(ns);
  t->device_ns_total->inc(static_cast<std::uint64_t>(ns));
}

void SessionManager::observe_launch_latency(TenantId tenant, sim::Nanos ns) {
  sim::MutexLock lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return;
  t->launch_latency->observe(
      static_cast<std::uint64_t>(std::max<sim::Nanos>(ns, 0)));
}

void SessionManager::count_rejection(TenantId tenant, RejectReason reason) {
  sim::MutexLock lock(mu_);
  count_rejection_locked(find_locked(tenant), reason);
}

std::optional<TenantSpec> SessionManager::spec(TenantId tenant) const {
  sim::MutexLock lock(mu_);
  const Tenant* t = find_locked(tenant);
  if (t == nullptr) return std::nullopt;
  return t->spec;
}

std::optional<TenantId> SessionManager::find(const std::string& name) const {
  sim::MutexLock lock(mu_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

TenantStats SessionManager::stats(TenantId tenant) const {
  sim::MutexLock lock(mu_);
  const Tenant* t = find_locked(tenant);
  return t == nullptr ? TenantStats{} : t->stats;
}

}  // namespace cricket::tenancy
