// Port of the CUDA Samples `histogram` application (paper §4.1, Fig. 5c).
//
// "The histogram application calculates the histogram of a randomly
// initialized array of data." Paper configuration: ~80 033 API calls and
// 64 MiB of transfers. This is the workload where the C and Rust clients
// diverge most (Rust ≈37.6 % faster): the C samples' slower input RNG and
// the per-launch compatibility logic dominate because the kernels are
// short-running.
#pragma once

#include "cudart/api.hpp"
#include "workloads/common.hpp"

namespace cricket::workloads {

struct HistogramConfig {
  std::uint64_t data_bytes = 64ull << 20;  // uploaded once (the 64 MiB)
  std::uint32_t iterations = 40'000;       // 2 kernels per iteration
  std::uint32_t partial_blocks = 240;
  bool verify = true;
};

[[nodiscard]] WorkloadReport run_histogram(cuda::CudaApi& api,
                                           sim::SimClock& clock,
                                           const env::ClientFlavor& flavor,
                                           const HistogramConfig& config);

}  // namespace cricket::workloads
