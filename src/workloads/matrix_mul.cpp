#include "workloads/matrix_mul.hpp"

#include <cmath>

#include "cudart/raii.hpp"
#include "workloads/kernels.hpp"

namespace cricket::workloads {

WorkloadReport run_matrix_mul(cuda::CudaApi& api, sim::SimClock& clock,
                              const env::ClientFlavor& flavor,
                              const MatrixMulConfig& config) {
  WorkloadReport report;
  report.name = "matrixMul";
  const sim::SimStopwatch total(clock);
  std::uint64_t calls = 0;

  // ---- setup / input generation (counted as init) ----
  const sim::SimStopwatch init(clock);
  int dev_count = 0;
  cuda::check(api.get_device_count(dev_count));
  ++calls;
  cuda::check(api.set_device(0));
  ++calls;
  cuda::DeviceInfo info;
  cuda::check(api.get_device_properties(info, 0));
  ++calls;

  const std::size_t nA = std::size_t{config.hA} * config.wA;
  const std::size_t nB = std::size_t{config.wA} * config.wB;
  const std::size_t nC = std::size_t{config.hA} * config.wB;
  std::vector<float> A(nA), B(nB);
  fill_random_floats(A, flavor, clock, 0xA);
  fill_random_floats(B, flavor, clock, 0xB);

  cuda::Module mod(api, sample_cubin());
  ++calls;
  const auto fn = mod.function(kMatrixMulKernel);
  ++calls;

  cuda::DeviceBuffer dA(api, nA * 4), dB(api, nB * 4), dC(api, nC * 4);
  calls += 3;
  dA.upload_values<float>(A);
  dB.upload_values<float>(B);
  calls += 2;
  report.bytes_to_device = (nA + nB) * 4;
  report.init_ns = init.elapsed();

  // ---- the measured loop: one kernel launch per iteration ----
  const sim::SimStopwatch exec(clock);
  cuda::ParamPacker params;
  params.add_ptr(dC).add_ptr(dA).add_ptr(dB).add(config.wA).add(config.wB);
  const cuda::Dim3 grid{config.wB / 32, config.hA / 32, 1};
  const cuda::Dim3 block{32, 32, 1};
  for (std::uint32_t it = 0; it < config.iterations; ++it) {
    cuda::check(api.launch_kernel(fn, grid, block, 2 * 32 * 32 * 4,
                                  gpusim::kDefaultStream, params.bytes()),
                "matrixMul launch");
    ++calls;
    ++report.kernel_launches;
  }
  cuda::check(api.device_synchronize());
  ++calls;

  const auto C = dC.download_values<float>(nC);
  ++calls;
  report.bytes_from_device = nC * 4;
  report.exec_ns = exec.elapsed();

  // ---- verification against a CPU reference ----
  if (config.verify) {
    double max_err = 0;
    for (std::uint32_t i = 0; i < config.hA; i += 37) {       // sampled rows
      for (std::uint32_t j = 0; j < config.wB; j += 41) {     // sampled cols
        float ref = 0.0f;
        for (std::uint32_t k = 0; k < config.wA; ++k)
          ref += A[std::size_t{i} * config.wA + k] *
                 B[std::size_t{k} * config.wB + j];
        max_err = std::max(
            max_err, std::fabs(static_cast<double>(
                         C[std::size_t{i} * config.wB + j] - ref)));
      }
    }
    report.verified = max_err < 1e-2;
  }

  // Buffers/module release below still goes through the API.
  calls += 4;  // dA, dB, dC frees + module unload (RAII, at scope exit)
  report.api_calls = calls;
  report.total_ns = total.elapsed();
  return report;
}

}  // namespace cricket::workloads
