#include "workloads/kernels.hpp"

#include "fatbin/fatbin.hpp"
#include "fatbin/lz.hpp"

namespace cricket::workloads {
namespace {

using gpusim::LaunchContext;

/// C = A(hA x wA) * B(wA x wB), row-major (as in the CUDA sample).
/// Params: C, A, B, wA, wB; geometry carries hA via grid.y * block.y.
void matrix_mul_kernel(LaunchContext& ctx) {
  const auto c = ctx.ptr_param(0);
  const auto a = ctx.ptr_param(1);
  const auto b = ctx.ptr_param(2);
  const auto wa = ctx.param<std::uint32_t>(3);
  const auto wb = ctx.param<std::uint32_t>(4);
  const std::uint64_t ha = static_cast<std::uint64_t>(ctx.grid().y) *
                           ctx.block().y;

  if (!ctx.timing_only()) {
    auto C = ctx.mem_as<float>(c, ha * wb);
    auto A = ctx.mem_as<float>(a, ha * wa);
    auto B = ctx.mem_as<float>(b, static_cast<std::uint64_t>(wa) * wb);
    ctx.pool().parallel_for_chunks(ha, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::uint32_t j = 0; j < wb; ++j) {
          float sum = 0.0f;
          for (std::uint32_t k = 0; k < wa; ++k)
            sum += A[i * wa + k] * B[static_cast<std::size_t>(k) * wb + j];
          C[i * wb + j] = sum;
        }
      }
    });
  }
  ctx.charge_flops(2.0 * static_cast<double>(ha) * wa * wb);
  ctx.charge_dram_bytes(
      4.0 * (static_cast<double>(ha) * wa + static_cast<double>(wa) * wb +
             static_cast<double>(ha) * wb));
}

/// 64-bin byte histogram over `n` bytes into per-block partial histograms.
/// Params: partials, data, n. Partial h of block g at partials[g*64 + bin].
void histogram64_kernel(LaunchContext& ctx) {
  const auto partials = ctx.ptr_param(0);
  const auto data = ctx.ptr_param(1);
  const auto n = ctx.param<std::uint32_t>(2);
  const std::uint32_t blocks = ctx.grid().x;

  if (!ctx.timing_only()) {
    auto out = ctx.mem_as<std::uint32_t>(partials,
                                         static_cast<std::uint64_t>(blocks) *
                                             64);
    auto in = ctx.mem(data, n);
    std::fill(out.begin(), out.end(), 0u);
    const std::uint32_t per_block = (n + blocks - 1) / blocks;
    ctx.pool().parallel_for_chunks(blocks, [&](std::size_t g0, std::size_t g1) {
      for (std::size_t g = g0; g < g1; ++g) {
        const std::size_t begin = g * per_block;
        const std::size_t end =
            std::min<std::size_t>(n, begin + per_block);
        std::uint32_t* h = out.data() + g * 64;
        for (std::size_t i = begin; i < end; ++i) ++h[in[i] >> 2];
      }
    });
  }
  ctx.charge_flops(static_cast<double>(n));
  ctx.charge_dram_bytes(static_cast<double>(n) + 64.0 * 4 * blocks);
}

/// Reduces per-block partials into the final 64-bin histogram.
/// Params: result, partials, block_count.
void merge_histogram64_kernel(LaunchContext& ctx) {
  const auto result = ctx.ptr_param(0);
  const auto partials = ctx.ptr_param(1);
  const auto blocks = ctx.param<std::uint32_t>(2);

  if (!ctx.timing_only()) {
    auto out = ctx.mem_as<std::uint32_t>(result, 64);
    auto in = ctx.mem_as<std::uint32_t>(
        partials, static_cast<std::uint64_t>(blocks) * 64);
    for (int bin = 0; bin < 64; ++bin) {
      std::uint32_t sum = 0;
      for (std::uint32_t g = 0; g < blocks; ++g)
        sum += in[static_cast<std::size_t>(g) * 64 +
                  static_cast<std::size_t>(bin)];
      out[static_cast<std::size_t>(bin)] = sum;
    }
  }
  ctx.charge_flops(64.0 * blocks);
  ctx.charge_dram_bytes(64.0 * 4 * (blocks + 1));
}

/// c[i] = a[i] + b[i]. Params: c, a, b, n.
void vector_add_kernel(LaunchContext& ctx) {
  const auto c = ctx.ptr_param(0);
  const auto a = ctx.ptr_param(1);
  const auto b = ctx.ptr_param(2);
  const auto n = ctx.param<std::uint32_t>(3);
  if (!ctx.timing_only()) {
    auto C = ctx.mem_as<float>(c, n);
    auto A = ctx.mem_as<float>(a, n);
    auto B = ctx.mem_as<float>(b, n);
    for (std::uint32_t i = 0; i < n; ++i) C[i] = A[i] + B[i];
  }
  ctx.charge_flops(static_cast<double>(n));
  ctx.charge_dram_bytes(12.0 * n);
}

fatbin::KernelParam ptr_param() {
  return {.size = 8, .align = 8, .is_pointer = true};
}
fatbin::KernelParam u32_param() {
  return {.size = 4, .align = 4, .is_pointer = false};
}

fatbin::CubinImage build_sample_image() {
  fatbin::CubinImage img;
  img.sm_arch = 61;

  fatbin::KernelDescriptor mm;
  mm.name = kMatrixMulKernel;
  mm.params = {ptr_param(), ptr_param(), ptr_param(), u32_param(),
               u32_param()};
  mm.static_shared_bytes = 2 * 32 * 32 * 4;  // the sample's two tiles
  img.kernels.push_back(mm);

  fatbin::KernelDescriptor h;
  h.name = kHistogramKernel;
  h.params = {ptr_param(), ptr_param(), u32_param()};
  img.kernels.push_back(h);

  fatbin::KernelDescriptor m;
  m.name = kMergeHistogramKernel;
  m.params = {ptr_param(), ptr_param(), u32_param()};
  img.kernels.push_back(m);

  fatbin::KernelDescriptor va;
  va.name = kVectorAddKernel;
  va.params = {ptr_param(), ptr_param(), ptr_param(), u32_param()};
  img.kernels.push_back(va);

  img.code = fatbin::make_pseudo_isa(16384, 0xC0DE);
  return img;
}

}  // namespace

void register_sample_kernels(gpusim::KernelRegistry& registry) {
  registry.register_kernel(kMatrixMulKernel, matrix_mul_kernel);
  registry.register_kernel(kHistogramKernel, histogram64_kernel);
  registry.register_kernel(kMergeHistogramKernel, merge_histogram64_kernel);
  registry.register_kernel(kVectorAddKernel, vector_add_kernel);
}

std::vector<std::uint8_t> sample_cubin(bool compressed) {
  const auto raw = fatbin::cubin_serialize(build_sample_image());
  return compressed ? fatbin::lz_compress(raw) : raw;
}

}  // namespace cricket::workloads
