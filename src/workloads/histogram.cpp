#include "workloads/histogram.hpp"

#include <array>

#include "cudart/raii.hpp"
#include "workloads/kernels.hpp"

namespace cricket::workloads {

WorkloadReport run_histogram(cuda::CudaApi& api, sim::SimClock& clock,
                             const env::ClientFlavor& flavor,
                             const HistogramConfig& config) {
  WorkloadReport report;
  report.name = "histogram";
  const sim::SimStopwatch total(clock);
  std::uint64_t calls = 0;

  const sim::SimStopwatch init(clock);
  int dev_count = 0;
  cuda::check(api.get_device_count(dev_count));
  cuda::check(api.set_device(0));
  calls += 2;

  // Input generation: this is where the paper's slow-C-RNG effect lives.
  std::vector<std::uint8_t> data(config.data_bytes);
  fill_random_bytes(data, flavor, clock, 0x55AA);

  cuda::Module mod(api, sample_cubin());
  ++calls;
  const auto hist_fn = mod.function(kHistogramKernel);
  const auto merge_fn = mod.function(kMergeHistogramKernel);
  calls += 2;

  cuda::DeviceBuffer dData(api, config.data_bytes);
  cuda::DeviceBuffer dPartials(api,
                               std::uint64_t{config.partial_blocks} * 64 * 4);
  cuda::DeviceBuffer dResult(api, 64 * 4);
  calls += 3;
  dData.upload(data);
  ++calls;
  report.bytes_to_device = config.data_bytes;
  report.init_ns = init.elapsed();

  const sim::SimStopwatch exec(clock);
  const auto n = static_cast<std::uint32_t>(config.data_bytes);
  cuda::ParamPacker hist_params;
  hist_params.add_ptr(dPartials).add_ptr(dData).add(n);
  cuda::ParamPacker merge_params;
  merge_params.add_ptr(dResult).add_ptr(dPartials).add(config.partial_blocks);

  for (std::uint32_t it = 0; it < config.iterations; ++it) {
    cuda::check(api.launch_kernel(hist_fn, {config.partial_blocks, 1, 1},
                                  {64, 1, 1}, 0, gpusim::kDefaultStream,
                                  hist_params.bytes()),
                "histogram64");
    cuda::check(api.launch_kernel(merge_fn, {1, 1, 1}, {64, 1, 1}, 0,
                                  gpusim::kDefaultStream,
                                  merge_params.bytes()),
                "mergeHistogram64");
    calls += 2;
    report.kernel_launches += 2;
  }
  cuda::check(api.device_synchronize());
  ++calls;
  const auto result = dResult.download_values<std::uint32_t>(64);
  ++calls;
  report.bytes_from_device = 64 * 4;
  report.exec_ns = exec.elapsed();

  if (config.verify) {
    std::array<std::uint32_t, 64> ref{};
    for (const auto byte : data) ++ref[byte >> 2];
    report.verified = std::equal(ref.begin(), ref.end(), result.begin());
  }

  calls += 4;  // RAII frees + module unload
  report.api_calls = calls;
  report.total_ns = total.elapsed();
  return report;
}

}  // namespace cricket::workloads
