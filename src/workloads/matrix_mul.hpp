// Port of the CUDA Samples `matrixMul` application (paper §4.1, Fig. 5a).
//
// "matrixMul performs repeated multiplications of two matrices." The
// paper's configuration: 100 000 iterations, 100 041 CUDA API calls,
// 1.95 MiB of memory transfers — matrices are uploaded once and only the
// kernel launch repeats.
#pragma once

#include "cudart/api.hpp"
#include "workloads/common.hpp"

namespace cricket::workloads {

struct MatrixMulConfig {
  std::uint32_t hA = 320;
  std::uint32_t wA = 320;
  std::uint32_t wB = 640;
  std::uint32_t iterations = 100'000;
  /// Check the GPU result against a CPU reference (skip when the device is
  /// in timing-only mode).
  bool verify = true;
};

[[nodiscard]] WorkloadReport run_matrix_mul(cuda::CudaApi& api,
                                            sim::SimClock& clock,
                                            const env::ClientFlavor& flavor,
                                            const MatrixMulConfig& config);

}  // namespace cricket::workloads
