// Shared workload plumbing: reports and host-side input generation.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "env/environment.hpp"
#include "sim/rng.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::workloads {

/// What a workload run measured — the raw material for the Fig. 5/7 rows
/// and for the paper's API-call/bytes accounting (§4.1).
struct WorkloadReport {
  std::string name;
  std::uint64_t api_calls = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_from_device = 0;
  std::uint64_t bytes_d2d = 0;  // device-local cudaMemcpy volume

  /// Total cudaMemcpy volume, the quantity the paper reports per app
  /// ("6.07 GiB of memory transfers" counts device-side copies too).
  [[nodiscard]] std::uint64_t memcpy_volume() const noexcept {
    return bytes_to_device + bytes_from_device + bytes_d2d;
  }
  sim::Nanos init_ns = 0;   // input generation + setup
  sim::Nanos exec_ns = 0;   // forwarded-API phase
  sim::Nanos total_ns = 0;
  bool verified = true;     // numerics checked against CPU reference
};

/// Host-side input initialization. The C CUDA samples use a slower RNG than
/// the Rust ports (paper §4.1: "the C applications use a slower random
/// number generator for initialization") — both the generator and the
/// charged virtual time differ by flavour.
inline void fill_random_bytes(std::span<std::uint8_t> out,
                              const env::ClientFlavor& flavor,
                              sim::SimClock& clock, std::uint64_t seed) {
  if (flavor.fast_rng) {
    sim::Xoshiro256ss rng(seed);
    rng.fill_bytes(out);
    clock.advance(static_cast<sim::Nanos>(0.75 * static_cast<double>(out.size())));
  } else {
    // rand() + modulo per byte: ~14 ns/byte on the paper's EPYC hosts.
    sim::LegacyLcg rng(static_cast<std::uint32_t>(seed));
    rng.fill_bytes(out);
    clock.advance(static_cast<sim::Nanos>(14.0 * static_cast<double>(out.size())));
  }
}

inline void fill_random_floats(std::span<float> out,
                               const env::ClientFlavor& flavor,
                               sim::SimClock& clock, std::uint64_t seed) {
  if (flavor.fast_rng) {
    sim::Xoshiro256ss rng(seed);
    for (auto& v : out) v = rng.next_float();
    clock.advance(static_cast<sim::Nanos>(
        3.0 * static_cast<double>(out.size())));
  } else {
    sim::LegacyLcg rng(static_cast<std::uint32_t>(seed));
    for (auto& v : out) v = rng.next_float();
    clock.advance(static_cast<sim::Nanos>(
        24.0 * static_cast<double>(out.size())));
  }
}

}  // namespace cricket::workloads
