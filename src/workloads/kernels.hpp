// Device kernels for the ported CUDA samples (paper §4.1: matrixMul,
// cuSolverDn_LinearSolver, histogram; §4.2: bandwidthTest) plus the
// vectorAdd kernel used by the quickstart example.
//
// Each kernel exists twice, as in the real system: as *metadata* inside a
// cubin image (name, parameter layout) shipped to the server, and as an
// *implementation* registered in the GPU node's KernelRegistry. The cubin
// images here are what the paper's Rust applications read from .cubin files
// and send via RPC (§3.3).
#pragma once

#include <vector>

#include "fatbin/cubin.hpp"
#include "gpusim/kernel.hpp"

namespace cricket::workloads {

/// Registers every sample kernel implementation into `registry`. Idempotent.
void register_sample_kernels(gpusim::KernelRegistry& registry);

/// A cubin image containing all sample kernels (sm_61 so it loads on every
/// testbed GPU), serialized; `compressed` ships it through the
/// decompression path.
[[nodiscard]] std::vector<std::uint8_t> sample_cubin(bool compressed = false);

/// Kernel names inside sample_cubin().
inline constexpr const char* kMatrixMulKernel = "matrixMulCUDA";
inline constexpr const char* kHistogramKernel = "histogram64Kernel";
inline constexpr const char* kMergeHistogramKernel = "mergeHistogram64Kernel";
inline constexpr const char* kVectorAddKernel = "vectorAdd";

}  // namespace cricket::workloads
