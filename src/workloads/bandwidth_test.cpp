#include "workloads/bandwidth_test.hpp"

#include "cudart/raii.hpp"

namespace cricket::workloads {

BandwidthReport run_bandwidth_test(cuda::CudaApi& api, sim::SimClock& clock,
                                   const env::ClientFlavor& flavor,
                                   const BandwidthConfig& config) {
  BandwidthReport report;
  report.base.name = config.direction == CopyDirection::kHostToDevice
                         ? "bandwidthTest H2D"
                         : "bandwidthTest D2H";
  const sim::SimStopwatch total(clock);
  std::uint64_t calls = 0;

  const sim::SimStopwatch init(clock);
  std::vector<std::uint8_t> host(config.bytes);
  fill_random_bytes(host, flavor, clock, 0xB0);
  cuda::DeviceBuffer dev(api, config.bytes);
  ++calls;
  if (config.direction == CopyDirection::kDeviceToHost) {
    dev.upload(host);  // seed device content once (not measured)
    ++calls;
  }
  report.base.init_ns = init.elapsed();

  const sim::SimStopwatch exec(clock);
  std::vector<std::uint8_t> readback(
      config.direction == CopyDirection::kDeviceToHost ? config.bytes : 0);
  for (std::uint32_t run = 0; run < config.runs; ++run) {
    if (config.direction == CopyDirection::kHostToDevice) {
      dev.upload(host);
      report.base.bytes_to_device += config.bytes;
    } else {
      dev.download(readback);
      report.base.bytes_from_device += config.bytes;
    }
    ++calls;
  }
  report.base.exec_ns = exec.elapsed();

  if (config.verify) {
    if (config.direction == CopyDirection::kDeviceToHost) {
      report.base.verified = readback == host;
    } else {
      std::vector<std::uint8_t> check(config.bytes);
      dev.download(check);
      ++calls;
      report.base.verified = check == host;
    }
  }

  ++calls;  // RAII free
  report.base.api_calls = calls;
  report.base.total_ns = total.elapsed();

  const double secs = static_cast<double>(report.base.exec_ns) / 1e9;
  const double mib =
      static_cast<double>(config.bytes) * config.runs / (1 << 20);
  report.mib_per_s = secs > 0 ? mib / secs : 0.0;
  return report;
}

}  // namespace cricket::workloads
