// Port of the CUDA Samples `cuSolverDn_LinearSolver` (paper §4.1, Fig. 5b).
//
// "cuSolverDn_LinearSolver performs a LU decomposition of a system of
// linear equations and solves the system." Paper configuration: 900x900
// matrix, 1000 iterations, ~20 047 API calls and 6.07 GiB of memory
// transfers. The matrix crosses the wire once; the per-iteration gigabytes
// are *device-to-device* restores of the working copies (the sample keeps
// d_A pristine and factors a copy) — which is why this app shows the
// smallest virtualization overhead despite the largest transfer volume
// (paper §4.1).
#pragma once

#include "cudart/api.hpp"
#include "workloads/common.hpp"

namespace cricket::workloads {

struct LinearSolverConfig {
  int n = 900;
  std::uint32_t iterations = 1'000;
  bool verify = true;
};

[[nodiscard]] WorkloadReport run_linear_solver(
    cuda::CudaApi& api, sim::SimClock& clock,
    const env::ClientFlavor& flavor, const LinearSolverConfig& config);

}  // namespace cricket::workloads
