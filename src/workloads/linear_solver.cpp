#include "workloads/linear_solver.hpp"

#include <cmath>

#include "cudart/raii.hpp"

namespace cricket::workloads {

WorkloadReport run_linear_solver(cuda::CudaApi& api, sim::SimClock& clock,
                                 const env::ClientFlavor& flavor,
                                 const LinearSolverConfig& config) {
  WorkloadReport report;
  report.name = "cuSolverDn_LinearSolver";
  const sim::SimStopwatch total(clock);
  std::uint64_t calls = 0;

  const sim::SimStopwatch init(clock);
  int dev_count = 0;
  cuda::check(api.get_device_count(dev_count));
  cuda::check(api.set_device(0));
  calls += 2;

  const int n = config.n;
  const auto un = static_cast<std::size_t>(n);
  // Diagonally dominant system: LU with partial pivoting is stable and the
  // verification tolerance stays tight.
  std::vector<float> A(un * un);
  fill_random_floats(A, flavor, clock, 0x50);
  for (int i = 0; i < n; ++i) A[un * static_cast<std::size_t>(i) + static_cast<std::size_t>(i)] += static_cast<float>(n);
  std::vector<float> x_true(un);
  fill_random_floats(x_true, flavor, clock, 0x51);
  std::vector<float> b(un, 0.0f);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] +=
          A[un * static_cast<std::size_t>(j) + static_cast<std::size_t>(i)] *
          x_true[static_cast<std::size_t>(j)];

  cuda::DeviceBuffer dA(api, un * un * 4);      // factored in place
  cuda::DeviceBuffer dAcopy(api, un * un * 4);  // pristine copy for residual
  cuda::DeviceBuffer dB(api, un * 4);
  cuda::DeviceBuffer dX(api, un * 4);
  cuda::DeviceBuffer dPiv(api, un * 4);
  cuda::DeviceBuffer dInfo(api, 4);
  calls += 6;
  report.init_ns = init.elapsed();

  // The matrix crosses the wire once; each iteration restores the working
  // copies with *device-to-device* copies, exactly like the CUDA sample
  // (which keeps d_A pristine and factors a copy). This is why the paper's
  // 6.07 GiB of memory transfers coexist with small network traffic — the
  // gigabytes are device-local.
  dAcopy.upload_values<float>(A);
  ++calls;
  report.bytes_to_device += un * un * 4;

  const sim::SimStopwatch exec(clock);
  std::vector<float> x(un);
  cuda::DeviceBuffer dR(api, un * 4);  // residual workspace
  ++calls;
  for (std::uint32_t it = 0; it < config.iterations; ++it) {
    // Restore the to-be-factored copy and a residual working copy.
    cuda::check(api.memcpy_d2d(dA.get(), dAcopy.get(), un * un * 4));
    ++calls;
    report.bytes_d2d += un * un * 4;
    dB.upload_values<float>(b);
    ++calls;
    report.bytes_to_device += un * 4;

    cuda::check(api.solver_sgetrf(n, dA.get(), n, dPiv.get(), dInfo.get()),
                "sgetrf");
    ++calls;
    ++report.kernel_launches;
    const auto info1 = dInfo.download_values<std::int32_t>(1);
    ++calls;
    report.bytes_from_device += 4;
    if (info1[0] != 0) {
      report.verified = false;
      break;
    }
    cuda::check(api.memcpy_d2d(dX.get(), dB.get(), un * 4));
    ++calls;
    report.bytes_d2d += un * 4;
    cuda::check(api.solver_sgetrs(n, 1, dA.get(), n, dPiv.get(), dX.get(), n,
                                  dInfo.get()),
                "sgetrs");
    ++calls;
    ++report.kernel_launches;
    // Residual on device against the pristine copy: r = A*x. The sample
    // also stages the matrix restore for the verification pass — a second
    // full-matrix device-local copy.
    cuda::check(api.memcpy_d2d(dA.get(), dAcopy.get(), un * un * 4));
    ++calls;
    report.bytes_d2d += un * un * 4;
    cuda::check(api.blas_sgemm(n, 1, n, 1.0f, dAcopy.get(), n, dX.get(), n,
                               0.0f, dR.get(), n),
                "residual gemm");
    ++calls;
    ++report.kernel_launches;
    x = dX.download_values<float>(un);
    ++calls;
    report.bytes_from_device += un * 4;
    const auto r = dR.download_values<float>(un);
    ++calls;
    report.bytes_from_device += un * 4;
    (void)r;
  }
  cuda::check(api.device_synchronize());
  ++calls;
  report.exec_ns = exec.elapsed();

  if (config.verify && report.verified) {
    double max_err = 0;
    for (int i = 0; i < n; ++i)
      max_err = std::max(max_err,
                         std::fabs(static_cast<double>(
                             x[static_cast<std::size_t>(i)] -
                             x_true[static_cast<std::size_t>(i)])));
    report.verified = max_err < 5e-2;
  }

  calls += 6;  // RAII frees
  report.api_calls = calls;
  report.total_ns = total.elapsed();
  return report;
}

}  // namespace cricket::workloads
