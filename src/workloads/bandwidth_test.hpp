// Port of the CUDA Samples `bandwidthTest` (paper §4.2, Fig. 7).
//
// Measures sustained host<->device copy bandwidth through the Cricket
// virtualization layer with 512 MiB of memory, averaged over 10 runs — the
// experiment that exposes the unikernels' missing network offloads.
#pragma once

#include "cudart/api.hpp"
#include "workloads/common.hpp"

namespace cricket::workloads {

enum class CopyDirection { kHostToDevice, kDeviceToHost };

struct BandwidthConfig {
  std::uint64_t bytes = 512ull << 20;
  std::uint32_t runs = 10;
  CopyDirection direction = CopyDirection::kHostToDevice;
  bool verify = true;
};

struct BandwidthReport {
  WorkloadReport base;
  double mib_per_s = 0.0;
};

[[nodiscard]] BandwidthReport run_bandwidth_test(
    cuda::CudaApi& api, sim::SimClock& clock,
    const env::ClientFlavor& flavor, const BandwidthConfig& config);

}  // namespace cricket::workloads
