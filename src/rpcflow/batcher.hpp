// Adaptive small-call batcher (Nagle-style, with an explicit flush escape).
//
// The Fig. 6a workload — storms of sub-100-byte calls like
// cudaGetDeviceCount — pays one full send (syscall, virtqueue kick, wire
// latency) per call on the synchronous path. The batcher coalesces
// back-to-back record-marked calls into a single transport send and flushes
// when the buffer fills (bytes or record count), when a wall-clock deadline
// expires since the oldest buffered call, or when the caller flushes
// explicitly — so latency-sensitive callers can opt out of the wait.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "rpc/record.hpp"
#include "rpc/transport.hpp"
#include "sim/annotations.hpp"

namespace cricket::rpcflow {

class CallBatcher {
 public:
  struct Options {
    /// Disabled: every append is sent immediately (still one send per
    /// record, i.e. header+payload coalesced — no cross-call waiting).
    bool enabled = false;
    /// Flush as soon as the buffered wire bytes reach this (keep it at or
    /// under one MSS so a batch still fits one network segment).
    std::size_t max_bytes = 8 * 1024;
    /// Flush as soon as this many records are buffered.
    std::uint32_t max_calls = 16;
    /// Flush this long (wall clock) after the oldest buffered record if
    /// neither threshold fills. Zero disables the background flusher:
    /// only full/explicit flushes happen — callers must flush before
    /// blocking on a reply.
    std::chrono::microseconds deadline{200};
  };

  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t batches = 0;  // transport sends
    std::uint64_t flush_full = 0;
    std::uint64_t flush_deadline = 0;
    std::uint64_t flush_explicit = 0;
    std::uint64_t bytes = 0;
  };

  CallBatcher(rpc::Transport& transport, Options options,
              std::uint32_t max_fragment);
  ~CallBatcher();

  CallBatcher(const CallBatcher&) = delete;
  CallBatcher& operator=(const CallBatcher&) = delete;

  /// Queues one RPC record; sends immediately when batching is disabled or a
  /// full-threshold is crossed. Throws TransportError if the transport died.
  void append(std::span<const std::uint8_t> record) CRICKET_EXCLUDES(mu_);

  /// Sends whatever is buffered now. Safe to call with an empty buffer.
  void flush() CRICKET_EXCLUDES(mu_);

  /// Points the batcher at a fresh transport after a reconnect, clearing
  /// the failed latch and discarding buffered-but-unsent records (the
  /// channel re-submits every pending call through append() anyway, so
  /// keeping them would send duplicates ahead of the resubmission).
  void rebind(rpc::Transport& transport) CRICKET_EXCLUDES(mu_);

  [[nodiscard]] Stats stats() const CRICKET_EXCLUDES(mu_);

  /// Records buffered and not yet sent.
  [[nodiscard]] std::uint32_t buffered() const CRICKET_EXCLUDES(mu_);

 private:
  enum class Cause { kFull, kDeadline, kExplicit };

  /// Sends buf_ as one transport write.
  void flush_locked(Cause cause) CRICKET_REQUIRES(mu_);
  void deadline_loop() CRICKET_EXCLUDES(mu_);

  rpc::Transport* transport_;
  Options options_;
  std::uint32_t max_fragment_;

  mutable sim::Mutex mu_;
  sim::CondVar cv_;  // wakes the deadline flusher
  std::vector<std::uint8_t> buf_ CRICKET_GUARDED_BY(mu_);
  std::uint32_t buffered_calls_ CRICKET_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point oldest_ CRICKET_GUARDED_BY(mu_){};
  bool failed_ CRICKET_GUARDED_BY(mu_) = false;
  bool stopping_ CRICKET_GUARDED_BY(mu_) = false;
  Stats stats_ CRICKET_GUARDED_BY(mu_);
  std::thread flusher_;
};

}  // namespace cricket::rpcflow
