// AsyncRpcChannel: N outstanding ONC RPC calls on one connection.
//
// The paper's forwarding path is one synchronous RPC per CUDA call ("the
// RPC library is single-threaded", §4.2), so throughput is capped at 1/RTT
// per connection. This channel lifts that cap without touching the wire
// protocol: every call is tagged with its xid and sent immediately (or
// handed to the small-call batcher), a dedicated reader thread matches
// replies — in whatever order the server completes them — back to per-call
// ReplyFutures, and a bounded outstanding-call window provides
// back-pressure. Layered purely on Transport + record marking + XDR, so it
// runs over pipes, TCP, and the vnet-simulated unikernel paths alike.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "rpc/client.hpp"
#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/transport.hpp"
#include "rpc/wire_bounds.hpp"
#include "rpcflow/batcher.hpp"
#include "rpcflow/future.hpp"
#include "xdr/xdr.hpp"

namespace cricket::rpcflow {

struct ChannelOptions {
  /// Pipeline depth: calls admitted on the wire before the oldest reply
  /// arrives. call_raw_async blocks (back-pressure) at the cap.
  std::uint32_t max_outstanding = 32;
  std::uint32_t initial_xid = 0x51C40000;
  std::uint32_t max_fragment = rpc::RecordWriter::kDefaultMaxFragment;
  /// Small-call coalescing (off by default: pipelining without batching).
  CallBatcher::Options batch{};
  /// rpclgen-generated per-procedure wire bounds (e.g.
  /// cricket::proto::bounds::kProcBounds). When set, the reader thread
  /// rejects any reply record larger than the addressed call's proven
  /// result bound before decode_reply runs. The span must outlive the
  /// channel (generated tables have static storage).
  std::span<const rpc::ProcWireBounds> bounds{};
  /// Per-call deadlines + resubmission (faultnet). When enabled, a retry
  /// thread re-appends the encoded record of any call whose attempt
  /// timeout expires — same xid, so an at-most-once server answers a
  /// re-execution attempt from its duplicate cache — and fails the future
  /// with kDeadlineExceeded once attempts/deadline run out. Only enable
  /// against a server with the duplicate-request cache (or an all-
  /// idempotent program): the channel cannot know which procedures are
  /// safe, so it retries everything.
  rpc::RetryPolicy retry{};
  /// Fresh transport to the same server after a connection-level failure;
  /// in-flight xids are resubmitted transparently on the new connection.
  std::function<std::unique_ptr<rpc::Transport>()> reconnect{};
  std::uint32_t max_reconnects = 8;
};

struct ChannelStats {
  std::uint64_t calls = 0;
  std::uint64_t replies = 0;       // matched completions
  std::uint64_t failed = 0;        // completed with an error
  std::uint64_t unmatched = 0;     // replies with an unknown xid (dropped)
  std::uint64_t preflight_rejected = 0;  // oversized replies failed undecoded
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint32_t max_in_flight = 0;  // high-water mark of the pipeline
  std::uint64_t retries = 0;           // records re-sent after a timeout
  std::uint64_t deadline_exceeded = 0;  // futures failed by the retry layer
  std::uint64_t reconnects = 0;
  /// kMigrating replies absorbed by re-arming the call and kicking the
  /// transport so the reconnect path resubmits it (migration redirect).
  std::uint64_t migrating_redirects = 0;
};

/// Asynchronous RPC client bound to one (program, version) on one transport.
/// Thread-safe: any number of caller threads may issue calls concurrently;
/// one internal reader thread completes futures.
class AsyncRpcChannel {
 public:
  AsyncRpcChannel(std::unique_ptr<rpc::Transport> transport,
                  std::uint32_t prog, std::uint32_t vers,
                  ChannelOptions options = {});
  ~AsyncRpcChannel();

  AsyncRpcChannel(const AsyncRpcChannel&) = delete;
  AsyncRpcChannel& operator=(const AsyncRpcChannel&) = delete;

  void set_credential(rpc::OpaqueAuth cred) CRICKET_EXCLUDES(mu_);

  /// Issues `proc` with pre-encoded arguments. Returns immediately with a
  /// future for the raw encoded results; blocks only while the pipeline is
  /// at max_outstanding. The future fails with RpcError for call-level
  /// errors and TransportError if the connection dies mid-pipeline.
  [[nodiscard]] ReplyFuture call_raw_async(std::uint32_t proc,
                                           std::span<const std::uint8_t> args)
      CRICKET_EXCLUDES(mu_);

  /// Typed pipelined call: XDR-encodes `args...`, decodes one `Res` at get().
  template <typename Res, typename... Args>
  [[nodiscard]] TypedFuture<Res> call_async(std::uint32_t proc,
                                            const Args&... args) {
    xdr::Encoder enc;
    (xdr_encode(enc, args), ...);
    return TypedFuture<Res>(call_raw_async(proc, enc.bytes()));
  }

  /// Synchronous convenience on the pipelined channel: issues, flushes, and
  /// waits. Calls issued earlier remain in flight (this does not drain).
  template <typename Res, typename... Args>
  Res call(std::uint32_t proc, const Args&... args) {
    auto fut = call_async<Res>(proc, args...);
    flush();
    return fut.get();
  }

  /// Sends anything the batcher is still holding.
  void flush();

  /// Flushes, then blocks until every outstanding call has completed
  /// (successfully or not). The pipeline's sync point.
  void drain() CRICKET_EXCLUDES(mu_);

  [[nodiscard]] std::uint32_t outstanding() const CRICKET_EXCLUDES(mu_);
  [[nodiscard]] ChannelStats stats() const CRICKET_EXCLUDES(mu_);
  [[nodiscard]] rpc::Transport& transport() noexcept { return *transport_; }

 private:
  void reader_loop() CRICKET_EXCLUDES(mu_);
  void retry_loop() CRICKET_EXCLUDES(mu_);
  void fail_all_locked(const std::exception_ptr& error) CRICKET_REQUIRES(mu_);

  std::unique_ptr<rpc::Transport> transport_;
  std::uint32_t prog_;
  std::uint32_t vers_;
  ChannelOptions options_;
  /// shared_ptr: the zero-deadline on_block hooks and the reader/retry
  /// threads pin it with weak/shared copies, so a racing channel teardown
  /// can never free it out from under them.
  std::shared_ptr<CallBatcher> batcher_;

  /// A call awaiting its reply. max_reply_bytes is fixed at call time (the
  /// reader can not know the procedure from a reply record alone): result
  /// bound plus the worst-case reply header, or kUnboundedWireSize when no
  /// bounds table covers the procedure. When the retry layer or reconnect
  /// is active, `record` keeps the encoded call for resubmission under the
  /// same xid.
  struct PendingCall {
    ReplyPromise promise;
    std::uint64_t max_reply_bytes = rpc::kUnboundedWireSize;
    std::vector<std::uint8_t> record;
    std::uint32_t attempts = 1;
    std::chrono::steady_clock::time_point expires{};       // next resend
    std::chrono::steady_clock::time_point hard_deadline{};  // give-up point
  };

  mutable sim::Mutex mu_;
  sim::CondVar slots_cv_;  // outstanding window + drain waiters
  sim::CondVar retry_cv_;  // wakes the retry thread (new call / teardown)
  std::map<std::uint32_t, PendingCall> pending_ CRICKET_GUARDED_BY(mu_);
  std::uint32_t next_xid_ CRICKET_GUARDED_BY(mu_);
  rpc::OpaqueAuth cred_ CRICKET_GUARDED_BY(mu_);
  bool dead_ CRICKET_GUARDED_BY(mu_) = false;
  bool stopping_ CRICKET_GUARDED_BY(mu_) = false;
  std::string dead_reason_ CRICKET_GUARDED_BY(mu_);
  ChannelStats stats_ CRICKET_GUARDED_BY(mu_);

  std::thread reader_;
  std::thread retry_thread_;
};

}  // namespace cricket::rpcflow
