#include "rpcflow/batcher.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cricket::rpcflow {

CallBatcher::CallBatcher(rpc::Transport& transport, Options options,
                         std::uint32_t max_fragment)
    : transport_(&transport),
      options_(options),
      max_fragment_(max_fragment) {
  if (options_.enabled && options_.deadline.count() > 0)
    flusher_ = std::thread([this] { deadline_loop(); });
}

CallBatcher::~CallBatcher() {
  {
    sim::MutexLock lock(mu_);
    stopping_ = true;
    // Best effort: don't strand buffered calls whose futures are pending.
    if (!buf_.empty() && !failed_) {
      try {
        flush_locked(Cause::kExplicit);
      } catch (const rpc::TransportError&) {
        // The channel's reader fails the pending futures.
      }
    }
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void CallBatcher::append(std::span<const std::uint8_t> record) {
  sim::MutexLock lock(mu_);
  if (failed_) throw rpc::TransportError("batcher transport already failed");
  rpc::append_record_marked(buf_, record, max_fragment_);
  ++stats_.records;
  if (++buffered_calls_ == 1) {
    oldest_ = std::chrono::steady_clock::now();
    cv_.notify_all();  // arm the deadline flusher
  }
  if (!options_.enabled || buffered_calls_ >= options_.max_calls ||
      buf_.size() >= options_.max_bytes) {
    flush_locked(options_.enabled ? Cause::kFull : Cause::kExplicit);
  }
}

void CallBatcher::flush() {
  sim::MutexLock lock(mu_);
  if (buf_.empty()) return;
  if (failed_) throw rpc::TransportError("batcher transport already failed");
  flush_locked(Cause::kExplicit);
}

void CallBatcher::rebind(rpc::Transport& transport) {
  sim::MutexLock lock(mu_);
  transport_ = &transport;
  failed_ = false;
  buf_.clear();
  buffered_calls_ = 0;
}

CallBatcher::Stats CallBatcher::stats() const {
  sim::MutexLock lock(mu_);
  return stats_;
}

std::uint32_t CallBatcher::buffered() const {
  sim::MutexLock lock(mu_);
  return buffered_calls_;
}

void CallBatcher::flush_locked(Cause cause) {
  // Flush-cause counters live in the global registry (static refs: the
  // registry hands out stable pointers and is never destroyed).
  static obs::Counter& flush_full = obs::Registry::global().counter(
      "cricket_batch_flushes_total", {{"cause", "full"}},
      "Batcher flushes by trigger");
  static obs::Counter& flush_deadline = obs::Registry::global().counter(
      "cricket_batch_flushes_total", {{"cause", "deadline"}});
  static obs::Counter& flush_explicit = obs::Registry::global().counter(
      "cricket_batch_flushes_total", {{"cause", "explicit"}});
  switch (cause) {
    case Cause::kFull:
      ++stats_.flush_full;
      flush_full.inc();
      break;
    case Cause::kDeadline:
      ++stats_.flush_deadline;
      flush_deadline.inc();
      break;
    case Cause::kExplicit:
      ++stats_.flush_explicit;
      flush_explicit.inc();
      break;
  }
  ++stats_.batches;
  stats_.bytes += buf_.size();
  buffered_calls_ = 0;
  // Send under the lock: the transport allows only one concurrent sender,
  // and the lock is what serializes appenders with the deadline flusher.
  obs::Span span(obs::Layer::kChanFlush, nullptr, buf_.size());
  try {
    transport_->send(buf_);
  } catch (const rpc::TransportError&) {
    failed_ = true;
    buf_.clear();
    throw;
  }
  buf_.clear();
}

void CallBatcher::deadline_loop() {
  sim::MutexLock lock(mu_);
  for (;;) {
    while (!stopping_ && buffered_calls_ == 0) cv_.wait(mu_);
    if (stopping_) return;
    const auto wake = oldest_ + options_.deadline;
    while (!stopping_ && buffered_calls_ > 0 &&
           std::chrono::steady_clock::now() < wake) {
      if (cv_.wait_until(mu_, wake) == std::cv_status::timeout) break;
    }
    if (stopping_) return;
    if (buffered_calls_ > 0 &&
        std::chrono::steady_clock::now() >= oldest_ + options_.deadline &&
        !failed_) {
      try {
        flush_locked(Cause::kDeadline);
      } catch (const rpc::TransportError&) {
        // Reader loop surfaces the failure to the pending futures.
      }
    }
  }
}

}  // namespace cricket::rpcflow
