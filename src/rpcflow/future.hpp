// Completion handles for pipelined RPCs.
//
// A ReplyFuture is the caller's end of one in-flight call on an
// AsyncRpcChannel: the channel's reader thread completes it (value or
// error) when the reply with the matching xid arrives, or fails it when the
// connection dies with the call still outstanding. A minimal hand-rolled
// shared state (rather than std::future) so the channel can complete many
// futures under one lock sweep and callers can poll readiness cheaply.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/annotations.hpp"
#include "xdr/xdr.hpp"

namespace cricket::rpcflow {

namespace detail {

struct ReplyState {
  sim::Mutex mu;
  sim::CondVar cv;
  bool ready CRICKET_GUARDED_BY(mu) = false;
  // XDR-encoded results.
  std::vector<std::uint8_t> value CRICKET_GUARDED_BY(mu);
  std::exception_ptr error CRICKET_GUARDED_BY(mu);
  /// Invoked (outside the lock) when a caller is about to block on this
  /// future while it is not ready. The channel installs it on calls issued
  /// through a zero-deadline batcher: with no background flusher, blocking
  /// on an unflushed call would hang forever — the hook flushes (and
  /// counts the near-miss) instead. Set before the state is shared; never
  /// mutated afterwards.
  std::function<void()> on_block;
};

}  // namespace detail

/// Write side of a ReplyState; owned by the channel.
class ReplyPromise {
 public:
  ReplyPromise() : state_(std::make_shared<detail::ReplyState>()) {}

  void set_value(std::vector<std::uint8_t> value) const
      CRICKET_EXCLUDES(state_->mu) {
    {
      sim::MutexLock lock(state_->mu);
      state_->value = std::move(value);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  void set_error(std::exception_ptr error) const
      CRICKET_EXCLUDES(state_->mu) {
    {
      sim::MutexLock lock(state_->mu);
      state_->error = std::move(error);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  [[nodiscard]] std::shared_ptr<detail::ReplyState> state() const {
    return state_;
  }

 private:
  std::shared_ptr<detail::ReplyState> state_;
};

/// Caller's handle to one pipelined call's raw (XDR-encoded) results.
class ReplyFuture {
 public:
  ReplyFuture() = default;
  explicit ReplyFuture(std::shared_ptr<detail::ReplyState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Non-blocking readiness poll.
  [[nodiscard]] bool ready() const CRICKET_EXCLUDES(state_->mu) {
    sim::MutexLock lock(state_->mu);
    return state_->ready;
  }

  void wait() const CRICKET_EXCLUDES(state_->mu) {
    run_on_block_hook();
    sim::MutexLock lock(state_->mu);
    while (!state_->ready) state_->cv.wait(state_->mu);
  }

  /// Blocks until completion; rethrows the call's error if it failed.
  [[nodiscard]] std::vector<std::uint8_t> get() CRICKET_EXCLUDES(state_->mu) {
    run_on_block_hook();
    sim::MutexLock lock(state_->mu);
    while (!state_->ready) state_->cv.wait(state_->mu);
    if (state_->error) std::rethrow_exception(state_->error);
    return std::move(state_->value);
  }

 private:
  /// If we are about to block and the state carries an on_block hook, run
  /// it outside the lock (it may call back into the channel/batcher).
  void run_on_block_hook() const CRICKET_EXCLUDES(state_->mu) {
    if (!state_->on_block) return;
    {
      sim::MutexLock lock(state_->mu);
      if (state_->ready) return;
    }
    state_->on_block();
  }

  std::shared_ptr<detail::ReplyState> state_;
};

/// Typed view over a ReplyFuture: XDR-decodes one `Res` on get().
template <typename Res>
class TypedFuture {
 public:
  TypedFuture() = default;
  explicit TypedFuture(ReplyFuture raw) : raw_(std::move(raw)) {}

  [[nodiscard]] bool valid() const noexcept { return raw_.valid(); }
  [[nodiscard]] bool ready() const { return raw_.ready(); }
  void wait() const { raw_.wait(); }

  [[nodiscard]] Res get() {
    const auto bytes = raw_.get();
    xdr::Decoder dec(bytes);
    Res res{};
    xdr_decode(dec, res);
    dec.expect_exhausted();
    return res;
  }

 private:
  ReplyFuture raw_;
};

}  // namespace cricket::rpcflow
