// Completion handles for pipelined RPCs.
//
// A ReplyFuture is the caller's end of one in-flight call on an
// AsyncRpcChannel: the channel's reader thread completes it (value or
// error) when the reply with the matching xid arrives, or fails it when the
// connection dies with the call still outstanding. A minimal hand-rolled
// shared state (rather than std::future) so the channel can complete many
// futures under one lock sweep and callers can poll readiness cheaply.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "xdr/xdr.hpp"

namespace cricket::rpcflow {

namespace detail {

struct ReplyState {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::vector<std::uint8_t> value;  // XDR-encoded results
  std::exception_ptr error;
};

}  // namespace detail

/// Write side of a ReplyState; owned by the channel.
class ReplyPromise {
 public:
  ReplyPromise() : state_(std::make_shared<detail::ReplyState>()) {}

  void set_value(std::vector<std::uint8_t> value) const {
    {
      std::lock_guard lock(state_->mu);
      state_->value = std::move(value);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  void set_error(std::exception_ptr error) const {
    {
      std::lock_guard lock(state_->mu);
      state_->error = std::move(error);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  [[nodiscard]] std::shared_ptr<detail::ReplyState> state() const {
    return state_;
  }

 private:
  std::shared_ptr<detail::ReplyState> state_;
};

/// Caller's handle to one pipelined call's raw (XDR-encoded) results.
class ReplyFuture {
 public:
  ReplyFuture() = default;
  explicit ReplyFuture(std::shared_ptr<detail::ReplyState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Non-blocking readiness poll.
  [[nodiscard]] bool ready() const {
    std::lock_guard lock(state_->mu);
    return state_->ready;
  }

  void wait() const {
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->ready; });
  }

  /// Blocks until completion; rethrows the call's error if it failed.
  [[nodiscard]] std::vector<std::uint8_t> get() {
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->ready; });
    if (state_->error) std::rethrow_exception(state_->error);
    return std::move(state_->value);
  }

 private:
  std::shared_ptr<detail::ReplyState> state_;
};

/// Typed view over a ReplyFuture: XDR-decodes one `Res` on get().
template <typename Res>
class TypedFuture {
 public:
  TypedFuture() = default;
  explicit TypedFuture(ReplyFuture raw) : raw_(std::move(raw)) {}

  [[nodiscard]] bool valid() const noexcept { return raw_.valid(); }
  [[nodiscard]] bool ready() const { return raw_.ready(); }
  void wait() const { raw_.wait(); }

  [[nodiscard]] Res get() {
    const auto bytes = raw_.get();
    xdr::Decoder dec(bytes);
    Res res{};
    xdr_decode(dec, res);
    dec.expect_exhausted();
    return res;
  }

 private:
  ReplyFuture raw_;
};

}  // namespace cricket::rpcflow
