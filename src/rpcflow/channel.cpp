#include "rpcflow/channel.hpp"

#include "obs/trace.hpp"

namespace cricket::rpcflow {

namespace {

/// Maps a decoded reply to the caller-visible outcome: results on success,
/// an RpcError otherwise (same classification as the synchronous client).
std::exception_ptr reply_error(const rpc::ReplyMsg& reply) {
  using rpc::RpcError;
  if (reply.stat == rpc::ReplyStat::kDenied) {
    return std::make_exception_ptr(RpcError(
        RpcError::Kind::kDenied,
        reply.reject_stat == rpc::RejectStat::kRpcMismatch
            ? "call denied: RPC version mismatch"
            : "call denied: authentication error"));
  }
  switch (reply.accept_stat) {
    case rpc::AcceptStat::kSuccess:
      return nullptr;
    case rpc::AcceptStat::kProgUnavail:
      return std::make_exception_ptr(
          RpcError(RpcError::Kind::kProgUnavail, "program unavailable"));
    case rpc::AcceptStat::kProgMismatch: {
      const auto mi = reply.mismatch.value_or(rpc::MismatchInfo{});
      return std::make_exception_ptr(RpcError(
          RpcError::Kind::kProgMismatch,
          "program version mismatch (supported " + std::to_string(mi.low) +
              ".." + std::to_string(mi.high) + ")"));
    }
    case rpc::AcceptStat::kProcUnavail:
      return std::make_exception_ptr(
          RpcError(RpcError::Kind::kProcUnavail, "procedure unavailable"));
    case rpc::AcceptStat::kGarbageArgs:
      return std::make_exception_ptr(RpcError(
          RpcError::Kind::kGarbageArgs, "server could not decode arguments"));
    case rpc::AcceptStat::kSystemErr:
      return std::make_exception_ptr(
          RpcError(RpcError::Kind::kSystemErr, "server system error"));
  }
  return std::make_exception_ptr(
      RpcError(RpcError::Kind::kBadReply, "invalid accept_stat"));
}

}  // namespace

AsyncRpcChannel::AsyncRpcChannel(std::unique_ptr<rpc::Transport> transport,
                                 std::uint32_t prog, std::uint32_t vers,
                                 ChannelOptions options)
    : transport_(std::move(transport)),
      prog_(prog),
      vers_(vers),
      options_(options),
      batcher_(std::make_unique<CallBatcher>(*transport_, options.batch,
                                             options.max_fragment)),
      next_xid_(options.initial_xid) {
  reader_ = std::thread([this] { reader_loop(); });
}

AsyncRpcChannel::~AsyncRpcChannel() {
  // Push out anything still buffered so the server can answer it, then
  // half-close: the server drains, replies, and closes its side, which ends
  // the reader loop (completing or failing every remaining future).
  batcher_.reset();
  try {
    transport_->shutdown();
  } catch (...) {  // destructor must not throw
  }
  if (reader_.joinable()) reader_.join();
}

void AsyncRpcChannel::set_credential(rpc::OpaqueAuth cred) {
  sim::MutexLock lock(mu_);
  cred_ = std::move(cred);
}

ReplyFuture AsyncRpcChannel::call_raw_async(
    std::uint32_t proc, std::span<const std::uint8_t> args) {
  rpc::CallMsg call;
  call.prog = prog_;
  call.vers = vers_;
  call.proc = proc;
  call.args.assign(args.begin(), args.end());

  ReplyPromise promise;
  ReplyFuture future(promise.state());
  {
    sim::MutexLock lock(mu_);
    if (pending_.size() >=
        static_cast<std::size_t>(options_.max_outstanding)) {
      // The window is full of calls we may still be holding in the batcher;
      // push them out before blocking on their replies.
      lock.unlock();
      flush();
      lock.lock();
      while (!dead_ && pending_.size() >=
                           static_cast<std::size_t>(options_.max_outstanding))
        slots_cv_.wait(mu_);
    }
    if (dead_) {
      promise.set_error(std::make_exception_ptr(
          rpc::TransportError("channel closed: " + dead_reason_)));
      return future;
    }
    call.xid = next_xid_++;
    call.cred = cred_;
    // The reply pre-flight bound is decided now: once the reply arrives the
    // reader only has an xid, not a procedure number.
    std::uint64_t max_reply_bytes = rpc::kUnboundedWireSize;
    if (const auto* b =
            rpc::find_proc_bounds(options_.bounds, prog_, vers_, proc);
        b != nullptr && b->result_max != rpc::kUnboundedWireSize) {
      max_reply_bytes = b->result_max + rpc::kReplyHeaderMax;
    }
    pending_.emplace(call.xid, PendingCall{promise, max_reply_bytes});
    ++stats_.calls;
    stats_.max_in_flight = std::max(
        stats_.max_in_flight, static_cast<std::uint32_t>(pending_.size()));
  }

  const obs::ScopedXid trace_xid(call.xid);
  std::vector<std::uint8_t> record;
  {
    obs::Span span(obs::Layer::kClientSerialize);
    record = rpc::encode_call(call);
    span.set_arg(record.size());
  }
  try {
    {
      obs::Span span(obs::Layer::kChanSend, nullptr, record.size());
      batcher_->append(record);
    }
    sim::MutexLock lock(mu_);
    stats_.bytes_sent += record.size();
  } catch (const rpc::TransportError&) {
    // The reader will (or already did) fail every pending future, including
    // this one; nothing more to do here.
  }
  return future;
}

void AsyncRpcChannel::flush() { batcher_->flush(); }

void AsyncRpcChannel::drain() {
  try {
    flush();
  } catch (const rpc::TransportError&) {
    // The reader notices the dead transport and fails every pending future;
    // drain's contract is only "everything completed", which still holds.
  }
  sim::MutexLock lock(mu_);
  // fail_all_locked empties pending_ atomically with setting dead_, so this
  // terminates both on normal completion and on mid-pipeline failure.
  while (!pending_.empty()) slots_cv_.wait(mu_);
}

std::uint32_t AsyncRpcChannel::outstanding() const {
  sim::MutexLock lock(mu_);
  return static_cast<std::uint32_t>(pending_.size());
}

ChannelStats AsyncRpcChannel::stats() const {
  sim::MutexLock lock(mu_);
  return stats_;
}

void AsyncRpcChannel::fail_all_locked(const std::exception_ptr& error) {
  dead_ = true;
  // Complete outside pending_ so promise callbacks never see a half-updated
  // map; promises have their own locks.
  std::map<std::uint32_t, PendingCall> orphans;
  orphans.swap(pending_);
  stats_.failed += orphans.size();
  for (auto& [xid, call] : orphans) call.promise.set_error(error);
}

void AsyncRpcChannel::reader_loop() {
  rpc::BufferedRecordReader reader(*transport_);
  std::vector<std::uint8_t> record;
  for (;;) {
    bool got = false;
    std::string reason;
    try {
      got = reader.read_record(record);
      if (!got) reason = "connection closed by peer";
    } catch (const rpc::TransportError& e) {
      reason = e.what();
    }
    if (!got) {
      sim::MutexLock lock(mu_);
      if (dead_reason_.empty()) dead_reason_ = reason;
      fail_all_locked(std::make_exception_ptr(rpc::TransportError(
          "connection failed with calls in flight: " + reason)));
      slots_cv_.notify_all();
      return;
    }

    // Pre-flight: the xid is the first word of every reply, so the record
    // can be matched to its call — and to the call's proven result bound —
    // before decode_reply parses or allocates anything. An oversized record
    // addressed to a bounded call can not be a valid reply; fail that call
    // without decoding.
    if (record.size() >= 4) {
      const std::uint32_t peek_xid = (std::uint32_t{record[0]} << 24) |
                                     (std::uint32_t{record[1]} << 16) |
                                     (std::uint32_t{record[2]} << 8) |
                                     std::uint32_t{record[3]};
      sim::MutexLock lock(mu_);
      const auto it = pending_.find(peek_xid);
      if (it != pending_.end() &&
          record.size() > it->second.max_reply_bytes) {
        ReplyPromise promise = it->second.promise;
        pending_.erase(it);
        ++stats_.preflight_rejected;
        ++stats_.failed;
        stats_.bytes_received += record.size();
        lock.unlock();
        promise.set_error(std::make_exception_ptr(rpc::RpcError(
            rpc::RpcError::Kind::kBadReply,
            "reply of " + std::to_string(record.size()) +
                " bytes exceeds the procedure's proven wire-size bound")));
        slots_cv_.notify_all();
        continue;
      }
    }

    rpc::ReplyMsg reply;
    try {
      reply = rpc::decode_reply(record);
    } catch (const std::exception&) {
      sim::MutexLock lock(mu_);
      ++stats_.unmatched;  // garbage record; not attributable to any call
      continue;
    }

    ReplyPromise promise;
    bool matched = false;
    {
      sim::MutexLock lock(mu_);
      stats_.bytes_received += record.size();
      const auto it = pending_.find(reply.xid);
      if (it != pending_.end()) {
        matched = true;
        promise = it->second.promise;
        pending_.erase(it);
        ++stats_.replies;
      } else {
        ++stats_.unmatched;
      }
    }
    if (matched) {
      // Reader-thread events carry the matched call's xid so the viewer can
      // connect them to the issuing thread's spans.
      const obs::ScopedXid trace_xid(reply.xid);
      obs::instant(obs::Layer::kChanReply, nullptr, record.size());
      if (auto error = reply_error(reply); error != nullptr) {
        {
          sim::MutexLock lock(mu_);
          ++stats_.failed;
        }
        promise.set_error(std::move(error));
      } else {
        promise.set_value(std::move(reply.results));
      }
      slots_cv_.notify_all();
    }
  }
}

}  // namespace cricket::rpcflow
