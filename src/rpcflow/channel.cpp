#include "rpcflow/channel.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace cricket::rpcflow {

namespace {

/// Capped exponential backoff with deterministic jitter; mirrors the
/// synchronous client's schedule (rpc/client.cpp) so the two retry layers
/// behave identically under the same policy.
std::chrono::nanoseconds backoff_for(const rpc::RetryPolicy& policy,
                                     std::uint32_t xid, std::uint32_t k) {
  const std::uint32_t shift = std::min(k - 1, 30u);
  auto step = policy.backoff_base * (1u << shift);
  step = std::min(step, policy.backoff_cap);
  sim::Xoshiro256ss jitter(policy.seed ^ xid ^ k);
  const double factor = 0.5 + 0.5 * jitter.next_double();
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(step.count()) * factor));
}

/// Maps a decoded reply to the caller-visible outcome: results on success,
/// an RpcError otherwise (same classification as the synchronous client).
std::exception_ptr reply_error(const rpc::ReplyMsg& reply) {
  using rpc::RpcError;
  if (reply.stat == rpc::ReplyStat::kDenied) {
    return std::make_exception_ptr(RpcError(
        RpcError::Kind::kDenied,
        reply.reject_stat == rpc::RejectStat::kRpcMismatch
            ? "call denied: RPC version mismatch"
            : "call denied: authentication error"));
  }
  switch (reply.accept_stat) {
    case rpc::AcceptStat::kSuccess:
      return nullptr;
    case rpc::AcceptStat::kProgUnavail:
      return std::make_exception_ptr(
          RpcError(RpcError::Kind::kProgUnavail, "program unavailable"));
    case rpc::AcceptStat::kProgMismatch: {
      const auto mi = reply.mismatch.value_or(rpc::MismatchInfo{});
      return std::make_exception_ptr(RpcError(
          RpcError::Kind::kProgMismatch,
          "program version mismatch (supported " + std::to_string(mi.low) +
              ".." + std::to_string(mi.high) + ")"));
    }
    case rpc::AcceptStat::kProcUnavail:
      return std::make_exception_ptr(
          RpcError(RpcError::Kind::kProcUnavail, "procedure unavailable"));
    case rpc::AcceptStat::kGarbageArgs:
      return std::make_exception_ptr(RpcError(
          RpcError::Kind::kGarbageArgs, "server could not decode arguments"));
    case rpc::AcceptStat::kSystemErr:
      return std::make_exception_ptr(
          RpcError(RpcError::Kind::kSystemErr, "server system error"));
    case rpc::AcceptStat::kQuotaExceeded:
      return std::make_exception_ptr(RpcError(
          RpcError::Kind::kQuotaExceeded,
          std::string("tenant quota exceeded: ") +
              rpc::quota_reason_name(reply.quota_reason)));
    case rpc::AcceptStat::kMigrating:
      return std::make_exception_ptr(
          RpcError(RpcError::Kind::kMigrating,
                   "tenant is being migrated; retry via reconnect"));
  }
  return std::make_exception_ptr(
      RpcError(RpcError::Kind::kBadReply, "invalid accept_stat"));
}

}  // namespace

AsyncRpcChannel::AsyncRpcChannel(std::unique_ptr<rpc::Transport> transport,
                                 std::uint32_t prog, std::uint32_t vers,
                                 ChannelOptions options)
    : transport_(std::move(transport)),
      prog_(prog),
      vers_(vers),
      options_(std::move(options)),
      batcher_(std::make_shared<CallBatcher>(*transport_, options_.batch,
                                             options_.max_fragment)),
      next_xid_(options_.initial_xid) {
  reader_ = std::thread([this] { reader_loop(); });
  if (options_.retry.enabled)
    retry_thread_ = std::thread([this] { retry_loop(); });
}

AsyncRpcChannel::~AsyncRpcChannel() {
  {
    sim::MutexLock lock(mu_);
    stopping_ = true;
  }
  retry_cv_.notify_all();
  if (retry_thread_.joinable()) retry_thread_.join();
  // Push out anything still buffered so the server can answer it, then
  // half-close: the server drains, replies, and closes its side, which ends
  // the reader loop (completing or failing every remaining future; with
  // stopping_ set it will not reconnect).
  batcher_.reset();
  try {
    sim::MutexLock lock(mu_);  // vs. the reader swapping transport_
    transport_->shutdown();
  } catch (...) {  // destructor must not throw
  }
  if (reader_.joinable()) reader_.join();
}

void AsyncRpcChannel::set_credential(rpc::OpaqueAuth cred) {
  sim::MutexLock lock(mu_);
  cred_ = std::move(cred);
}

ReplyFuture AsyncRpcChannel::call_raw_async(
    std::uint32_t proc, std::span<const std::uint8_t> args) {
  rpc::CallMsg call;
  call.prog = prog_;
  call.vers = vers_;
  call.proc = proc;
  call.args.assign(args.begin(), args.end());

  ReplyPromise promise;
  ReplyFuture future(promise.state());
  // Zero-deadline batcher diagnostic: with no background flusher, blocking
  // on a call still sitting in the batcher would hang forever. The hook
  // fires when a caller is about to block, flags the misuse, and flushes.
  if (options_.batch.enabled && options_.batch.deadline.count() == 0) {
    promise.state()->on_block =
        [weak = std::weak_ptr<CallBatcher>(batcher_)] {
          const auto batcher = weak.lock();
          if (!batcher || batcher->buffered() == 0) return;
          static obs::Counter& unflushed = obs::Registry::global().counter(
              "cricket_batch_unflushed_waits_total", {},
              "Futures blocked on while calls sat unflushed in a "
              "zero-deadline batcher (caller should flush first)");
          unflushed.inc();
          std::fprintf(stderr,
                       "rpcflow: waiting on a future while %u call(s) sit "
                       "unflushed in a zero-deadline batcher; flushing to "
                       "avoid a hang — call flush() before blocking\n",
                       batcher->buffered());
          try {
            batcher->flush();
          } catch (const rpc::TransportError&) {
            // Dead transport: the reader fails the futures; nothing to do.
          }
        };
  }
  const bool stash =
      options_.retry.enabled || static_cast<bool>(options_.reconnect);
  {
    sim::MutexLock lock(mu_);
    if (pending_.size() >=
        static_cast<std::size_t>(options_.max_outstanding)) {
      // The window is full of calls we may still be holding in the batcher;
      // push them out before blocking on their replies.
      lock.unlock();
      flush();
      lock.lock();
      while (!dead_ && pending_.size() >=
                           static_cast<std::size_t>(options_.max_outstanding))
        slots_cv_.wait(mu_);
    }
    if (dead_) {
      promise.set_error(std::make_exception_ptr(
          rpc::TransportError("channel closed: " + dead_reason_)));
      return future;
    }
    call.xid = next_xid_++;
    call.cred = cred_;
    // The reply pre-flight bound is decided now: once the reply arrives the
    // reader only has an xid, not a procedure number.
    std::uint64_t max_reply_bytes = rpc::kUnboundedWireSize;
    if (const auto* b =
            rpc::find_proc_bounds(options_.bounds, prog_, vers_, proc);
        b != nullptr && b->result_max != rpc::kUnboundedWireSize) {
      max_reply_bytes = b->result_max + rpc::kReplyHeaderMax;
    }
    PendingCall entry;
    entry.promise = promise;
    entry.max_reply_bytes = max_reply_bytes;
    if (stash) {
      const auto now = std::chrono::steady_clock::now();
      entry.expires = now + options_.retry.attempt_timeout;
      entry.hard_deadline =
          options_.retry.deadline > std::chrono::nanoseconds::zero()
              ? now + options_.retry.deadline
              : std::chrono::steady_clock::time_point::max();
    }
    pending_.emplace(call.xid, std::move(entry));
    ++stats_.calls;
    stats_.max_in_flight = std::max(
        stats_.max_in_flight, static_cast<std::uint32_t>(pending_.size()));
  }

  const obs::ScopedXid trace_xid(call.xid);
  std::vector<std::uint8_t> record;
  {
    obs::Span span(obs::Layer::kClientSerialize);
    record = rpc::encode_call(call);
    span.set_arg(record.size());
  }
  if (stash) {
    sim::MutexLock lock(mu_);
    // The entry can already be gone (failed by a racing disconnect).
    if (const auto it = pending_.find(call.xid); it != pending_.end())
      it->second.record = record;
  }
  try {
    {
      obs::Span span(obs::Layer::kChanSend, nullptr, record.size());
      batcher_->append(record);
    }
    sim::MutexLock lock(mu_);
    stats_.bytes_sent += record.size();
  } catch (const rpc::TransportError&) {
    // The reader will (or already did) fail every pending future, including
    // this one; nothing more to do here.
  }
  if (options_.retry.enabled) retry_cv_.notify_all();
  return future;
}

void AsyncRpcChannel::flush() { batcher_->flush(); }

void AsyncRpcChannel::drain() {
  try {
    flush();
  } catch (const rpc::TransportError&) {
    // The reader notices the dead transport and fails every pending future;
    // drain's contract is only "everything completed", which still holds.
  }
  sim::MutexLock lock(mu_);
  // fail_all_locked empties pending_ atomically with setting dead_, so this
  // terminates both on normal completion and on mid-pipeline failure.
  while (!pending_.empty()) slots_cv_.wait(mu_);
}

std::uint32_t AsyncRpcChannel::outstanding() const {
  sim::MutexLock lock(mu_);
  return static_cast<std::uint32_t>(pending_.size());
}

ChannelStats AsyncRpcChannel::stats() const {
  sim::MutexLock lock(mu_);
  return stats_;
}

void AsyncRpcChannel::retry_loop() {
  static obs::Counter& retries_total = obs::Registry::global().counter(
      "cricket_rpc_retries_total", {},
      "RPC call attempts beyond the first (timeout or transport failure)");
  static obs::Counter& deadline_total = obs::Registry::global().counter(
      "cricket_rpc_deadline_exceeded_total", {},
      "RPC calls failed after exhausting their deadline/attempt budget");

  using TimePoint = std::chrono::steady_clock::time_point;
  sim::MutexLock lock(mu_);
  for (;;) {
    if (stopping_ || dead_) return;
    TimePoint earliest = TimePoint::max();
    for (const auto& [xid, call] : pending_)
      if (!call.record.empty()) earliest = std::min(earliest, call.expires);
    if (earliest == TimePoint::max()) {
      retry_cv_.wait(mu_);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now < earliest) {
      retry_cv_.wait_until(mu_, earliest);
      continue;
    }

    // Sweep expired calls: resend those with budget left, fail the rest.
    std::vector<std::vector<std::uint8_t>> resend;
    std::vector<std::pair<ReplyPromise, std::uint32_t>> expired;
    for (auto it = pending_.begin(); it != pending_.end();) {
      auto& call = it->second;
      if (call.record.empty() || call.expires > now) {
        ++it;
        continue;
      }
      if (call.attempts >= options_.retry.max_attempts ||
          now >= call.hard_deadline) {
        expired.emplace_back(call.promise, it->first);
        ++stats_.deadline_exceeded;
        ++stats_.failed;
        deadline_total.inc();
        it = pending_.erase(it);
        continue;
      }
      ++call.attempts;
      call.expires = now + options_.retry.attempt_timeout +
                     backoff_for(options_.retry, it->first, call.attempts - 1);
      resend.push_back(call.record);
      ++stats_.retries;
      retries_total.inc();
      ++it;
    }
    const auto batcher = batcher_;
    lock.unlock();

    for (auto& [promise, xid] : expired) {
      promise.set_error(std::make_exception_ptr(rpc::RpcError(
          rpc::RpcError::Kind::kDeadlineExceeded,
          "xid " + std::to_string(xid) +
              ": deadline exceeded after retries")));
    }
    if (!expired.empty()) slots_cv_.notify_all();
    if (!resend.empty() && batcher) {
      try {
        // Same xid on the wire again: the server's duplicate-request cache
        // answers re-executions from cache, so this is safe for mutating
        // CUDA calls too.
        for (const auto& record : resend) batcher->append(record);
        batcher->flush();
      } catch (const rpc::TransportError&) {
        // Dead transport: the reader reconnects (resubmitting everything
        // pending) or fails the futures.
      }
    }
    lock.lock();
  }
}

void AsyncRpcChannel::fail_all_locked(const std::exception_ptr& error) {
  dead_ = true;
  // Complete outside pending_ so promise callbacks never see a half-updated
  // map; promises have their own locks.
  std::map<std::uint32_t, PendingCall> orphans;
  orphans.swap(pending_);
  stats_.failed += orphans.size();
  for (auto& [xid, call] : orphans) call.promise.set_error(error);
}

void AsyncRpcChannel::reader_loop() {
  static obs::Counter& reconnects_total = obs::Registry::global().counter(
      "cricket_rpc_reconnects_total", {},
      "Client transport reconnects after connection failure");
  static obs::Counter& stale_total = obs::Registry::global().counter(
      "cricket_rpc_stale_replies_total", {},
      "Replies for an older xid dropped while awaiting a retried call");
  static obs::Counter& migrating_total = obs::Registry::global().counter(
      "cricket_rpc_migrating_redirects_total", {},
      "kMigrating rejections absorbed by the retry layer (call re-sent "
      "through the reconnect factory)");

  rpc::BufferedRecordReader reader(*transport_);
  std::vector<std::uint8_t> record;
  for (;;) {
    bool got = false;
    std::string reason;
    try {
      got = reader.read_record(record);
      if (!got) reason = "connection closed by peer";
    } catch (const rpc::TransportError& e) {
      reason = e.what();
    }
    if (!got) {
      // Transparent reconnect: fresh transport, rebind the batcher, and
      // resubmit every in-flight xid on the new connection. The server's
      // duplicate-request cache turns already-executed resubmissions into
      // cache hits, so nothing runs twice.
      std::vector<std::vector<std::uint8_t>> resubmit;
      std::shared_ptr<CallBatcher> batcher;
      bool reconnected = false;
      {
        sim::MutexLock lock(mu_);
        if (!stopping_ && !dead_ && options_.reconnect &&
            stats_.reconnects < options_.max_reconnects) {
          std::unique_ptr<rpc::Transport> fresh;
          try {
            fresh = options_.reconnect();
          } catch (const std::exception&) {
          }
          if (fresh != nullptr && batcher_ != nullptr) {
            transport_ = std::move(fresh);
            batcher_->rebind(*transport_);
            ++stats_.reconnects;
            reconnects_total.inc();
            const auto now = std::chrono::steady_clock::now();
            for (auto& [xid, call] : pending_) {
              if (call.record.empty()) continue;
              resubmit.push_back(call.record);
              call.expires = now + options_.retry.attempt_timeout;
            }
            batcher = batcher_;
            reconnected = true;
          }
        }
        if (!reconnected) {
          if (dead_reason_.empty()) dead_reason_ = reason;
          fail_all_locked(std::make_exception_ptr(rpc::TransportError(
              "connection failed with calls in flight: " + reason)));
          slots_cv_.notify_all();
          retry_cv_.notify_all();
          return;
        }
      }
      retry_cv_.notify_all();
      try {
        for (const auto& r : resubmit) batcher->append(r);
        batcher->flush();
      } catch (const rpc::TransportError&) {
        // New connection died instantly; the next read attempt loops back
        // here and either reconnects again or gives up.
      }
      {
        sim::MutexLock lock(mu_);
        reader = rpc::BufferedRecordReader(*transport_);
      }
      continue;
    }

    // Pre-flight: the xid is the first word of every reply, so the record
    // can be matched to its call — and to the call's proven result bound —
    // before decode_reply parses or allocates anything. An oversized record
    // addressed to a bounded call can not be a valid reply; fail that call
    // without decoding.
    if (record.size() >= 4) {
      const std::uint32_t peek_xid = (std::uint32_t{record[0]} << 24) |
                                     (std::uint32_t{record[1]} << 16) |
                                     (std::uint32_t{record[2]} << 8) |
                                     std::uint32_t{record[3]};
      sim::MutexLock lock(mu_);
      const auto it = pending_.find(peek_xid);
      if (it != pending_.end() &&
          record.size() > it->second.max_reply_bytes) {
        ReplyPromise promise = it->second.promise;
        pending_.erase(it);
        ++stats_.preflight_rejected;
        ++stats_.failed;
        stats_.bytes_received += record.size();
        lock.unlock();
        promise.set_error(std::make_exception_ptr(rpc::RpcError(
            rpc::RpcError::Kind::kBadReply,
            "reply of " + std::to_string(record.size()) +
                " bytes exceeds the procedure's proven wire-size bound")));
        slots_cv_.notify_all();
        continue;
      }
    }

    rpc::ReplyMsg reply;
    try {
      reply = rpc::decode_reply(record);
    } catch (const std::exception&) {
      sim::MutexLock lock(mu_);
      ++stats_.unmatched;  // garbage record; not attributable to any call
      continue;
    }

    // A migrating freeze is answered at admission, before the call executes,
    // so instead of completing the future we keep the call pending and kick
    // the transport: the resulting read failure sends this loop through its
    // reconnect path, which resubmits every pending record (same xids)
    // through the factory — following the migration's redirect once it
    // flips. The backoff below self-throttles the reconnect storm while the
    // migration is still in its transfer phase.
    if (reply.stat == rpc::ReplyStat::kAccepted &&
        reply.accept_stat == rpc::AcceptStat::kMigrating) {
      std::uint32_t attempt = 1;
      {
        sim::MutexLock lock(mu_);
        stats_.bytes_received += record.size();
        const auto it = pending_.find(reply.xid);
        if (it == pending_.end()) {
          ++stats_.unmatched;
          stale_total.inc();
          continue;
        }
        auto& call = it->second;
        if (options_.reconnect && !call.record.empty() &&
            call.attempts < options_.retry.max_attempts &&
            std::chrono::steady_clock::now() < call.hard_deadline) {
          ++call.attempts;
          attempt = call.attempts;
          ++stats_.migrating_redirects;
        } else {
          // Out of budget (or no reconnect factory to follow the redirect
          // with): surface the freeze to the caller.
          ReplyPromise promise = call.promise;
          pending_.erase(it);
          ++stats_.replies;
          ++stats_.failed;
          lock.unlock();
          promise.set_error(reply_error(reply));
          slots_cv_.notify_all();
          continue;
        }
      }
      migrating_total.inc();
      std::this_thread::sleep_for(
          backoff_for(options_.retry, reply.xid, attempt - 1));
      sim::MutexLock lock(mu_);
      try {
        transport_->shutdown();
      } catch (...) {  // already dead is fine; the read below notices
      }
      continue;
    }

    ReplyPromise promise;
    bool matched = false;
    {
      sim::MutexLock lock(mu_);
      stats_.bytes_received += record.size();
      const auto it = pending_.find(reply.xid);
      if (it != pending_.end()) {
        matched = true;
        promise = it->second.promise;
        pending_.erase(it);
        ++stats_.replies;
      } else {
        ++stats_.unmatched;
        stale_total.inc();
      }
    }
    if (matched) {
      // Reader-thread events carry the matched call's xid so the viewer can
      // connect them to the issuing thread's spans.
      const obs::ScopedXid trace_xid(reply.xid);
      obs::instant(obs::Layer::kChanReply, nullptr, record.size());
      if (auto error = reply_error(reply); error != nullptr) {
        {
          sim::MutexLock lock(mu_);
          ++stats_.failed;
        }
        promise.set_error(std::move(error));
      } else {
        promise.set_value(std::move(reply.results));
      }
      slots_cv_.notify_all();
    }
  }
}

}  // namespace cricket::rpcflow
