// FaultyTransport: a Transport decorator that injects seeded faults into the
// send path at RPC-record granularity.
//
// Granularity matters: the record layer emits one logical message as several
// transport sends (header, then payload), and byte-level faults would mostly
// produce un-deframeable garbage that kills the connection instantly —
// realistic for a checksum-less link, useless for exercising recovery. This
// decorator reassembles complete record-marked messages from the stream of
// sends and then drops, duplicates, reorders, corrupts, or delays whole
// messages (and injects hard resets / partition windows), preserving record
// framing so both peers survive and the RPC retry/duplicate-cache machinery
// above gets exercised. Wrap both ends of a connection (with decorrelated
// seeds) to fault both directions.
//
// Determinism: decisions come from a Xoshiro256ss seeded by FaultSpec::seed,
// with a fixed number of draws per message for the decision phase, so the
// same seed over the same message sequence injects the same faults.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faultnet/fault_spec.hpp"
#include "rpc/transport.hpp"
#include "sim/annotations.hpp"
#include "sim/rng.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::faultnet {

class FaultyTransport final : public rpc::Transport {
 public:
  /// `clock`: when non-null, delay faults charge virtual time on it;
  /// when null they sleep real (wall) time — what the deadline/retry paths
  /// need, since per-call deadlines run on steady_clock.
  FaultyTransport(std::unique_ptr<rpc::Transport> inner, FaultSpec spec,
                  sim::SimClock* clock = nullptr);
  ~FaultyTransport() override;

  void send(std::span<const std::uint8_t> data) override
      CRICKET_EXCLUDES(mu_);
  std::size_t recv(std::span<std::uint8_t> out) override;
  bool set_recv_timeout(std::chrono::nanoseconds timeout) override;
  void shutdown() override CRICKET_EXCLUDES(mu_);

  [[nodiscard]] FaultStats stats() const CRICKET_EXCLUDES(mu_);
  [[nodiscard]] rpc::Transport& inner() noexcept { return *inner_; }

 private:
  /// Applies the fault decision chain to one complete record-marked message.
  void process_message(std::vector<std::uint8_t> msg) CRICKET_REQUIRES(mu_);
  void forward(const std::vector<std::uint8_t>& msg) CRICKET_REQUIRES(mu_);
  /// Randomizes a few payload bytes, walking fragment headers so framing
  /// survives (models corruption caught above the link layer).
  void corrupt_payload(std::vector<std::uint8_t>& msg) CRICKET_REQUIRES(mu_);
  [[nodiscard]] bool budget_left() const CRICKET_REQUIRES(mu_) {
    return spec_.max_faults == 0 || stats_.injected() < spec_.max_faults;
  }

  std::unique_ptr<rpc::Transport> inner_;
  const FaultSpec spec_;
  sim::SimClock* clock_;

  mutable sim::Mutex mu_;
  sim::Xoshiro256ss rng_ CRICKET_GUARDED_BY(mu_);
  /// Bytes accepted by send() but not yet forming a complete message.
  std::vector<std::uint8_t> acc_ CRICKET_GUARDED_BY(mu_);
  /// Message withheld by a reorder fault, released behind the next forward.
  std::vector<std::uint8_t> held_ CRICKET_GUARDED_BY(mu_);
  bool has_held_ CRICKET_GUARDED_BY(mu_) = false;
  std::uint64_t msg_index_ CRICKET_GUARDED_BY(mu_) = 0;
  bool reset_injected_ CRICKET_GUARDED_BY(mu_) = false;
  FaultStats stats_ CRICKET_GUARDED_BY(mu_);
};

}  // namespace cricket::faultnet
