#include "faultnet/fault_spec.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace cricket::faultnet {

namespace {

double parse_probability(std::string_view key, std::string_view value) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(std::string(value), &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("CRICKET_FAULTS: bad number for '" +
                                std::string(key) + "': " + std::string(value));
  }
  if (pos != value.size() || p < 0.0 || p > 1.0)
    throw std::invalid_argument("CRICKET_FAULTS: '" + std::string(key) +
                                "' must be a probability in [0,1], got " +
                                std::string(value));
  return p;
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(std::string(value), &pos, 0);
  } catch (const std::exception&) {
    throw std::invalid_argument("CRICKET_FAULTS: bad integer for '" +
                                std::string(key) + "': " + std::string(value));
  }
  if (pos != value.size())
    throw std::invalid_argument("CRICKET_FAULTS: bad integer for '" +
                                std::string(key) + "': " + std::string(value));
  return v;
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view spec) {
  FaultSpec out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view item =
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    start = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("CRICKET_FAULTS: expected key=value, got '" +
                                  std::string(item) + "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "drop") {
      out.drop = parse_probability(key, value);
    } else if (key == "dup") {
      out.dup = parse_probability(key, value);
    } else if (key == "reorder") {
      out.reorder = parse_probability(key, value);
    } else if (key == "corrupt") {
      out.corrupt = parse_probability(key, value);
    } else if (key == "delay") {
      out.delay = parse_probability(key, value);
    } else if (key == "reset") {
      out.reset = parse_probability(key, value);
    } else if (key == "delay_us") {
      out.delay_ns = static_cast<sim::Nanos>(parse_u64(key, value)) *
                     sim::kMicrosecond;
    } else if (key == "partition_after") {
      out.partition_after = parse_u64(key, value);
    } else if (key == "partition_len") {
      out.partition_len = parse_u64(key, value);
    } else if (key == "seed") {
      out.seed = parse_u64(key, value);
    } else if (key == "max_faults") {
      out.max_faults = parse_u64(key, value);
    } else {
      throw std::invalid_argument("CRICKET_FAULTS: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  return out;
}

std::optional<FaultSpec> FaultSpec::from_env(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return parse(value);
}

FaultSpec FaultSpec::from_env_or(std::string_view fallback, const char* var) {
  if (auto spec = from_env(var)) return *spec;
  return parse(fallback);
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  const char* sep = "";
  const auto emit = [&](const char* key, auto value) {
    out << sep << key << '=' << value;
    sep = ",";
  };
  if (drop > 0) emit("drop", drop);
  if (dup > 0) emit("dup", dup);
  if (reorder > 0) emit("reorder", reorder);
  if (corrupt > 0) emit("corrupt", corrupt);
  if (delay > 0) emit("delay", delay);
  if (reset > 0) emit("reset", reset);
  if (delay_ns != 2000 * sim::kMicrosecond)
    emit("delay_us", delay_ns / sim::kMicrosecond);
  if (partition_after > 0) emit("partition_after", partition_after);
  if (partition_len > 0) emit("partition_len", partition_len);
  emit("seed", seed);
  if (max_faults > 0) emit("max_faults", max_faults);
  return out.str();
}

}  // namespace cricket::faultnet
