#include "faultnet/frame_faults.hpp"

#include <utility>

namespace cricket::faultnet {

void FrameFaultInjector::operator()(std::vector<std::uint8_t> frame) {
  ++stats_.messages;
  ++frame_index_;

  // Fixed draw count per frame (see FaultyTransport::process_message).
  const double d_drop = rng_.next_double();
  const double d_dup = rng_.next_double();
  const double d_reorder = rng_.next_double();
  const double d_corrupt = rng_.next_double();

  if (const auto it = forced_drops_.find(frame_index_);
      it != forced_drops_.end()) {
    forced_drops_.erase(it);
    ++stats_.dropped;
    return;
  }
  if (spec_.partition_len > 0 && frame_index_ > spec_.partition_after &&
      frame_index_ <= spec_.partition_after + spec_.partition_len &&
      budget_left()) {
    ++stats_.partitioned;
    return;
  }
  if (d_drop < spec_.drop && budget_left()) {
    ++stats_.dropped;
    return;
  }
  if (d_corrupt < spec_.corrupt && budget_left() && !frame.empty()) {
    // One byte flip; the receiver's TCP checksum verification counts it as
    // segments_dropped, turning corruption into loss — as on a real link.
    frame[static_cast<std::size_t>(rng_.next() % frame.size())] ^=
        static_cast<std::uint8_t>(1 + rng_.next() % 255u);
    ++stats_.corrupted;
  }
  if (d_reorder < spec_.reorder && budget_left() && !has_held_) {
    ++stats_.reordered;
    held_ = std::move(frame);
    has_held_ = true;
    return;
  }

  sink_(frame);
  ++stats_.forwarded;
  if (d_dup < spec_.dup && budget_left()) {
    ++stats_.duplicated;
    sink_(std::move(frame));
    ++stats_.forwarded;
  }
  flush();
}

void FrameFaultInjector::flush() {
  if (!has_held_) return;
  has_held_ = false;
  sink_(std::move(held_));
  held_.clear();
  ++stats_.forwarded;
}

}  // namespace cricket::faultnet
