// FrameFaultInjector: faultnet at Ethernet-frame granularity for minitcp.
//
// Wraps a TcpConnection frame sink and applies the FaultSpec per frame —
// drop, duplicate, reorder (hold-one), corrupt (byte flip the TCP checksum
// catches on the far side), and a partition window — plus `force_drop`, a
// deterministic per-index kill switch the loss-recovery regression tests use
// to stage exact scenarios (e.g. two consecutive losses stalling on the same
// ACK, the dup_ack_count_ reset bug).
//
// Single-threaded by design, like the minitcp state machine it decorates:
// frames enter from the same thread that drives on_frame/poll, so state
// here needs no lock (and taking one would just hide misuse from TSan).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "faultnet/fault_spec.hpp"
#include "sim/rng.hpp"

namespace cricket::faultnet {

class FrameFaultInjector {
 public:
  using FrameSink = std::function<void(std::vector<std::uint8_t>)>;

  FrameFaultInjector(FaultSpec spec, FrameSink sink)
      : spec_(spec), sink_(std::move(sink)), rng_(spec.seed) {}

  /// Drops the `index`-th frame (1-based, counted across this injector's
  /// lifetime) regardless of probabilities. Callable any time before that
  /// frame passes through.
  void force_drop(std::uint64_t index) { forced_drops_.insert(index); }

  /// The decorated sink: feed this to TcpConnection as its FrameSink.
  void operator()(std::vector<std::uint8_t> frame);

  /// Releases a frame withheld by a reorder fault (also flushed
  /// automatically behind the next forwarded frame).
  void flush();

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] bool budget_left() const noexcept {
    return spec_.max_faults == 0 || stats_.injected() < spec_.max_faults;
  }

  FaultSpec spec_;
  FrameSink sink_;
  sim::Xoshiro256ss rng_;
  std::set<std::uint64_t> forced_drops_;
  std::vector<std::uint8_t> held_;
  bool has_held_ = false;
  std::uint64_t frame_index_ = 0;
  FaultStats stats_;
};

}  // namespace cricket::faultnet
