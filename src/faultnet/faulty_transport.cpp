#include "faultnet/faulty_transport.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"

namespace cricket::faultnet {

namespace {

struct InjectedCounters {
  obs::Counter& dropped;
  obs::Counter& duplicated;
  obs::Counter& reordered;
  obs::Counter& corrupted;
  obs::Counter& delayed;
  obs::Counter& partitioned;
  obs::Counter& resets;

  static InjectedCounters& get() {
    static InjectedCounters counters{
        obs::Registry::global().counter("faultnet_injected_total",
                                        {{"kind", "drop"}},
                                        "Faults injected by faultnet"),
        obs::Registry::global().counter("faultnet_injected_total",
                                        {{"kind", "dup"}}),
        obs::Registry::global().counter("faultnet_injected_total",
                                        {{"kind", "reorder"}}),
        obs::Registry::global().counter("faultnet_injected_total",
                                        {{"kind", "corrupt"}}),
        obs::Registry::global().counter("faultnet_injected_total",
                                        {{"kind", "delay"}}),
        obs::Registry::global().counter("faultnet_injected_total",
                                        {{"kind", "partition"}}),
        obs::Registry::global().counter("faultnet_injected_total",
                                        {{"kind", "reset"}})};
    return counters;
  }
};

/// Sanity bound while reassembling: a single fragment above the record
/// layer's own cap means we are not looking at record-marked traffic.
constexpr std::uint32_t kMaxFragment = 1u << 30;

}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<rpc::Transport> inner,
                                 FaultSpec spec, sim::SimClock* clock)
    : inner_(std::move(inner)),
      spec_(spec),
      clock_(clock),
      rng_(spec.seed) {}

FaultyTransport::~FaultyTransport() {
  try {
    FaultyTransport::shutdown();
  } catch (...) {  // destructor must not throw
  }
}

std::size_t FaultyTransport::recv(std::span<std::uint8_t> out) {
  return inner_->recv(out);
}

bool FaultyTransport::set_recv_timeout(std::chrono::nanoseconds timeout) {
  return inner_->set_recv_timeout(timeout);
}

FaultStats FaultyTransport::stats() const {
  sim::MutexLock lock(mu_);
  return stats_;
}

void FaultyTransport::send(std::span<const std::uint8_t> data) {
  sim::MutexLock lock(mu_);
  if (reset_injected_) throw rpc::TransportError("faultnet: connection reset");
  acc_.insert(acc_.end(), data.begin(), data.end());

  // Extract complete record-marked messages (fragments up to and including
  // one with the last-fragment bit) from the front of the accumulator.
  for (;;) {
    std::size_t off = 0;
    bool complete = false;
    while (acc_.size() >= off + 4) {
      const std::uint32_t header =
          (std::uint32_t{acc_[off]} << 24) | (std::uint32_t{acc_[off + 1]} << 16) |
          (std::uint32_t{acc_[off + 2]} << 8) | std::uint32_t{acc_[off + 3]};
      const std::uint32_t len = header & 0x7FFFFFFFu;
      if (len > kMaxFragment) {
        // Not record-marked traffic after all; stop pretending and pass the
        // whole backlog through untouched.
        inner_->send(acc_);
        acc_.clear();
        return;
      }
      if (acc_.size() < off + 4 + len) break;  // fragment incomplete
      off += 4 + len;
      if ((header & 0x80000000u) != 0) {
        complete = true;
        break;
      }
    }
    if (!complete) return;  // wait for more bytes
    std::vector<std::uint8_t> msg(
        acc_.begin(), acc_.begin() + static_cast<std::ptrdiff_t>(off));
    acc_.erase(acc_.begin(), acc_.begin() + static_cast<std::ptrdiff_t>(off));
    process_message(std::move(msg));
  }
}

void FaultyTransport::forward(const std::vector<std::uint8_t>& msg) {
  inner_->send(msg);
  ++stats_.forwarded;
}

void FaultyTransport::corrupt_payload(std::vector<std::uint8_t>& msg) {
  // Collect payload byte ranges (everything except the 4-byte headers).
  std::size_t payload_bytes = 0;
  for (std::size_t off = 0; off + 4 <= msg.size();) {
    const std::uint32_t header =
        (std::uint32_t{msg[off]} << 24) | (std::uint32_t{msg[off + 1]} << 16) |
        (std::uint32_t{msg[off + 2]} << 8) | std::uint32_t{msg[off + 3]};
    const std::uint32_t len = header & 0x7FFFFFFFu;
    payload_bytes += len;
    off += 4 + len;
  }
  if (payload_bytes == 0) return;
  // Flip up to four payload bytes to random non-identical values. The record
  // stays deframeable; its content no longer decodes as a valid RPC message,
  // which is what link-layer corruption looks like once checksums are
  // simulated: the message is effectively lost, and the peers live on.
  const std::size_t flips =
      1 + static_cast<std::size_t>(rng_.next() % 4u);
  for (std::size_t f = 0; f < flips; ++f) {
    std::size_t target = static_cast<std::size_t>(rng_.next() % payload_bytes);
    for (std::size_t off = 0; off + 4 <= msg.size();) {
      const std::uint32_t header = (std::uint32_t{msg[off]} << 24) |
                                   (std::uint32_t{msg[off + 1]} << 16) |
                                   (std::uint32_t{msg[off + 2]} << 8) |
                                   std::uint32_t{msg[off + 3]};
      const std::uint32_t len = header & 0x7FFFFFFFu;
      if (target < len) {
        msg[off + 4 + target] ^=
            static_cast<std::uint8_t>(1 + rng_.next() % 255u);
        break;
      }
      target -= len;
      off += 4 + len;
    }
  }
}

void FaultyTransport::process_message(std::vector<std::uint8_t> msg) {
  auto& counters = InjectedCounters::get();
  ++stats_.messages;
  ++msg_index_;

  // Fixed draw count per message: outcomes never shift the decision stream,
  // so a given seed injects the same fault at the same message index no
  // matter which earlier faults fired.
  const double d_drop = rng_.next_double();
  const double d_dup = rng_.next_double();
  const double d_reorder = rng_.next_double();
  const double d_corrupt = rng_.next_double();
  const double d_delay = rng_.next_double();
  const double d_reset = rng_.next_double();

  if (spec_.partition_len > 0 && msg_index_ > spec_.partition_after &&
      msg_index_ <= spec_.partition_after + spec_.partition_len &&
      budget_left()) {
    ++stats_.partitioned;
    counters.partitioned.inc();
    return;  // blackholed
  }
  if (d_reset < spec_.reset && budget_left()) {
    ++stats_.resets;
    counters.resets.inc();
    reset_injected_ = true;
    try {
      inner_->shutdown();
    } catch (const rpc::TransportError&) {
    }
    throw rpc::TransportError("faultnet: injected connection reset");
  }
  if (d_drop < spec_.drop && budget_left()) {
    ++stats_.dropped;
    counters.dropped.inc();
    return;
  }
  if (d_corrupt < spec_.corrupt && budget_left()) {
    ++stats_.corrupted;
    counters.corrupted.inc();
    corrupt_payload(msg);
  }
  if (d_delay < spec_.delay && budget_left()) {
    ++stats_.delayed;
    counters.delayed.inc();
    if (clock_ != nullptr) {
      clock_->advance(spec_.delay_ns);
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(spec_.delay_ns));
    }
  }
  if (d_reorder < spec_.reorder && budget_left() && !has_held_) {
    ++stats_.reordered;
    counters.reordered.inc();
    held_ = std::move(msg);
    has_held_ = true;
    return;  // released behind the next forwarded message
  }

  forward(msg);
  if (d_dup < spec_.dup && budget_left()) {
    ++stats_.duplicated;
    counters.duplicated.inc();
    forward(msg);
  }
  if (has_held_) {
    forward(held_);
    held_.clear();
    has_held_ = false;
  }
}

void FaultyTransport::shutdown() {
  sim::MutexLock lock(mu_);
  // Flush anything withheld so an orderly close never swallows messages the
  // fault plane only meant to disturb.
  if (!reset_injected_) {
    try {
      if (has_held_) {
        forward(held_);
        held_.clear();
        has_held_ = false;
      }
      if (!acc_.empty()) {
        inner_->send(acc_);
        acc_.clear();
      }
    } catch (const rpc::TransportError&) {
      // Peer already gone; nothing to flush to.
    }
  }
  inner_->shutdown();
}

}  // namespace cricket::faultnet
