// faultnet: deterministic, seeded fault injection for the simulated network.
//
// The paper's measurements assume the unikernel guest and the Cricket server
// are connected by a network that works; this module supplies the network
// that doesn't. A FaultSpec describes a reproducible fault mix — drop,
// duplicate, reorder, corrupt, delay, partition, reset — that the
// FaultyTransport decorator (faulty_transport.hpp) and the minitcp frame
// hook (frame_faults.hpp) apply from a seeded generator, so every test or
// bench run with the same spec sees byte-identical fault sequences.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/sim_clock.hpp"

namespace cricket::faultnet {

/// Parsed fault configuration. Env-parseable, e.g.
///   CRICKET_FAULTS="drop=0.05,dup=0.01,seed=42"
/// Keys: drop, dup, reorder, corrupt, delay, reset (probabilities in [0,1]);
/// delay_us (injected delay per delay event, default 2000); partition_after
/// + partition_len (blackhole window in message/frame indices); seed;
/// max_faults (total injection budget, 0 = unlimited).
struct FaultSpec {
  double drop = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  double delay = 0.0;
  double reset = 0.0;
  sim::Nanos delay_ns = 2000 * sim::kMicrosecond;
  /// Messages (after+1 .. after+len, 1-based index) vanish: a hard
  /// partition that heals. len == 0 disables.
  std::uint64_t partition_after = 0;
  std::uint64_t partition_len = 0;
  std::uint64_t seed = 42;
  std::uint64_t max_faults = 0;  // 0 = unlimited

  /// True when this spec can inject anything at all.
  [[nodiscard]] bool any() const noexcept {
    return drop > 0 || dup > 0 || reorder > 0 || corrupt > 0 || delay > 0 ||
           reset > 0 || partition_len > 0;
  }

  /// Same fault mix, different seed — used to decorrelate the two
  /// directions of one connection.
  [[nodiscard]] FaultSpec with_seed(std::uint64_t s) const {
    FaultSpec out = *this;
    out.seed = s;
    return out;
  }

  /// Parses "key=value,key=value". Throws std::invalid_argument on unknown
  /// keys, malformed numbers, or out-of-range probabilities.
  static FaultSpec parse(std::string_view spec);

  /// Reads `var` (default CRICKET_FAULTS); nullopt when unset or empty.
  static std::optional<FaultSpec> from_env(const char* var = "CRICKET_FAULTS");

  /// from_env falling back to parse(fallback) — how fault-matrix tests honor
  /// an externally supplied CRICKET_FAULTS while staying self-sufficient.
  static FaultSpec from_env_or(std::string_view fallback,
                               const char* var = "CRICKET_FAULTS");

  /// Canonical round-trippable form (only non-default keys).
  [[nodiscard]] std::string to_string() const;
};

/// What one injector actually did. Mirrored into the global obs registry as
/// faultnet_injected_total{kind}.
struct FaultStats {
  std::uint64_t messages = 0;   // messages seen by the injector
  std::uint64_t forwarded = 0;  // messages that reached the wire (incl. dups)
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t partitioned = 0;
  std::uint64_t resets = 0;

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return dropped + duplicated + reordered + corrupted + delayed +
           partitioned + resets;
  }
};

}  // namespace cricket::faultnet
