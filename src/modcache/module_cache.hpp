// ModuleCache: server-side content-addressed cache of module images.
//
// At fleet scale most tenants launch the same kernels, yet the paper's
// Cricket server receives the full multi-MB fatbin on every cuModuleLoad
// (ROADMAP item 5). The cache keys images by the first 64 bits of
// SHA-256 over their raw bytes: clients first try
// rpc_module_load_cached(hash, proof) — a hit answers a ModuleId without
// the upload, a miss answers cuda::Error::kCacheMiss and the client falls
// back to the full rpc_module_load, which populates the cache.
//
// Trust model (the cache spans tenants, so every hand-out is a boundary
// crossing):
//   - The key is derived from SHA-256, so crafting a second image that
//     collides with a known one is a 2^64 brute-force over a cryptographic
//     hash, not the algebra exercise it would be for FNV et al.
//   - Knowing a hash proves nothing: acquire() additionally demands a
//     proof of possession — SHA-256 over (domain tag, tenant name, image)
//     — verified against the resident bytes (or, for migration-seeded
//     entries, against the proof the source fleet computed from the real
//     bytes). A probe without a valid proof is answered exactly like a
//     miss, so the cache is not an oracle for which images other tenants
//     have loaded, and a bare hash can never re-instantiate another
//     tenant's private image.
//   - insert() byte-verifies the upload against the resident entry bytes;
//     a mismatch (a real collision, or a poisoning attempt) is answered
//     with Outcome::kCollision and nothing is substituted or adopted —
//     the caller keeps its freshly loaded module privately.
//
// Lifetime model (DESIGN.md §15):
//   - One Entry per content hash; one Instance per (entry, device) holding
//     the gpusim ModuleId and a reference count of sessions using it.
//   - Sessions acquire references; rpc_module_unload and session teardown
//     release them. The device module is NOT unloaded when references hit
//     zero — the entry stays warm for the next tenant.
//   - Quota: each (tenant, image) pair is charged the image size through
//     tenancy::try_charge_memory exactly once, on the tenant's first live
//     reference, and released on its last — per unique image, not per load.
//   - Eviction is LRU over entries with zero live references, bounded by a
//     byte budget; evicting unloads the device instances via the injected
//     unloader. Referenced entries never count as evictable, so the budget
//     can be temporarily exceeded while everything resident is live.
//   - Migration: seed() registers an instance restored from a snapshot
//     (image bytes unknown — hash, size, and the exporting tenant's
//     possession proof travel in the migration image); adopt()
//     re-references it for an adopted session without re-charging, because
//     the imported tenant accounting already includes the charge.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "modcache/sha256.hpp"
#include "sim/annotations.hpp"
#include "tenancy/session_manager.hpp"

namespace cricket::modcache {

/// First 64 bits (big-endian) of SHA-256 over the raw image bytes — the
/// wire-sized cache key. Client and server compute it independently, so
/// the function is owned here.
[[nodiscard]] std::uint64_t hash_image(
    std::span<const std::uint8_t> bytes) noexcept;

/// Proof of possession a probe must present: SHA-256 over a domain tag,
/// the probing tenant's name (length-prefixed), and the full image bytes.
/// Only a holder of the bytes can compute it; binding the tenant name in
/// makes one tenant's observed proof worthless from any other identity.
[[nodiscard]] Digest possession_proof(
    std::string_view tenant_name, std::span<const std::uint8_t> image) noexcept;

struct ModuleCacheOptions {
  /// LRU byte budget for resident image bytes. Entries with live
  /// references are never evicted and may exceed the budget.
  std::uint64_t max_bytes = std::uint64_t{256} << 20;
};

/// Point-in-time accounting snapshot (mirrors the cricket_modcache_* obs
/// counters, plus residency, for tests and benches).
struct ModuleCacheStats {
  /// Probes answered with an immediate reference (no upload, no load).
  std::uint64_t hits = 0;
  /// Probes that fell back to the full upload (unknown hash, byte-less
  /// entry, or a rejected proof — indistinguishable on the wire).
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  /// Probes answered kNeedInstance: the bytes were resident but the device
  /// instance had to be created first. Counted separately from hits so the
  /// hit counter only ever reflects references actually taken.
  std::uint64_t promotions = 0;
  /// Uploads whose bytes disagreed with the resident entry for their hash
  /// (collision or poisoning attempt) — nothing was cached or substituted.
  std::uint64_t collisions = 0;
  /// Probes presenting a proof that failed verification (also counted as
  /// misses: the wire answer is the same kCacheMiss).
  std::uint64_t proof_rejects = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_entries = 0;
};

class ModuleCache {
 public:
  /// Physically unloads one device instance; called at eviction and
  /// destruction. Must not throw (unload of an already-gone module is a
  /// no-op at this layer).
  using Unloader =
      std::function<void(std::uint32_t device, std::uint64_t module)>;

  enum class Outcome : std::uint8_t {
    kHit,            ///< reference taken, `module` valid
    kMiss,           ///< unknown hash, unverifiable entry, or bad proof
    kNeedInstance,   ///< entry known with bytes, but not loaded on `device`
                     ///< — caller loads from image_bytes() and insert()s
    kQuotaExceeded,  ///< tenant cannot cover the image size
    kCollision,      ///< uploaded bytes contradict the resident entry —
                     ///< nothing cached; the caller keeps its module private
  };

  struct Result {
    Outcome outcome = Outcome::kMiss;
    std::uint64_t module = 0;
    /// Image size of the entry (valid on kHit) — what the tenant was
    /// charged and what migration export records.
    std::uint64_t size = 0;
  };

  /// `tenants` may be null (no quota accounting, e.g. tenancy disabled).
  ModuleCache(ModuleCacheOptions options, tenancy::SessionManager* tenants,
              Unloader unload);
  ~ModuleCache();

  ModuleCache(const ModuleCache&) = delete;
  ModuleCache& operator=(const ModuleCache&) = delete;

  /// Takes a reference to `hash` on `device` for `tenant` (kInvalidTenant
  /// for unbound sessions: no charging). `proof` must be a 32-byte
  /// possession_proof computed under `tenant_name`; anything else — wrong
  /// size, wrong bytes, or an entry with nothing to verify against — is
  /// answered kMiss, indistinguishable from an unknown hash. First tenant
  /// reference charges the image size; a refused charge takes no reference.
  [[nodiscard]] Result acquire(std::uint64_t hash, std::uint32_t device,
                               tenancy::TenantId tenant,
                               std::string_view tenant_name,
                               std::span<const std::uint8_t> proof)
      CRICKET_EXCLUDES(mu_);

  /// Registers a freshly loaded device module under its content hash and
  /// takes the caller's reference, possibly evicting idle entries to make
  /// room. The hash MUST be computed by the caller from `image` itself
  /// (never taken from the wire). If the entry already holds bytes that
  /// differ from `image` — or a migration-seeded proof the upload cannot
  /// reproduce — the upload is refused with Outcome::kCollision and nothing
  /// changes: the canonical bytes for a key are immutable once resident,
  /// so cache poisoning can never substitute one tenant's module for
  /// another's. If another session raced the same load, the earlier
  /// instance wins: the caller's redundant `module` is unloaded and the
  /// canonical id returned. Outcome::kQuotaExceeded means nothing was
  /// inserted or referenced — the caller unloads its module and surfaces
  /// the error.
  [[nodiscard]] Result insert(std::uint64_t hash,
                              std::span<const std::uint8_t> image,
                              std::uint32_t device, std::uint64_t module,
                              tenancy::TenantId tenant) CRICKET_EXCLUDES(mu_);

  /// Drops one (tenant, hash, device) reference. The last tenant reference
  /// releases the quota charge; the device module stays loaded (warm) until
  /// eviction. Unknown references are ignored.
  void release(std::uint64_t hash, std::uint32_t device,
               tenancy::TenantId tenant) CRICKET_EXCLUDES(mu_);

  /// Migration import: registers an instance restored by restore_merge with
  /// zero references. The image bytes are not known on the target (only
  /// hash, size, and the source-computed possession proof travel), so
  /// cross-device kNeedInstance promotion is unavailable until some client
  /// re-uploads the image; probes by the migrated tenant verify against the
  /// imported proof. A zero `proof` stores nothing — the entry then answers
  /// every probe kMiss until a full upload makes it verifiable.
  void seed(std::uint64_t hash, std::uint64_t size, std::uint32_t device,
            std::uint64_t module, std::string_view tenant_name,
            const Digest& proof) CRICKET_EXCLUDES(mu_);

  /// Migration adoption: re-references a seeded instance for an adopted
  /// session WITHOUT charging — the imported tenant accounting already
  /// includes the source's charge (release still releases it). Returns the
  /// instance id, or nullopt when (hash, device) is not cached — the caller
  /// falls back to plain per-session ownership.
  [[nodiscard]] std::optional<std::uint64_t> adopt(std::uint64_t hash,
                                                   std::uint32_t device,
                                                   tenancy::TenantId tenant)
      CRICKET_EXCLUDES(mu_);

  /// The possession proof for (`hash`, `tenant_name`): computed (and
  /// memoized) from the resident bytes, or the imported proof for a
  /// migration-seeded entry. nullopt when the entry is unknown or has
  /// nothing to derive a proof from. Migration export records this so a
  /// warm target can keep answering the migrated tenant's probes.
  [[nodiscard]] std::optional<Digest> proof_for(std::uint64_t hash,
                                                std::string_view tenant_name)
      CRICKET_EXCLUDES(mu_);

  /// Whether `tenant` currently holds at least one reference to `hash`
  /// (i.e. is already charged for it) — lets the server skip the quota
  /// pre-flight for re-loads of an image the tenant already pays for.
  [[nodiscard]] bool tenant_holds(std::uint64_t hash,
                                  tenancy::TenantId tenant) const
      CRICKET_EXCLUDES(mu_);

  /// The cached image bytes for `hash` (copy), if resident with bytes.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> image_bytes(
      std::uint64_t hash) const CRICKET_EXCLUDES(mu_);

  [[nodiscard]] ModuleCacheStats stats() const CRICKET_EXCLUDES(mu_);

 private:
  struct Instance {
    std::uint64_t module = 0;
    std::uint32_t refs = 0;
  };
  struct Entry {
    std::uint64_t size = 0;
    std::vector<std::uint8_t> bytes;  // empty for migration-seeded entries
    std::map<std::uint32_t, Instance> instances;
    std::map<tenancy::TenantId, std::uint32_t> tenant_refs;
    /// Possession proofs by tenant name: memoized from resident bytes, or
    /// imported by seed() for byte-less entries.
    std::map<std::string, Digest, std::less<>> proofs;
    std::uint64_t last_use = 0;
  };

  /// Bumps the (tenant, hash) refcount, charging on 0 -> 1 unless
  /// `charged_elsewhere` (migration adoption). False means the charge was
  /// refused and no reference was taken.
  [[nodiscard]] bool ref_tenant_locked(Entry& entry, tenancy::TenantId tenant,
                                       bool charged_elsewhere)
      CRICKET_REQUIRES(mu_);
  /// True when `proof` matches the entry's content for `tenant_name` —
  /// computed from resident bytes (then memoized) or checked against an
  /// imported proof. Byte-less entries with no imported proof for this
  /// tenant verify nothing and always fail.
  [[nodiscard]] bool verify_proof_locked(Entry& entry,
                                         std::string_view tenant_name,
                                         std::span<const std::uint8_t> proof)
      CRICKET_REQUIRES(mu_);
  void evict_idle_locked() CRICKET_REQUIRES(mu_);
  [[nodiscard]] static bool idle(const Entry& entry) noexcept;

  const ModuleCacheOptions options_;
  tenancy::SessionManager* const tenants_;
  const Unloader unload_;

  mutable sim::Mutex mu_;
  std::map<std::uint64_t, Entry> entries_ CRICKET_GUARDED_BY(mu_);
  std::uint64_t use_seq_ CRICKET_GUARDED_BY(mu_) = 0;
  std::uint64_t resident_bytes_ CRICKET_GUARDED_BY(mu_) = 0;
  ModuleCacheStats stats_ CRICKET_GUARDED_BY(mu_);
};

}  // namespace cricket::modcache
