// ModuleCache: server-side content-addressed cache of module images.
//
// At fleet scale most tenants launch the same kernels, yet the paper's
// Cricket server receives the full multi-MB fatbin on every cuModuleLoad
// (ROADMAP item 5). The cache keys images by FNV-64 over their raw bytes:
// clients first try rpc_module_load_cached(hash) — a hit answers a ModuleId
// without the upload, a miss answers cuda::Error::kCacheMiss and the client
// falls back to the full rpc_module_load, which populates the cache.
//
// Lifetime model (DESIGN.md §15):
//   - One Entry per content hash; one Instance per (entry, device) holding
//     the gpusim ModuleId and a reference count of sessions using it.
//   - Sessions acquire references; rpc_module_unload and session teardown
//     release them. The device module is NOT unloaded when references hit
//     zero — the entry stays warm for the next tenant.
//   - Quota: each (tenant, image) pair is charged the image size through
//     tenancy::try_charge_memory exactly once, on the tenant's first live
//     reference, and released on its last — per unique image, not per load.
//   - Eviction is LRU over entries with zero live references, bounded by a
//     byte budget; evicting unloads the device instances via the injected
//     unloader. Referenced entries never count as evictable, so the budget
//     can be temporarily exceeded while everything resident is live.
//   - Migration: seed() registers an instance restored from a snapshot
//     (image bytes unknown — hash and size travel in the migration image);
//     adopt() re-references it for an adopted session without re-charging,
//     because the imported tenant accounting already includes the charge.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "sim/annotations.hpp"
#include "tenancy/session_manager.hpp"

namespace cricket::modcache {

/// FNV-1a 64 over the raw image bytes — the cache key. Client and server
/// compute it independently, so the function is owned here (identical to
/// migrate::fnv64, but modcache must not depend on migrate).
[[nodiscard]] std::uint64_t hash_image(
    std::span<const std::uint8_t> bytes) noexcept;

struct ModuleCacheOptions {
  /// LRU byte budget for resident image bytes. Entries with live
  /// references are never evicted and may exceed the budget.
  std::uint64_t max_bytes = std::uint64_t{256} << 20;
};

/// Point-in-time accounting snapshot (mirrors the cricket_modcache_* obs
/// counters, plus residency, for tests and benches).
struct ModuleCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_entries = 0;
};

class ModuleCache {
 public:
  /// Physically unloads one device instance; called at eviction and
  /// destruction. Must not throw (unload of an already-gone module is a
  /// no-op at this layer).
  using Unloader =
      std::function<void(std::uint32_t device, std::uint64_t module)>;

  enum class Outcome : std::uint8_t {
    kHit,            ///< reference taken, `module` valid
    kMiss,           ///< unknown hash
    kNeedInstance,   ///< entry known with bytes, but not loaded on `device`
                     ///< — caller loads from image_bytes() and insert()s
    kQuotaExceeded,  ///< tenant cannot cover the image size
  };

  struct Result {
    Outcome outcome = Outcome::kMiss;
    std::uint64_t module = 0;
    /// Image size of the entry (valid on kHit) — what the tenant was
    /// charged and what migration export records.
    std::uint64_t size = 0;
  };

  /// `tenants` may be null (no quota accounting, e.g. tenancy disabled).
  ModuleCache(ModuleCacheOptions options, tenancy::SessionManager* tenants,
              Unloader unload);
  ~ModuleCache();

  ModuleCache(const ModuleCache&) = delete;
  ModuleCache& operator=(const ModuleCache&) = delete;

  /// Takes a reference to `hash` on `device` for `tenant` (kInvalidTenant
  /// for unbound sessions: no charging). First tenant reference charges the
  /// image size; a refused charge takes no reference.
  [[nodiscard]] Result acquire(std::uint64_t hash, std::uint32_t device,
                               tenancy::TenantId tenant)
      CRICKET_EXCLUDES(mu_);

  /// Registers a freshly loaded device module under its content hash and
  /// takes the caller's reference, possibly evicting idle entries to make
  /// room. If another session raced the same load, the earlier instance
  /// wins: the caller's redundant `module` is unloaded and the canonical id
  /// returned. Outcome::kQuotaExceeded means nothing was inserted or
  /// referenced — the caller unloads its module and surfaces the error.
  [[nodiscard]] Result insert(std::uint64_t hash,
                              std::span<const std::uint8_t> image,
                              std::uint32_t device, std::uint64_t module,
                              tenancy::TenantId tenant) CRICKET_EXCLUDES(mu_);

  /// Drops one (tenant, hash, device) reference. The last tenant reference
  /// releases the quota charge; the device module stays loaded (warm) until
  /// eviction. Unknown references are ignored.
  void release(std::uint64_t hash, std::uint32_t device,
               tenancy::TenantId tenant) CRICKET_EXCLUDES(mu_);

  /// Migration import: registers an instance restored by restore_merge with
  /// zero references. The image bytes are not known on the target (only
  /// hash and size travel), so cross-device kNeedInstance promotion is
  /// unavailable until some client re-uploads the image.
  void seed(std::uint64_t hash, std::uint64_t size, std::uint32_t device,
            std::uint64_t module) CRICKET_EXCLUDES(mu_);

  /// Migration adoption: re-references a seeded instance for an adopted
  /// session WITHOUT charging — the imported tenant accounting already
  /// includes the source's charge (release still releases it). Returns the
  /// instance id, or nullopt when (hash, device) is not cached — the caller
  /// falls back to plain per-session ownership.
  [[nodiscard]] std::optional<std::uint64_t> adopt(std::uint64_t hash,
                                                   std::uint32_t device,
                                                   tenancy::TenantId tenant)
      CRICKET_EXCLUDES(mu_);

  /// The cached image bytes for `hash` (copy), if resident with bytes.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> image_bytes(
      std::uint64_t hash) const CRICKET_EXCLUDES(mu_);

  [[nodiscard]] ModuleCacheStats stats() const CRICKET_EXCLUDES(mu_);

 private:
  struct Instance {
    std::uint64_t module = 0;
    std::uint32_t refs = 0;
  };
  struct Entry {
    std::uint64_t size = 0;
    std::vector<std::uint8_t> bytes;  // empty for migration-seeded entries
    std::map<std::uint32_t, Instance> instances;
    std::map<tenancy::TenantId, std::uint32_t> tenant_refs;
    std::uint64_t last_use = 0;
  };

  /// Bumps the (tenant, hash) refcount, charging on 0 -> 1 unless
  /// `charged_elsewhere` (migration adoption). False means the charge was
  /// refused and no reference was taken.
  [[nodiscard]] bool ref_tenant_locked(Entry& entry, tenancy::TenantId tenant,
                                       bool charged_elsewhere)
      CRICKET_REQUIRES(mu_);
  void evict_idle_locked() CRICKET_REQUIRES(mu_);
  [[nodiscard]] static bool idle(const Entry& entry) noexcept;

  const ModuleCacheOptions options_;
  tenancy::SessionManager* const tenants_;
  const Unloader unload_;

  mutable sim::Mutex mu_;
  std::map<std::uint64_t, Entry> entries_ CRICKET_GUARDED_BY(mu_);
  std::uint64_t use_seq_ CRICKET_GUARDED_BY(mu_) = 0;
  std::uint64_t resident_bytes_ CRICKET_GUARDED_BY(mu_) = 0;
  ModuleCacheStats stats_ CRICKET_GUARDED_BY(mu_);
};

}  // namespace cricket::modcache
