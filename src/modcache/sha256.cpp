#include "modcache/sha256.hpp"

#include <cstring>

namespace cricket::modcache {
namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2};

inline std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

Sha256::Sha256() noexcept
    : state_{0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
             0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19},
      buffer_{} {}

void Sha256::compress(const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> bytes) noexcept {
  total_bytes_ += bytes.size();
  std::size_t offset = 0;
  if (buffered_ != 0) {
    const std::size_t take = std::min(bytes.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, bytes.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ < 64) return;
    compress(buffer_.data());
    buffered_ = 0;
  }
  while (offset + 64 <= bytes.size()) {
    compress(bytes.data() + offset);
    offset += 64;
  }
  if (offset < bytes.size()) {
    buffered_ = bytes.size() - offset;
    std::memcpy(buffer_.data(), bytes.data() + offset, buffered_);
  }
}

Digest Sha256::finish() noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0x00;
  // total_bytes_ keeps growing through the padding updates, but bit_len was
  // latched first, so the encoded length covers only the message itself.
  while (buffered_ != 56) update({&zero, 1});
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update({len_be, 8});
  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(std::span<const std::uint8_t> bytes) noexcept {
  Sha256 ctx;
  ctx.update(bytes);
  return ctx.finish();
}

bool digest_equal(const Digest& a, const Digest& b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace cricket::modcache
