// Streaming SHA-256 (FIPS 180-4) — the collision-resistant primitive under
// the module cache's content addressing. The cache key and the probe's
// proof-of-possession are both derived from it: a cache that hands device
// modules across tenant boundaries cannot key on a trivially collidable
// hash (FNV et al.), because a hostile tenant could pre-poison the table
// with a crafted image and have other tenants silently execute it.
//
// Self-contained (no external crypto dependency, per the no-new-deps build
// constraint); correctness is pinned by the FIPS test vectors in
// tests/modcache_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace cricket::modcache {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256: update() any number of times, then finish() once.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> bytes) noexcept;
  /// Finalizes and returns the digest. The context must not be reused.
  [[nodiscard]] Digest finish() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

[[nodiscard]] Digest sha256(std::span<const std::uint8_t> bytes) noexcept;

/// Timing-independent digest comparison: the loop touches every byte no
/// matter where the first difference sits.
[[nodiscard]] bool digest_equal(const Digest& a, const Digest& b) noexcept;

}  // namespace cricket::modcache
