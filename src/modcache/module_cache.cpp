#include "modcache/module_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace cricket::modcache {
namespace {

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_hits_total", {},
      "Module loads answered from the content-addressed cache (no upload)");
  return c;
}

obs::Counter& misses_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_misses_total", {},
      "rpc_module_load_cached probes that fell back to the full upload");
  return c;
}

obs::Counter& inserts_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_inserts_total", {},
      "Module images registered in the content-addressed cache");
  return c;
}

obs::Counter& evictions_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_evictions_total", {},
      "Idle cache entries evicted by the LRU byte budget");
  return c;
}

}  // namespace

std::uint64_t hash_image(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;  // FNV 64 prime
  }
  return h;
}

ModuleCache::ModuleCache(ModuleCacheOptions options,
                         tenancy::SessionManager* tenants, Unloader unload)
    : options_(options), tenants_(tenants), unload_(std::move(unload)) {}

ModuleCache::~ModuleCache() {
  sim::MutexLock lock(mu_);
  // Sessions are gone by the time the server tears the cache down; every
  // remaining instance is cache-owned and must leave the device.
  for (auto& [hash, entry] : entries_)
    for (auto& [device, inst] : entry.instances)
      if (unload_) unload_(device, inst.module);
}

ModuleCache::Result ModuleCache::acquire(std::uint64_t hash,
                                         std::uint32_t device,
                                         tenancy::TenantId tenant) {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses_counter().inc();
    return {Outcome::kMiss, 0, 0};
  }
  Entry& entry = it->second;
  const auto inst = entry.instances.find(device);
  if (inst == entry.instances.end()) {
    if (entry.bytes.empty()) {
      // Migration-seeded entry on another device: the bytes never reached
      // this server, so only the full upload can instantiate it here.
      ++stats_.misses;
      misses_counter().inc();
      return {Outcome::kMiss, 0, 0};
    }
    // A wire-level hit: the caller loads from image_bytes() locally and
    // insert()s the instance — references are taken there.
    entry.last_use = ++use_seq_;
    ++stats_.hits;
    hits_counter().inc();
    return {Outcome::kNeedInstance, 0};
  }
  if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/false))
    return {Outcome::kQuotaExceeded, 0, 0};
  ++inst->second.refs;
  entry.last_use = ++use_seq_;
  ++stats_.hits;
  hits_counter().inc();
  return {Outcome::kHit, inst->second.module, entry.size};
}

ModuleCache::Result ModuleCache::insert(std::uint64_t hash,
                                        std::span<const std::uint8_t> image,
                                        std::uint32_t device,
                                        std::uint64_t module,
                                        tenancy::TenantId tenant) {
  sim::MutexLock lock(mu_);
  const bool fresh = entries_.find(hash) == entries_.end();
  Entry& entry = entries_[hash];
  if (fresh) entry.size = image.size();

  const auto inst = entry.instances.find(device);
  if (inst != entry.instances.end() && inst->second.module != module) {
    // Lost a concurrent-load race: the earlier instance is canonical; the
    // caller's redundant module leaves the device and its reference lands
    // on the winner.
    if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/false))
      return {Outcome::kQuotaExceeded, 0, 0};
    if (unload_) unload_(device, module);
    ++inst->second.refs;
    entry.last_use = ++use_seq_;
    return {Outcome::kHit, inst->second.module, entry.size};
  }

  if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/false)) {
    if (fresh) entries_.erase(hash);
    return {Outcome::kQuotaExceeded, 0, 0};
  }
  if (entry.bytes.empty() && !image.empty()) {
    // First sighting of the bytes (fresh insert, or a migration-seeded
    // entry being re-uploaded): they become resident and LRU-accountable.
    entry.bytes.assign(image.begin(), image.end());
    entry.size = image.size();
    resident_bytes_ += entry.bytes.size();
  }
  Instance& instance = entry.instances[device];
  instance.module = module;
  ++instance.refs;
  entry.last_use = ++use_seq_;
  ++stats_.inserts;
  inserts_counter().inc();
  evict_idle_locked();
  return {Outcome::kHit, module, entry.size};
}

void ModuleCache::release(std::uint64_t hash, std::uint32_t device,
                          tenancy::TenantId tenant) {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  const auto inst = entry.instances.find(device);
  if (inst != entry.instances.end() && inst->second.refs > 0)
    --inst->second.refs;
  const auto refs = entry.tenant_refs.find(tenant);
  if (refs != entry.tenant_refs.end() && --refs->second == 0) {
    entry.tenant_refs.erase(refs);
    if (tenants_ != nullptr && tenant != tenancy::kInvalidTenant)
      tenants_->release_memory(tenant, entry.size);
  }
  evict_idle_locked();
}

void ModuleCache::seed(std::uint64_t hash, std::uint64_t size,
                       std::uint32_t device, std::uint64_t module) {
  sim::MutexLock lock(mu_);
  Entry& entry = entries_[hash];
  if (entry.size == 0) entry.size = size;
  Instance& instance = entry.instances[device];
  if (instance.module == 0) instance.module = module;
  entry.last_use = ++use_seq_;
}

std::optional<std::uint64_t> ModuleCache::adopt(std::uint64_t hash,
                                                std::uint32_t device,
                                                tenancy::TenantId tenant) {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return std::nullopt;
  Entry& entry = it->second;
  const auto inst = entry.instances.find(device);
  if (inst == entry.instances.end()) return std::nullopt;
  if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/true))
    return std::nullopt;
  ++inst->second.refs;
  entry.last_use = ++use_seq_;
  return inst->second.module;
}

std::optional<std::vector<std::uint8_t>> ModuleCache::image_bytes(
    std::uint64_t hash) const {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end() || it->second.bytes.empty()) return std::nullopt;
  return it->second.bytes;
}

ModuleCacheStats ModuleCache::stats() const {
  sim::MutexLock lock(mu_);
  ModuleCacheStats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.resident_entries = entries_.size();
  return out;
}

bool ModuleCache::ref_tenant_locked(Entry& entry, tenancy::TenantId tenant,
                                    bool charged_elsewhere) {
  const auto it = entry.tenant_refs.find(tenant);
  const bool first = it == entry.tenant_refs.end();
  if (first && !charged_elsewhere && tenants_ != nullptr &&
      tenant != tenancy::kInvalidTenant &&
      !tenants_->try_charge_memory(tenant, entry.size))
    return false;
  ++entry.tenant_refs[tenant];
  return true;
}

bool ModuleCache::idle(const Entry& entry) noexcept {
  for (const auto& [device, inst] : entry.instances)
    if (inst.refs != 0) return false;
  return true;
}

void ModuleCache::evict_idle_locked() {
  while (resident_bytes_ > options_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.bytes.empty() || !idle(it->second)) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use)
        victim = it;
    }
    if (victim == entries_.end()) return;  // everything resident is live
    for (const auto& [device, inst] : victim->second.instances)
      if (unload_) unload_(device, inst.module);
    resident_bytes_ -= victim->second.bytes.size();
    entries_.erase(victim);
    ++stats_.evictions;
    evictions_counter().inc();
  }
}

}  // namespace cricket::modcache
