#include "modcache/module_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace cricket::modcache {
namespace {

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_hits_total", {},
      "Module loads answered from the content-addressed cache (no upload)");
  return c;
}

obs::Counter& misses_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_misses_total", {},
      "rpc_module_load_cached probes that fell back to the full upload");
  return c;
}

obs::Counter& inserts_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_inserts_total", {},
      "Module images registered in the content-addressed cache");
  return c;
}

obs::Counter& evictions_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_evictions_total", {},
      "Idle cache entries evicted by the LRU byte budget");
  return c;
}

obs::Counter& promotions_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_promotions_total", {},
      "Probes answered kNeedInstance: bytes resident, device instance "
      "created locally (no upload, but no reference taken yet)");
  return c;
}

obs::Counter& collisions_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_collisions_total", {},
      "Uploads whose bytes contradicted the resident entry for their hash "
      "(collision or poisoning attempt); nothing was cached");
  return c;
}

obs::Counter& proof_rejects_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "cricket_modcache_proof_rejects_total", {},
      "Cache probes whose proof of possession failed verification");
  return c;
}

/// Domain tag separating possession proofs from any other SHA-256 use of
/// the same bytes (the cache key in particular).
constexpr char kProofDomain[] = "cricket-modcache-pop-v1";

constexpr Digest kZeroDigest{};

}  // namespace

std::uint64_t hash_image(std::span<const std::uint8_t> bytes) noexcept {
  const Digest digest = sha256(bytes);
  std::uint64_t h = 0;
  for (int i = 0; i < 8; ++i) h = (h << 8) | digest[static_cast<size_t>(i)];
  return h;
}

Digest possession_proof(std::string_view tenant_name,
                        std::span<const std::uint8_t> image) noexcept {
  Sha256 ctx;
  ctx.update({reinterpret_cast<const std::uint8_t*>(kProofDomain),
              sizeof kProofDomain});  // includes the NUL separator
  std::uint8_t len_le[8];
  const std::uint64_t n = tenant_name.size();
  for (int i = 0; i < 8; ++i)
    len_le[i] = static_cast<std::uint8_t>(n >> (8 * i));
  ctx.update({len_le, 8});
  ctx.update({reinterpret_cast<const std::uint8_t*>(tenant_name.data()),
              tenant_name.size()});
  ctx.update(image);
  return ctx.finish();
}

ModuleCache::ModuleCache(ModuleCacheOptions options,
                         tenancy::SessionManager* tenants, Unloader unload)
    : options_(options), tenants_(tenants), unload_(std::move(unload)) {}

ModuleCache::~ModuleCache() {
  sim::MutexLock lock(mu_);
  // Sessions are gone by the time the server tears the cache down; every
  // remaining instance is cache-owned and must leave the device.
  for (auto& [hash, entry] : entries_)
    for (auto& [device, inst] : entry.instances)
      if (unload_) unload_(device, inst.module);
}

ModuleCache::Result ModuleCache::acquire(std::uint64_t hash,
                                         std::uint32_t device,
                                         tenancy::TenantId tenant,
                                         std::string_view tenant_name,
                                         std::span<const std::uint8_t> proof) {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses_counter().inc();
    return {Outcome::kMiss, 0, 0};
  }
  Entry& entry = it->second;
  if (!verify_proof_locked(entry, tenant_name, proof)) {
    // Rejected proofs answer exactly like unknown hashes: the cache must
    // not be an oracle for what other tenants have loaded, and knowing a
    // 64-bit key must never be worth a module reference.
    ++stats_.proof_rejects;
    proof_rejects_counter().inc();
    ++stats_.misses;
    misses_counter().inc();
    return {Outcome::kMiss, 0, 0};
  }
  const auto inst = entry.instances.find(device);
  if (inst == entry.instances.end()) {
    if (entry.bytes.empty()) {
      // Migration-seeded entry on another device: the bytes never reached
      // this server, so only the full upload can instantiate it here.
      ++stats_.misses;
      misses_counter().inc();
      return {Outcome::kMiss, 0, 0};
    }
    // A wire-level hit: the caller loads from image_bytes() locally and
    // insert()s the instance — references (and the hit) are counted there.
    entry.last_use = ++use_seq_;
    ++stats_.promotions;
    promotions_counter().inc();
    return {Outcome::kNeedInstance, 0};
  }
  if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/false))
    return {Outcome::kQuotaExceeded, 0, 0};
  ++inst->second.refs;
  entry.last_use = ++use_seq_;
  ++stats_.hits;
  hits_counter().inc();
  return {Outcome::kHit, inst->second.module, entry.size};
}

ModuleCache::Result ModuleCache::insert(std::uint64_t hash,
                                        std::span<const std::uint8_t> image,
                                        std::uint32_t device,
                                        std::uint64_t module,
                                        tenancy::TenantId tenant) {
  sim::MutexLock lock(mu_);
  const bool fresh = entries_.find(hash) == entries_.end();
  Entry& entry = entries_[hash];
  if (fresh) entry.size = image.size();

  // Content verification precedes every other effect: once bytes (or a
  // migration-imported proof) are canonical for a key, an upload that
  // contradicts them is refused outright — a truncated-hash collision may
  // deny sharing, but it can never substitute modules across tenants.
  if (!entry.bytes.empty()) {
    if (entry.bytes.size() != image.size() ||
        !std::equal(entry.bytes.begin(), entry.bytes.end(), image.begin())) {
      ++stats_.collisions;
      collisions_counter().inc();
      return {Outcome::kCollision, 0, 0};
    }
  } else if (!entry.proofs.empty() && !image.empty()) {
    // Seeded entry, bytes not yet resident: the upload must reproduce the
    // proof the source fleet computed from the real bytes.
    const auto& [name, expected] = *entry.proofs.begin();
    if (!digest_equal(possession_proof(name, image), expected)) {
      ++stats_.collisions;
      collisions_counter().inc();
      return {Outcome::kCollision, 0, 0};
    }
  }

  const auto inst = entry.instances.find(device);
  if (inst != entry.instances.end() && inst->second.module != module) {
    // Lost a concurrent-load race: the earlier instance is canonical; the
    // caller's redundant module leaves the device and its reference lands
    // on the winner. (Verified above, so a seeded entry re-uploaded here
    // also makes its bytes resident.)
    if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/false))
      return {Outcome::kQuotaExceeded, 0, 0};
    if (entry.bytes.empty() && !image.empty()) {
      entry.bytes.assign(image.begin(), image.end());
      entry.size = image.size();
      resident_bytes_ += entry.bytes.size();
    }
    if (unload_) unload_(device, module);
    ++inst->second.refs;
    entry.last_use = ++use_seq_;
    evict_idle_locked();
    return {Outcome::kHit, inst->second.module, entry.size};
  }

  if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/false)) {
    if (fresh) entries_.erase(hash);
    return {Outcome::kQuotaExceeded, 0, 0};
  }
  if (entry.bytes.empty() && !image.empty()) {
    // First sighting of the bytes (fresh insert, or a migration-seeded
    // entry being re-uploaded): they become resident and LRU-accountable.
    entry.bytes.assign(image.begin(), image.end());
    entry.size = image.size();
    resident_bytes_ += entry.bytes.size();
  }
  Instance& instance = entry.instances[device];
  instance.module = module;
  ++instance.refs;
  entry.last_use = ++use_seq_;
  ++stats_.inserts;
  inserts_counter().inc();
  evict_idle_locked();
  return {Outcome::kHit, module, entry.size};
}

void ModuleCache::release(std::uint64_t hash, std::uint32_t device,
                          tenancy::TenantId tenant) {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  const auto inst = entry.instances.find(device);
  if (inst != entry.instances.end() && inst->second.refs > 0)
    --inst->second.refs;
  const auto refs = entry.tenant_refs.find(tenant);
  if (refs != entry.tenant_refs.end() && --refs->second == 0) {
    entry.tenant_refs.erase(refs);
    if (tenants_ != nullptr && tenant != tenancy::kInvalidTenant)
      tenants_->release_memory(tenant, entry.size);
  }
  evict_idle_locked();
}

void ModuleCache::seed(std::uint64_t hash, std::uint64_t size,
                       std::uint32_t device, std::uint64_t module,
                       std::string_view tenant_name, const Digest& proof) {
  sim::MutexLock lock(mu_);
  Entry& entry = entries_[hash];
  if (entry.size == 0) entry.size = size;
  Instance& instance = entry.instances[device];
  if (instance.module == 0) instance.module = module;
  // Never let an import overwrite a proof derivable from resident bytes or
  // an earlier import: first writer wins, like the bytes themselves.
  if (!digest_equal(proof, kZeroDigest) && entry.bytes.empty())
    entry.proofs.emplace(std::string(tenant_name), proof);
  entry.last_use = ++use_seq_;
}

std::optional<std::uint64_t> ModuleCache::adopt(std::uint64_t hash,
                                                std::uint32_t device,
                                                tenancy::TenantId tenant) {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return std::nullopt;
  Entry& entry = it->second;
  const auto inst = entry.instances.find(device);
  if (inst == entry.instances.end()) return std::nullopt;
  if (!ref_tenant_locked(entry, tenant, /*charged_elsewhere=*/true))
    return std::nullopt;
  ++inst->second.refs;
  entry.last_use = ++use_seq_;
  return inst->second.module;
}

std::optional<Digest> ModuleCache::proof_for(std::uint64_t hash,
                                             std::string_view tenant_name) {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return std::nullopt;
  Entry& entry = it->second;
  const auto cached = entry.proofs.find(tenant_name);
  if (cached != entry.proofs.end()) return cached->second;
  if (entry.bytes.empty()) return std::nullopt;
  const Digest proof = possession_proof(tenant_name, entry.bytes);
  entry.proofs.emplace(std::string(tenant_name), proof);
  return proof;
}

bool ModuleCache::tenant_holds(std::uint64_t hash,
                               tenancy::TenantId tenant) const {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  return it != entries_.end() &&
         it->second.tenant_refs.find(tenant) != it->second.tenant_refs.end();
}

std::optional<std::vector<std::uint8_t>> ModuleCache::image_bytes(
    std::uint64_t hash) const {
  sim::MutexLock lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end() || it->second.bytes.empty()) return std::nullopt;
  return it->second.bytes;
}

ModuleCacheStats ModuleCache::stats() const {
  sim::MutexLock lock(mu_);
  ModuleCacheStats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.resident_entries = entries_.size();
  return out;
}

bool ModuleCache::ref_tenant_locked(Entry& entry, tenancy::TenantId tenant,
                                    bool charged_elsewhere) {
  const auto it = entry.tenant_refs.find(tenant);
  const bool first = it == entry.tenant_refs.end();
  if (first && !charged_elsewhere && tenants_ != nullptr &&
      tenant != tenancy::kInvalidTenant &&
      !tenants_->try_charge_memory(tenant, entry.size))
    return false;
  ++entry.tenant_refs[tenant];
  return true;
}

bool ModuleCache::verify_proof_locked(Entry& entry,
                                      std::string_view tenant_name,
                                      std::span<const std::uint8_t> proof) {
  if (proof.size() != std::tuple_size_v<Digest>) return false;
  Digest presented;
  std::copy(proof.begin(), proof.end(), presented.begin());
  const auto cached = entry.proofs.find(tenant_name);
  if (cached != entry.proofs.end())
    return digest_equal(presented, cached->second);
  if (entry.bytes.empty()) return false;  // nothing to verify against
  const Digest expected = possession_proof(tenant_name, entry.bytes);
  entry.proofs.emplace(std::string(tenant_name), expected);
  return digest_equal(presented, expected);
}

bool ModuleCache::idle(const Entry& entry) noexcept {
  for (const auto& [device, inst] : entry.instances)
    if (inst.refs != 0) return false;
  return true;
}

void ModuleCache::evict_idle_locked() {
  while (resident_bytes_ > options_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.bytes.empty() || !idle(it->second)) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use)
        victim = it;
    }
    if (victim == entries_.end()) return;  // everything resident is live
    for (const auto& [device, inst] : victim->second.instances)
      if (unload_) unload_(device, inst.module);
    resident_bytes_ -= victim->second.bytes.size();
    entries_.erase(victim);
    ++stats_.evictions;
    evictions_counter().inc();
  }
}

}  // namespace cricket::modcache
