#include "migrate/coordinator.hpp"

#include <algorithm>
#include <span>
#include <thread>
#include <utility>

#include "migrate/service.hpp"
#include "migrate/state.hpp"
#include "migrate_proto.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cricket::migrate {
namespace {

void count_result(const char* result) {
  obs::Registry::global()
      .counter("cricket_migrations_total", {{"result", result}},
               "Tenant migrations driven by this coordinator, by outcome")
      .inc();
}

enum class TicketState { kCommitted, kDiscarded, kUnknown };

/// Asks the target what became of a ticket whose commit outcome is in
/// doubt. mig_abort is the oracle: it discards an uncommitted ticket (any
/// non-kMigCommitted reply means the tenant did NOT move) and answers
/// kMigCommitted for a committed one. Only an unreachable target — after
/// every attempt — leaves the question open.
TicketState resolve_ticket(proto::MIGRATEVERSClient& stub,
                           std::uint64_t ticket, std::uint32_t attempts,
                           std::chrono::nanoseconds backoff) {
  for (std::uint32_t i = 0; i < attempts; ++i) {
    if (i != 0 && backoff.count() > 0) std::this_thread::sleep_for(backoff);
    try {
      return stub.mig_abort(ticket) == kMigCommitted ? TicketState::kCommitted
                                                     : TicketState::kDiscarded;
    } catch (const std::exception&) {
      // Target unreachable; back off and ask again.
    }
  }
  return TicketState::kUnknown;
}

}  // namespace

MigrationCoordinator::MigrationCoordinator(
    core::CricketServer& source, rpc::RpcClient& target,
    RedirectingConnector* redirect, RedirectingConnector::Factory target_factory,
    MigrationOptions options)
    : source_(&source),
      target_(&target),
      redirect_(redirect),
      target_factory_(std::move(target_factory)),
      options_(options) {}

MigrationReport MigrationCoordinator::migrate(const std::string& tenant_name) {
  MigrationReport report;
  tenancy::SessionManager* tenants = source_->tenants();
  if (tenants == nullptr) {
    report.error = "source server runs without multi-tenancy";
    count_result("aborted");
    return report;
  }
  const auto tenant = tenants->find(tenant_name);
  if (!tenant) {
    report.error = "unknown tenant: " + tenant_name;
    count_result("aborted");
    return report;
  }

  const auto abort_with = [&](MigrationPhase phase, std::string error) {
    // Roll back: unfreeze the tenant so the source keeps serving it as if
    // the migration never started. (No target state to undo — the commit
    // point was not reached, and the target discards uncommitted tickets.)
    tenants->end_drain(*tenant);
    report.phase = phase;
    report.error = std::move(error);
    count_result("aborted");
    return report;
  };
  const auto flip_and_report = [&] {
    obs::Span span(obs::Layer::kApp, "migrate.flip");
    if (redirect_ != nullptr && target_factory_)
      redirect_->set_target(target_factory_);
    // The tenant stays frozen on the source on purpose: every later call is
    // answered with the retryable kMigrating reply, and the client's
    // reconnect (now redirected) re-submits it to the target exactly once.
    report.phase = MigrationPhase::kFlip;
    report.committed = true;
    count_result("committed");
    return report;
  };
  const auto ambiguous_with = [&](std::uint64_t ticket, std::string error) {
    // The commit may have landed: the target could already own the tenant's
    // registration and merged device state, so unfreezing the source would
    // serve the tenant in two places at once. Keep it frozen — clients get
    // the retryable kMigrating reply — and remember the ticket so the next
    // migrate() call resumes by resolving it.
    unresolved_[tenant_name] = ticket;
    report.ambiguous = true;
    report.phase = MigrationPhase::kTransfer;
    report.error = std::move(error);
    count_result("ambiguous");
    return report;
  };

  obs::Span total_span(obs::Layer::kApp, "migrate.total");

  // A previous attempt ended with the commit outcome unknown; settle that
  // before anything else. Committed → the tenant already lives on the
  // target and the flip is the only remaining step. Discarded → the target
  // dropped everything, so the migration below restarts cleanly (the tenant
  // is still frozen from that attempt; begin_drain is idempotent).
  if (const auto it = unresolved_.find(tenant_name); it != unresolved_.end()) {
    proto::MIGRATEVERSClient stub(*target_);
    const TicketState state =
        resolve_ticket(stub, it->second, options_.resolve_attempts,
                       options_.resolve_backoff);
    if (state == TicketState::kUnknown)
      return ambiguous_with(it->second,
                            "commit outcome still unknown: target unreachable");
    unresolved_.erase(it);
    if (state == TicketState::kCommitted) return flip_and_report();
  }

  // ------------------------------- drain ---------------------------------
  {
    obs::Span span(obs::Layer::kApp, "migrate.drain");
    tenants->begin_drain(*tenant);
    if (!tenants->wait_quiesced(*tenant, options_.drain_timeout))
      return abort_with(MigrationPhase::kDrain,
                        "drain timed out with calls still in flight");
  }

  // ------------------------------ snapshot -------------------------------
  std::vector<std::uint8_t> blob;
  {
    obs::Span span(obs::Layer::kApp, "migrate.snapshot");
    try {
      MigrationImage image;
      const auto exported = tenants->export_tenant(*tenant);
      if (!exported)
        return abort_with(MigrationPhase::kSnapshot,
                          "tenant vanished during export");
      image.tenant = *exported;
      image.sessions = source_->export_tenant_sessions(*tenant);
      report.sessions = image.sessions.size();
      blob = encode_image(image);
    } catch (const std::exception& e) {
      return abort_with(MigrationPhase::kSnapshot, e.what());
    }
  }
  report.image_bytes = blob.size();

  // ------------------------------ transfer -------------------------------
  std::uint64_t ticket = 0;
  {
    obs::Span span(obs::Layer::kApp, "migrate.transfer");
    proto::MIGRATEVERSClient stub(*target_);
    const std::size_t chunk_bytes = std::clamp<std::size_t>(
        options_.chunk_bytes, 1,
        static_cast<std::size_t>(proto::MIG_MAX_CHUNK));
    // An error-code refusal mid-transfer leaves the ticket (and its buffered
    // bytes) open on the target; reap it so the slot frees immediately
    // instead of counting against max_pending_transfers forever.
    const auto abort_transfer = [&](std::string error) {
      if (ticket != 0) {
        try {
          (void)stub.mig_abort(ticket);
        } catch (const std::exception&) {
          // Best effort: the target reaps unclaimed tickets on its own
          // schedule if this never arrives.
        }
      }
      return abort_with(MigrationPhase::kTransfer, std::move(error));
    };
    try {
      proto::mig_begin_args begin;
      begin.tenant = tenant_name;
      begin.total_bytes = xdr::Untrusted<std::uint64_t>(blob.size());
      const auto opened = stub.mig_begin(begin);
      if (opened.err != kMigOk)
        return abort_transfer("target refused transfer (code " +
                              std::to_string(opened.err) + ")");
      ticket = opened.ticket;
      for (std::size_t offset = 0; offset < blob.size();
           offset += chunk_bytes) {
        proto::mig_chunk_args chunk;
        chunk.ticket = xdr::Untrusted<std::uint64_t>(ticket);
        chunk.offset = xdr::Untrusted<std::uint64_t>(offset);
        const std::size_t len = std::min(chunk_bytes, blob.size() - offset);
        chunk.data.assign(blob.begin() + static_cast<std::ptrdiff_t>(offset),
                          blob.begin() +
                              static_cast<std::ptrdiff_t>(offset + len));
        const std::int32_t err = stub.mig_chunk(chunk);
        if (err != kMigOk)
          return abort_transfer("target refused chunk (code " +
                                std::to_string(err) + ")");
        ++report.chunks;
      }
      proto::mig_commit_args commit;
      commit.ticket = xdr::Untrusted<std::uint64_t>(ticket);
      commit.checksum = fnv64(blob);
      const std::int32_t err = stub.mig_commit(commit);
      if (err != kMigOk)
        return abort_transfer("target refused commit (code " +
                              std::to_string(err) + ")");
    } catch (const std::exception& e) {
      // The control channel died somewhere between begin and commit. The
      // commit may or may not have landed; mig_abort disambiguates — it
      // discards an uncommitted ticket but answers kMigCommitted for a
      // committed one, in which case the tenant lives on the target and the
      // only correct continuation is to flip. Keep asking until the target
      // answers: guessing "not committed" while the commit actually landed
      // would unfreeze the tenant on the source with its state already
      // registered on the target — a split brain.
      TicketState state = TicketState::kDiscarded;
      if (ticket != 0)
        state = resolve_ticket(stub, ticket, options_.resolve_attempts,
                               options_.resolve_backoff);
      if (state == TicketState::kUnknown)
        return ambiguous_with(
            ticket, std::string(e.what()) + "; commit outcome unknown");
      if (state == TicketState::kDiscarded)
        return abort_with(MigrationPhase::kTransfer, e.what());
      // kCommitted: fall through to the flip.
    }
  }

  // -------------------------------- flip ---------------------------------
  return flip_and_report();
}

std::unique_ptr<rpc::RpcClient> make_migrate_client(
    std::unique_ptr<rpc::Transport> transport, rpc::ClientOptions options) {
  return std::make_unique<rpc::RpcClient>(std::move(transport),
                                          proto::MIGRATE_PROG,
                                          proto::MIGRATEVERS_VERS, options);
}

}  // namespace cricket::migrate
