#include "migrate/coordinator.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "migrate/service.hpp"
#include "migrate/state.hpp"
#include "migrate_proto.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cricket::migrate {
namespace {

void count_result(const char* result) {
  obs::Registry::global()
      .counter("cricket_migrations_total", {{"result", result}},
               "Tenant migrations driven by this coordinator, by outcome")
      .inc();
}

}  // namespace

MigrationCoordinator::MigrationCoordinator(
    core::CricketServer& source, rpc::RpcClient& target,
    RedirectingConnector* redirect, RedirectingConnector::Factory target_factory,
    MigrationOptions options)
    : source_(&source),
      target_(&target),
      redirect_(redirect),
      target_factory_(std::move(target_factory)),
      options_(options) {}

MigrationReport MigrationCoordinator::migrate(const std::string& tenant_name) {
  MigrationReport report;
  tenancy::SessionManager* tenants = source_->tenants();
  if (tenants == nullptr) {
    report.error = "source server runs without multi-tenancy";
    count_result("aborted");
    return report;
  }
  const auto tenant = tenants->find(tenant_name);
  if (!tenant) {
    report.error = "unknown tenant: " + tenant_name;
    count_result("aborted");
    return report;
  }

  const auto abort_with = [&](MigrationPhase phase, std::string error) {
    // Roll back: unfreeze the tenant so the source keeps serving it as if
    // the migration never started. (No target state to undo — the commit
    // point was not reached, and the target discards uncommitted tickets.)
    tenants->end_drain(*tenant);
    report.phase = phase;
    report.error = std::move(error);
    count_result("aborted");
    return report;
  };

  obs::Span total_span(obs::Layer::kApp, "migrate.total");

  // ------------------------------- drain ---------------------------------
  {
    obs::Span span(obs::Layer::kApp, "migrate.drain");
    tenants->begin_drain(*tenant);
    if (!tenants->wait_quiesced(*tenant, options_.drain_timeout))
      return abort_with(MigrationPhase::kDrain,
                        "drain timed out with calls still in flight");
  }

  // ------------------------------ snapshot -------------------------------
  std::vector<std::uint8_t> blob;
  {
    obs::Span span(obs::Layer::kApp, "migrate.snapshot");
    try {
      MigrationImage image;
      const auto exported = tenants->export_tenant(*tenant);
      if (!exported)
        return abort_with(MigrationPhase::kSnapshot,
                          "tenant vanished during export");
      image.tenant = *exported;
      image.sessions = source_->export_tenant_sessions(*tenant);
      report.sessions = image.sessions.size();
      blob = encode_image(image);
    } catch (const std::exception& e) {
      return abort_with(MigrationPhase::kSnapshot, e.what());
    }
  }
  report.image_bytes = blob.size();

  // ------------------------------ transfer -------------------------------
  std::uint64_t ticket = 0;
  {
    obs::Span span(obs::Layer::kApp, "migrate.transfer");
    proto::MIGRATEVERSClient stub(*target_);
    const std::size_t chunk_bytes = std::clamp<std::size_t>(
        options_.chunk_bytes, 1,
        static_cast<std::size_t>(proto::MIG_MAX_CHUNK));
    try {
      proto::mig_begin_args begin;
      begin.tenant = tenant_name;
      begin.total_bytes = blob.size();
      const auto opened = stub.mig_begin(begin);
      if (opened.err != kMigOk)
        return abort_with(MigrationPhase::kTransfer,
                          "target refused transfer (code " +
                              std::to_string(opened.err) + ")");
      ticket = opened.ticket;
      for (std::size_t offset = 0; offset < blob.size();
           offset += chunk_bytes) {
        proto::mig_chunk_args chunk;
        chunk.ticket = ticket;
        chunk.offset = offset;
        const std::size_t len = std::min(chunk_bytes, blob.size() - offset);
        chunk.data.assign(blob.begin() + static_cast<std::ptrdiff_t>(offset),
                          blob.begin() +
                              static_cast<std::ptrdiff_t>(offset + len));
        const std::int32_t err = stub.mig_chunk(chunk);
        if (err != kMigOk)
          return abort_with(MigrationPhase::kTransfer,
                            "target refused chunk (code " +
                                std::to_string(err) + ")");
        ++report.chunks;
      }
      proto::mig_commit_args commit;
      commit.ticket = ticket;
      commit.checksum = fnv64(blob);
      const std::int32_t err = stub.mig_commit(commit);
      if (err != kMigOk)
        return abort_with(MigrationPhase::kTransfer,
                          "target refused commit (code " +
                              std::to_string(err) + ")");
    } catch (const std::exception& e) {
      // The control channel died somewhere between begin and commit. The
      // commit may or may not have landed; mig_abort disambiguates — it
      // discards an uncommitted ticket but answers kMigCommitted for a
      // committed one, in which case the tenant lives on the target and the
      // only correct continuation is to flip.
      bool committed_remotely = false;
      if (ticket != 0) {
        try {
          committed_remotely = stub.mig_abort(ticket) == kMigCommitted;
        } catch (const std::exception&) {
          // Unreachable target: assume not committed. The tenant resumes on
          // the source; a committed-but-orphaned image on the target stays
          // invisible until its tenant name is registered, and operators
          // retry the migration once the network heals.
        }
      }
      if (!committed_remotely)
        return abort_with(MigrationPhase::kTransfer, e.what());
    }
  }

  // -------------------------------- flip ---------------------------------
  {
    obs::Span span(obs::Layer::kApp, "migrate.flip");
    if (redirect_ != nullptr && target_factory_)
      redirect_->set_target(target_factory_);
    // The tenant stays frozen on the source on purpose: every later call is
    // answered with the retryable kMigrating reply, and the client's
    // reconnect (now redirected) re-submits it to the target exactly once.
  }
  report.phase = MigrationPhase::kFlip;
  report.committed = true;
  count_result("committed");
  return report;
}

std::unique_ptr<rpc::RpcClient> make_migrate_client(
    std::unique_ptr<rpc::Transport> transport, rpc::ClientOptions options) {
  return std::make_unique<rpc::RpcClient>(std::move(transport),
                                          proto::MIGRATE_PROG,
                                          proto::MIGRATEVERS_VERS, options);
}

}  // namespace cricket::migrate
