#include "migrate/service.hpp"

#include <utility>

#include "migrate/state.hpp"
#include "migrate_bounds.hpp"
#include "migrate_proto.hpp"
#include "obs/metrics.hpp"
#include "rpc/server.hpp"

namespace cricket::migrate {
namespace {

/// Taint exit for transfer tickets: the pending/committed tables are the
/// authority — an unknown ticket answers kMigBadTicket (or is a no-op for
/// abort) in-band, so the raw value travels no further than a map lookup.
/// Counted by tools/taint_audit.py.
std::uint64_t ticket_value(xdr::Untrusted<std::uint64_t> ticket) noexcept {
  return ticket.trust_unchecked(
      "transfer ticket: pending/committed table lookup refuses unknown "
      "values in-band");
}

/// Adapter between the generated MIGRATE skeleton and MigrationTarget, so
/// the public header stays free of generated types.
class MigrationService final : public proto::MIGRATEVERSService {
 public:
  explicit MigrationService(MigrationTarget& target) : target_(&target) {}

  proto::mig_begin_result mig_begin(proto::mig_begin_args args) override {
    const auto res = target_->begin(args.tenant, args.total_bytes);
    return {res.err, res.ticket};
  }

  std::int32_t mig_chunk(proto::mig_chunk_args args) override {
    return target_->chunk(args.ticket, args.offset, args.data);
  }

  std::int32_t mig_commit(proto::mig_commit_args args) override {
    return target_->commit(args.ticket, args.checksum);
  }

  std::int32_t mig_abort(xdr::Untrusted<std::uint64_t> ticket) override {
    return target_->abort(ticket);
  }

 private:
  MigrationTarget* target_;
};

}  // namespace

MigrationTarget::MigrationTarget(core::CricketServer& server,
                                 MigrationTargetOptions options)
    : server_(&server), options_(options) {}

MigrationTarget::~MigrationTarget() = default;

void MigrationTarget::serve(rpc::Transport& transport) {
  MigrationService service(*this);
  rpc::ServiceRegistry registry;
  service.register_into(registry);
  registry.set_bounds(proto::bounds::kProcBounds);
  // At-most-once for the control connection itself: a coordinator retrying
  // a timed-out mig_chunk/mig_commit on this connection gets the cached
  // reply instead of a duplicate execution. (Retries that arrive over a
  // fresh connection are handled at the application level: duplicate chunks
  // and repeated commits are idempotent.)
  registry.enable_duplicate_cache({});
  // NB: spell out ServeOptions — a braced `{}` here would resolve to the
  // uint32_t max_fragment overload instead.
  rpc::serve_transport(registry, transport, rpc::ServeOptions{});
}

std::thread MigrationTarget::serve_async(
    std::unique_ptr<rpc::Transport> transport) {
  return std::thread([this, t = std::move(transport)] { serve(*t); });
}

MigrationTarget::BeginResult MigrationTarget::begin(
    const std::string& tenant, xdr::Untrusted<std::uint64_t> total_bytes) {
  // Both checks precede any buffering: a hostile declared length never
  // causes the allocation it describes, and the taint exit is the
  // max_image_bytes validation itself.
  if (tenant.empty()) return {kMigBadImage, 0};
  std::uint64_t total = 0;
  if (!total_bytes.try_validate(options_.max_image_bytes, total) ||
      total == 0)
    return {kMigTooLarge, 0};
  sim::MutexLock lock(mu_);
  if (pending_.size() >= options_.max_pending_transfers)
    return {kMigBusy, 0};
  const std::uint64_t ticket = next_ticket_++;
  PendingTransfer& pending = pending_[ticket];
  pending.tenant = tenant;
  pending.total = total;
  return {kMigOk, ticket};
}

std::int32_t MigrationTarget::chunk(xdr::Untrusted<std::uint64_t> ticket,
                                    xdr::Untrusted<std::uint64_t> offset,
                                    const std::vector<std::uint8_t>& data) {
  sim::MutexLock lock(mu_);
  const auto it = pending_.find(ticket_value(ticket));
  if (it == pending_.end()) return kMigBadTicket;
  PendingTransfer& pending = it->second;
  const std::uint64_t received = pending.bytes.size();
  // A retransmitted chunk whose range already landed (reply lost, retry
  // over a reconnected control channel) is acknowledged without appending;
  // the commit-time checksum catches any content divergence. The offset
  // never leaves the taint domain: `offset + data.size()` saturates rather
  // than wraps, so an offset near UINT64_MAX cannot masquerade as an
  // already-received range and is refused before any byte lands.
  if (offset < received) {
    return offset + data.size() <= received ? kMigOk : kMigOutOfOrder;
  }
  if (offset != received) return kMigOutOfOrder;
  if (received + data.size() > pending.total) return kMigOverrun;
  pending.bytes.insert(pending.bytes.end(), data.begin(), data.end());
  return kMigOk;
}

std::int32_t MigrationTarget::commit(xdr::Untrusted<std::uint64_t> wire_ticket,
                                     std::uint64_t checksum) {
  sim::MutexLock lock(mu_);
  const std::uint64_t ticket = ticket_value(wire_ticket);
  // Idempotent: the coordinator whose commit reply was lost re-sends it and
  // must learn "the tenant lives here now", not an error.
  if (committed_.count(ticket) != 0) return kMigOk;
  const auto it = pending_.find(ticket);
  if (it == pending_.end()) return kMigBadTicket;
  PendingTransfer& pending = it->second;
  if (pending.bytes.size() != pending.total) return kMigOutOfOrder;
  if (fnv64(pending.bytes) != checksum) return kMigChecksum;
  const std::int32_t err = import_locked(pending);
  if (err != kMigOk) return err;
  committed_.insert(ticket);
  pending_.erase(it);
  static obs::Counter& imported = obs::Registry::global().counter(
      "cricket_migrations_imported_total", {},
      "Tenant state images committed by this migration target");
  imported.inc();
  return kMigOk;
}

std::int32_t MigrationTarget::abort(xdr::Untrusted<std::uint64_t> wire_ticket) {
  sim::MutexLock lock(mu_);
  const std::uint64_t ticket = ticket_value(wire_ticket);
  if (committed_.count(ticket) != 0) return kMigCommitted;
  pending_.erase(ticket);  // unknown tickets are a no-op: aborts may retry
  return kMigOk;
}

std::uint64_t MigrationTarget::committed_count() const {
  sim::MutexLock lock(mu_);
  return static_cast<std::uint64_t>(committed_.size());
}

std::uint64_t MigrationTarget::pending_count() const {
  sim::MutexLock lock(mu_);
  return static_cast<std::uint64_t>(pending_.size());
}

std::int32_t MigrationTarget::import_locked(PendingTransfer& pending) {
  tenancy::SessionManager* tenants = server_->tenants();
  if (tenants == nullptr) return kMigNoTenants;

  MigrationImage image;
  try {
    image = decode_image(pending.bytes);
  } catch (const MigrationVersionError&) {
    return kMigVersion;
  } catch (const MigrationError&) {
    return kMigBadImage;
  }
  // The ticket is bound to the tenant it was opened for; an image that
  // names someone else is hostile or corrupt.
  if (image.tenant.spec.name != pending.tenant) return kMigBadImage;
  // Cache-shared modules need a module cache on this side: without one the
  // only fallback would be plain per-session ownership of a module several
  // sessions share, and the first teardown would unload it under the rest.
  // Refuse before restore_merge so nothing is placed on the device.
  if (server_->module_cache() == nullptr) {
    for (const auto& session : image.sessions)
      if (!session.cached_modules.empty()) return kMigNoModCache;
  }

  const std::uint32_t device_count = tenants->device_count();
  const std::uint32_t pin =
      (options_.pin_device == ~0u ? device_count - 1 : options_.pin_device) %
      device_count;
  // Merge every session's device slice in one atomic validate-then-mutate
  // step: restore_merge proves the whole batch placeable before touching
  // the device, so a refused image — even one whose last session is the
  // problem — leaves the device untouched and nothing else imported.
  std::vector<const gpusim::DeviceSnapshot*> slices;
  slices.reserve(image.sessions.size());
  for (const auto& session : image.sessions) slices.push_back(&session.state);
  try {
    server_->node().device(static_cast<int>(pin)).restore_merge(slices);
  } catch (const std::exception&) {
    return kMigDevice;
  }
  const tenancy::TenantId tenant = tenants->import_tenant(image.tenant);
  tenants->pin_shard(tenant, pin);
  // Seed the module cache with the content-cached modules restore_merge just
  // placed, so adopted sessions re-reference them instead of re-owning, and
  // future rpc_module_load_cached probes for the same hashes hit warm.
  if (auto* cache = server_->module_cache()) {
    for (const auto& session : image.sessions)
      for (const auto& cm : session.cached_modules)
        cache->seed(cm.hash, cm.bytes, pin, cm.id,
                    image.tenant.spec.name, cm.proof);
  }
  server_->stage_adoption(image.tenant.spec.name, std::move(image.sessions));
  return kMigOk;
}

}  // namespace cricket::migrate
