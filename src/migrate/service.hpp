// MigrationTarget: the receiving end of a tenant live-migration.
//
// Accepts the chunked state image over the MIGRATE program (migrate.x),
// reassembling it with every length pinned against a declared-and-bounded
// total before any byte is buffered, and commits it atomically: the
// tenant's quota/accounting state is imported into the target's
// SessionManager, the tenant is pinned to a reserved device, every
// session's device-state slice is merged onto it, and the session bundles
// (handle ownership + duplicate-request-cache entries) are staged for
// adoption by the reconnecting clients. Nothing is visible to admission
// until mig_commit succeeds, and committing the same ticket twice is a
// no-op success — the transfer itself is exactly-once.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cricket/server.hpp"
#include "rpc/transport.hpp"
#include "sim/annotations.hpp"
#include "xdr/taint.hpp"

namespace cricket::migrate {

/// Wire error codes for the int-returning MIGRATE procedures (0 = success).
enum MigErr : std::int32_t {
  kMigOk = 0,
  /// Unknown or already-consumed ticket.
  kMigBadTicket = 1,
  /// Declared image size exceeds the target's budget (checked in mig_begin,
  /// before any allocation).
  kMigTooLarge = 2,
  /// Chunk offset is neither the append position nor an already-received
  /// duplicate, or commit arrived before all bytes did.
  kMigOutOfOrder = 3,
  /// Chunk would run past the declared total.
  kMigOverrun = 4,
  /// FNV-64 over the reassembled image does not match mig_commit's claim.
  kMigChecksum = 5,
  /// Image decoded but is structurally invalid.
  kMigBadImage = 6,
  /// Image (or its nested checkpoint) is from a newer build: upgrade this
  /// server before migrating onto it.
  kMigVersion = 7,
  /// mig_abort on a committed ticket: the tenant already lives here.
  kMigCommitted = 8,
  /// This server runs without a SessionManager; it cannot host tenants.
  kMigNoTenants = 9,
  /// restore_merge refused (handle or address collision on the device).
  kMigDevice = 10,
  /// Too many transfers already in flight; retry after one finishes.
  kMigBusy = 11,
  /// The image carries cache-shared modules but this server runs without a
  /// module cache: adopting them as plain per-session modules would let one
  /// session's teardown unload a module other sessions still use, so the
  /// import is refused up front.
  kMigNoModCache = 12,
};

struct MigrationTargetOptions {
  /// Device the migrated tenant is pinned to. ~0u = the node's last device
  /// — by convention the reserved spare, kept pristine so restored
  /// addresses and handle ids can never collide with residents.
  std::uint32_t pin_device = ~0u;
  /// Ceiling on a declared image size; mig_begin refuses anything larger
  /// before allocating a byte.
  std::uint64_t max_image_bytes = 256ull << 20;
  /// Ceiling on simultaneously open tickets. Abandoned transfers (a
  /// coordinator that died mid-stream and never sent mig_abort) hold their
  /// buffers until aborted, so an unbounded count would let repeated
  /// mig_begin calls pin max_image_bytes each; past this many, mig_begin
  /// answers kMigBusy until a slot frees up.
  std::size_t max_pending_transfers = 4;
};

class MigrationTarget {
 public:
  explicit MigrationTarget(core::CricketServer& server,
                           MigrationTargetOptions options = {});
  ~MigrationTarget();

  MigrationTarget(const MigrationTarget&) = delete;
  MigrationTarget& operator=(const MigrationTarget&) = delete;

  /// Serves one migration-control connection until end-of-stream. Runs with
  /// the duplicate-request cache enabled, so a coordinator retrying a
  /// timed-out call on the same connection gets the original reply.
  void serve(rpc::Transport& transport);
  [[nodiscard]] std::thread serve_async(
      std::unique_ptr<rpc::Transport> transport);

  struct BeginResult {
    std::int32_t err = kMigOk;
    std::uint64_t ticket = 0;
  };

  /// Procedure bodies (also the unit-test surface). Wire-derived scalars
  /// arrive tainted: tickets exit through an audited in-band table lookup,
  /// total_bytes through the max_image_bytes validation, and chunk offsets
  /// never leave the taint domain at all — they are only compared and
  /// saturating-added against what has actually been received.
  BeginResult begin(const std::string& tenant,
                    xdr::Untrusted<std::uint64_t> total_bytes)
      CRICKET_EXCLUDES(mu_);
  std::int32_t chunk(xdr::Untrusted<std::uint64_t> ticket,
                     xdr::Untrusted<std::uint64_t> offset,
                     const std::vector<std::uint8_t>& data)
      CRICKET_EXCLUDES(mu_);
  std::int32_t commit(xdr::Untrusted<std::uint64_t> ticket,
                      std::uint64_t checksum) CRICKET_EXCLUDES(mu_);
  std::int32_t abort(xdr::Untrusted<std::uint64_t> ticket)
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t committed_count() const CRICKET_EXCLUDES(mu_);
  /// Open (begun, not yet committed or aborted) transfer tickets.
  [[nodiscard]] std::uint64_t pending_count() const CRICKET_EXCLUDES(mu_);

 private:
  struct PendingTransfer {
    std::string tenant;
    std::uint64_t total = 0;
    std::vector<std::uint8_t> bytes;
  };

  std::int32_t import_locked(PendingTransfer& pending) CRICKET_REQUIRES(mu_);

  core::CricketServer* server_;
  MigrationTargetOptions options_;
  mutable sim::Mutex mu_;
  std::map<std::uint64_t, PendingTransfer> pending_ CRICKET_GUARDED_BY(mu_);
  std::set<std::uint64_t> committed_ CRICKET_GUARDED_BY(mu_);
  std::uint64_t next_ticket_ CRICKET_GUARDED_BY(mu_) = 1;
};

}  // namespace cricket::migrate
