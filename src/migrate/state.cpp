#include "migrate/state.hpp"

#include <cstring>

#include "cricket/checkpoint.hpp"
#include "xdr/xdr.hpp"

namespace cricket::migrate {
namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'I', 'G', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 8;    // magic + version word
constexpr std::size_t kChecksumBytes = 8;  // trailing FNV-64

// Hostile-length ceilings, all checked before the corresponding allocation.
constexpr std::uint32_t kMaxSessions = 1024;
constexpr std::uint32_t kMaxTableEntries = 1 << 16;
constexpr std::uint32_t kMaxCheckpointBytes = 1u << 30;
constexpr std::uint32_t kMaxDrcReplyBytes = 1u << 20;

void encode_tenant(xdr::Encoder& enc, const tenancy::TenantExport& t) {
  enc.put_string(t.spec.name);
  enc.put_u32(t.spec.weight);
  enc.put_u32(t.spec.priority);
  enc.put_u64(t.spec.quota.device_mem_bytes);
  enc.put_u32(t.spec.quota.max_outstanding_calls);
  enc.put_u64(t.spec.quota.bytes_per_sec);
  enc.put_u64(t.spec.quota.burst_bytes);
  enc.put_u32(t.spec.quota.max_sessions);
  enc.put_u64(t.bucket_tokens);
  enc.put_u64(t.mem_used_bytes);
  enc.put_u64(t.mem_peak_bytes);
  enc.put_u64(t.calls_admitted);
  enc.put_u64(t.calls_rejected);
  enc.put_u64(t.device_ns);
  enc.put_u64(t.sessions_opened);
  enc.put_u64(t.sessions_closed);
}

tenancy::TenantExport decode_tenant(xdr::Decoder& dec) {
  tenancy::TenantExport t;
  t.spec.name = dec.get_string(256);
  if (t.spec.name.empty())
    throw MigrationError("migration image names no tenant");
  t.spec.weight = dec.get_u32();
  t.spec.priority = dec.get_u32();
  t.spec.quota.device_mem_bytes = dec.get_u64();
  t.spec.quota.max_outstanding_calls = dec.get_u32();
  t.spec.quota.bytes_per_sec = dec.get_u64();
  t.spec.quota.burst_bytes = dec.get_u64();
  t.spec.quota.max_sessions = dec.get_u32();
  t.bucket_tokens = dec.get_u64();
  t.mem_used_bytes = dec.get_u64();
  t.mem_peak_bytes = dec.get_u64();
  t.calls_admitted = dec.get_u64();
  t.calls_rejected = dec.get_u64();
  t.device_ns = dec.get_u64();
  t.sessions_opened = dec.get_u64();
  t.sessions_closed = dec.get_u64();
  return t;
}

template <typename T>
void encode_handles(xdr::Encoder& enc, const std::vector<T>& ids) {
  enc.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto id : ids) enc.put_u64(static_cast<std::uint64_t>(id));
}

template <typename T>
std::vector<T> decode_handles(xdr::Decoder& dec) {
  const std::uint32_t n = dec.get_u32();
  if (n > kMaxTableEntries)
    throw MigrationError("migration image handle table too large");
  std::vector<T> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(static_cast<T>(dec.get_u64()));
  return out;
}

}  // namespace

std::uint64_t fnv64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::vector<std::uint8_t> encode_image(const MigrationImage& image) {
  xdr::Encoder enc;
  enc.put_opaque_fixed(kMagic);
  enc.put_u32(kVersion);
  encode_tenant(enc, image.tenant);
  enc.put_u32(static_cast<std::uint32_t>(image.sessions.size()));
  for (const auto& s : image.sessions) {
    enc.put_u64(s.session_id);
    enc.put_u64(s.client_id);
    // The device-state slice rides as a nested version-2 checkpoint blob:
    // same codec, same checksum, same version gate as on-disk checkpoints.
    enc.put_opaque(core::encode_checkpoint(s.state));
    enc.put_u32(static_cast<std::uint32_t>(s.allocations.size()));
    for (const auto& [ptr, bytes] : s.allocations) {
      enc.put_u64(ptr);
      enc.put_u64(bytes);
    }
    encode_handles(enc, s.modules);
    encode_handles(enc, s.streams);
    encode_handles(enc, s.events);
    // Content-cached modules: the hash is what lets a warm target
    // re-reference its own module cache instead of receiving the image
    // bytes again, `owner` marks the one session whose snapshot carries the
    // device record, and `proof` is the exporting tenant's possession proof
    // so a seeded (byte-less) target entry can keep verifying its probes.
    enc.put_u32(static_cast<std::uint32_t>(s.cached_modules.size()));
    for (const auto& cm : s.cached_modules) {
      enc.put_u64(cm.id);
      enc.put_u64(cm.hash);
      enc.put_u64(cm.bytes);
      enc.put_u32(cm.owner ? 1 : 0);
      enc.put_opaque_fixed(cm.proof);
    }
    enc.put_u32(static_cast<std::uint32_t>(s.drc.size()));
    for (const auto& e : s.drc) {
      enc.put_u64(e.client);
      enc.put_u32(e.xid);
      enc.put_opaque(e.reply);
    }
  }
  const std::uint64_t checksum =
      fnv64(std::span<const std::uint8_t>(enc.bytes()).subspan(kHeaderBytes));
  enc.put_u64(checksum);
  return enc.take();
}

MigrationImage decode_image(std::span<const std::uint8_t> bytes) {
  try {
    std::uint32_t version = 0;
    {
      xdr::Decoder hdr(bytes);
      std::uint8_t magic[4];
      hdr.get_opaque_fixed(magic);
      if (std::memcmp(magic, kMagic, 4) != 0)
        throw MigrationError("bad migration image magic");
      version = hdr.get_u32();
    }
    if (version > kVersion)
      throw MigrationVersionError(
          "migration image version " + std::to_string(version) +
          " is newer than this build understands (max " +
          std::to_string(kVersion) + ")");
    if (version == 0)
      throw MigrationError("unsupported migration image version");

    std::span<const std::uint8_t> body = bytes.subspan(kHeaderBytes);
    if (body.size() < kChecksumBytes)
      throw MigrationError("migration image truncated before checksum");
    body = body.first(body.size() - kChecksumBytes);
    const std::span<const std::uint8_t> tail =
        bytes.subspan(bytes.size() - kChecksumBytes);
    std::uint64_t want = 0;
    for (const std::uint8_t byte : tail) want = (want << 8) | byte;
    if (fnv64(body) != want)
      throw MigrationError("migration image checksum mismatch");

    xdr::Decoder dec(body);
    MigrationImage image;
    image.tenant = decode_tenant(dec);
    const std::uint32_t ns = dec.get_u32();
    if (ns > kMaxSessions)
      throw MigrationError("migration image session count too large");
    image.sessions.reserve(ns);
    for (std::uint32_t i = 0; i < ns; ++i) {
      core::SessionExport s;
      s.session_id = dec.get_u64();
      s.client_id = dec.get_u64();
      s.state = core::decode_checkpoint(dec.get_opaque(kMaxCheckpointBytes));
      const std::uint32_t na = dec.get_u32();
      if (na > kMaxTableEntries)
        throw MigrationError("migration image allocation table too large");
      s.allocations.reserve(na);
      for (std::uint32_t a = 0; a < na; ++a) {
        const std::uint64_t ptr = dec.get_u64();
        s.allocations.emplace_back(ptr, dec.get_u64());
      }
      s.modules = decode_handles<cuda::ModuleId>(dec);
      s.streams = decode_handles<cuda::StreamId>(dec);
      s.events = decode_handles<cuda::EventId>(dec);
      const std::uint32_t nc = dec.get_u32();
      if (nc > kMaxTableEntries)
        throw MigrationError("migration image cached-module table too large");
      s.cached_modules.reserve(nc);
      for (std::uint32_t c = 0; c < nc; ++c) {
        core::SessionExport::CachedModule cm;
        cm.id = dec.get_u64();
        cm.hash = dec.get_u64();
        cm.bytes = dec.get_u64();
        cm.owner = dec.get_u32() != 0;
        dec.get_opaque_fixed(cm.proof);
        s.cached_modules.push_back(cm);
      }
      const std::uint32_t nd = dec.get_u32();
      if (nd > kMaxTableEntries)
        throw MigrationError("migration image DRC table too large");
      s.drc.reserve(nd);
      for (std::uint32_t d = 0; d < nd; ++d) {
        rpc::DrcExportEntry entry;
        entry.client = dec.get_u64();
        entry.xid = dec.get_u32();
        entry.reply = dec.get_opaque(kMaxDrcReplyBytes);
        s.drc.push_back(std::move(entry));
      }
      image.sessions.push_back(std::move(s));
    }
    dec.expect_exhausted();
    return image;
  } catch (const core::CheckpointVersionError& e) {
    // The nested device blob outruns this build: same upgrade-ordering
    // problem as a future image version, so surface it the same way.
    throw MigrationVersionError(e.what());
  } catch (const core::CheckpointError& e) {
    throw MigrationError(std::string("bad nested checkpoint: ") + e.what());
  } catch (const xdr::XdrError& e) {
    throw MigrationError(std::string("malformed migration image: ") +
                         e.what());
  }
}

}  // namespace cricket::migrate
