// The client-visible half of a migration: a redirecting connection factory.
//
// Clients are constructed with a reconnect factory (ClientConfig::reconnect
// / ChannelOptions::reconnect). Pointing that factory at a
// RedirectingConnector makes it a level of indirection the control plane
// can flip: the MigrationCoordinator atomically swaps the dial target at
// commit time, and the very next reconnect — typically triggered by the
// source server's kMigrating reply — lands on the target server, where the
// channel's xid re-submission and the migrated duplicate-request cache
// preserve exactly-once execution. This stands in for the service-discovery
// update a production fleet would push.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "rpc/transport.hpp"
#include "sim/annotations.hpp"

namespace cricket::migrate {

class RedirectingConnector {
 public:
  using Factory = std::function<std::unique_ptr<rpc::Transport>()>;

  explicit RedirectingConnector(Factory initial)
      : current_(std::move(initial)) {}

  /// Atomically flips where subsequent dials land. Safe against concurrent
  /// dial() calls from client reader threads mid-reconnect.
  void set_target(Factory target) CRICKET_EXCLUDES(mu_) {
    sim::MutexLock lock(mu_);
    current_ = std::move(target);
    ++flips_;
  }

  [[nodiscard]] std::unique_ptr<rpc::Transport> dial() CRICKET_EXCLUDES(mu_) {
    Factory factory;
    {
      sim::MutexLock lock(mu_);
      factory = current_;
    }
    return factory ? factory() : nullptr;
  }

  /// Hand this to ClientConfig::reconnect / ChannelOptions::reconnect. The
  /// connector must outlive every client holding the returned factory.
  [[nodiscard]] Factory factory() {
    return [this] { return dial(); };
  }

  [[nodiscard]] std::uint64_t flips() const CRICKET_EXCLUDES(mu_) {
    sim::MutexLock lock(mu_);
    return flips_;
  }

 private:
  mutable sim::Mutex mu_;
  Factory current_ CRICKET_GUARDED_BY(mu_);
  std::uint64_t flips_ CRICKET_GUARDED_BY(mu_) = 0;
};

}  // namespace cricket::migrate
