// Migration state image: everything one tenant carries between servers.
//
// The image bundles the tenant's quota/accounting export (token-bucket
// level, memory charge, counters), every live session's slice of device
// state (as a nested version-2 checkpoint blob, reusing the checkpoint
// codec's checksum and version gating), the per-session resource-ownership
// tables, and the duplicate-request-cache entries whose replies must keep
// suppressing re-execution after the move. Framed like a checkpoint: magic
// "MIGR", version word, XDR body, trailing FNV-64 checksum — so a corrupted
// transfer fails loudly and a future-format image is rejected with a
// distinct, actionable error.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cricket/server.hpp"
#include "tenancy/session_manager.hpp"

namespace cricket::migrate {

class MigrationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A structurally plausible image whose version is newer than this build
/// understands: the rolling upgrade is running in the wrong direction
/// (upgrade the target first). Distinct from corruption on purpose.
class MigrationVersionError : public MigrationError {
 public:
  using MigrationError::MigrationError;
};

struct MigrationImage {
  tenancy::TenantExport tenant;
  std::vector<core::SessionExport> sessions;
};

/// FNV-1a over `data`; also the transfer checksum mig_commit verifies.
[[nodiscard]] std::uint64_t fnv64(
    std::span<const std::uint8_t> data) noexcept;

[[nodiscard]] std::vector<std::uint8_t> encode_image(
    const MigrationImage& image);

/// Throws MigrationVersionError for future versions, MigrationError for
/// anything malformed (bad magic, checksum mismatch, hostile lengths,
/// truncation, or a bad nested checkpoint blob).
[[nodiscard]] MigrationImage decode_image(std::span<const std::uint8_t> bytes);

}  // namespace cricket::migrate
