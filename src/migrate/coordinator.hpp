// MigrationCoordinator: drives one tenant's live migration from the source.
//
// Phases (DESIGN.md §13):
//   drain     freeze admission (typed, always-retryable kMigrating reply)
//             and wait until every already-admitted call completes.
//   snapshot  export the quiesced tenant: quota/token-bucket/accounting
//             state, every session's device slice, resource-ownership
//             tables, and duplicate-request-cache entries.
//   transfer  stream the encoded image to the target in bounded chunks and
//             commit it under an end-to-end checksum.
//   flip      atomically redirect the client-visible connection factory to
//             the target. The tenant stays frozen on the source, so every
//             subsequent call is answered kMigrating, and the client's
//             reconnect + xid re-submission lands on the target — where the
//             migrated DRC suppresses re-execution of completed calls.
//
// Any failure before the image is committed aborts: the target discards
// the partial transfer and end_drain unfreezes the tenant on the source,
// which keeps serving as if nothing happened. After the commit point the
// coordinator never rolls back — a lost commit reply is resolved by the
// idempotent re-commit, or by mig_abort answering "already committed".
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "cricket/server.hpp"
#include "migrate/redirect.hpp"
#include "rpc/client.hpp"

namespace cricket::migrate {

enum class MigrationPhase : std::uint32_t {
  kNone = 0,
  kDrain,
  kSnapshot,
  kTransfer,
  kFlip,
};

[[nodiscard]] constexpr const char* migration_phase_name(
    MigrationPhase phase) noexcept {
  switch (phase) {
    case MigrationPhase::kNone: return "none";
    case MigrationPhase::kDrain: return "drain";
    case MigrationPhase::kSnapshot: return "snapshot";
    case MigrationPhase::kTransfer: return "transfer";
    case MigrationPhase::kFlip: return "flip";
  }
  return "unknown";
}

struct MigrationOptions {
  /// Real-time budget for in-flight calls to complete after the freeze.
  std::chrono::nanoseconds drain_timeout = std::chrono::seconds(5);
  /// Transfer chunk size; clamped to the protocol bound (256 KiB).
  std::size_t chunk_bytes = 256 * 1024;
};

struct MigrationReport {
  bool committed = false;
  /// On failure, the phase that failed; on success, kFlip.
  MigrationPhase phase = MigrationPhase::kNone;
  std::string error;
  std::uint64_t sessions = 0;
  std::uint64_t image_bytes = 0;
  std::uint64_t chunks = 0;
};

class MigrationCoordinator {
 public:
  /// `target` is an RPC client bound to the MIGRATE program on the target
  /// server (see migrate_client()). `redirect`/`target_factory`: the
  /// connector the tenant's clients reconnect through and the factory it is
  /// flipped to at commit; pass nullptr to manage redirection externally.
  MigrationCoordinator(core::CricketServer& source, rpc::RpcClient& target,
                       RedirectingConnector* redirect,
                       RedirectingConnector::Factory target_factory,
                       MigrationOptions options = {});

  /// Migrates one tenant. Blocking; safe to call for different tenants in
  /// sequence. Never throws — failures come back in the report.
  [[nodiscard]] MigrationReport migrate(const std::string& tenant_name);

 private:
  core::CricketServer* source_;
  rpc::RpcClient* target_;
  RedirectingConnector* redirect_;
  RedirectingConnector::Factory target_factory_;
  MigrationOptions options_;
};

/// Convenience: an RPC client speaking the MIGRATE program over `transport`
/// (enable retry in `options` freely — every MIGRATE procedure is
/// idempotent, by DRC on the control connection or by construction).
[[nodiscard]] std::unique_ptr<rpc::RpcClient> make_migrate_client(
    std::unique_ptr<rpc::Transport> transport, rpc::ClientOptions options = {});

}  // namespace cricket::migrate
