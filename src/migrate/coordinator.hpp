// MigrationCoordinator: drives one tenant's live migration from the source.
//
// Phases (DESIGN.md §13):
//   drain     freeze admission (typed, always-retryable kMigrating reply)
//             and wait until every already-admitted call completes.
//   snapshot  export the quiesced tenant: quota/token-bucket/accounting
//             state, every session's device slice, resource-ownership
//             tables, and duplicate-request-cache entries.
//   transfer  stream the encoded image to the target in bounded chunks and
//             commit it under an end-to-end checksum.
//   flip      atomically redirect the client-visible connection factory to
//             the target. The tenant stays frozen on the source, so every
//             subsequent call is answered kMigrating, and the client's
//             reconnect + xid re-submission lands on the target — where the
//             migrated DRC suppresses re-execution of completed calls.
//
// Any failure before the image is committed aborts: the target discards
// the partial transfer and end_drain unfreezes the tenant on the source,
// which keeps serving as if nothing happened. After the commit point the
// coordinator never rolls back — a lost commit reply is resolved by the
// idempotent re-commit, or by mig_abort answering "already committed".
//
// When the control channel dies around the commit and mig_abort cannot be
// reached either, the commit outcome is genuinely unknown: the tenant may
// already be registered (with its device state merged) on the target.
// Unfreezing the source then would serve the tenant in two places at once,
// so the coordinator reports `ambiguous`, leaves the tenant frozen (clients
// keep getting the retryable kMigrating reply), and remembers the ticket;
// the next migrate() call for the tenant resumes by re-asking mig_abort
// until it gets a definitive answer.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cricket/server.hpp"
#include "migrate/redirect.hpp"
#include "rpc/client.hpp"

namespace cricket::migrate {

enum class MigrationPhase : std::uint32_t {
  kNone = 0,
  kDrain,
  kSnapshot,
  kTransfer,
  kFlip,
};

[[nodiscard]] constexpr const char* migration_phase_name(
    MigrationPhase phase) noexcept {
  switch (phase) {
    case MigrationPhase::kNone: return "none";
    case MigrationPhase::kDrain: return "drain";
    case MigrationPhase::kSnapshot: return "snapshot";
    case MigrationPhase::kTransfer: return "transfer";
    case MigrationPhase::kFlip: return "flip";
  }
  return "unknown";
}

struct MigrationOptions {
  /// Real-time budget for in-flight calls to complete after the freeze.
  std::chrono::nanoseconds drain_timeout = std::chrono::seconds(5);
  /// Transfer chunk size; clamped to the protocol bound (256 KiB).
  std::size_t chunk_bytes = 256 * 1024;
  /// How many times to re-ask mig_abort when the commit outcome is unknown
  /// before giving up and reporting `ambiguous`.
  std::uint32_t resolve_attempts = 8;
  /// Pause between those attempts.
  std::chrono::nanoseconds resolve_backoff = std::chrono::milliseconds(50);
};

struct MigrationReport {
  bool committed = false;
  /// The commit outcome could not be determined (target unreachable after a
  /// possibly-landed mig_commit). The tenant stays frozen on the source —
  /// neither side serves it — and a later migrate() call for the same
  /// tenant resumes by resolving the remembered ticket.
  bool ambiguous = false;
  /// On failure, the phase that failed; on success, kFlip.
  MigrationPhase phase = MigrationPhase::kNone;
  std::string error;
  std::uint64_t sessions = 0;
  std::uint64_t image_bytes = 0;
  std::uint64_t chunks = 0;
};

class MigrationCoordinator {
 public:
  /// `target` is an RPC client bound to the MIGRATE program on the target
  /// server (see migrate_client()). `redirect`/`target_factory`: the
  /// connector the tenant's clients reconnect through and the factory it is
  /// flipped to at commit; pass nullptr to manage redirection externally.
  MigrationCoordinator(core::CricketServer& source, rpc::RpcClient& target,
                       RedirectingConnector* redirect,
                       RedirectingConnector::Factory target_factory,
                       MigrationOptions options = {});

  /// Migrates one tenant. Blocking; safe to call for different tenants in
  /// sequence. Never throws — failures come back in the report. If an
  /// earlier attempt for this tenant ended `ambiguous`, this call first
  /// resolves that outcome: a commit that did land is completed with the
  /// flip; one that did not is discarded and the migration restarts.
  [[nodiscard]] MigrationReport migrate(const std::string& tenant_name);

 private:
  core::CricketServer* source_;
  rpc::RpcClient* target_;
  RedirectingConnector* redirect_;
  RedirectingConnector::Factory target_factory_;
  MigrationOptions options_;
  /// Tickets whose commit outcome is unknown, by tenant name. The tenant
  /// stays frozen on the source until its entry is resolved.
  std::map<std::string, std::uint64_t> unresolved_;
};

/// Convenience: an RPC client speaking the MIGRATE program over `transport`
/// (enable retry in `options` freely — every MIGRATE procedure is
/// idempotent, by DRC on the control connection or by construction).
[[nodiscard]] std::unique_ptr<rpc::RpcClient> make_migrate_client(
    std::unique_ptr<rpc::Transport> transport, rpc::ClientOptions options = {});

}  // namespace cricket::migrate
