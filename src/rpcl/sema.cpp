#include "rpcl/sema.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace cricket::rpcl {
namespace {

/// Names that cannot be redeclared: RPCL/XDR keywords plus the builtin type
/// spellings the parser recognises in type position.
bool is_reserved(const std::string& name) {
  static const std::set<std::string> kReserved = {
      "bool",    "case",   "const",   "default", "double", "enum",
      "float",   "hyper",  "int",     "opaque",  "program", "string",
      "struct",  "switch", "typedef", "union",   "unsigned", "version",
      "void",
  };
  return kReserved.contains(name);
}

/// Minimum wire bytes per element for bound-budget purposes. Named types are
/// counted at 4 bytes (the smallest possible XDR encoding) so the check is a
/// conservative lower bound rather than a full recursive size computation.
std::uint64_t element_wire_size(const TypeRef& t) {
  if (std::holds_alternative<std::string>(t.base)) return 4;
  switch (std::get<Builtin>(t.base)) {
    case Builtin::kString:
    case Builtin::kOpaque:
      return 1;
    case Builtin::kHyper:
    case Builtin::kUHyper:
    case Builtin::kDouble:
      return 8;
    default:
      return 4;
  }
}

class Analyzer {
 public:
  Analyzer(const SpecFile& spec, const SemaOptions& options)
      : spec_(spec), options_(options) {}

  SemaResult run() {
    collect_declarations();
    check_type_refs();
    check_unused_types();
    check_programs();
    // Compiler-style presentation: findings in source order regardless of
    // which rule produced them.
    std::stable_sort(result_.diagnostics.begin(), result_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.loc.line != b.loc.line)
                         return a.loc.line < b.loc.line;
                       return a.loc.col < b.loc.col;
                     });
    return std::move(result_);
  }

 private:
  void emit(Severity sev, const char* rule, std::string message,
            SourceLoc loc) {
    result_.diagnostics.push_back(
        {sev, rule, std::move(message), loc});
  }

  void declare_type(const std::string& name, SourceLoc loc) {
    if (is_reserved(name)) {
      emit(Severity::kError, "RPCL005",
           "type name '" + name + "' shadows a builtin type or keyword", loc);
      return;
    }
    if (!types_.emplace(name, loc).second)
      emit(Severity::kError, "RPCL004",
           "duplicate type name '" + name + "'", loc);
  }

  void declare_constant(const std::string& name, SourceLoc loc) {
    if (is_reserved(name)) {
      emit(Severity::kError, "RPCL005",
           "constant name '" + name + "' shadows a builtin type or keyword",
           loc);
      return;
    }
    if (!constants_.emplace(name, loc).second)
      emit(Severity::kError, "RPCL004",
           "duplicate constant name '" + name + "'", loc);
  }

  void collect_declarations() {
    for (const auto& c : spec_.consts) declare_constant(c.name, c.loc);
    for (const auto& e : spec_.enums) {
      declare_type(e.name, e.loc);
      for (const auto& [name, value] : e.values) {
        (void)value;
        declare_constant(name, e.loc);
      }
    }
    for (const auto& s : spec_.structs) declare_type(s.name, s.loc);
    for (const auto& u : spec_.unions) declare_type(u.name, u.loc);
    for (const auto& t : spec_.typedefs) declare_type(t.name, t.loc);
  }

  /// Whether a `tainted` annotation is meaningful where the type appears.
  /// Results flow server->client (trusted side) and union discriminants
  /// drive decode itself, so taint is rejected there.
  enum class TaintCtx { kAllowed, kForbidden };

  /// Resolves through typedefs to decide whether `tainted` names an
  /// undecorated integer scalar — the only shape Untrusted<T> can wrap.
  [[nodiscard]] bool resolves_to_integer_scalar(const TypeRef& t,
                                                int depth = 0) const {
    if (t.decoration != TypeRef::Decoration::kNone) return false;
    if (std::holds_alternative<Builtin>(t.base)) {
      switch (std::get<Builtin>(t.base)) {
        case Builtin::kInt:
        case Builtin::kUInt:
        case Builtin::kHyper:
        case Builtin::kUHyper:
          return true;
        default:
          return false;
      }
    }
    if (depth > 8) return false;  // typedef cycles are caught elsewhere
    const auto& name = std::get<std::string>(t.base);
    for (const auto& td : spec_.typedefs)
      if (td.name == name) return resolves_to_integer_scalar(td.type, depth + 1);
    return false;
  }

  /// One TypeRef in context: undefined references (RPCL008), unbounded
  /// variable-length payloads (RPCL006), over-budget bounds (RPCL007), and
  /// misplaced or non-scalar `tainted` annotations (RPCL016).
  void visit_type(const TypeRef& t, const std::string& where,
                  TaintCtx taint_ctx = TaintCtx::kAllowed) {
    if (t.tainted) {
      if (taint_ctx == TaintCtx::kForbidden) {
        emit(Severity::kError, "RPCL016",
             "'tainted' is not allowed on " + where +
                 "; only wire-decoded argument-side scalars carry taint",
             t.loc);
      } else if (!resolves_to_integer_scalar(t)) {
        emit(Severity::kError, "RPCL016",
             "'tainted' in " + where +
                 " requires an undecorated integer scalar type",
             t.loc);
      }
    }
    if (std::holds_alternative<std::string>(t.base)) {
      const auto& name = std::get<std::string>(t.base);
      if (!types_.contains(name)) {
        emit(Severity::kError, "RPCL008",
             "reference to undefined type '" + name + "' in " + where, t.loc);
      } else {
        used_types_.insert(name);
      }
    }
    if (t.decoration == TypeRef::Decoration::kVariableArray && !t.bound) {
      emit(Severity::kWarning, "RPCL006",
           "unbounded variable-length " + type_word(t) + " in " + where +
               "; give it an explicit <N> bound",
           t.loc);
    }
    if (t.bound) {
      const std::uint64_t wire =
          static_cast<std::uint64_t>(*t.bound) * element_wire_size(t);
      if (wire > options_.max_bound) {
        emit(Severity::kError, "RPCL007",
             "bound " + std::to_string(*t.bound) + " in " + where +
                 " implies at least " + std::to_string(wire) +
                 " wire bytes, exceeding the budget of " +
                 std::to_string(options_.max_bound),
             t.loc);
      }
    }
  }

  static std::string type_word(const TypeRef& t) {
    if (std::holds_alternative<Builtin>(t.base)) {
      if (std::get<Builtin>(t.base) == Builtin::kOpaque) return "opaque";
      if (std::get<Builtin>(t.base) == Builtin::kString) return "string";
    }
    return "array";
  }

  void check_type_refs() {
    for (const auto& s : spec_.structs)
      for (const auto& f : s.fields)
        visit_type(f.type, "struct " + s.name + "." + f.name);
    for (const auto& u : spec_.unions) {
      visit_type(u.discriminant_type, "union " + u.name + " discriminant",
                 TaintCtx::kForbidden);
      for (const auto& arm : u.arms)
        if (arm.field)
          visit_type(arm.field->type,
                     "union " + u.name + "." + arm.field->name);
    }
    for (const auto& t : spec_.typedefs)
      visit_type(t.type, "typedef " + t.name);
    for (const auto& p : spec_.programs)
      for (const auto& v : p.versions)
        for (const auto& proc : v.procs) {
          visit_type(proc.result, "result of " + proc.name,
                     TaintCtx::kForbidden);
          for (std::size_t i = 0; i < proc.args.size(); ++i)
            visit_type(proc.args[i], "argument " + std::to_string(i + 1) +
                                         " of " + proc.name);
        }
  }

  void check_unused_types() {
    for (const auto& [name, loc] : types_) {
      if (!used_types_.contains(name))
        emit(Severity::kWarning, "RPCL009",
             "type '" + name + "' is declared but never referenced", loc);
    }
  }

  void check_programs() {
    std::map<std::uint32_t, std::string> prog_numbers;
    for (const auto& p : spec_.programs) {
      if (const auto [it, inserted] = prog_numbers.emplace(p.number, p.name);
          !inserted) {
        emit(Severity::kError, "RPCL001",
             "duplicate program number " + std::to_string(p.number) +
                 " (also used by program '" + it->second + "')",
             p.loc);
      }
      std::map<std::uint32_t, std::string> ver_numbers;
      for (const auto& v : p.versions) {
        if (const auto [it, inserted] = ver_numbers.emplace(v.number, v.name);
            !inserted) {
          emit(Severity::kError, "RPCL002",
               "duplicate version number " + std::to_string(v.number) +
                   " in program '" + p.name + "' (also used by version '" +
                   it->second + "')",
               v.loc);
        }
        check_procs(v);
      }
    }
  }

  void check_procs(const VersionDef& v) {
    std::map<std::uint32_t, std::string> proc_numbers;
    bool monotonic_warned = false;
    const ProcDef* prev = nullptr;
    for (const auto& proc : v.procs) {
      if (const auto [it, inserted] =
              proc_numbers.emplace(proc.number, proc.name);
          !inserted) {
        emit(Severity::kError, "RPCL003",
             "duplicate procedure number " + std::to_string(proc.number) +
                 " in version '" + v.name + "' (also used by '" + it->second +
                 "')",
             proc.loc);
      } else if (prev && proc.number <= prev->number && !monotonic_warned) {
        // One warning per version is enough: a single out-of-order proc
        // usually means the rest of the list is shifted too.
        monotonic_warned = true;
        emit(Severity::kWarning, "RPCL010",
             "procedure numbers in version '" + v.name +
                 "' are not in increasing order ('" + proc.name + "' = " +
                 std::to_string(proc.number) + " follows '" + prev->name +
                 "' = " + std::to_string(prev->number) + ")",
             proc.loc);
      }
      prev = &proc;
    }
  }

  const SpecFile& spec_;
  const SemaOptions& options_;
  SemaResult result_;
  std::map<std::string, SourceLoc> types_;
  std::map<std::string, SourceLoc> constants_;
  std::set<std::string> used_types_;
};

}  // namespace

std::size_t SemaResult::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t SemaResult::warning_count() const noexcept {
  return diagnostics.size() - error_count();
}

bool SemaResult::ok(const SemaOptions& options) const noexcept {
  if (options.warnings_as_errors) return diagnostics.empty();
  return error_count() == 0;
}

SemaResult analyze(const SpecFile& spec, const SemaOptions& options) {
  return Analyzer(spec, options).run();
}

std::string format_diagnostic(const Diagnostic& diag, std::string_view file) {
  std::string out(file);
  if (diag.loc.line > 0) {
    out += ':';
    out += std::to_string(diag.loc.line);
    if (diag.loc.col > 0) {
      out += ':';
      out += std::to_string(diag.loc.col);
    }
  }
  out += diag.severity == Severity::kError ? ": error: " : ": warning: ";
  out += diag.message;
  out += " [";
  out += diag.rule;
  out += ']';
  return out;
}

}  // namespace cricket::rpcl
