#include "rpcl/codegen.hpp"

#include <algorithm>
#include <sstream>

#include "rpcl/bounds.hpp"
#include "rpcl/lexer.hpp"

namespace cricket::rpcl {
namespace {

std::string builtin_cpp(Builtin b) {
  switch (b) {
    case Builtin::kInt: return "std::int32_t";
    case Builtin::kUInt: return "std::uint32_t";
    case Builtin::kHyper: return "std::int64_t";
    case Builtin::kUHyper: return "std::uint64_t";
    case Builtin::kFloat: return "float";
    case Builtin::kDouble: return "double";
    case Builtin::kBool: return "bool";
    case Builtin::kVoid: return "void";
    case Builtin::kString: return "std::string";
    case Builtin::kOpaque: return "std::uint8_t";  // element type
  }
  return "void";
}

/// C++ type for a TypeRef, applying array/optional decorations.
std::string cpp_type(const TypeRef& t) {
  std::string base = std::holds_alternative<Builtin>(t.base)
                         ? builtin_cpp(std::get<Builtin>(t.base))
                         : std::get<std::string>(t.base);
  const bool is_opaque = std::holds_alternative<Builtin>(t.base) &&
                         std::get<Builtin>(t.base) == Builtin::kOpaque;
  const bool is_string = std::holds_alternative<Builtin>(t.base) &&
                         std::get<Builtin>(t.base) == Builtin::kString;
  switch (t.decoration) {
    case TypeRef::Decoration::kNone:
      return base;
    case TypeRef::Decoration::kOptional:
      return "std::optional<" + base + ">";
    case TypeRef::Decoration::kFixedArray:
      return "std::array<" + base + ", " + std::to_string(*t.bound) + ">";
    case TypeRef::Decoration::kVariableArray:
      if (is_string) return "std::string";  // string<N> stays std::string
      if (is_opaque) return "std::vector<std::uint8_t>";
      return "std::vector<" + base + ">";
  }
  return base;
}

bool is_void(const TypeRef& t) { return t.is_void(); }

/// Whether a type carries the wiretaint mark, directly or through a chain
/// of tainted typedefs ("typedef tainted unsigned hyper ptr_t;" taints
/// every undecorated use of ptr_t).
bool carries_taint(const SpecFile& spec, const TypeRef& t, int depth = 0) {
  if (t.tainted) return true;
  if (depth > 8 || !std::holds_alternative<std::string>(t.base)) return false;
  const TypedefDef* td = spec.find_typedef(std::get<std::string>(t.base));
  return td != nullptr && carries_taint(spec, td->type, depth + 1);
}

/// Whether codegen wraps this type in Untrusted<T> on the decode side.
/// Only undecorated scalars wrap (sema RPCL016 enforces the shape).
bool wraps_untrusted(const SpecFile& spec, const TypeRef& t, bool taint_mode) {
  return taint_mode && t.decoration == TypeRef::Decoration::kNone &&
         carries_taint(spec, t);
}

/// C++ type on the server/decode side: tainted scalars become Untrusted<T>
/// so the compiler enumerates every unchecked use. The client stub always
/// uses cpp_type() — the encode side holds trusted values and the wire
/// format is identical either way.
std::string server_cpp_type(const SpecFile& spec, const TypeRef& t,
                            bool taint_mode) {
  if (wraps_untrusted(spec, t, taint_mode))
    return "::cricket::xdr::Untrusted<" + cpp_type(t) + ">";
  return cpp_type(t);
}

void emit_struct(std::ostringstream& out, const StructDef& s,
                 const SpecFile& spec, bool taint_mode) {
  out << "struct " << s.name << " {\n";
  for (const auto& f : s.fields)
    out << "  " << server_cpp_type(spec, f.type, taint_mode) << " " << f.name
        << "{};\n";
  out << "\n  bool operator==(const " << s.name << "&) const = default;\n";
  out << "};\n\n";

  out << "inline void xdr_encode(::cricket::xdr::Encoder& enc, const "
      << s.name << "& v) {\n";
  for (const auto& f : s.fields)
    out << "  xdr_encode(enc, v." << f.name << ");\n";
  out << "}\n\n";
  out << "inline void xdr_decode(::cricket::xdr::Decoder& dec, " << s.name
      << "& v) {\n";
  for (const auto& f : s.fields) {
    out << "  xdr_decode(dec, v." << f.name << ");\n";
    // Enforce the bounds the .x file declares (string<N>, T name<N>): a
    // hostile peer must not be able to smuggle oversized fields past the
    // declared interface.
    if (f.type.decoration == TypeRef::Decoration::kVariableArray &&
        f.type.bound.has_value()) {
      out << "  if (v." << f.name << ".size() > " << *f.type.bound
          << "u)\n    throw ::cricket::xdr::XdrError(\"field '" << f.name
          << "' exceeds declared bound " << *f.type.bound << "\");\n";
    }
  }
  out << "}\n\n";
}

void emit_enum(std::ostringstream& out, const EnumDef& e) {
  out << "enum class " << e.name << " : std::int32_t {\n";
  for (const auto& [name, value] : e.values)
    out << "  " << name << " = " << value << ",\n";
  out << "};\n\n";
}

void emit_union(std::ostringstream& out, const UnionDef& u,
                const SpecFile& spec) {
  // XDR unions become a struct holding the discriminant plus one optional
  // member per non-void arm; encode/decode switch on the discriminant.
  out << "struct " << u.name << " {\n";
  out << "  " << cpp_type(u.discriminant_type) << " "
      << u.discriminant_name << "{};\n";
  for (const auto& arm : u.arms)
    if (arm.field)
      out << "  std::optional<" << cpp_type(arm.field->type) << "> "
          << arm.field->name << ";\n";
  out << "};\n\n";

  const bool disc_is_enum =
      std::holds_alternative<std::string>(u.discriminant_type.base) &&
      spec.find_enum(std::get<std::string>(u.discriminant_type.base)) !=
          nullptr;
  const std::string disc_cast =
      disc_is_enum ? "static_cast<std::int64_t>(v." + u.discriminant_name + ")"
                   : "static_cast<std::int64_t>(v." + u.discriminant_name +
                         ")";

  out << "inline void xdr_encode(::cricket::xdr::Encoder& enc, const "
      << u.name << "& v) {\n";
  out << "  xdr_encode(enc, v." << u.discriminant_name << ");\n";
  out << "  switch (" << disc_cast << ") {\n";
  const UnionArm* default_arm = nullptr;
  for (const auto& arm : u.arms) {
    if (arm.is_default) {
      default_arm = &arm;
      continue;
    }
    for (const auto c : arm.cases) out << "    case " << c << ":\n";
    if (arm.field)
      out << "      xdr_encode(enc, v." << arm.field->name << ".value());\n";
    out << "      break;\n";
  }
  out << "    default:\n";
  if (default_arm && default_arm->field)
    out << "      xdr_encode(enc, v." << default_arm->field->name
        << ".value());\n";
  out << "      break;\n  }\n}\n\n";

  out << "inline void xdr_decode(::cricket::xdr::Decoder& dec, " << u.name
      << "& v) {\n";
  out << "  xdr_decode(dec, v." << u.discriminant_name << ");\n";
  out << "  switch (" << disc_cast << ") {\n";
  for (const auto& arm : u.arms) {
    if (arm.is_default) continue;
    for (const auto c : arm.cases) out << "    case " << c << ":\n";
    if (arm.field) {
      out << "      v." << arm.field->name << ".emplace();\n";
      out << "      xdr_decode(dec, v." << arm.field->name << ".value());\n";
    }
    out << "      break;\n";
  }
  out << "    default:\n";
  if (default_arm && default_arm->field) {
    out << "      v." << default_arm->field->name << ".emplace();\n";
    out << "      xdr_decode(dec, v." << default_arm->field->name
        << ".value());\n";
  }
  out << "      break;\n  }\n}\n\n";
}

std::string upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

void emit_program(std::ostringstream& out, const ProgramDef& prog,
                  const SpecFile& spec, bool taint_mode) {
  out << "inline constexpr std::uint32_t " << upper(prog.name)
      << "_PROG = " << prog.number << "u;\n\n";
  for (const auto& ver : prog.versions) {
    out << "inline constexpr std::uint32_t " << upper(ver.name)
        << "_VERS = " << ver.number << "u;\n";
    for (const auto& proc : ver.procs)
      out << "inline constexpr std::uint32_t " << upper(proc.name)
          << "_PROC = " << proc.number << "u;\n";
    out << "\n";

    // ---- typed client stub (RPC-Lib's generated client) ----
    out << "/// Typed client stub for " << prog.name << " v" << ver.number
        << ". One method per procedure in the .x file.\n";
    out << "class " << ver.name << "Client {\n public:\n";
    out << "  explicit " << ver.name
        << "Client(::cricket::rpc::RpcClient& client) : client_(&client) "
           "{}\n\n";
    for (const auto& proc : ver.procs) {
      const std::string res =
          is_void(proc.result) ? "void" : cpp_type(proc.result);
      out << "  " << res << " " << proc.name << "(";
      for (std::size_t i = 0; i < proc.args.size(); ++i) {
        if (i) out << ", ";
        out << "const " << cpp_type(proc.args[i]) << "& a" << i;
      }
      out << ") {\n";
      if (is_void(proc.result)) {
        out << "    client_->call_void(" << upper(proc.name) << "_PROC";
      } else {
        out << "    return client_->call<" << res << ">("
            << upper(proc.name) << "_PROC";
      }
      for (std::size_t i = 0; i < proc.args.size(); ++i) out << ", a" << i;
      out << ");\n  }\n\n";
    }
    out << "  [[nodiscard]] ::cricket::rpc::RpcClient& rpc() noexcept { "
           "return *client_; }\n\n";
    out << " private:\n  ::cricket::rpc::RpcClient* client_;\n};\n\n";

    // ---- abstract service skeleton (rpcgen's generated server) ----
    out << "/// Server skeleton for " << prog.name << " v" << ver.number
        << ": implement the pure virtuals and call register_into().\n";
    out << "class " << ver.name << "Service {\n public:\n";
    out << "  virtual ~" << ver.name << "Service() = default;\n\n";
    for (const auto& proc : ver.procs) {
      const std::string res =
          is_void(proc.result) ? "void" : cpp_type(proc.result);
      out << "  virtual " << res << " " << proc.name << "(";
      for (std::size_t i = 0; i < proc.args.size(); ++i) {
        if (i) out << ", ";
        out << server_cpp_type(spec, proc.args[i], taint_mode) << " a" << i;
      }
      out << ") = 0;\n";
    }
    out << "\n  /// Binds every procedure into an RPC dispatch registry.\n";
    out << "  void register_into(::cricket::rpc::ServiceRegistry& registry) "
           "{\n";
    for (const auto& proc : ver.procs) {
      const std::string res =
          is_void(proc.result) ? "void" : cpp_type(proc.result);
      out << "    registry.register_typed<" << res;
      for (const auto& arg : proc.args)
        out << ", " << server_cpp_type(spec, arg, taint_mode);
      out << ">(\n        " << upper(prog.name) << "_PROG, "
          << upper(ver.name) << "_VERS, " << upper(proc.name) << "_PROC,\n";
      out << "        [this](";
      for (std::size_t i = 0; i < proc.args.size(); ++i) {
        if (i) out << ", ";
        out << server_cpp_type(spec, proc.args[i], taint_mode) << " a" << i;
      }
      out << ") { return this->" << proc.name << "(";
      for (std::size_t i = 0; i < proc.args.size(); ++i) {
        if (i) out << ", ";
        out << "std::move(a" << i << ")";
      }
      out << "); });\n";
    }
    out << "  }\n};\n\n";
  }
}

/// Emits `namespace taint` with default validators whose bounds come from
/// the wire-size interval analysis (the PR 4 bounds tables): no conforming
/// message can describe more bytes than the largest legal payload, so any
/// wire length above it is hostile by construction.
void emit_taint_namespace(std::ostringstream& out, const SpecFile& spec) {
  const BoundsResult bounds = compute_bounds(spec);
  std::uint64_t max_args = 0;
  bool any_bounded = false;
  for (const auto& p : bounds.procs) {
    if (!p.args.bounded) continue;
    any_bounded = true;
    max_args = std::max(max_args, p.args.max);
  }
  const std::uint64_t arg_bytes =
      any_bounded ? max_args : UINT64_MAX;
  const std::uint64_t payload =
      bounds.max_payload != 0 ? bounds.max_payload : arg_bytes;

  out << "namespace taint {\n\n";
  out << "// Derived from the rpclgen wire-size bounds tables for this "
         "spec.\n";
  out << "inline constexpr std::uint64_t kMaxArgWireBytes = " << arg_bytes
      << "ull;\n";
  out << "inline constexpr std::uint64_t kMaxPayloadBytes = " << payload
      << "ull;\n\n";
  out << "/// Default validator for wire-declared byte lengths and counts:\n"
         "/// a value larger than the biggest legal payload is hostile\n"
         "/// regardless of which field it arrived in. Handlers with a\n"
         "/// tighter semantic bound should validate against that instead.\n"
         "template <typename T>\n"
         "[[nodiscard]] inline T validate_length(::cricket::xdr::Untrusted<T> "
         "v,\n"
         "                                       const char* what) {\n"
         "  constexpr std::uint64_t kTypeMax =\n"
         "      static_cast<std::uint64_t>(std::numeric_limits<T>::max());\n"
         "  return v.validate(\n"
         "      static_cast<T>(kMaxPayloadBytes < kTypeMax ? kMaxPayloadBytes\n"
         "                                                 : kTypeMax),\n"
         "      what);\n"
         "}\n\n";
  for (const auto& s : spec.structs) {
    for (const auto& f : s.fields) {
      if (!wraps_untrusted(spec, f.type, /*taint_mode=*/true)) continue;
      out << "[[nodiscard]] inline " << cpp_type(f.type) << " validate_"
          << s.name << "_" << f.name << "(const " << s.name << "& v) {\n"
          << "  return validate_length<" << cpp_type(f.type) << ">(v."
          << f.name << ", \"" << s.name << "." << f.name << "\");\n"
          << "}\n\n";
    }
  }
  out << "}  // namespace taint\n\n";
}

}  // namespace

std::string generate_header(const SpecFile& spec,
                            const CodegenOptions& options) {
  std::ostringstream out;
  out << "// GENERATED by rpclgen from " << options.source_name
      << " — do not edit.\n";
  out << "// Equivalent to the output of rpcgen (server) and RPC-Lib's\n";
  out << "// procedural macros (client) for the same specification.\n";
  out << "#pragma once\n\n";
  out << "#include <array>\n#include <cstdint>\n";
  if (options.taint) out << "#include <limits>\n";
  out << "#include <optional>\n"
         "#include <string>\n#include <utility>\n#include <vector>\n\n";
  out << "#include \"rpc/client.hpp\"\n#include \"rpc/server.hpp\"\n";
  if (options.taint) out << "#include \"xdr/taint.hpp\"\n";
  out << "#include \"xdr/xdr.hpp\"\n\n";
  out << "namespace " << options.ns << " {\n\n";

  for (const auto& c : spec.consts)
    out << "inline constexpr std::int64_t " << c.name << " = " << c.value
        << ";\n";
  if (!spec.consts.empty()) out << "\n";

  for (const auto& e : spec.enums) emit_enum(out, e);
  for (const auto& t : spec.typedefs)
    out << "using " << t.name << " = " << cpp_type(t.type) << ";\n";
  if (!spec.typedefs.empty()) out << "\n";
  for (const auto& s : spec.structs) emit_struct(out, s, spec, options.taint);
  for (const auto& u : spec.unions) emit_union(out, u, spec);
  if (options.taint) emit_taint_namespace(out, spec);
  for (const auto& p : spec.programs)
    emit_program(out, p, spec, options.taint);

  out << "}  // namespace " << options.ns << "\n";
  return out.str();
}

}  // namespace cricket::rpcl
