#include "rpcl/bounds.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace cricket::rpcl {
namespace {

constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
constexpr std::uint64_t kU32Max = 0xFFFFFFFFull;

/// RPCL013 thresholds: warn only when the dominant arm is big enough to
/// matter for receive-buffer sizing and clearly out of scale with the rest
/// of the union.
constexpr std::uint64_t kDominantArmMinBytes = 64 * 1024;
constexpr std::uint64_t kDominantArmRatio = 16;

/// Saturating arithmetic: a hostile spec must not be able to wrap the size
/// computation and get a small (wrong) bound certified. Saturated values
/// stick at UINT64_MAX and trip RPCL012 downstream.
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kU64Max - b ? kU64Max : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kU64Max / b ? kU64Max : a * b;
}

/// XDR pads opaque/string bodies to a 4-byte boundary (RFC 4506 §3/§4).
std::uint64_t padded(std::uint64_t n) {
  const std::uint64_t p = sat_add(n, 3);
  return p == kU64Max ? kU64Max : p & ~std::uint64_t{3};
}

SizeInterval exact(std::uint64_t n) { return {n, n, true}; }

SizeInterval unbounded_from(std::uint64_t min) { return {min, 0, false}; }

SizeInterval interval_sum(SizeInterval a, SizeInterval b) {
  SizeInterval r;
  r.min = sat_add(a.min, b.min);
  r.bounded = a.bounded && b.bounded;
  r.max = r.bounded ? sat_add(a.max, b.max) : 0;
  return r;
}

bool is_bytes(const TypeRef& t) {
  if (!std::holds_alternative<Builtin>(t.base)) return false;
  const auto b = std::get<Builtin>(t.base);
  return b == Builtin::kString || b == Builtin::kOpaque;
}

class BoundsAnalyzer {
 public:
  BoundsAnalyzer(const SpecFile& spec, const BoundsOptions& options)
      : spec_(spec), options_(options) {}

  BoundsResult run() {
    resolve_budget();
    collect_types();
    check_union_dominance();
    check_procs();
    // Same presentation contract as sema: findings in source order.
    std::stable_sort(result_.diagnostics.begin(), result_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.loc.line != b.loc.line)
                         return a.loc.line < b.loc.line;
                       return a.loc.col < b.loc.col;
                     });
    return std::move(result_);
  }

 private:
  void emit(Severity sev, const char* rule, std::string message,
            SourceLoc loc) {
    result_.diagnostics.push_back({sev, rule, std::move(message), loc});
  }

  void resolve_budget() {
    for (const auto& c : spec_.consts) {
      if (c.name == kBudgetConstName && c.value > 0)
        result_.max_payload = static_cast<std::uint64_t>(c.value);
    }
    if (options_.proc_budget != 0) {
      result_.budget = options_.proc_budget;
    } else if (result_.max_payload != 0) {
      result_.budget =
          sat_add(result_.max_payload, options_.overhead_allowance);
    }
  }

  // --- interval computation -------------------------------------------

  /// Size of a named type, memoized. Recursion is detected with an
  /// in-progress set: a cycle can never be assigned a finite XDR size
  /// (XDR has no indefinite-length encodings), so it is RPCL014 and the
  /// participant is poisoned to [0, 0] to stop the cascade.
  SizeInterval size_of_named(const std::string& name, SourceLoc use_loc) {
    if (const auto it = memo_.find(name); it != memo_.end()) return it->second;
    if (in_progress_.contains(name)) {
      if (recursion_reported_.insert(name).second) {
        emit(Severity::kError, "RPCL014",
             "type '" + name +
                 "' is recursive and can not be assigned a finite wire size",
             use_loc);
      }
      return exact(0);
    }
    in_progress_.insert(name);
    SizeInterval size = exact(0);
    if (const auto* s = spec_.find_struct(name)) {
      for (const auto& f : s->fields)
        size = interval_sum(size, size_of_type(f.type));
    } else if (const auto* u = spec_.find_union(name)) {
      size = size_of_union(*u);
    } else if (const auto* t = spec_.find_typedef(name)) {
      size = size_of_type(t->type);
    } else if (spec_.find_enum(name) != nullptr) {
      size = exact(4);
    }
    // else: undefined reference — sema reports RPCL008; [0, 0] here keeps
    // one broken name from cascading into bounds noise.
    in_progress_.erase(name);
    memo_.emplace(name, size);
    return size;
  }

  SizeInterval size_of_union(const UnionDef& u) {
    SizeInterval disc = size_of_type(u.discriminant_type);
    if (u.arms.empty()) return disc;
    SizeInterval arms{kU64Max, 0, true};
    for (const auto& arm : u.arms) {
      const SizeInterval a =
          arm.field ? size_of_type(arm.field->type) : exact(0);
      arms.min = std::min(arms.min, a.min);
      arms.bounded = arms.bounded && a.bounded;
      if (arms.bounded) arms.max = std::max(arms.max, a.max);
    }
    if (!arms.bounded) arms.max = 0;
    return interval_sum(disc, arms);
  }

  SizeInterval size_of_type(const TypeRef& t) {
    if (is_bytes(t)) {
      // string<N> / opaque<N> / opaque[N]: the element is one byte, padded
      // as a unit to a 4-byte boundary.
      if (t.decoration == TypeRef::Decoration::kFixedArray)
        return exact(padded(t.bound.value_or(0)));
      if (!t.bound) return unbounded_from(4);
      return {4, sat_add(4, padded(*t.bound)), true};
    }
    SizeInterval elem =
        std::holds_alternative<Builtin>(t.base)
            ? exact(builtin_size(std::get<Builtin>(t.base)))
            : size_of_named(std::get<std::string>(t.base), t.loc);
    switch (t.decoration) {
      case TypeRef::Decoration::kNone:
        return elem;
      case TypeRef::Decoration::kOptional: {
        // XDR pointer: 4-byte presence discriminant, then nothing or the
        // value.
        SizeInterval r{4, 0, elem.bounded};
        if (r.bounded) r.max = sat_add(4, elem.max);
        return r;
      }
      case TypeRef::Decoration::kFixedArray: {
        const std::uint64_t n = t.bound.value_or(0);
        SizeInterval r;
        r.min = sat_mul(elem.min, n);
        r.bounded = elem.bounded || n == 0;
        r.max = r.bounded ? sat_mul(elem.max, n) : 0;
        return r;
      }
      case TypeRef::Decoration::kVariableArray: {
        if (!t.bound || !elem.bounded) return unbounded_from(4);
        return {4, sat_add(4, sat_mul(elem.max, *t.bound)), true};
      }
    }
    return exact(0);
  }

  static std::uint64_t builtin_size(Builtin b) {
    switch (b) {
      case Builtin::kHyper:
      case Builtin::kUHyper:
      case Builtin::kDouble:
        return 8;
      case Builtin::kVoid:
        return 0;
      default:
        return 4;  // int, unsigned, float, bool (string/opaque handled above)
    }
  }

  // --- passes ----------------------------------------------------------

  void collect_types() {
    struct Named {
      const std::string* name;
      SourceLoc loc;
    };
    std::vector<Named> order;
    for (const auto& e : spec_.enums) order.push_back({&e.name, e.loc});
    for (const auto& s : spec_.structs) order.push_back({&s.name, s.loc});
    for (const auto& u : spec_.unions) order.push_back({&u.name, u.loc});
    for (const auto& t : spec_.typedefs) order.push_back({&t.name, t.loc});
    std::stable_sort(order.begin(), order.end(),
                     [](const Named& a, const Named& b) {
                       if (a.loc.line != b.loc.line)
                         return a.loc.line < b.loc.line;
                       return a.loc.col < b.loc.col;
                     });
    for (const auto& n : order) {
      const SizeInterval size = size_of_named(*n.name, n.loc);
      result_.types.push_back({*n.name, size});
      check_u32_overflow(size, "type '" + *n.name + "'", n.loc);
    }
  }

  /// RPCL012: a bound that does not fit the 32-bit XDR length field can
  /// never be honoured on the wire, and a saturated computation means the
  /// declared bounds are astronomically large.
  void check_u32_overflow(SizeInterval size, const std::string& what,
                          SourceLoc loc) {
    if (!size.bounded || size.max <= kU32Max) return;
    std::string detail =
        size.max == kU64Max
            ? "saturates 64-bit size arithmetic"
            : "is " + std::to_string(size.max) +
                  " bytes, overflowing the 32-bit wire length field";
    emit(Severity::kError, "RPCL012",
         "computed size bound of " + what + " " + detail, loc);
  }

  void check_union_dominance() {
    for (const auto& u : spec_.unions) {
      if (u.arms.size() < 2) continue;
      std::uint64_t largest = 0;
      std::uint64_t second = 0;
      const std::string* largest_name = nullptr;
      bool all_bounded = true;
      for (const auto& arm : u.arms) {
        const SizeInterval a =
            arm.field ? size_of_type(arm.field->type) : exact(0);
        if (!a.bounded) {
          all_bounded = false;  // RPCL011 territory, not a budget-shape issue
          break;
        }
        if (a.max > largest) {
          second = largest;
          largest = a.max;
          largest_name = arm.field ? &arm.field->name : nullptr;
        } else {
          second = std::max(second, a.max);
        }
      }
      if (!all_bounded || largest < kDominantArmMinBytes) continue;
      if (largest < sat_mul(kDominantArmRatio, std::max<std::uint64_t>(
                                                   second, 1)))
        continue;
      emit(Severity::kWarning, "RPCL013",
           "union '" + u.name + "' worst-case size is dominated by arm '" +
               (largest_name ? *largest_name : std::string("<void>")) +
               "' (" + std::to_string(largest) + " bytes vs " +
               std::to_string(second) +
               " for the next-largest arm); every receiver must budget for "
               "the large arm",
           u.loc);
    }
  }

  void check_procs() {
    for (const auto& p : spec_.programs) {
      for (const auto& v : p.versions) {
        for (const auto& proc : v.procs) {
          ProcBoundsInfo info;
          info.program = p.name;
          info.version = v.name;
          info.name = proc.name;
          info.prog = p.number;
          info.vers = v.number;
          info.number = proc.number;
          info.args = exact(0);
          for (const auto& a : proc.args) {
            if (a.is_void()) continue;
            info.args = interval_sum(info.args, size_of_type(a));
          }
          info.result = proc.result.is_void() ? exact(0)
                                              : size_of_type(proc.result);
          check_proc_direction(proc, "argument", info.args);
          check_proc_direction(proc, "result", info.result);
          result_.procs.push_back(std::move(info));
        }
      }
    }
  }

  void check_proc_direction(const ProcDef& proc, const char* direction,
                            SizeInterval size) {
    if (!size.bounded) {
      emit(Severity::kError, "RPCL011",
           std::string(direction) + " encoding of procedure '" + proc.name +
               "' is transitively unbounded; every reachable variable-length "
               "field needs an explicit <N> bound",
           proc.loc);
      return;
    }
    if (size.max > kU32Max) {
      check_u32_overflow(size,
                         std::string(direction) + " encoding of procedure '" +
                             proc.name + "'",
                         proc.loc);
      return;
    }
    if (result_.budget != 0 && size.max > result_.budget) {
      emit(Severity::kError, "RPCL015",
           std::string(direction) + " encoding of procedure '" + proc.name +
               "' can reach " + std::to_string(size.max) +
               " bytes, exceeding the per-procedure budget of " +
               std::to_string(result_.budget) + " (" +
               (options_.proc_budget != 0
                    ? "--proc-budget"
                    : std::string(kBudgetConstName) + " + overhead allowance") +
               ")",
           proc.loc);
    }
  }

  const SpecFile& spec_;
  const BoundsOptions& options_;
  BoundsResult result_;
  std::map<std::string, SizeInterval> memo_;
  std::set<std::string> in_progress_;
  std::set<std::string> recursion_reported_;
};

// --- generated header --------------------------------------------------

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += "ull";
}

void append_size(std::string& out, const SizeInterval& size, bool want_max) {
  if (!size.bounded && want_max) {
    out += "::cricket::rpc::kUnboundedWireSize";
    return;
  }
  append_u64(out, want_max ? size.max : size.min);
}

std::string hex_u32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08xu", v);
  return buf;
}

}  // namespace

std::size_t BoundsResult::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t BoundsResult::warning_count() const noexcept {
  return diagnostics.size() - error_count();
}

bool BoundsResult::ok(const BoundsOptions& options) const noexcept {
  if (options.warnings_as_errors) return diagnostics.empty();
  return error_count() == 0;
}

BoundsResult compute_bounds(const SpecFile& spec,
                            const BoundsOptions& options) {
  return BoundsAnalyzer(spec, options).run();
}

std::string generate_bounds_header(const SpecFile& spec,
                                   const BoundsResult& bounds,
                                   const CodegenOptions& options) {
  (void)spec;
  std::string out;
  out += "// Generated by rpclgen --emit-bounds from ";
  out += options.source_name;
  out += ". DO NOT EDIT.\n";
  out +=
      "// Wire-size interval tables proven by the rpcl bounds pass; the\n"
      "// static_asserts below make the C++ compiler of every including\n"
      "// build re-check the proof (see DESIGN.md §9).\n";
  out += "#pragma once\n\n";
  out += "#include <cstdint>\n";
  if (bounds.types.empty() || bounds.procs.empty())
    out += "#include <array>\n";
  out += "\n#include \"rpc/wire_bounds.hpp\"\n\n";
  out += "namespace " + options.ns + "::bounds {\n\n";

  if (bounds.max_payload != 0) {
    out += "/// " + std::string(kBudgetConstName) + " from the spec.\n";
    out += "inline constexpr std::uint64_t kMaxPayload = ";
    append_u64(out, bounds.max_payload);
    out += ";\n\n";
  }
  if (bounds.budget != 0) {
    out +=
        "/// Per-procedure ceiling every args_max / result_max below is\n"
        "/// statically checked against.\n";
    out += "inline constexpr std::uint64_t kProcBudget = ";
    append_u64(out, bounds.budget);
    out += ";";
    if (bounds.max_payload != 0 && bounds.budget > bounds.max_payload) {
      out += "  // kMaxPayload + ";
      out += std::to_string(bounds.budget - bounds.max_payload);
      out += " bytes of bounded overhead";
    }
    out += "\n\n";
  }

  out += "/// [min, max] encoded wire bytes of each named type.\n";
  if (bounds.types.empty()) {
    out +=
        "inline constexpr std::array<::cricket::rpc::TypeWireBounds, 0> "
        "kTypeBounds{};\n\n";
  } else {
    out += "inline constexpr ::cricket::rpc::TypeWireBounds kTypeBounds[] = "
           "{\n";
    for (const auto& t : bounds.types) {
      out += "    {\"" + t.name + "\", ";
      append_size(out, t.size, /*want_max=*/false);
      out += ", ";
      append_size(out, t.size, /*want_max=*/true);
      out += "},\n";
    }
    out += "};\n\n";
  }

  out +=
      "/// [min, max] encoded bytes of each procedure's argument list and\n"
      "/// result, excluding RPC headers.\n";
  if (bounds.procs.empty()) {
    out +=
        "inline constexpr std::array<::cricket::rpc::ProcWireBounds, 0> "
        "kProcBounds{};\n";
  } else {
    out += "inline constexpr ::cricket::rpc::ProcWireBounds kProcBounds[] = "
           "{\n";
    const std::string* last_version = nullptr;
    for (const auto& p : bounds.procs) {
      if (!last_version || *last_version != p.version) {
        out += "    // " + p.program + " " + p.version + "\n";
        last_version = &p.version;
      }
      out += "    {" + hex_u32(p.prog) + ", " + std::to_string(p.vers) +
             "u, " + std::to_string(p.number) + "u, ";
      append_size(out, p.args, false);
      out += ", ";
      append_size(out, p.args, true);
      out += ", ";
      append_size(out, p.result, false);
      out += ", ";
      append_size(out, p.result, true);
      out += ", \"" + p.name + "\"},\n";
    }
    out += "};\n";
  }

  if (bounds.budget != 0 && !bounds.procs.empty()) {
    out += "\n";
    for (std::size_t i = 0; i < bounds.procs.size(); ++i) {
      const auto& p = bounds.procs[i];
      if (p.args.bounded) {
        out += "static_assert(kProcBounds[" + std::to_string(i) +
               "].args_max <= kProcBudget,\n              \"" + p.name +
               ": argument bound exceeds budget\");\n";
      }
      if (p.result.bounded) {
        out += "static_assert(kProcBounds[" + std::to_string(i) +
               "].result_max <= kProcBudget,\n              \"" + p.name +
               ": result bound exceeds budget\");\n";
      }
    }
  }

  out += "\n}  // namespace " + options.ns + "::bounds\n";
  return out;
}

}  // namespace cricket::rpcl
