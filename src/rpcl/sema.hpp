// Semantic analyzer for parsed RPCL specifications.
//
// The parser (parser.hpp) accepts anything that is syntactically RPCL; this
// pass checks that the spec also *means* something sane before codegen sees
// it. Each finding is a typed Diagnostic carrying a stable rule id, a
// severity, and the 1-based line:col of the offending construct, so tools
// (rpclgen --lint, tests, editors) can present and filter them uniformly.
//
// Rules:
//   RPCL001  error    duplicate program number
//   RPCL002  error    duplicate version number within a program
//   RPCL003  error    duplicate procedure number within a version
//   RPCL004  error    duplicate declaration (type or constant name)
//   RPCL005  error    declaration shadows a builtin type or RPCL keyword
//   RPCL006  warning  unbounded opaque<> / string<> / variable-length array
//   RPCL007  error    declared bound exceeds the wire-size budget
//   RPCL008  error    reference to an undefined type
//   RPCL009  warning  declared type is never referenced
//   RPCL010  warning  procedure numbers not in increasing order
//   RPCL016  error    'tainted' on a non-scalar type, a procedure result,
//                     or a union discriminant (wiretaint, --emit-taint)
//
// RPCL006 is a warning (not an error) because unbounded payloads are legal
// XDR and common in quick prototypes; production specs opt into strictness
// with SemaOptions::warnings_as_errors (rpclgen --Werror).
//
// Rules RPCL011-RPCL015 (whole-message wire-size interval analysis) are
// implemented by the separate bounds pass in bounds.hpp and reported
// through the same Diagnostic type; rpclgen --emit-bounds runs both passes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rpcl/ast.hpp"

namespace cricket::rpcl {

enum class Severity { kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;     // stable id, e.g. "RPCL006"
  std::string message;  // human-readable, no location prefix
  SourceLoc loc;        // 1-based; loc.valid() == false if synthesized
};

struct SemaOptions {
  /// Maximum accepted bound on opaque<N> / string<N> / arrays, measured in
  /// wire bytes (element count x XDR element size). Defaults to 1 GiB, the
  /// largest single transfer the Cricket benchmarks ship (bench_fig7 moves
  /// 512 MiB payloads).
  std::uint64_t max_bound = 1ull << 30;
  /// Promote warnings to errors for ok() / rpclgen --Werror.
  bool warnings_as_errors = false;
};

struct SemaResult {
  std::vector<Diagnostic> diagnostics;  // ordered by source location

  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  /// True when the spec should be accepted under the given options.
  [[nodiscard]] bool ok(const SemaOptions& options = {}) const noexcept;
};

/// Runs every rule over an already-parsed spec. Never throws; all findings
/// are returned as diagnostics.
[[nodiscard]] SemaResult analyze(const SpecFile& spec,
                                 const SemaOptions& options = {});

/// Formats one diagnostic in the conventional compiler style:
///   file:line:col: error: message [RPCL004]
/// (the ":col" / ":line" parts are omitted when unknown).
[[nodiscard]] std::string format_diagnostic(const Diagnostic& diag,
                                            std::string_view file);

}  // namespace cricket::rpcl
