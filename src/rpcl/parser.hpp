// Recursive-descent parser for the RPC Language.
#pragma once

#include <string_view>

#include "rpcl/ast.hpp"
#include "rpcl/lexer.hpp"

namespace cricket::rpcl {

/// Parses a complete .x specification. Throws ParseError with line info on
/// syntax errors, and on the first error-severity semantic diagnostic
/// (duplicate type names, duplicate procedure numbers, references to
/// undefined types, ...; see rpcl/sema.hpp for the full rule set).
/// Warning-severity diagnostics are ignored here.
[[nodiscard]] SpecFile parse_spec(std::string_view source);

/// Parses syntax only — no semantic analysis. Use together with
/// rpcl::analyze() when the full diagnostic list (including warnings) is
/// wanted instead of a throw-on-first-error contract.
[[nodiscard]] SpecFile parse_spec_unchecked(std::string_view source);

}  // namespace cricket::rpcl
