// Recursive-descent parser for the RPC Language.
#pragma once

#include <string_view>

#include "rpcl/ast.hpp"
#include "rpcl/lexer.hpp"

namespace cricket::rpcl {

/// Parses a complete .x specification. Throws ParseError with line info on
/// syntax errors; performs basic semantic checks (duplicate type names,
/// duplicate procedure numbers, references to undefined types).
[[nodiscard]] SpecFile parse_spec(std::string_view source);

}  // namespace cricket::rpcl
