#include "rpcl/parser.hpp"

#include <map>

#include "rpcl/sema.hpp"

namespace cricket::rpcl {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SpecFile parse() {
    while (!at(TokKind::kEof)) parse_definition();
    return std::move(spec_);
  }

 private:
  // ------------------------------ helpers --------------------------------
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] SourceLoc here() const { return {cur().line, cur().col}; }
  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }
  [[nodiscard]] bool at_ident(std::string_view s) const {
    return at(TokKind::kIdentifier) && cur().text == s;
  }

  const Token& advance() { return tokens_[pos_++]; }

  const Token& expect(TokKind k, const char* what) {
    if (!at(k)) throw ParseError(std::string("expected ") + what, cur().line);
    return advance();
  }

  std::string expect_ident() {
    return expect(TokKind::kIdentifier, "identifier").text;
  }

  std::int64_t expect_value() {
    if (at(TokKind::kNumber)) return advance().number;
    if (at(TokKind::kIdentifier)) {
      const std::string name = advance().text;
      const auto it = const_values_.find(name);
      if (it == const_values_.end())
        throw ParseError("unknown constant '" + name + "'",
                         tokens_[pos_ - 1].line);
      return it->second;
    }
    throw ParseError("expected number or constant", cur().line);
  }

  // ----------------------------- definitions ------------------------------
  void parse_definition() {
    if (at_ident("const")) return parse_const();
    if (at_ident("enum")) return parse_enum();
    if (at_ident("struct")) return parse_struct();
    if (at_ident("union")) return parse_union();
    if (at_ident("typedef")) return parse_typedef();
    if (at_ident("program")) return parse_program();
    throw ParseError("expected top-level definition, got '" + cur().text + "'",
                     cur().line);
  }

  void parse_const() {
    advance();  // const
    ConstDef def;
    def.loc = here();
    def.name = expect_ident();
    expect(TokKind::kEquals, "'='");
    def.value = expect_value();
    expect(TokKind::kSemicolon, "';'");
    const_values_[def.name] = def.value;
    spec_.consts.push_back(std::move(def));
  }

  void parse_enum() {
    advance();  // enum
    EnumDef def;
    def.loc = here();
    def.name = expect_ident();
    expect(TokKind::kLBrace, "'{'");
    std::int32_t next = 0;
    for (;;) {
      const std::string name = expect_ident();
      std::int32_t value = next;
      if (at(TokKind::kEquals)) {
        advance();
        value = static_cast<std::int32_t>(expect_value());
      }
      def.values.emplace_back(name, value);
      const_values_[name] = value;  // enum values usable as constants
      next = value + 1;
      if (at(TokKind::kComma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokKind::kRBrace, "'}'");
    expect(TokKind::kSemicolon, "';'");
    spec_.enums.push_back(std::move(def));
  }

  /// Parses "type-specifier" plus optional leading '*' and the wiretaint
  /// `tainted` attribute ("tainted unsigned hyper size;").
  TypeRef parse_type() {
    TypeRef t;
    if (at(TokKind::kStar)) {
      advance();
      t.decoration = TypeRef::Decoration::kOptional;
    }
    if (at_ident("tainted")) {
      advance();
      t.tainted = true;
    }
    t.loc = here();
    std::string name = expect_ident();
    if (name == "unsigned") {
      // "unsigned int" | "unsigned hyper" | bare "unsigned".
      if (at_ident("int")) {
        advance();
        t.base = Builtin::kUInt;
      } else if (at_ident("hyper")) {
        advance();
        t.base = Builtin::kUHyper;
      } else {
        t.base = Builtin::kUInt;
      }
    } else if (name == "int") {
      t.base = Builtin::kInt;
    } else if (name == "hyper") {
      t.base = Builtin::kHyper;
    } else if (name == "float") {
      t.base = Builtin::kFloat;
    } else if (name == "double") {
      t.base = Builtin::kDouble;
    } else if (name == "bool") {
      t.base = Builtin::kBool;
    } else if (name == "void") {
      t.base = Builtin::kVoid;
    } else if (name == "string") {
      t.base = Builtin::kString;
    } else if (name == "opaque") {
      t.base = Builtin::kOpaque;
    } else {
      t.base = name;
    }
    return t;
  }

  /// Parses the declarator suffix after a field name: [N], <N>, <>.
  void parse_array_suffix(TypeRef& t) {
    if (at(TokKind::kLBracket)) {
      advance();
      t.decoration = TypeRef::Decoration::kFixedArray;
      t.bound = static_cast<std::uint32_t>(expect_value());
      expect(TokKind::kRBracket, "']'");
    } else if (at(TokKind::kLAngle)) {
      advance();
      t.decoration = TypeRef::Decoration::kVariableArray;
      if (!at(TokKind::kRAngle))
        t.bound = static_cast<std::uint32_t>(expect_value());
      expect(TokKind::kRAngle, "'>'");
    }
    // string/opaque without explicit <> still mean variable-length.
    if (std::holds_alternative<Builtin>(t.base)) {
      const Builtin b = std::get<Builtin>(t.base);
      if ((b == Builtin::kString || b == Builtin::kOpaque) &&
          t.decoration == TypeRef::Decoration::kNone)
        t.decoration = TypeRef::Decoration::kVariableArray;
    }
  }

  Field parse_field() {
    Field f;
    f.type = parse_type();
    if (f.type.is_void()) return f;  // void field (union arms)
    f.name = expect_ident();
    parse_array_suffix(f.type);
    return f;
  }

  void parse_struct() {
    advance();  // struct
    StructDef def;
    def.loc = here();
    def.name = expect_ident();
    expect(TokKind::kLBrace, "'{'");
    while (!at(TokKind::kRBrace)) {
      Field f = parse_field();
      if (f.type.is_void())
        throw ParseError("void field in struct", cur().line);
      expect(TokKind::kSemicolon, "';'");
      def.fields.push_back(std::move(f));
    }
    expect(TokKind::kRBrace, "'}'");
    expect(TokKind::kSemicolon, "';'");
    spec_.structs.push_back(std::move(def));
  }

  void parse_union() {
    advance();  // union
    UnionDef def;
    def.loc = here();
    def.name = expect_ident();
    if (!at_ident("switch")) throw ParseError("expected 'switch'", cur().line);
    advance();
    expect(TokKind::kLParen, "'('");
    def.discriminant_type = parse_type();
    def.discriminant_name = expect_ident();
    expect(TokKind::kRParen, "')'");
    expect(TokKind::kLBrace, "'{'");
    while (!at(TokKind::kRBrace)) {
      UnionArm arm;
      if (at_ident("default")) {
        advance();
        arm.is_default = true;
        expect(TokKind::kColon, "':'");
      } else {
        while (at_ident("case")) {
          advance();
          arm.cases.push_back(expect_value());
          expect(TokKind::kColon, "':'");
        }
        if (arm.cases.empty())
          throw ParseError("expected 'case' or 'default'", cur().line);
      }
      Field f = parse_field();
      if (!f.type.is_void()) arm.field = std::move(f);
      expect(TokKind::kSemicolon, "';'");
      def.arms.push_back(std::move(arm));
    }
    expect(TokKind::kRBrace, "'}'");
    expect(TokKind::kSemicolon, "';'");
    spec_.unions.push_back(std::move(def));
  }

  void parse_typedef() {
    advance();  // typedef
    TypedefDef def;
    def.loc = here();
    def.type = parse_type();
    def.name = expect_ident();
    parse_array_suffix(def.type);
    expect(TokKind::kSemicolon, "';'");
    spec_.typedefs.push_back(std::move(def));
  }

  void parse_program() {
    advance();  // program
    ProgramDef prog;
    prog.loc = here();
    prog.name = expect_ident();
    expect(TokKind::kLBrace, "'{'");
    while (at_ident("version")) {
      advance();
      VersionDef ver;
      ver.loc = here();
      ver.name = expect_ident();
      expect(TokKind::kLBrace, "'{'");
      while (!at(TokKind::kRBrace)) {
        ProcDef proc;
        proc.result = parse_type();
        parse_array_suffix(proc.result);  // applies string/opaque defaults
        proc.loc = here();
        proc.name = expect_ident();
        expect(TokKind::kLParen, "'('");
        if (!at(TokKind::kRParen)) {
          for (;;) {
            TypeRef arg = parse_type();
            if (arg.is_void()) break;  // "(void)"
            parse_array_suffix(arg);   // e.g. string<N> / opaque<> args
            proc.args.push_back(std::move(arg));
            if (at(TokKind::kComma)) {
              advance();
              continue;
            }
            break;
          }
        }
        expect(TokKind::kRParen, "')'");
        expect(TokKind::kEquals, "'='");
        proc.number = static_cast<std::uint32_t>(expect_value());
        expect(TokKind::kSemicolon, "';'");
        ver.procs.push_back(std::move(proc));
      }
      expect(TokKind::kRBrace, "'}'");
      expect(TokKind::kEquals, "'='");
      ver.number = static_cast<std::uint32_t>(expect_value());
      expect(TokKind::kSemicolon, "';'");
      prog.versions.push_back(std::move(ver));
    }
    expect(TokKind::kRBrace, "'}'");
    expect(TokKind::kEquals, "'='");
    prog.number = static_cast<std::uint32_t>(expect_value());
    expect(TokKind::kSemicolon, "';'");
    spec_.programs.push_back(std::move(prog));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  SpecFile spec_;
  std::map<std::string, std::int64_t> const_values_;
};

}  // namespace

const StructDef* SpecFile::find_struct(const std::string& name) const {
  for (const auto& s : structs)
    if (s.name == name) return &s;
  return nullptr;
}

const EnumDef* SpecFile::find_enum(const std::string& name) const {
  for (const auto& e : enums)
    if (e.name == name) return &e;
  return nullptr;
}

const TypedefDef* SpecFile::find_typedef(const std::string& name) const {
  for (const auto& t : typedefs)
    if (t.name == name) return &t;
  return nullptr;
}

const UnionDef* SpecFile::find_union(const std::string& name) const {
  for (const auto& u : unions)
    if (u.name == name) return &u;
  return nullptr;
}

SpecFile parse_spec_unchecked(std::string_view source) {
  return Parser(tokenize(source)).parse();
}

SpecFile parse_spec(std::string_view source) {
  SpecFile spec = parse_spec_unchecked(source);
  // Preserve the historical contract: semantic problems surface as a thrown
  // ParseError for the first *error*-severity diagnostic; warnings (e.g. an
  // unbounded opaque<>) never reject a spec here. Callers wanting the full
  // diagnostic list use parse_spec_unchecked + analyze directly.
  const SemaResult sema = analyze(spec);
  for (const auto& d : sema.diagnostics) {
    if (d.severity == Severity::kError)
      throw ParseError(d.message + " [" + d.rule + "]", d.loc.line);
  }
  return spec;
}

}  // namespace cricket::rpcl
