#include "rpcl/lexer.hpp"

#include <cctype>

namespace cricket::rpcl {

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  std::size_t line_start = 0;  // index just past the last newline

  const auto peek = [&](std::size_t k = 0) -> char {
    return i + k < src.size() ? src[i + k] : '\0';
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      i += 2;
      for (;;) {
        if (i >= src.size())
          throw ParseError("unterminated block comment", start_line);
        if (src[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        if (src[i] == '*' && peek(1) == '/') {
          i += 2;
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    // rpcgen passthrough lines ("%...") are ignored.
    if (c == '%' && (tokens.empty() || tokens.back().line != line)) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }

    Token tok;
    tok.line = line;
    tok.col = static_cast<int>(i - line_start) + 1;
    switch (c) {
      case '{': tok.kind = TokKind::kLBrace; ++i; break;
      case '}': tok.kind = TokKind::kRBrace; ++i; break;
      case '(': tok.kind = TokKind::kLParen; ++i; break;
      case ')': tok.kind = TokKind::kRParen; ++i; break;
      case '[': tok.kind = TokKind::kLBracket; ++i; break;
      case ']': tok.kind = TokKind::kRBracket; ++i; break;
      case '<': tok.kind = TokKind::kLAngle; ++i; break;
      case '>': tok.kind = TokKind::kRAngle; ++i; break;
      case ';': tok.kind = TokKind::kSemicolon; ++i; break;
      case ':': tok.kind = TokKind::kColon; ++i; break;
      case ',': tok.kind = TokKind::kComma; ++i; break;
      case '=': tok.kind = TokKind::kEquals; ++i; break;
      case '*': tok.kind = TokKind::kStar; ++i; break;
      default:
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
          std::size_t start = i;
          if (c == '-') ++i;
          int base = 10;
          if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            base = 16;
            i += 2;
          } else if (peek() == '0' &&
                     std::isdigit(static_cast<unsigned char>(peek(1)))) {
            base = 8;
            ++i;
          }
          while (i < src.size() &&
                 std::isalnum(static_cast<unsigned char>(src[i])))
            ++i;
          tok.kind = TokKind::kNumber;
          tok.text = std::string(src.substr(start, i - start));
          try {
            tok.number = std::stoll(tok.text, nullptr, base == 10 ? 10 : 0);
          } catch (const std::exception&) {
            throw ParseError("bad numeric literal '" + tok.text + "'", line);
          }
        } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
          std::size_t start = i;
          while (i < src.size() &&
                 (std::isalnum(static_cast<unsigned char>(src[i])) ||
                  src[i] == '_'))
            ++i;
          tok.kind = TokKind::kIdentifier;
          tok.text = std::string(src.substr(start, i - start));
        } else {
          throw ParseError(std::string("unexpected character '") + c + "'",
                           line);
        }
    }
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = line;
  eof.col = static_cast<int>(i - line_start) + 1;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace cricket::rpcl
