// Tokenizer for the RPC Language.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cricket::rpcl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

enum class TokKind {
  kIdentifier,
  kNumber,
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kLAngle,     // <
  kRAngle,     // >
  kSemicolon,  // ;
  kColon,      // :
  kComma,      // ,
  kEquals,     // =
  kStar,       // *
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;        // identifier text / raw number
  std::int64_t number = 0; // value when kind == kNumber
  int line = 1;
  int col = 1;  // 1-based column of the token's first character
};

/// Tokenizes RPCL source; strips /* */ and // and % passthrough lines.
/// Throws ParseError on malformed input (unterminated comments, bad chars).
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace cricket::rpcl
