// Whole-message wire-size interval analysis for RPCL specifications.
//
// sema.hpp checks each declared bound in isolation; this pass proves a
// stronger, compositional property: for every type, argument list, and
// procedure in the spec it computes the exact interval [min, max] of XDR
// wire bytes any conforming encoding can occupy, propagating through
// structs (sum), unions (discriminant + max over arms), fixed arrays
// (count x element), variable arrays/strings/opaques (4-byte count + worst
// case payload), and optionals (4-byte discriminant + value). The lattice
// element is a SizeInterval: either a finite [min, max] pair or the top
// element "unbounded" (some reachable field has no declared bound).
//
// The analysis is itself hardened: all arithmetic is saturating uint64 with
// overflow detection, so a hostile or careless spec cannot make the checker
// compute a wrong (wrapped) bound and then certify it.
//
// Rules (continuing sema.hpp's RPCL001-RPCL010):
//   RPCL011  error    procedure argument/result encoded size is unbounded
//                     (transitively, through any chain of named types)
//   RPCL012  error    computed size bound overflows the 32-bit wire length
//                     (or saturates 64-bit arithmetic on the way there)
//   RPCL013  warning  one union arm dominates the union's worst-case size
//                     (receivers must budget for a payload almost no message
//                     carries; consider splitting the procedure)
//   RPCL014  error    recursive type can not be assigned a finite bound
//   RPCL015  error    procedure total exceeds the wire-size budget derived
//                     from CRICKET_MAX_PAYLOAD (or --proc-budget)
//
// `rpclgen --emit-bounds` runs the pass and emits a generated header of
// constexpr per-type / per-procedure tables (rpc::TypeWireBounds /
// rpc::ProcWireBounds) with static_asserts tying every procedure to the
// budget, so the proof is re-checked by the C++ compiler of every build
// that includes the table. The rpc server and rpcflow channel use the same
// tables at runtime for decode pre-flight (see rpc/wire_bounds.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpcl/ast.hpp"
#include "rpcl/codegen.hpp"
#include "rpcl/sema.hpp"

namespace cricket::rpcl {

/// Encoded wire-size interval in bytes. When `bounded` is false the type can
/// grow without limit and `max` is meaningless (min stays valid: even an
/// unbounded opaque<> costs its 4-byte length prefix).
struct SizeInterval {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  bool bounded = true;

  bool operator==(const SizeInterval&) const = default;
};

/// Bounds of one named type, in declaration order.
struct TypeBoundsInfo {
  std::string name;
  SizeInterval size;
};

/// Bounds of one procedure: the concatenated argument encoding and the
/// result encoding (headers excluded — those are bounded separately by
/// rpc/wire_bounds.hpp constants).
struct ProcBoundsInfo {
  std::string program;
  std::string version;
  std::string name;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t number = 0;
  SizeInterval args;
  SizeInterval result;
};

struct BoundsOptions {
  /// Per-procedure budget on the encoded argument/result size, in wire
  /// bytes. 0 = auto: use the spec's CRICKET_MAX_PAYLOAD constant plus
  /// `overhead_allowance` when the constant is declared, otherwise skip the
  /// budget check (RPCL015 never fires).
  std::uint64_t proc_budget = 0;
  /// Slack added to CRICKET_MAX_PAYLOAD in auto mode: a procedure carries
  /// its payload plus bounded non-payload fields (handles, sizes, names),
  /// which must not push a payload-sized message over the budget.
  std::uint64_t overhead_allowance = 64 * 1024;
  /// Promote warnings (RPCL013) to errors for ok() / rpclgen --Werror.
  bool warnings_as_errors = false;
};

/// Name of the spec constant that seeds the auto budget.
inline constexpr const char* kBudgetConstName = "CRICKET_MAX_PAYLOAD";

struct BoundsResult {
  std::vector<TypeBoundsInfo> types;   // declaration order
  std::vector<ProcBoundsInfo> procs;   // program/version/proc order
  std::vector<Diagnostic> diagnostics; // RPCL011-RPCL015, source order
  /// Resolved per-procedure budget (0 = no budget check ran).
  std::uint64_t budget = 0;
  /// Value of CRICKET_MAX_PAYLOAD in the spec (0 = not declared).
  std::uint64_t max_payload = 0;

  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] bool ok(const BoundsOptions& options = {}) const noexcept;
};

/// Runs the interval analysis over an already-parsed spec. Never throws;
/// all findings are returned as diagnostics. Undefined type references are
/// sema's problem (RPCL008) and are treated as [0, 0] here so one broken
/// name does not cascade.
[[nodiscard]] BoundsResult compute_bounds(const SpecFile& spec,
                                          const BoundsOptions& options = {});

/// Generates the bounds-table header (namespace `<options.ns>::bounds`).
/// Unbounded entries are emitted with rpc::kUnboundedWireSize so the table
/// is total, but the CLI refuses to emit a header for a spec with
/// error-severity bounds diagnostics.
[[nodiscard]] std::string generate_bounds_header(const SpecFile& spec,
                                                 const BoundsResult& bounds,
                                                 const CodegenOptions& options);

}  // namespace cricket::rpcl
