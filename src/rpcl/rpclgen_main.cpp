// rpclgen: RPCL -> C++ code generator CLI.
//
// Usage: rpclgen <spec.x> <out.hpp> [--namespace ns::path]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "rpcl/codegen.hpp"
#include "rpcl/parser.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: rpclgen <spec.x> <out.hpp> [--namespace ns]\n";
    return 2;
  }
  const std::string spec_path = argv[1];
  const std::string out_path = argv[2];
  cricket::rpcl::CodegenOptions options;
  options.source_name = spec_path;
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--namespace") options.ns = argv[i + 1];
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "rpclgen: cannot open " << spec_path << "\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    const auto spec = cricket::rpcl::parse_spec(source.str());
    const std::string header =
        cricket::rpcl::generate_header(spec, options);
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "rpclgen: cannot write " << out_path << "\n";
      return 1;
    }
    out << header;
  } catch (const cricket::rpcl::ParseError& e) {
    std::cerr << "rpclgen: " << spec_path << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
