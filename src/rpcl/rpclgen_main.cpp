// rpclgen: RPCL -> C++ code generator, spec linter, and bounds-table
// emitter CLI.
//
// Generate:     rpclgen <spec.x> <out.hpp> [--namespace ns] [--emit-taint]
//               [lint flags]
// Lint only:    rpclgen --lint <spec.x> [lint flags]
// Bounds table: rpclgen --emit-bounds <spec.x> [out.hpp] [--namespace ns]
//               [--proc-budget N] [lint flags]
//
// Lint flags: --Werror (warnings fail), --max-bound N (per-field wire-size
// budget in bytes). Generation and bounds emission always run the linter
// first; error-severity findings (and warnings under --Werror) abort before
// any output file is written. See --help for the exit-code contract.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rpcl/bounds.hpp"
#include "rpcl/codegen.hpp"
#include "rpcl/parser.hpp"
#include "rpcl/sema.hpp"

namespace {

constexpr const char* kVersion = "rpclgen 0.3.0";

// Exit codes are part of the CLI contract: tools/check.sh uses them to
// report which gate tripped.
constexpr int kExitOk = 0;
constexpr int kExitLint = 1;    // parse error or RPCL001-010 lint failure
constexpr int kExitUsage = 2;   // bad command line
constexpr int kExitBounds = 3;  // RPCL011-015 bounds-analysis failure
constexpr int kExitIo = 4;      // cannot read spec / write output

void print_usage(std::ostream& os) {
  os << "usage: rpclgen <spec.x> <out.hpp> [--namespace ns] [--emit-taint]"
        " [--Werror] [--max-bound N]\n"
        "       rpclgen --lint <spec.x> [--Werror] [--max-bound N]\n"
        "       rpclgen --emit-bounds <spec.x> [out.hpp] [--namespace ns]\n"
        "                [--proc-budget N] [--Werror] [--max-bound N]\n"
        "       rpclgen --help | --version\n";
}

int usage() {
  print_usage(std::cerr);
  return kExitUsage;
}

int help() {
  print_usage(std::cout);
  std::cout <<
      "\nmodes:\n"
      "  <spec.x> <out.hpp>     lint the spec, then generate the C++\n"
      "                         protocol header (types, stubs, skeleton)\n"
      "  --lint <spec.x>        lint only (rules RPCL001-RPCL010)\n"
      "  --emit-bounds <spec.x> [out.hpp]\n"
      "                         lint, run the wire-size interval analysis\n"
      "                         (rules RPCL011-RPCL015), and emit the\n"
      "                         constexpr bounds-table header; out defaults\n"
      "                         to <spec-stem>_bounds.hpp in the current\n"
      "                         directory\n"
      "\noptions:\n"
      "  --namespace ns         namespace for generated code (default\n"
      "                         cricket::proto; bounds tables land in\n"
      "                         ns::bounds)\n"
      "  --emit-taint           wiretaint mode (generate only): scalars\n"
      "                         marked `tainted` in the spec are emitted as\n"
      "                         xdr::Untrusted<T> in arg structs and the\n"
      "                         server skeleton, plus a ns::taint namespace\n"
      "                         of bounds-derived default validators\n"
      "  --Werror               treat lint and bounds warnings as errors\n"
      "  --max-bound N          per-field wire-size budget for RPCL007\n"
      "  --proc-budget N        per-procedure wire-size budget for RPCL015\n"
      "                         (default: spec CRICKET_MAX_PAYLOAD plus a\n"
      "                         64 KiB overhead allowance)\n"
      "\nexit codes:\n"
      "  0  success\n"
      "  1  lint failure (parse error or RPCL001-RPCL010)\n"
      "  2  usage error\n"
      "  3  bounds-analysis failure (RPCL011-RPCL015)\n"
      "  4  I/O error (cannot read the spec or write the output)\n";
  return kExitOk;
}

/// Lints one already-read spec. Returns kExitOk or kExitLint and prints
/// every diagnostic to stderr in compiler format.
int lint(const std::string& path, const std::string& source,
         const cricket::rpcl::SemaOptions& options,
         cricket::rpcl::SpecFile* out_spec) {
  using namespace cricket::rpcl;
  SpecFile spec;
  try {
    spec = parse_spec_unchecked(source);
  } catch (const ParseError& e) {
    std::cerr << path << ":" << e.line() << ": error: " << e.what() << "\n";
    return kExitLint;
  }
  const SemaResult result = analyze(spec, options);
  for (const auto& d : result.diagnostics)
    std::cerr << format_diagnostic(d, path) << "\n";
  if (!result.ok(options)) {
    std::cerr << path << ": " << result.error_count() << " error(s), "
              << result.warning_count() << " warning(s)\n";
    return kExitLint;
  }
  if (out_spec) *out_spec = std::move(spec);
  return kExitOk;
}

/// Runs the interval analysis and writes the bounds-table header.
int emit_bounds(const cricket::rpcl::SpecFile& spec,
                const std::string& spec_path, const std::string& out_path,
                const cricket::rpcl::BoundsOptions& options,
                const cricket::rpcl::CodegenOptions& codegen_options) {
  using namespace cricket::rpcl;
  const BoundsResult bounds = compute_bounds(spec, options);
  for (const auto& d : bounds.diagnostics)
    std::cerr << format_diagnostic(d, spec_path) << "\n";
  if (!bounds.ok(options)) {
    std::cerr << spec_path << ": bounds analysis failed: "
              << bounds.error_count() << " error(s), "
              << bounds.warning_count() << " warning(s)\n";
    return kExitBounds;
  }
  const std::string header =
      generate_bounds_header(spec, bounds, codegen_options);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "rpclgen: cannot write " << out_path << "\n";
    return kExitIo;
  }
  out << header;
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  bool lint_only = false;
  bool bounds_mode = false;
  cricket::rpcl::CodegenOptions codegen_options;
  cricket::rpcl::SemaOptions sema_options;
  cricket::rpcl::BoundsOptions bounds_options;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::cout << kVersion << "\n";
      return kExitOk;
    } else if (arg == "--help") {
      return help();
    } else if (arg == "--lint") {
      lint_only = true;
    } else if (arg == "--emit-bounds") {
      bounds_mode = true;
    } else if (arg == "--emit-taint") {
      codegen_options.taint = true;
    } else if (arg == "--Werror") {
      sema_options.warnings_as_errors = true;
      bounds_options.warnings_as_errors = true;
    } else if (arg == "--namespace") {
      if (i + 1 >= argc) {
        std::cerr << "rpclgen: --namespace requires a value\n";
        return usage();
      }
      codegen_options.ns = argv[++i];
    } else if (arg == "--max-bound" || arg == "--proc-budget") {
      if (i + 1 >= argc) {
        std::cerr << "rpclgen: " << arg << " requires a value\n";
        return usage();
      }
      std::uint64_t value = 0;
      try {
        value = std::stoull(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "rpclgen: bad " << arg << " value '" << argv[i] << "'\n";
        return usage();
      }
      if (arg == "--max-bound")
        sema_options.max_bound = value;
      else
        bounds_options.proc_budget = value;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rpclgen: unknown option '" << arg << "'\n";
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (lint_only && bounds_mode) {
    std::cerr << "rpclgen: --lint and --emit-bounds are mutually exclusive\n";
    return usage();
  }
  if (codegen_options.taint && (lint_only || bounds_mode)) {
    std::cerr << "rpclgen: --emit-taint applies to header generation only\n";
    return usage();
  }
  if (lint_only) {
    if (positional.size() != 1) return usage();
    spec_path = positional[0];
  } else if (bounds_mode) {
    if (positional.empty() || positional.size() > 2) return usage();
    spec_path = positional[0];
    out_path = positional.size() == 2
                   ? positional[1]
                   : std::filesystem::path(spec_path).stem().string() +
                         "_bounds.hpp";
  } else {
    if (positional.size() != 2) return usage();
    spec_path = positional[0];
    out_path = positional[1];
  }
  codegen_options.source_name = spec_path;

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "rpclgen: cannot open " << spec_path << "\n";
    return kExitIo;
  }
  std::ostringstream source;
  source << in.rdbuf();

  cricket::rpcl::SpecFile spec;
  if (const int rc = lint(spec_path, source.str(), sema_options, &spec);
      rc != kExitOk)
    return rc;
  if (lint_only) return kExitOk;
  if (bounds_mode)
    return emit_bounds(spec, spec_path, out_path, bounds_options,
                       codegen_options);

  const std::string header =
      cricket::rpcl::generate_header(spec, codegen_options);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "rpclgen: cannot write " << out_path << "\n";
    return kExitIo;
  }
  out << header;
  return kExitOk;
}
