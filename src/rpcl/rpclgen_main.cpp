// rpclgen: RPCL -> C++ code generator and spec linter CLI.
//
// Generate:  rpclgen <spec.x> <out.hpp> [--namespace ns] [lint flags]
// Lint only: rpclgen --lint <spec.x> [lint flags]
//
// Lint flags: --Werror (warnings fail), --max-bound N (wire-size budget in
// bytes). Generation always runs the linter first; error-severity findings
// (and warnings under --Werror) abort before any output file is written.
//
// Exit codes: 0 success, 1 lint/generation failure, 2 usage error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rpcl/codegen.hpp"
#include "rpcl/parser.hpp"
#include "rpcl/sema.hpp"

namespace {

constexpr const char* kVersion = "rpclgen 0.2.0";

int usage() {
  std::cerr << "usage: rpclgen <spec.x> <out.hpp> [--namespace ns]"
               " [--Werror] [--max-bound N]\n"
               "       rpclgen --lint <spec.x> [--Werror] [--max-bound N]\n"
               "       rpclgen --version\n";
  return 2;
}

/// Lints one already-read spec. Returns the process exit code (0 or 1) and
/// prints every diagnostic to stderr in compiler format.
int lint(const std::string& path, const std::string& source,
         const cricket::rpcl::SemaOptions& options,
         cricket::rpcl::SpecFile* out_spec) {
  using namespace cricket::rpcl;
  SpecFile spec;
  try {
    spec = parse_spec_unchecked(source);
  } catch (const ParseError& e) {
    std::cerr << path << ":" << e.line() << ": error: " << e.what() << "\n";
    return 1;
  }
  const SemaResult result = analyze(spec, options);
  for (const auto& d : result.diagnostics)
    std::cerr << format_diagnostic(d, path) << "\n";
  if (!result.ok(options)) {
    std::cerr << path << ": " << result.error_count() << " error(s), "
              << result.warning_count() << " warning(s)\n";
    return 1;
  }
  if (out_spec) *out_spec = std::move(spec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  bool lint_only = false;
  cricket::rpcl::CodegenOptions codegen_options;
  cricket::rpcl::SemaOptions sema_options;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    } else if (arg == "--lint") {
      lint_only = true;
    } else if (arg == "--Werror") {
      sema_options.warnings_as_errors = true;
    } else if (arg == "--namespace") {
      if (i + 1 >= argc) {
        std::cerr << "rpclgen: --namespace requires a value\n";
        return usage();
      }
      codegen_options.ns = argv[++i];
    } else if (arg == "--max-bound") {
      if (i + 1 >= argc) {
        std::cerr << "rpclgen: --max-bound requires a value\n";
        return usage();
      }
      try {
        sema_options.max_bound = std::stoull(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "rpclgen: bad --max-bound value '" << argv[i] << "'\n";
        return usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rpclgen: unknown option '" << arg << "'\n";
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (lint_only) {
    if (positional.size() != 1) return usage();
    spec_path = positional[0];
  } else {
    if (positional.size() != 2) return usage();
    spec_path = positional[0];
    out_path = positional[1];
  }
  codegen_options.source_name = spec_path;

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "rpclgen: cannot open " << spec_path << "\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  cricket::rpcl::SpecFile spec;
  if (const int rc = lint(spec_path, source.str(), sema_options, &spec);
      rc != 0)
    return rc;
  if (lint_only) return 0;

  const std::string header =
      cricket::rpcl::generate_header(spec, codegen_options);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "rpclgen: cannot write " << out_path << "\n";
    return 1;
  }
  out << header;
  return 0;
}
