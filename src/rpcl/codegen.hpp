// C++ code generator for RPCL specifications.
//
// Plays both roles from the paper's pipeline (Fig. 4): what `rpcgen` does
// for the Cricket server in C, and what RPC-Lib's procedural macros do for
// the Rust client. From one .x file it emits a single header containing the
// XDR-serializable data types, the program/version/procedure constants, a
// typed client stub class per version, and an abstract service skeleton the
// server implements — so adding a procedure to the .x file makes it callable
// with no hand-written marshalling on either side.
#pragma once

#include <string>

#include "rpcl/ast.hpp"

namespace cricket::rpcl {

struct CodegenOptions {
  /// Namespace the generated code lives in (e.g. "cricket::proto").
  std::string ns = "cricket::proto";
  /// Name recorded in the header's provenance comment.
  std::string source_name = "<spec>";
  /// Wiretaint mode (--emit-taint): scalars marked `tainted` in the spec —
  /// directly or via a tainted typedef — are emitted as
  /// ::cricket::xdr::Untrusted<T> in generated arg structs and in the
  /// server skeleton (the decode side of the trust boundary), while the
  /// client stub keeps plain types. Also emits a `taint` namespace with
  /// default validators derived from the wire-size bounds tables.
  bool taint = false;
};

/// Generates the full header text. Throws ParseError on constructs the
/// generator cannot express (none for valid specs).
[[nodiscard]] std::string generate_header(const SpecFile& spec,
                                          const CodegenOptions& options);

}  // namespace cricket::rpcl
