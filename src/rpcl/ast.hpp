// Abstract syntax tree for the RPC Language (RFC 5531 §12 / RFC 4506 §6).
//
// RPCL is the interface-definition language of ONC RPC: Cricket publishes
// its CUDA API surface as an RPCL specification, rpcgen generates the C
// server from it, and the paper's RPC-Lib generates the Rust client from the
// same file via procedural macros (§3.4-3.5: "Functions listed in the RPCL
// file are immediately available for applications"). This module models the
// language; codegen.hpp emits the C++ equivalent of both sides.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace cricket::rpcl {

/// Position of a construct in the .x source (1-based; 0 = synthesized).
struct SourceLoc {
  int line = 0;
  int col = 0;

  [[nodiscard]] bool valid() const noexcept { return line > 0; }
  bool operator==(const SourceLoc&) const = default;
};

/// Builtin XDR scalar types.
enum class Builtin {
  kInt,       // int -> std::int32_t
  kUInt,      // unsigned int -> std::uint32_t
  kHyper,     // hyper -> std::int64_t
  kUHyper,    // unsigned hyper -> std::uint64_t
  kFloat,
  kDouble,
  kBool,
  kVoid,
  kString,    // string<N>
  kOpaque,    // opaque<N> / opaque[N]
};

/// A type reference: a builtin or a named (user-defined) type, with an
/// optional array/pointer decoration.
struct TypeRef {
  enum class Decoration {
    kNone,
    kFixedArray,     // T name[N]
    kVariableArray,  // T name<N> (or T name<>)
    kOptional,       // *T (XDR "pointer")
  };

  std::variant<Builtin, std::string> base = Builtin::kVoid;
  Decoration decoration = Decoration::kNone;
  std::optional<std::uint32_t> bound;  // array bound if given
  SourceLoc loc;                       // where the base type is named
  bool tainted = false;                // `tainted` attribute (wiretaint)

  [[nodiscard]] bool is_void() const noexcept {
    return std::holds_alternative<Builtin>(base) &&
           std::get<Builtin>(base) == Builtin::kVoid &&
           decoration == Decoration::kNone;
  }
};

struct Field {
  TypeRef type;
  std::string name;
};

struct ConstDef {
  std::string name;
  std::int64_t value = 0;
  SourceLoc loc;
};

struct EnumDef {
  std::string name;
  std::vector<std::pair<std::string, std::int32_t>> values;
  SourceLoc loc;
};

struct StructDef {
  std::string name;
  std::vector<Field> fields;
  SourceLoc loc;
};

/// XDR discriminated union: switch (disc_type disc_name) { case ...: field }.
struct UnionArm {
  std::vector<std::int64_t> cases;  // values of the discriminant
  std::optional<Field> field;       // nullopt = void arm
  bool is_default = false;
};

struct UnionDef {
  std::string name;
  TypeRef discriminant_type;
  std::string discriminant_name;
  std::vector<UnionArm> arms;
  SourceLoc loc;
};

struct TypedefDef {
  TypeRef type;
  std::string name;
  SourceLoc loc;
};

struct ProcDef {
  TypeRef result;
  std::string name;
  std::vector<TypeRef> args;
  std::uint32_t number = 0;
  SourceLoc loc;
};

struct VersionDef {
  std::string name;
  std::uint32_t number = 0;
  std::vector<ProcDef> procs;
  SourceLoc loc;
};

struct ProgramDef {
  std::string name;
  std::uint32_t number = 0;
  std::vector<VersionDef> versions;
  SourceLoc loc;
};

/// A whole .x file.
struct SpecFile {
  std::vector<ConstDef> consts;
  std::vector<EnumDef> enums;
  std::vector<StructDef> structs;
  std::vector<UnionDef> unions;
  std::vector<TypedefDef> typedefs;
  std::vector<ProgramDef> programs;

  [[nodiscard]] const StructDef* find_struct(const std::string& name) const;
  [[nodiscard]] const EnumDef* find_enum(const std::string& name) const;
  [[nodiscard]] const TypedefDef* find_typedef(const std::string& name) const;
  [[nodiscard]] const UnionDef* find_union(const std::string& name) const;
};

}  // namespace cricket::rpcl
