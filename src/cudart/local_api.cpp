#include "cudart/local_api.hpp"

#include "cudart/culibs.hpp"
#include "fatbin/cubin.hpp"

namespace cricket::cuda {
namespace {

/// Maps simulator exceptions onto CUDA error codes at the API boundary.
template <typename Fn>
Error guarded(Fn&& fn) {
  try {
    fn();
    return Error::kSuccess;
  } catch (const gpusim::OutOfMemory&) {
    return Error::kMemoryAllocation;
  } catch (const gpusim::MemoryError&) {
    return Error::kInvalidDevicePointer;
  } catch (const gpusim::LaunchError&) {
    return Error::kLaunchFailure;
  } catch (const fatbin::CubinError&) {
    return Error::kInvalidKernelImage;
  } catch (const fatbin::LzError&) {
    return Error::kInvalidKernelImage;
  } catch (const gpusim::DeviceError&) {
    return Error::kInvalidResourceHandle;
  } catch (const std::exception&) {
    return Error::kInvalidValue;
  }
}

}  // namespace

GpuNode::GpuNode(std::vector<gpusim::DeviceProps> gpus,
                 std::size_t pool_threads)
    : pool_(pool_threads) {
  devices_.reserve(gpus.size());
  for (auto& props : gpus)
    devices_.push_back(std::make_unique<gpusim::Device>(std::move(props),
                                                        clock_, registry_,
                                                        pool_));
}

std::unique_ptr<GpuNode> GpuNode::make_paper_testbed() {
  return std::make_unique<GpuNode>(std::vector<gpusim::DeviceProps>{
      gpusim::a100_props(), gpusim::t4_props(), gpusim::t4_props(),
      gpusim::p40_props()});
}

std::unique_ptr<GpuNode> GpuNode::make_a100() {
  return std::make_unique<GpuNode>(
      std::vector<gpusim::DeviceProps>{gpusim::a100_props()});
}

Error LocalCudaApi::get_device_count(int& count) {
  count = node_->device_count();
  node_->clock().advance(current().props().api_latency_ns);
  return Error::kSuccess;
}

Error LocalCudaApi::set_device(int device) {
  if (device < 0 || device >= node_->device_count())
    return Error::kInvalidDevice;
  current_device_ = device;
  node_->clock().advance(current().props().api_latency_ns);
  return Error::kSuccess;
}

Error LocalCudaApi::get_device(int& device) {
  device = current_device_;
  node_->clock().advance(current().props().api_latency_ns);
  return Error::kSuccess;
}

Error LocalCudaApi::get_device_properties(DeviceInfo& info, int device) {
  if (device < 0 || device >= node_->device_count())
    return Error::kInvalidDevice;
  const auto& p = node_->device(device).props();
  info = DeviceInfo{.name = p.name,
                    .total_mem = p.mem_bytes,
                    .sm_arch = p.sm_arch,
                    .sm_count = p.sm_count,
                    .clock_mhz = p.clock_mhz};
  node_->clock().advance(p.api_latency_ns);
  return Error::kSuccess;
}

Error LocalCudaApi::malloc(DevPtr& ptr, std::uint64_t size) {
  if (size == 0) return Error::kInvalidValue;
  return guarded([&] { ptr = current().malloc(size); });
}

Error LocalCudaApi::free(DevPtr ptr) {
  return guarded([&] { current().free(ptr); });
}

Error LocalCudaApi::memset(DevPtr ptr, int value, std::uint64_t size) {
  return guarded([&] { current().memset(ptr, value, size); });
}

Error LocalCudaApi::memcpy_h2d(DevPtr dst, std::span<const std::uint8_t> src) {
  return guarded([&] { current().memcpy_h2d(dst, src); });
}

Error LocalCudaApi::memcpy_d2h(std::span<std::uint8_t> dst, DevPtr src) {
  return guarded([&] { current().memcpy_d2h(dst, src); });
}

Error LocalCudaApi::malloc(DevPtr& ptr, xdr::Untrusted<std::uint64_t> size) {
  if (size == 0u) return Error::kInvalidValue;
  return guarded([&] { ptr = current().malloc_validated(size); });
}

Error LocalCudaApi::memset(DevPtr ptr, int value,
                           xdr::Untrusted<std::uint64_t> size) {
  return guarded([&] { current().memset_validated(ptr, value, size); });
}

Error LocalCudaApi::memcpy_d2d(DevPtr dst, DevPtr src,
                               xdr::Untrusted<std::uint64_t> size) {
  return guarded([&] { current().memcpy_d2d_validated(dst, src, size); });
}

Error LocalCudaApi::memcpy_d2d(DevPtr dst, DevPtr src, std::uint64_t size) {
  return guarded([&] { current().memcpy_d2d(dst, src, size); });
}

Error LocalCudaApi::memcpy_h2d_async(DevPtr dst,
                                     std::span<const std::uint8_t> src,
                                     StreamId stream) {
  return guarded([&] { current().memcpy_h2d_async(dst, src, stream); });
}

Error LocalCudaApi::memcpy_d2h_async(std::span<std::uint8_t> dst, DevPtr src,
                                     StreamId stream) {
  return guarded([&] { current().memcpy_d2h_async(dst, src, stream); });
}

Error LocalCudaApi::stream_wait_event(StreamId stream, EventId event) {
  return guarded([&] { current().stream_wait_event(stream, event); });
}

Error LocalCudaApi::stream_create(StreamId& stream) {
  return guarded([&] { stream = current().stream_create(); });
}

Error LocalCudaApi::stream_destroy(StreamId stream) {
  return guarded([&] { current().stream_destroy(stream); });
}

Error LocalCudaApi::stream_synchronize(StreamId stream) {
  return guarded([&] { current().stream_synchronize(stream); });
}

Error LocalCudaApi::device_synchronize() {
  return guarded([&] { current().device_synchronize(); });
}

Error LocalCudaApi::event_create(EventId& event) {
  return guarded([&] { event = current().event_create(); });
}

Error LocalCudaApi::event_destroy(EventId event) {
  return guarded([&] { current().event_destroy(event); });
}

Error LocalCudaApi::event_record(EventId event, StreamId stream) {
  return guarded([&] { current().event_record(event, stream); });
}

Error LocalCudaApi::event_synchronize(EventId event) {
  return guarded([&] { current().event_synchronize(event); });
}

Error LocalCudaApi::event_elapsed_ms(float& ms, EventId start, EventId stop) {
  return guarded([&] { ms = current().event_elapsed_ms(start, stop); });
}

Error LocalCudaApi::module_load(ModuleId& module,
                                std::span<const std::uint8_t> image) {
  return guarded([&] { module = current().load_module(image); });
}

Error LocalCudaApi::module_unload(ModuleId module) {
  return guarded([&] { current().unload_module(module); });
}

Error LocalCudaApi::module_get_function(FuncId& func, ModuleId module,
                                        const std::string& name) {
  return guarded([&] { func = current().get_function(module, name); });
}

Error LocalCudaApi::module_get_global(DevPtr& ptr, ModuleId module,
                                      const std::string& name) {
  return guarded([&] { ptr = current().get_global(module, name); });
}

Error LocalCudaApi::launch_kernel(FuncId func, Dim3 grid, Dim3 block,
                                  std::uint32_t shared_bytes, StreamId stream,
                                  std::span<const std::uint8_t> params) {
  return guarded([&] {
    (void)current().launch(func, grid, block, shared_bytes, stream, params);
  });
}

Error LocalCudaApi::launch_kernel_timed(FuncId func, Dim3 grid, Dim3 block,
                                        std::uint32_t shared_bytes,
                                        StreamId stream,
                                        std::span<const std::uint8_t> params,
                                        sim::Nanos& exec_ns) {
  return guarded([&] {
    exec_ns = current().launch(func, grid, block, shared_bytes, stream,
                               params);
  });
}

Error LocalCudaApi::blas_sgemm(int m, int n, int k, float alpha, DevPtr a,
                               int lda, DevPtr b, int ldb, float beta,
                               DevPtr c, int ldc) {
  return culibs::sgemm(current(), node_->pool(), m, n, k, alpha, a, lda, b,
                       ldb, beta, c, ldc);
}

Error LocalCudaApi::blas_sgemv(int m, int n, float alpha, DevPtr a, int lda,
                               DevPtr x, float beta, DevPtr y) {
  return culibs::sgemv(current(), m, n, alpha, a, lda, x, beta, y);
}

Error LocalCudaApi::blas_saxpy(int n, float alpha, DevPtr x, DevPtr y) {
  return culibs::saxpy(current(), n, alpha, x, y);
}

Error LocalCudaApi::blas_snrm2(int n, DevPtr x, DevPtr result) {
  return culibs::snrm2(current(), n, x, result);
}

Error LocalCudaApi::solver_spotrf(int n, DevPtr a, int lda, DevPtr info) {
  return culibs::spotrf(current(), n, a, lda, info);
}

Error LocalCudaApi::solver_spotrs(int n, int nrhs, DevPtr a, int lda,
                                  DevPtr b, int ldb, DevPtr info) {
  return culibs::spotrs(current(), n, nrhs, a, lda, b, ldb, info);
}

Error LocalCudaApi::solver_sgetrf(int n, DevPtr a, int lda, DevPtr ipiv,
                                  DevPtr info) {
  return culibs::sgetrf(current(), node_->pool(), n, a, lda, ipiv, info);
}

Error LocalCudaApi::solver_sgetrs(int n, int nrhs, DevPtr a, int lda,
                                  DevPtr ipiv, DevPtr b, int ldb,
                                  DevPtr info) {
  return culibs::sgetrs(current(), n, nrhs, a, lda, ipiv, b, ldb, info);
}

}  // namespace cricket::cuda
