#include "cudart/culibs.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace cricket::cuda::culibs {
namespace {

using gpusim::DevPtr;
using gpusim::Device;
using gpusim::MemoryError;
using gpusim::ThreadPool;

/// Resolves an m x n column-major matrix with leading dimension ld.
std::span<float> matrix(Device& dev, DevPtr ptr, int rows, int cols, int ld) {
  const std::uint64_t floats =
      static_cast<std::uint64_t>(ld) * static_cast<std::uint64_t>(cols - 1) +
      static_cast<std::uint64_t>(rows);
  auto raw = dev.memory().resolve(ptr, floats * sizeof(float));
  return {reinterpret_cast<float*>(raw.data()), floats};
}

}  // namespace

Error sgemm(Device& dev, ThreadPool& pool, int m, int n, int k, float alpha,
            DevPtr a, int lda, DevPtr b, int ldb, float beta, DevPtr c,
            int ldc) {
  if (m < 0 || n < 0 || k < 0 || lda < std::max(1, m) ||
      ldb < std::max(1, k) || ldc < std::max(1, m))
    return Error::kInvalidValue;
  if (m == 0 || n == 0) return Error::kSuccess;

  try {
    const auto A = matrix(dev, a, m, k, lda);
    const auto B = matrix(dev, b, k, n, ldb);
    const auto C = matrix(dev, c, m, n, ldc);

    if (!dev.timing_only()) {
      const auto ulda = static_cast<std::size_t>(lda);
      const auto uldb = static_cast<std::size_t>(ldb);
      const auto uldc = static_cast<std::size_t>(ldc);
      pool.parallel_for_chunks(
          static_cast<std::size_t>(n), [&](std::size_t j0, std::size_t j1) {
            for (std::size_t j = j0; j < j1; ++j) {
              float* cj = C.data() + j * uldc;
              for (int i = 0; i < m; ++i)
                cj[static_cast<std::size_t>(i)] *= beta;
              for (int l = 0; l < k; ++l) {
                const float blj =
                    alpha * B[j * uldb + static_cast<std::size_t>(l)];
                if (blj == 0.0f) continue;
                const float* al = A.data() + static_cast<std::size_t>(l) * ulda;
                for (int i = 0; i < m; ++i)
                  cj[static_cast<std::size_t>(i)] +=
                      blj * al[static_cast<std::size_t>(i)];
              }
            }
          });
    }

    const double flops = 2.0 * m * n * k;
    const double bytes =
        sizeof(float) * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                         2.0 * m * n);
    dev.charge_internal_kernel(gpusim::kDefaultStream, flops, bytes);
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

Error sgetrf(Device& dev, ThreadPool& pool, int n, DevPtr a, int lda,
             DevPtr ipiv, DevPtr info) {
  if (n < 0 || lda < std::max(1, n)) return Error::kInvalidValue;
  try {
    auto info_span = dev.memory().resolve(info, sizeof(std::int32_t));
    std::int32_t info_val = 0;
    if (n > 0) {
      const auto A = matrix(dev, a, n, n, lda);
      auto ipiv_raw =
          dev.memory().resolve(ipiv, static_cast<std::uint64_t>(n) * 4);
      auto* piv = reinterpret_cast<std::int32_t*>(ipiv_raw.data());
      const auto ul = static_cast<std::size_t>(lda);

      if (!dev.timing_only()) {
        for (int j = 0; j < n; ++j) {
          const std::size_t uj = static_cast<std::size_t>(j);
          // Partial pivot: largest |A(i,j)| for i >= j.
          int p = j;
          float best = std::fabs(A[uj * ul + uj]);
          for (int i = j + 1; i < n; ++i) {
            const float v = std::fabs(A[uj * ul + static_cast<std::size_t>(i)]);
            if (v > best) {
              best = v;
              p = i;
            }
          }
          piv[uj] = p + 1;  // LAPACK 1-based
          if (best == 0.0f) {
            if (info_val == 0) info_val = j + 1;
            continue;
          }
          if (p != j) {  // swap rows j and p across all columns
            for (int col = 0; col < n; ++col) {
              const std::size_t uc = static_cast<std::size_t>(col);
              std::swap(A[uc * ul + uj], A[uc * ul + static_cast<std::size_t>(p)]);
            }
          }
          const float pivot = A[uj * ul + uj];
          for (int i = j + 1; i < n; ++i)
            A[uj * ul + static_cast<std::size_t>(i)] /= pivot;
          // Trailing update, parallel over columns.
          pool.parallel_for_chunks(
              static_cast<std::size_t>(n - j - 1),
              [&](std::size_t c0, std::size_t c1) {
                for (std::size_t cc = c0; cc < c1; ++cc) {
                  const std::size_t col = uj + 1 + cc;
                  const float ajc = A[col * ul + uj];
                  if (ajc == 0.0f) continue;
                  float* acol = A.data() + col * ul;
                  const float* lcol = A.data() + uj * ul;
                  for (int i = j + 1; i < n; ++i)
                    acol[static_cast<std::size_t>(i)] -=
                        lcol[static_cast<std::size_t>(i)] * ajc;
                }
              });
        }
      } else {
        for (int j = 0; j < n; ++j) piv[static_cast<std::size_t>(j)] = j + 1;
      }
    }
    std::memcpy(info_span.data(), &info_val, sizeof info_val);
    // 2/3 n^3 flops; the factorization sweeps the matrix ~n/3 times but a
    // blocked implementation is compute-bound, so charge flops-dominated.
    const double flops = 2.0 / 3.0 * std::pow(static_cast<double>(n), 3);
    const double bytes = 8.0 * static_cast<double>(n) * n * sizeof(float);
    // cusolverDnSgetrf issues ~3 kernels (pivot search, swap, panel/trail
    // update) per 16-column panel; at sub-2048 sizes these launch gaps, not
    // flops, dominate the wall time — the reason small-matrix LU on an A100
    // takes milliseconds, not microseconds.
    const auto launches =
        static_cast<std::uint64_t>(std::max(1, 3 * n / 16));
    dev.charge_internal_kernel(gpusim::kDefaultStream, flops, bytes, launches);
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

Error sgetrs(Device& dev, int n, int nrhs, DevPtr a, int lda, DevPtr ipiv,
             DevPtr b, int ldb, DevPtr info) {
  if (n < 0 || nrhs < 0 || lda < std::max(1, n) || ldb < std::max(1, n))
    return Error::kInvalidValue;
  try {
    auto info_span = dev.memory().resolve(info, sizeof(std::int32_t));
    const std::int32_t zero = 0;
    std::memcpy(info_span.data(), &zero, sizeof zero);
    if (n == 0 || nrhs == 0) return Error::kSuccess;

    const auto A = matrix(dev, a, n, n, lda);
    const auto B = matrix(dev, b, n, nrhs, ldb);
    auto ipiv_raw =
        dev.memory().resolve(ipiv, static_cast<std::uint64_t>(n) * 4);
    const auto* piv = reinterpret_cast<const std::int32_t*>(ipiv_raw.data());
    const auto ula = static_cast<std::size_t>(lda);
    const auto ulb = static_cast<std::size_t>(ldb);

    if (!dev.timing_only()) {
      for (int r = 0; r < nrhs; ++r) {
        float* x = B.data() + static_cast<std::size_t>(r) * ulb;
        // Apply row swaps.
        for (int i = 0; i < n; ++i) {
          const int p = piv[static_cast<std::size_t>(i)] - 1;
          if (p != i) std::swap(x[static_cast<std::size_t>(i)],
                                x[static_cast<std::size_t>(p)]);
        }
        // Forward substitution (L has unit diagonal).
        for (int i = 1; i < n; ++i) {
          float sum = x[static_cast<std::size_t>(i)];
          for (int jj = 0; jj < i; ++jj)
            sum -= A[static_cast<std::size_t>(jj) * ula +
                     static_cast<std::size_t>(i)] *
                   x[static_cast<std::size_t>(jj)];
          x[static_cast<std::size_t>(i)] = sum;
        }
        // Back substitution with U.
        for (int i = n - 1; i >= 0; --i) {
          float sum = x[static_cast<std::size_t>(i)];
          for (int jj = i + 1; jj < n; ++jj)
            sum -= A[static_cast<std::size_t>(jj) * ula +
                     static_cast<std::size_t>(i)] *
                   x[static_cast<std::size_t>(jj)];
          x[static_cast<std::size_t>(i)] =
              sum / A[static_cast<std::size_t>(i) * ula +
                      static_cast<std::size_t>(i)];
        }
      }
    }
    const double flops = 2.0 * static_cast<double>(n) * n * nrhs;
    const double bytes =
        sizeof(float) * (static_cast<double>(n) * n +
                         2.0 * static_cast<double>(n) * nrhs);
    dev.charge_internal_kernel(gpusim::kDefaultStream, flops, bytes, 2);
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

Error sgemv(Device& dev, int m, int n, float alpha, DevPtr a, int lda,
            DevPtr x, float beta, DevPtr y) {
  if (m < 0 || n < 0 || lda < std::max(1, m)) return Error::kInvalidValue;
  if (m == 0) return Error::kSuccess;
  try {
    const auto A = matrix(dev, a, m, n, lda);
    auto X = dev.memory().resolve(x, static_cast<std::uint64_t>(n) * 4);
    auto Y = dev.memory().resolve(y, static_cast<std::uint64_t>(m) * 4);
    auto* xs = reinterpret_cast<const float*>(X.data());
    auto* ys = reinterpret_cast<float*>(Y.data());
    if (!dev.timing_only()) {
      const auto ul = static_cast<std::size_t>(lda);
      for (int i = 0; i < m; ++i) ys[i] *= beta;
      for (int j = 0; j < n; ++j) {
        const float ax = alpha * xs[j];
        if (ax == 0.0f) continue;
        const float* col = A.data() + static_cast<std::size_t>(j) * ul;
        for (int i = 0; i < m; ++i)
          ys[i] += col[static_cast<std::size_t>(i)] * ax;
      }
    }
    dev.charge_internal_kernel(
        gpusim::kDefaultStream, 2.0 * m * n,
        sizeof(float) * (static_cast<double>(m) * n + n + 2.0 * m));
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

Error saxpy(Device& dev, int n, float alpha, DevPtr x, DevPtr y) {
  if (n < 0) return Error::kInvalidValue;
  if (n == 0) return Error::kSuccess;
  try {
    auto X = dev.memory().resolve(x, static_cast<std::uint64_t>(n) * 4);
    auto Y = dev.memory().resolve(y, static_cast<std::uint64_t>(n) * 4);
    if (!dev.timing_only()) {
      auto* xs = reinterpret_cast<const float*>(X.data());
      auto* ys = reinterpret_cast<float*>(Y.data());
      for (int i = 0; i < n; ++i) ys[i] += alpha * xs[i];
    }
    dev.charge_internal_kernel(gpusim::kDefaultStream, 2.0 * n,
                               sizeof(float) * 3.0 * n);
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

Error snrm2(Device& dev, int n, DevPtr x, DevPtr result) {
  if (n < 0) return Error::kInvalidValue;
  try {
    auto R = dev.memory().resolve(result, 4);
    float norm = 0.0f;
    if (n > 0) {
      auto X = dev.memory().resolve(x, static_cast<std::uint64_t>(n) * 4);
      if (!dev.timing_only()) {
        const auto* xs = reinterpret_cast<const float*>(X.data());
        double acc = 0;
        for (int i = 0; i < n; ++i)
          acc += static_cast<double>(xs[i]) * xs[i];
        norm = static_cast<float>(std::sqrt(acc));
      }
    }
    std::memcpy(R.data(), &norm, 4);
    dev.charge_internal_kernel(gpusim::kDefaultStream, 2.0 * n,
                               sizeof(float) * static_cast<double>(n));
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

Error spotrf(Device& dev, int n, DevPtr a, int lda, DevPtr info) {
  if (n < 0 || lda < std::max(1, n)) return Error::kInvalidValue;
  try {
    auto info_span = dev.memory().resolve(info, sizeof(std::int32_t));
    std::int32_t info_val = 0;
    if (n > 0) {
      const auto A = matrix(dev, a, n, n, lda);
      const auto ul = static_cast<std::size_t>(lda);
      if (!dev.timing_only()) {
        // Lower-triangular Cholesky: A = L * L^T, columns left to right.
        for (int j = 0; j < n && info_val == 0; ++j) {
          const std::size_t uj = static_cast<std::size_t>(j);
          double diag = A[uj * ul + uj];
          for (int k = 0; k < j; ++k) {
            const float ljk = A[static_cast<std::size_t>(k) * ul + uj];
            diag -= static_cast<double>(ljk) * ljk;
          }
          if (diag <= 0.0) {
            info_val = j + 1;
            break;
          }
          const float ljj = static_cast<float>(std::sqrt(diag));
          A[uj * ul + uj] = ljj;
          for (int i = j + 1; i < n; ++i) {
            const std::size_t ui = static_cast<std::size_t>(i);
            float sum = A[uj * ul + ui];
            for (int k = 0; k < j; ++k) {
              const std::size_t uk = static_cast<std::size_t>(k);
              sum -= A[uk * ul + ui] * A[uk * ul + uj];
            }
            A[uj * ul + ui] = sum / ljj;
          }
        }
      }
    }
    std::memcpy(info_span.data(), &info_val, sizeof info_val);
    const double flops = std::pow(static_cast<double>(n), 3) / 3.0;
    const double bytes = 4.0 * static_cast<double>(n) * n * sizeof(float);
    const auto launches =
        static_cast<std::uint64_t>(std::max(1, 2 * n / 16));
    dev.charge_internal_kernel(gpusim::kDefaultStream, flops, bytes, launches);
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

Error spotrs(Device& dev, int n, int nrhs, DevPtr a, int lda, DevPtr b,
             int ldb, DevPtr info) {
  if (n < 0 || nrhs < 0 || lda < std::max(1, n) || ldb < std::max(1, n))
    return Error::kInvalidValue;
  try {
    auto info_span = dev.memory().resolve(info, sizeof(std::int32_t));
    const std::int32_t zero = 0;
    std::memcpy(info_span.data(), &zero, sizeof zero);
    if (n == 0 || nrhs == 0) return Error::kSuccess;

    const auto A = matrix(dev, a, n, n, lda);
    const auto B = matrix(dev, b, n, nrhs, ldb);
    const auto ula = static_cast<std::size_t>(lda);
    const auto ulb = static_cast<std::size_t>(ldb);
    if (!dev.timing_only()) {
      for (int r = 0; r < nrhs; ++r) {
        float* x = B.data() + static_cast<std::size_t>(r) * ulb;
        // Forward: L z = b.
        for (int i = 0; i < n; ++i) {
          float sum = x[static_cast<std::size_t>(i)];
          for (int k = 0; k < i; ++k)
            sum -= A[static_cast<std::size_t>(k) * ula +
                     static_cast<std::size_t>(i)] *
                   x[static_cast<std::size_t>(k)];
          x[static_cast<std::size_t>(i)] =
              sum / A[static_cast<std::size_t>(i) * ula +
                      static_cast<std::size_t>(i)];
        }
        // Backward: L^T x = z.
        for (int i = n - 1; i >= 0; --i) {
          float sum = x[static_cast<std::size_t>(i)];
          for (int k = i + 1; k < n; ++k)
            sum -= A[static_cast<std::size_t>(i) * ula +
                     static_cast<std::size_t>(k)] *
                   x[static_cast<std::size_t>(k)];
          x[static_cast<std::size_t>(i)] =
              sum / A[static_cast<std::size_t>(i) * ula +
                      static_cast<std::size_t>(i)];
        }
      }
    }
    const double flops = 2.0 * static_cast<double>(n) * n * nrhs;
    dev.charge_internal_kernel(
        gpusim::kDefaultStream, flops,
        sizeof(float) * (static_cast<double>(n) * n +
                         2.0 * static_cast<double>(n) * nrhs),
        2);
    return Error::kSuccess;
  } catch (const MemoryError&) {
    return Error::kInvalidDevicePointer;
  }
}

}  // namespace cricket::cuda::culibs
