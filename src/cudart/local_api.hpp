// LocalCudaApi: executes the CudaApi surface on in-process simulated GPUs.
//
// Two roles, exactly as in the paper:
//   * the "native execution" baseline (application and CUDA driver in one
//     process, no forwarding), and
//   * the execution backend of the Cricket server, which dispatches each
//     received RPC into this class.
#pragma once

#include <memory>
#include <vector>

#include "cudart/api.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_props.hpp"

namespace cricket::cuda {

/// A simulated GPU node: shared virtual clock, kernel registry, host thread
/// pool, and one Device per installed GPU. Mirrors the paper's GPU node
/// (2x EPYC 7313, A100 + 2x T4 + P40).
class GpuNode {
 public:
  explicit GpuNode(std::vector<gpusim::DeviceProps> gpus,
                   std::size_t pool_threads = 0);

  [[nodiscard]] int device_count() const noexcept {
    return static_cast<int>(devices_.size());
  }
  [[nodiscard]] gpusim::Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] sim::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] gpusim::KernelRegistry& registry() noexcept {
    return registry_;
  }
  [[nodiscard]] gpusim::ThreadPool& pool() noexcept { return pool_; }

  /// Paper testbed: one A100, two T4s, one P40 (§4). Registers the culibs
  /// kernels; workload kernels are registered separately.
  [[nodiscard]] static std::unique_ptr<GpuNode> make_paper_testbed();
  /// Single A100 — what the evaluation actually uses.
  [[nodiscard]] static std::unique_ptr<GpuNode> make_a100();

 private:
  sim::SimClock clock_;
  gpusim::KernelRegistry registry_;
  gpusim::ThreadPool pool_;
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
};

/// CudaApi implementation bound to a GpuNode. Maintains the per-context
/// "current device" exactly like the CUDA runtime.
class LocalCudaApi final : public CudaApi {
 public:
  explicit LocalCudaApi(GpuNode& node) : node_(&node) {}

  Error get_device_count(int& count) override;
  Error set_device(int device) override;
  Error get_device(int& device) override;
  Error get_device_properties(DeviceInfo& info, int device) override;

  Error malloc(DevPtr& ptr, std::uint64_t size) override;
  Error free(DevPtr ptr) override;
  Error memset(DevPtr ptr, int value, std::uint64_t size) override;
  Error memcpy_h2d(DevPtr dst, std::span<const std::uint8_t> src) override;
  Error memcpy_d2h(std::span<std::uint8_t> dst, DevPtr src) override;
  Error memcpy_d2d(DevPtr dst, DevPtr src, std::uint64_t size) override;
  Error memcpy_h2d_async(DevPtr dst, std::span<const std::uint8_t> src,
                         StreamId stream) override;
  Error memcpy_d2h_async(std::span<std::uint8_t> dst, DevPtr src,
                         StreamId stream) override;

  Error stream_create(StreamId& stream) override;
  Error stream_wait_event(StreamId stream, EventId event) override;
  Error stream_destroy(StreamId stream) override;
  Error stream_synchronize(StreamId stream) override;
  Error device_synchronize() override;
  Error event_create(EventId& event) override;
  Error event_destroy(EventId event) override;
  Error event_record(EventId event, StreamId stream) override;
  Error event_synchronize(EventId event) override;
  Error event_elapsed_ms(float& ms, EventId start, EventId stop) override;

  Error module_load(ModuleId& module,
                    std::span<const std::uint8_t> image) override;
  Error module_unload(ModuleId module) override;
  Error module_get_function(FuncId& func, ModuleId module,
                            const std::string& name) override;
  Error module_get_global(DevPtr& ptr, ModuleId module,
                          const std::string& name) override;
  Error launch_kernel(FuncId func, Dim3 grid, Dim3 block,
                      std::uint32_t shared_bytes, StreamId stream,
                      std::span<const std::uint8_t> params) override;

  /// Like launch_kernel but also reports the device execution time charged —
  /// the Cricket server's scheduler needs race-free per-launch accounting.
  Error launch_kernel_timed(FuncId func, Dim3 grid, Dim3 block,
                            std::uint32_t shared_bytes, StreamId stream,
                            std::span<const std::uint8_t> params,
                            sim::Nanos& exec_ns);

  // Wiretaint overloads (LocalCudaApi only, not part of the CudaApi
  // surface): wire-derived sizes stay in the taint domain down to the
  // gpusim *_validated seams, which refuse implausible values with the
  // same in-band error codes the plain paths use.
  Error malloc(DevPtr& ptr, xdr::Untrusted<std::uint64_t> size);
  Error memset(DevPtr ptr, int value, xdr::Untrusted<std::uint64_t> size);
  Error memcpy_d2d(DevPtr dst, DevPtr src,
                   xdr::Untrusted<std::uint64_t> size);

  Error blas_sgemm(int m, int n, int k, float alpha, DevPtr a, int lda,
                   DevPtr b, int ldb, float beta, DevPtr c, int ldc) override;
  Error blas_sgemv(int m, int n, float alpha, DevPtr a, int lda, DevPtr x,
                   float beta, DevPtr y) override;
  Error blas_saxpy(int n, float alpha, DevPtr x, DevPtr y) override;
  Error blas_snrm2(int n, DevPtr x, DevPtr result) override;
  Error solver_sgetrf(int n, DevPtr a, int lda, DevPtr ipiv,
                      DevPtr info) override;
  Error solver_sgetrs(int n, int nrhs, DevPtr a, int lda, DevPtr ipiv,
                      DevPtr b, int ldb, DevPtr info) override;
  Error solver_spotrf(int n, DevPtr a, int lda, DevPtr info) override;
  Error solver_spotrs(int n, int nrhs, DevPtr a, int lda, DevPtr b, int ldb,
                      DevPtr info) override;

  [[nodiscard]] gpusim::Device& current() {
    return node_->device(current_device_);
  }

 private:
  GpuNode* node_;
  int current_device_ = 0;
};

}  // namespace cricket::cuda
