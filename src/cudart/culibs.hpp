// culibs: simulated cuBLAS / cuSOLVER dense routines.
//
// These run *device-side*: the Cricket server (or the native baseline)
// executes them against a gpusim::Device, doing the real arithmetic on the
// device's backing memory and charging roofline cost to the device timeline,
// like the single fused library call they stand in for. The client sees them
// only through the CudaApi entry points, each of which forwards as one RPC —
// matching the paper's observation that cuSolverDn_LinearSolver makes ~20
// API calls per LU iteration rather than thousands.
#pragma once

#include <cstdint>

#include "cudart/error.hpp"
#include "gpusim/device.hpp"

namespace cricket::cuda::culibs {

/// C = alpha*A*B + beta*C, column-major, m x k * k x n. Parallelized over
/// result columns on the node's thread pool. Returns kInvalidValue on bad
/// dims/leading dimensions, kInvalidDevicePointer on bad pointers.
Error sgemm(gpusim::Device& dev, gpusim::ThreadPool& pool, int m, int n,
            int k, float alpha, gpusim::DevPtr a, int lda, gpusim::DevPtr b,
            int ldb, float beta, gpusim::DevPtr c, int ldc);

/// In-place LU with partial pivoting (LAPACK sgetrf semantics, column-major).
/// ipiv: n int32 (1-based pivot rows); info: one int32.
Error sgetrf(gpusim::Device& dev, gpusim::ThreadPool& pool, int n,
             gpusim::DevPtr a, int lda, gpusim::DevPtr ipiv,
             gpusim::DevPtr info);

/// Solve A x = b from an sgetrf factorization; b (n x nrhs) overwritten.
Error sgetrs(gpusim::Device& dev, int n, int nrhs, gpusim::DevPtr a, int lda,
             gpusim::DevPtr ipiv, gpusim::DevPtr b, int ldb,
             gpusim::DevPtr info);

/// y = alpha * A(m x n) * x + beta * y, column-major (cublasSgemv, no
/// transpose).
Error sgemv(gpusim::Device& dev, int m, int n, float alpha, gpusim::DevPtr a,
            int lda, gpusim::DevPtr x, float beta, gpusim::DevPtr y);

/// y = alpha * x + y over n elements (cublasSaxpy).
Error saxpy(gpusim::Device& dev, int n, float alpha, gpusim::DevPtr x,
            gpusim::DevPtr y);

/// Euclidean norm of x (n elements); the float result is written to
/// `result` in device memory (cublasSnrm2 with device result pointer).
Error snrm2(gpusim::Device& dev, int n, gpusim::DevPtr x,
            gpusim::DevPtr result);

/// In-place Cholesky factorization of a symmetric positive-definite matrix
/// (cusolverDnSpotrf, lower triangular). info: one int32 (0 = ok, i = the
/// leading minor of order i is not positive definite).
Error spotrf(gpusim::Device& dev, int n, gpusim::DevPtr a, int lda,
             gpusim::DevPtr info);

/// Solve A x = b from an spotrf factorization; b (n x nrhs) overwritten
/// (cusolverDnSpotrs, lower).
Error spotrs(gpusim::Device& dev, int n, int nrhs, gpusim::DevPtr a, int lda,
             gpusim::DevPtr b, int ldb, gpusim::DevPtr info);

}  // namespace cricket::cuda::culibs
