// CUDA-style error model.
//
// The forwarded API mirrors the C CUDA runtime: every call returns an error
// code rather than throwing, because that is the contract the RPC layer
// serializes (the Cricket server executes the real cudaError_t-returning
// functions and ships the code back). A thin `check()` helper converts codes
// to exceptions for C++ callers that prefer RAII flow.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cricket::cuda {

/// Subset of cudaError_t covering everything the paper's workloads hit,
/// plus kRpcFailure for transport-level failures of the forwarding layer.
enum class Error : std::int32_t {
  kSuccess = 0,
  kInvalidValue = 1,
  kMemoryAllocation = 2,
  kInitializationError = 3,
  kInvalidDevicePointer = 17,
  kInvalidResourceHandle = 400,
  kNotFound = 500,
  kLaunchFailure = 719,
  kInvalidDevice = 101,
  kFileNotFound = 301,
  kInvalidKernelImage = 200,
  /// Cricket extension: rpc_module_load_cached named a content hash the
  /// server's module cache does not hold. Purely a negotiation outcome —
  /// the client falls back to the full rpc_module_load upload (which
  /// populates the cache), so this code never surfaces to applications.
  kCacheMiss = 996,
  /// Cricket extension: the server is live-migrating this tenant
  /// (AcceptStat::kMigrating on the wire). The call was refused before
  /// execution, so it is always safe to re-issue; the retry layers normally
  /// absorb this by reconnecting through the migration redirect, and it
  /// only surfaces when the retry budget runs out mid-migration. Never
  /// sticky — the next call rides a fresh connection to the new server.
  kMigrating = 997,
  /// Cricket extension: the call was rejected at server admission because
  /// the tenant is over quota (AcceptStat::kQuotaExceeded on the wire).
  /// Unlike kRpcFailure the connection is healthy; retry after backoff.
  kQuotaExceeded = 998,
  kRpcFailure = 999,
};

/// Short identifier, e.g. "cudaErrorMemoryAllocation".
[[nodiscard]] const char* error_name(Error e) noexcept;
/// Human-readable description, e.g. "out of memory".
[[nodiscard]] const char* error_string(Error e) noexcept;

class CudaException : public std::runtime_error {
 public:
  explicit CudaException(Error code, const std::string& context = {})
      : std::runtime_error(context.empty()
                               ? std::string(error_string(code))
                               : context + ": " + error_string(code)),
        code_(code) {}

  [[nodiscard]] Error code() const noexcept { return code_; }

 private:
  Error code_;
};

/// Throws CudaException unless `e` is kSuccess. Returns nothing on purpose:
/// use it to wrap calls whose failure is a program error.
inline void check(Error e, const std::string& context = {}) {
  if (e != Error::kSuccess) throw CudaException(e, context);
}

}  // namespace cricket::cuda
