#include "cudart/error.hpp"

namespace cricket::cuda {

const char* error_name(Error e) noexcept {
  switch (e) {
    case Error::kSuccess: return "cudaSuccess";
    case Error::kInvalidValue: return "cudaErrorInvalidValue";
    case Error::kMemoryAllocation: return "cudaErrorMemoryAllocation";
    case Error::kInitializationError: return "cudaErrorInitializationError";
    case Error::kInvalidDevicePointer: return "cudaErrorInvalidDevicePointer";
    case Error::kInvalidResourceHandle: return "cudaErrorInvalidResourceHandle";
    case Error::kNotFound: return "cudaErrorSymbolNotFound";
    case Error::kLaunchFailure: return "cudaErrorLaunchFailure";
    case Error::kInvalidDevice: return "cudaErrorInvalidDevice";
    case Error::kFileNotFound: return "cudaErrorFileNotFound";
    case Error::kInvalidKernelImage: return "cudaErrorInvalidKernelImage";
    case Error::kCacheMiss: return "cricketErrorCacheMiss";
    case Error::kMigrating: return "cricketErrorMigrating";
    case Error::kQuotaExceeded: return "cricketErrorQuotaExceeded";
    case Error::kRpcFailure: return "cricketErrorRpcFailure";
  }
  return "cudaErrorUnknown";
}

const char* error_string(Error e) noexcept {
  switch (e) {
    case Error::kSuccess: return "no error";
    case Error::kInvalidValue: return "invalid argument";
    case Error::kMemoryAllocation: return "out of memory";
    case Error::kInitializationError: return "initialization error";
    case Error::kInvalidDevicePointer: return "invalid device pointer";
    case Error::kInvalidResourceHandle: return "invalid resource handle";
    case Error::kNotFound: return "named symbol not found";
    case Error::kLaunchFailure: return "unspecified launch failure";
    case Error::kInvalidDevice: return "invalid device ordinal";
    case Error::kFileNotFound: return "file not found";
    case Error::kInvalidKernelImage: return "device kernel image is invalid";
    case Error::kCacheMiss: return "module image not in server cache";
    case Error::kMigrating: return "tenant is live-migrating; retry";
    case Error::kQuotaExceeded: return "tenant quota exceeded";
    case Error::kRpcFailure: return "RPC transport failure";
  }
  return "unknown error";
}

}  // namespace cricket::cuda
