// CudaApi — the virtualization boundary.
//
// This interface is the exact surface Cricket forwards (paper Fig. 1/3):
// applications program against it, and either a LocalCudaApi executes calls
// on an in-process simulated GPU (the "Cricket server side" / native
// baseline) or a RemoteCudaApi (src/cricket/client) serializes each call as
// an ONC RPC. Besides the CUDA runtime + driver API subset the paper's
// workloads need, it includes the cuBLAS/cuSOLVER entry points, which
// Cricket forwards as single RPCs (that is why the paper's
// cuSolverDn_LinearSolver issues only ~20k API calls for 1000 LU
// iterations).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "cudart/error.hpp"
#include "gpusim/device.hpp"

namespace cricket::cuda {

using gpusim::DevPtr;
using gpusim::Dim3;
using gpusim::EventId;
using gpusim::FuncId;
using gpusim::ModuleId;
using gpusim::StreamId;

/// What cudaGetDeviceProperties reports across the RPC boundary.
struct DeviceInfo {
  std::string name;
  std::uint64_t total_mem = 0;
  std::uint32_t sm_arch = 0;
  std::uint32_t sm_count = 0;
  std::uint32_t clock_mhz = 0;

  bool operator==(const DeviceInfo&) const = default;
};

/// Abstract CUDA API. All methods return Error like the C API; out-params
/// come first, mirroring cudaMalloc(&ptr, size). Implementations must be
/// usable from one thread at a time per instance (the paper's RPC client is
/// single-threaded, §4.2).
class CudaApi {
 public:
  virtual ~CudaApi() = default;

  // ------------------------------ device ---------------------------------
  virtual Error get_device_count(int& count) = 0;
  virtual Error set_device(int device) = 0;
  virtual Error get_device(int& device) = 0;
  virtual Error get_device_properties(DeviceInfo& info, int device) = 0;

  // ------------------------------ memory ---------------------------------
  virtual Error malloc(DevPtr& ptr, std::uint64_t size) = 0;
  virtual Error free(DevPtr ptr) = 0;
  virtual Error memset(DevPtr ptr, int value, std::uint64_t size) = 0;
  virtual Error memcpy_h2d(DevPtr dst, std::span<const std::uint8_t> src) = 0;
  virtual Error memcpy_d2h(std::span<std::uint8_t> dst, DevPtr src) = 0;
  virtual Error memcpy_d2d(DevPtr dst, DevPtr src, std::uint64_t size) = 0;
  /// Async variants: the copy is charged to `stream`'s device timeline
  /// instead of blocking the host until the device drains.
  virtual Error memcpy_h2d_async(DevPtr dst,
                                 std::span<const std::uint8_t> src,
                                 StreamId stream) = 0;
  virtual Error memcpy_d2h_async(std::span<std::uint8_t> dst, DevPtr src,
                                 StreamId stream) = 0;

  // --------------------------- streams/events ----------------------------
  virtual Error stream_create(StreamId& stream) = 0;
  virtual Error stream_destroy(StreamId stream) = 0;
  virtual Error stream_synchronize(StreamId stream) = 0;
  virtual Error device_synchronize() = 0;
  /// cudaStreamWaitEvent: orders `stream`'s future work after `event`.
  virtual Error stream_wait_event(StreamId stream, EventId event) = 0;
  virtual Error event_create(EventId& event) = 0;
  virtual Error event_destroy(EventId event) = 0;
  virtual Error event_record(EventId event, StreamId stream) = 0;
  virtual Error event_synchronize(EventId event) = 0;
  virtual Error event_elapsed_ms(float& ms, EventId start, EventId stop) = 0;

  // --------------------- modules & kernels (driver API) ------------------
  /// cuModuleLoadData: `image` is a cubin or fatbin, possibly compressed —
  /// the path the paper added to Cricket for Rust applications (§3.3).
  virtual Error module_load(ModuleId& module,
                            std::span<const std::uint8_t> image) = 0;
  virtual Error module_unload(ModuleId module) = 0;
  virtual Error module_get_function(FuncId& func, ModuleId module,
                                    const std::string& name) = 0;
  virtual Error module_get_global(DevPtr& ptr, ModuleId module,
                                  const std::string& name) = 0;
  /// cuLaunchKernel with an explicit parameter buffer (laid out per the
  /// kernel's cubin metadata).
  virtual Error launch_kernel(FuncId func, Dim3 grid, Dim3 block,
                              std::uint32_t shared_bytes, StreamId stream,
                              std::span<const std::uint8_t> params) = 0;

  // ------------------------ cuBLAS-style (forwarded) ---------------------
  /// C = alpha * A(m x k) * B(k x n) + beta * C(m x n), column-major,
  /// no transposes (the subset matrixMul-style workloads need).
  virtual Error blas_sgemm(int m, int n, int k, float alpha, DevPtr a, int lda,
                           DevPtr b, int ldb, float beta, DevPtr c,
                           int ldc) = 0;
  /// y = alpha * A(m x n) * x + beta * y (no transpose).
  virtual Error blas_sgemv(int m, int n, float alpha, DevPtr a, int lda,
                           DevPtr x, float beta, DevPtr y) = 0;
  /// y += alpha * x over n elements.
  virtual Error blas_saxpy(int n, float alpha, DevPtr x, DevPtr y) = 0;
  /// Euclidean norm of x into a device float.
  virtual Error blas_snrm2(int n, DevPtr x, DevPtr result) = 0;

  // ----------------------- cuSOLVER-style (forwarded) --------------------
  /// LU factorization with partial pivoting, in place on A (n x n,
  /// column-major). ipiv: device array of n int32 pivots; info: device
  /// int32 (0 = ok, i = zero pivot at step i, matching LAPACK).
  virtual Error solver_sgetrf(int n, DevPtr a, int lda, DevPtr ipiv,
                              DevPtr info) = 0;
  /// Solves A x = b using the factorization from solver_sgetrf; b (n x nrhs)
  /// is overwritten with the solution.
  virtual Error solver_sgetrs(int n, int nrhs, DevPtr a, int lda, DevPtr ipiv,
                              DevPtr b, int ldb, DevPtr info) = 0;
  /// In-place Cholesky factorization (lower) of an SPD matrix.
  virtual Error solver_spotrf(int n, DevPtr a, int lda, DevPtr info) = 0;
  /// Solves A x = b from an spotrf factorization; b overwritten.
  virtual Error solver_spotrs(int n, int nrhs, DevPtr a, int lda, DevPtr b,
                              int ldb, DevPtr info) = 0;
};

}  // namespace cricket::cuda
