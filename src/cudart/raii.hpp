// RAII wrappers over the CudaApi surface.
//
// The paper's RPC-Lib "wrap[s] the cudaMalloc and cudaFree APIs, making GPU
// allocations work like local heap allocations. This way, we can guarantee
// the absence of use-after-free and double-free errors for the CUDA
// allocation API" (§3.4). These types are the C++ equivalent: unique
// ownership, move-only, release on scope exit, no way to double-free.
#pragma once

#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "cudart/api.hpp"

namespace cricket::cuda {

/// Owning device allocation. Move-only; frees on destruction.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(CudaApi& api, std::uint64_t size) : api_(&api), size_(size) {
    check(api.malloc(ptr_, size), "cudaMalloc");
  }
  ~DeviceBuffer() { reset(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      api_ = std::exchange(other.api_, nullptr);
      ptr_ = std::exchange(other.ptr_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  [[nodiscard]] DevPtr get() const noexcept { return ptr_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] explicit operator bool() const noexcept { return ptr_ != 0; }

  /// Uploads host bytes (must fit).
  void upload(std::span<const std::uint8_t> src) {
    check(api_->memcpy_h2d(ptr_, src), "cudaMemcpy H2D");
  }
  /// Downloads into host bytes (must fit).
  void download(std::span<std::uint8_t> dst) const {
    check(api_->memcpy_d2h(dst, ptr_), "cudaMemcpy D2H");
  }

  template <typename T>
  void upload_values(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    upload({reinterpret_cast<const std::uint8_t*>(values.data()),
            values.size_bytes()});
  }
  template <typename T>
  [[nodiscard]] std::vector<T> download_values(std::size_t count) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(count);
    download({reinterpret_cast<std::uint8_t*>(out.data()),
              count * sizeof(T)});
    return out;
  }

  void reset() noexcept {
    if (api_ && ptr_ != 0)
      (void)api_->free(ptr_);  // destructor must not throw
    api_ = nullptr;
    ptr_ = 0;
    size_ = 0;
  }

 private:
  CudaApi* api_ = nullptr;
  DevPtr ptr_ = 0;
  std::uint64_t size_ = 0;
};

/// Owning stream handle.
class Stream {
 public:
  explicit Stream(CudaApi& api) : api_(&api) {
    check(api.stream_create(id_), "cudaStreamCreate");
  }
  ~Stream() {
    if (api_) (void)api_->stream_destroy(id_);
  }
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;
  Stream(Stream&& other) noexcept
      : api_(std::exchange(other.api_, nullptr)), id_(other.id_) {}

  [[nodiscard]] StreamId id() const noexcept { return id_; }
  void synchronize() { check(api_->stream_synchronize(id_)); }

 private:
  CudaApi* api_;
  StreamId id_ = 0;
};

/// Owning event handle.
class Event {
 public:
  explicit Event(CudaApi& api) : api_(&api) {
    check(api.event_create(id_), "cudaEventCreate");
  }
  ~Event() {
    if (api_) (void)api_->event_destroy(id_);
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  Event(Event&& other) noexcept
      : api_(std::exchange(other.api_, nullptr)), id_(other.id_) {}

  [[nodiscard]] EventId id() const noexcept { return id_; }
  void record(StreamId stream = gpusim::kDefaultStream) {
    check(api_->event_record(id_, stream));
  }
  void synchronize() { check(api_->event_synchronize(id_)); }
  [[nodiscard]] float elapsed_ms_since(const Event& start) const {
    float ms = 0;
    check(api_->event_elapsed_ms(ms, start.id(), id_));
    return ms;
  }

 private:
  CudaApi* api_;
  EventId id_ = 0;
};

/// Owning module handle (cuModuleLoadData / cuModuleUnload).
class Module {
 public:
  Module(CudaApi& api, std::span<const std::uint8_t> image) : api_(&api) {
    check(api.module_load(id_, image), "cuModuleLoadData");
  }
  ~Module() {
    if (api_) (void)api_->module_unload(id_);
  }
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&& other) noexcept
      : api_(std::exchange(other.api_, nullptr)), id_(other.id_) {}

  [[nodiscard]] ModuleId id() const noexcept { return id_; }
  [[nodiscard]] FuncId function(const std::string& name) const {
    FuncId fn = 0;
    check(api_->module_get_function(fn, id_, name), "cuModuleGetFunction");
    return fn;
  }
  [[nodiscard]] DevPtr global(const std::string& name) const {
    DevPtr ptr = 0;
    check(api_->module_get_global(ptr, id_, name), "cuModuleGetGlobal");
    return ptr;
  }

 private:
  CudaApi* api_;
  ModuleId id_ = 0;
};

/// Builds a launch parameter buffer with the alignment rules the cubin
/// metadata prescribes (8-byte pointers, 4-byte scalars, ...).
class ParamPacker {
 public:
  template <typename T>
  ParamPacker& add(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t align = alignof(T);
    while (buf_.size() % align != 0) buf_.push_back(0);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
    return *this;
  }
  ParamPacker& add_ptr(DevPtr ptr) { return add(ptr); }
  ParamPacker& add_ptr(const DeviceBuffer& buf) { return add(buf.get()); }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace cricket::cuda
