// LZ77-style compression for cubin images.
//
// NVIDIA compresses the per-arch images inside fat binaries with an
// LZ-family scheme; Cricket had to implement a decompressor to reach kernel
// metadata in compressed cubins (paper §3.3, ref [2]). Our container uses an
// equivalent scheme: greedy LZ77 over a 64 KiB window with a byte-oriented
// token format, so the "decompress before metadata extraction" server path
// is exercised for real.
//
// Token format (repeated until end of stream):
//   control byte C
//     C < 0x80 : literal run of C+1 bytes follows (1..128)
//     C >= 0x80: match; length = (C & 0x7F) + kMinMatch, followed by a
//                2-byte little-endian distance (1..65535) back into the
//                already-decompressed output.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace cricket::fatbin {

class LzError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 0x7F + kMinMatch;
constexpr std::size_t kWindow = 65535;

/// Worst-case expansion of a well-formed token stream: the densest token is
/// a 3-byte match emitting kMaxMatch bytes, so no valid stream decompresses
/// to more than ceil(kMaxMatch / 3) = 44x its encoded size. Declared output
/// lengths above `input_size * kMaxExpansion` are forgeries and can be
/// refused before any allocation.
constexpr std::size_t kMaxExpansion = (kMaxMatch + 2) / 3;

/// Compresses `input`; always succeeds (worst case ~1/128 expansion).
[[nodiscard]] std::vector<std::uint8_t> lz_compress(
    std::span<const std::uint8_t> input);

/// Decompresses a token stream. `max_output` bounds hostile inputs.
/// Throws LzError on malformed streams (truncated tokens, distance past the
/// start of output, output beyond `max_output`).
[[nodiscard]] std::vector<std::uint8_t> lz_decompress(
    std::span<const std::uint8_t> input,
    std::size_t max_output = std::size_t{1} << 31);

}  // namespace cricket::fatbin
