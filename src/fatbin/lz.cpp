#include "fatbin/lz.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace cricket::fatbin {
namespace {

// 4-byte rolling hash for match-candidate chaining.
std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 19;  // 13-bit table index
}

constexpr std::size_t kHashSize = 1u << 13;

void flush_literals(std::vector<std::uint8_t>& out,
                    std::span<const std::uint8_t> input, std::size_t lit_start,
                    std::size_t lit_end) {
  while (lit_start < lit_end) {
    const std::size_t run = std::min<std::size_t>(128, lit_end - lit_start);
    out.push_back(static_cast<std::uint8_t>(run - 1));
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(lit_start),
               input.begin() + static_cast<std::ptrdiff_t>(lit_start + run));
    lit_start += run;
  }
}

}  // namespace

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);

  std::array<std::size_t, kHashSize> table;
  table.fill(SIZE_MAX);

  std::size_t pos = 0;
  std::size_t lit_start = 0;
  while (pos + kMinMatch <= input.size()) {
    const std::uint32_t h = hash4(input.data() + pos);
    const std::size_t cand = table[h];
    table[h] = pos;

    std::size_t match_len = 0;
    if (cand != SIZE_MAX && pos - cand <= kWindow &&
        std::memcmp(input.data() + cand, input.data() + pos, kMinMatch) == 0) {
      const std::size_t limit =
          std::min(kMaxMatch, input.size() - pos);
      match_len = kMinMatch;
      while (match_len < limit &&
             input[cand + match_len] == input[pos + match_len])
        ++match_len;
    }

    if (match_len >= kMinMatch) {
      flush_literals(out, input, lit_start, pos);
      const std::size_t dist = pos - cand;
      out.push_back(static_cast<std::uint8_t>(
          0x80u | (match_len - kMinMatch)));
      out.push_back(static_cast<std::uint8_t>(dist & 0xFF));
      out.push_back(static_cast<std::uint8_t>(dist >> 8));
      // Seed the hash table inside the match so later data can refer back.
      const std::size_t end = pos + match_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= input.size() && p < end;
           ++p)
        table[hash4(input.data() + p)] = p;
      pos = end;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literals(out, input, lit_start, input.size());
  return out;
}

std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input,
                                        std::size_t max_output) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::uint8_t c = input[pos++];
    if (c < 0x80) {
      const std::size_t run = std::size_t{c} + 1;
      if (pos + run > input.size())
        throw LzError("truncated literal run");
      if (out.size() + run > max_output)
        throw LzError("decompressed output exceeds limit");
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + run));
      pos += run;
    } else {
      if (pos + 2 > input.size()) throw LzError("truncated match token");
      const std::size_t len = std::size_t{c & 0x7Fu} + kMinMatch;
      const std::size_t dist =
          std::size_t{input[pos]} | (std::size_t{input[pos + 1]} << 8);
      pos += 2;
      if (dist == 0 || dist > out.size())
        throw LzError("match distance outside produced output");
      if (out.size() + len > max_output)
        throw LzError("decompressed output exceeds limit");
      // Byte-by-byte: overlapping matches (dist < len) are legal and common.
      std::size_t src = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  return out;
}

}  // namespace cricket::fatbin
