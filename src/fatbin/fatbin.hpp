// FATBIN: the multi-architecture wrapper around cubin images.
//
// NVCC either embeds a fat binary into the host executable or writes .cubin
// files; a fat binary carries one (optionally compressed) image per target
// SM architecture. The Cricket extension reproduced here (paper §3.3) reads
// images client-side, ships them via RPC, and the server selects and — if
// needed — decompresses the best image before extracting metadata.
//
// Wire format:
//   [magic "FATB"] [u32 version=1] [u32 nentries]
//   per entry: [u32 sm_arch] [u32 flags] [u64 uncompressed_len]
//              [u32 payload_len] payload...
//   flags bit 0: payload is LZ-compressed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fatbin/cubin.hpp"
#include "fatbin/lz.hpp"

namespace cricket::fatbin {

/// Global ingest cap for module images, compressed or not. Mirrors the RPC
/// payload bound (CRICKET_MAX_PAYLOAD, 1 GiB): this library cannot include
/// the generated proto header, so src/cricket statically asserts the two
/// constants stay equal.
constexpr std::uint64_t kMaxModuleBytes = std::uint64_t{1} << 30;

struct FatbinEntry {
  std::uint32_t sm_arch = 0;
  bool compressed = false;
  std::uint64_t uncompressed_len = 0;
  std::vector<std::uint8_t> payload;
};

class Fatbin {
 public:
  /// Adds a cubin image, optionally compressing its serialized form.
  void add_image(const CubinImage& img, bool compress);

  /// Adds a pre-serialized (already cubin-format) payload.
  void add_raw(std::uint32_t sm_arch, std::vector<std::uint8_t> cubin_bytes,
               bool compress);

  [[nodiscard]] const std::vector<FatbinEntry>& entries() const noexcept {
    return entries_;
  }

  /// Best image for `sm_arch`: the highest entry arch that does not exceed
  /// it (a cubin compiled for sm_75 runs on sm_80 in spirit; the reverse
  /// does not). Returns nullptr when no entry is compatible.
  [[nodiscard]] const FatbinEntry* select(std::uint32_t sm_arch) const noexcept;

  /// Decompresses (if needed) and parses the selected entry. `max_bytes`
  /// bounds the decompressed image; entries declaring more are refused
  /// before any allocation.
  [[nodiscard]] CubinImage load(std::uint32_t sm_arch,
                                std::uint64_t max_bytes = kMaxModuleBytes)
      const;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Parses the container and validates every entry's declared
  /// uncompressed_len: compressed entries may not declare more than
  /// `payload.size() * kMaxExpansion` (a valid token stream cannot expand
  /// further) nor more than kMaxModuleBytes; uncompressed entries must
  /// declare exactly their payload size. A forged length therefore never
  /// authorizes an allocation.
  [[nodiscard]] static Fatbin parse(std::span<const std::uint8_t> bytes);
  [[nodiscard]] static bool probe(std::span<const std::uint8_t> bytes) noexcept;

 private:
  std::vector<FatbinEntry> entries_;
};

/// Extracts kernel/global metadata from raw bytes that may be a cubin or a
/// fatbin, compressed or not — the exact server-side entry point Cricket
/// needs when a client uploads a module (paper §3.3: "Cricket extracts
/// metadata from the cubin... even for compressed kernels").
///
/// `max_bytes` caps the peak decompressed allocation a hostile stream can
/// force (bare LZ streams are additionally bounded by
/// `bytes.size() * kMaxExpansion`, the densest valid encoding).
[[nodiscard]] CubinImage extract_metadata(
    std::span<const std::uint8_t> bytes, std::uint32_t sm_arch,
    std::uint64_t max_bytes = kMaxModuleBytes);

}  // namespace cricket::fatbin
