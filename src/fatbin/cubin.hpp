// CUBIN: the per-architecture GPU binary container.
//
// NVCC compiles device code into an ELF "cubin" holding kernel entry points,
// their parameter layouts, and global variables; Cricket extracts exactly
// that metadata server-side after upload (paper §3.3). Our simulator defines
// an equivalent self-describing container:
//
//   [magic "CBN1"] [u32 sm_arch] [u32 flags]
//   [u32 nkernels] kernel descriptors...
//   [u32 nglobals] global symbols...
//   [u32 code_len] code bytes...
//
// All integers little-endian. "Code" is an opaque blob; the GPU simulator
// binds kernel names to registered host callables, so the blob only needs to
// exist and round-trip (we fill it with a deterministic pseudo-ISA stream so
// compression has something realistic to chew on).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cricket::fatbin {

class CubinError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One kernel parameter: size and alignment in the launch parameter buffer,
/// plus whether it is a device pointer (needed for handle translation when a
/// client's device addresses must be remapped, e.g. after restore).
struct KernelParam {
  std::uint32_t size = 0;
  std::uint32_t align = 1;
  bool is_pointer = false;

  bool operator==(const KernelParam&) const = default;
};

/// Kernel metadata as extracted by the Cricket server from an uploaded cubin.
struct KernelDescriptor {
  std::string name;
  std::vector<KernelParam> params;
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t static_shared_bytes = 0;
  std::uint32_t num_regs = 32;

  bool operator==(const KernelDescriptor&) const = default;

  /// Total parameter-buffer size honouring each parameter's alignment.
  [[nodiscard]] std::uint32_t param_buffer_size() const noexcept;
  /// Byte offset of parameter `i` in the launch parameter buffer.
  [[nodiscard]] std::uint32_t param_offset(std::size_t i) const noexcept;
};

/// A __device__ global variable: name, size, optional initializer.
struct GlobalSymbol {
  std::string name;
  std::uint64_t size = 0;
  std::vector<std::uint8_t> init;  // empty or exactly `size` bytes

  bool operator==(const GlobalSymbol&) const = default;
};

/// A parsed (decompressed) cubin image.
struct CubinImage {
  std::uint32_t sm_arch = 80;  // e.g. 80 = A100, 75 = T4, 61 = P40
  std::vector<KernelDescriptor> kernels;
  std::vector<GlobalSymbol> globals;
  std::vector<std::uint8_t> code;

  bool operator==(const CubinImage&) const = default;

  [[nodiscard]] const KernelDescriptor* find_kernel(
      std::string_view name) const noexcept;
  [[nodiscard]] const GlobalSymbol* find_global(
      std::string_view name) const noexcept;
};

/// Serializes an image to the on-disk/on-wire cubin format.
[[nodiscard]] std::vector<std::uint8_t> cubin_serialize(const CubinImage& img);

/// Parses a cubin; throws CubinError on malformed input.
[[nodiscard]] CubinImage cubin_parse(std::span<const std::uint8_t> bytes);

/// True if `bytes` starts with the cubin magic.
[[nodiscard]] bool cubin_probe(std::span<const std::uint8_t> bytes) noexcept;

/// Generates a deterministic pseudo-ISA code blob (for tests and workload
/// cubins); compressible like real machine code.
[[nodiscard]] std::vector<std::uint8_t> make_pseudo_isa(std::size_t n_instrs,
                                                        std::uint64_t seed);

}  // namespace cricket::fatbin
