#include "fatbin/fatbin.hpp"

#include <algorithm>
#include <cstring>

namespace cricket::fatbin {
namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'A', 'T', 'B'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagCompressed = 1u << 0;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t& pos) {
  if (pos + 4 > in.size()) throw CubinError("truncated fatbin");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t{in[pos + static_cast<std::size_t>(i)]} << (8 * i);
  pos += 4;
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t& pos) {
  const std::uint64_t lo = get_u32(in, pos);
  return lo | (std::uint64_t{get_u32(in, pos)} << 32);
}

}  // namespace

void Fatbin::add_image(const CubinImage& img, bool compress) {
  add_raw(img.sm_arch, cubin_serialize(img), compress);
}

void Fatbin::add_raw(std::uint32_t sm_arch,
                     std::vector<std::uint8_t> cubin_bytes, bool compress) {
  FatbinEntry e;
  e.sm_arch = sm_arch;
  e.uncompressed_len = cubin_bytes.size();
  if (compress) {
    e.compressed = true;
    e.payload = lz_compress(cubin_bytes);
  } else {
    e.payload = std::move(cubin_bytes);
  }
  entries_.push_back(std::move(e));
}

const FatbinEntry* Fatbin::select(std::uint32_t sm_arch) const noexcept {
  const FatbinEntry* best = nullptr;
  for (const auto& e : entries_) {
    if (e.sm_arch > sm_arch) continue;
    if (!best || e.sm_arch > best->sm_arch) best = &e;
  }
  return best;
}

CubinImage Fatbin::load(std::uint32_t sm_arch, std::uint64_t max_bytes) const {
  const FatbinEntry* e = select(sm_arch);
  if (!e) throw CubinError("no compatible cubin image in fatbin");
  if (e->uncompressed_len > max_bytes)
    throw CubinError("cubin image exceeds module byte cap");
  if (e->compressed) {
    const auto raw = lz_decompress(
        e->payload, static_cast<std::size_t>(e->uncompressed_len));
    if (raw.size() != e->uncompressed_len)
      throw CubinError("decompressed size mismatch");
    return cubin_parse(raw);
  }
  return cubin_parse(e->payload);
}

std::vector<std::uint8_t> Fatbin::serialize() const {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    put_u32(out, e.sm_arch);
    put_u32(out, e.compressed ? kFlagCompressed : 0);
    put_u64(out, e.uncompressed_len);
    put_u32(out, static_cast<std::uint32_t>(e.payload.size()));
    out.insert(out.end(), e.payload.begin(), e.payload.end());
  }
  return out;
}

bool Fatbin::probe(std::span<const std::uint8_t> bytes) noexcept {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kMagic, 4) == 0;
}

Fatbin Fatbin::parse(std::span<const std::uint8_t> bytes) {
  if (!probe(bytes)) throw CubinError("bad fatbin magic");
  std::size_t pos = 4;
  if (get_u32(bytes, pos) != kVersion)
    throw CubinError("unsupported fatbin version");
  const std::uint32_t n = get_u32(bytes, pos);
  if (n > 1024) throw CubinError("fatbin entry count implausible");
  Fatbin fb;
  for (std::uint32_t i = 0; i < n; ++i) {
    FatbinEntry e;
    e.sm_arch = get_u32(bytes, pos);
    const std::uint32_t flags = get_u32(bytes, pos);
    if ((flags & ~kFlagCompressed) != 0)
      throw CubinError("unknown fatbin entry flags");
    e.compressed = (flags & kFlagCompressed) != 0;
    e.uncompressed_len = get_u64(bytes, pos);
    const std::uint32_t plen = get_u32(bytes, pos);
    // The declared uncompressed_len is wire-controlled and later becomes a
    // decompression output bound; refuse forgeries here so it can never
    // authorize an allocation the payload could not produce.
    if (e.compressed) {
      if (e.uncompressed_len > kMaxModuleBytes ||
          e.uncompressed_len > std::uint64_t{plen} * kMaxExpansion)
        throw CubinError("fatbin uncompressed_len implausible");
    } else if (e.uncompressed_len != plen) {
      throw CubinError("fatbin uncompressed_len mismatch");
    }
    if (pos + plen > bytes.size()) throw CubinError("truncated fatbin entry");
    e.payload.assign(bytes.data() + pos, bytes.data() + pos + plen);
    pos += plen;
    fb.entries_.push_back(std::move(e));
  }
  if (pos != bytes.size()) throw CubinError("trailing bytes after fatbin");
  return fb;
}

CubinImage extract_metadata(std::span<const std::uint8_t> bytes,
                            std::uint32_t sm_arch, std::uint64_t max_bytes) {
  if (bytes.size() > max_bytes)
    throw CubinError("module image exceeds byte cap");
  if (Fatbin::probe(bytes))
    return Fatbin::parse(bytes).load(sm_arch, max_bytes);
  if (cubin_probe(bytes)) return cubin_parse(bytes);
  // Maybe a bare compressed cubin (Cricket's decompression path). A bare
  // stream declares no output length, so bound it by both the cap and the
  // densest valid encoding — a ratio bomb allocates at most
  // bytes.size() * kMaxExpansion before it is refused.
  const auto limit = std::min<std::uint64_t>(
      max_bytes, std::uint64_t{bytes.size()} * kMaxExpansion);
  const auto raw = lz_decompress(bytes, static_cast<std::size_t>(limit));
  if (cubin_probe(raw)) return cubin_parse(raw);
  throw CubinError("not a cubin or fatbin");
}

}  // namespace cricket::fatbin
