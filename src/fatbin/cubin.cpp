#include "fatbin/cubin.hpp"

#include <cstring>

#include "sim/rng.hpp"

namespace cricket::fatbin {
namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'B', 'N', '1'};
constexpr std::uint32_t kMaxCount = 1u << 20;
constexpr std::uint32_t kMaxName = 4096;

class Writer {
 public:
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (std::uint64_t{u32()} << 32);
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxName) throw CubinError("cubin name too long");
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes(std::uint32_t max = UINT32_MAX) {
    const std::uint32_t n = u32();
    if (n > max) throw CubinError("cubin blob too long");
    need(n);
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw CubinError("truncated cubin");
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

std::uint32_t align_up(std::uint32_t off, std::uint32_t align) noexcept {
  return align <= 1 ? off : (off + align - 1) / align * align;
}

}  // namespace

std::uint32_t KernelDescriptor::param_offset(std::size_t i) const noexcept {
  std::uint32_t off = 0;
  for (std::size_t k = 0; k <= i && k < params.size(); ++k) {
    off = align_up(off, params[k].align);
    if (k == i) return off;
    off += params[k].size;
  }
  return off;
}

std::uint32_t KernelDescriptor::param_buffer_size() const noexcept {
  if (params.empty()) return 0;
  const std::size_t last = params.size() - 1;
  return param_offset(last) + params[last].size;
}

const KernelDescriptor* CubinImage::find_kernel(
    std::string_view name) const noexcept {
  for (const auto& k : kernels)
    if (k.name == name) return &k;
  return nullptr;
}

const GlobalSymbol* CubinImage::find_global(
    std::string_view name) const noexcept {
  for (const auto& g : globals)
    if (g.name == name) return &g;
  return nullptr;
}

std::vector<std::uint8_t> cubin_serialize(const CubinImage& img) {
  Writer w;
  w.raw(kMagic);
  w.u32(img.sm_arch);
  w.u32(0);  // flags, reserved
  w.u32(static_cast<std::uint32_t>(img.kernels.size()));
  for (const auto& k : img.kernels) {
    w.str(k.name);
    w.u32(static_cast<std::uint32_t>(k.params.size()));
    for (const auto& p : k.params) {
      w.u32(p.size);
      w.u32(p.align);
      w.u32(p.is_pointer ? 1 : 0);
    }
    w.u32(k.max_threads_per_block);
    w.u32(k.static_shared_bytes);
    w.u32(k.num_regs);
  }
  w.u32(static_cast<std::uint32_t>(img.globals.size()));
  for (const auto& g : img.globals) {
    w.str(g.name);
    w.u64(g.size);
    w.bytes(g.init);
  }
  w.bytes(img.code);
  return w.take();
}

bool cubin_probe(std::span<const std::uint8_t> bytes) noexcept {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kMagic, 4) == 0;
}

CubinImage cubin_parse(std::span<const std::uint8_t> bytes) {
  if (!cubin_probe(bytes)) throw CubinError("bad cubin magic");
  Reader r(bytes.subspan(4));
  CubinImage img;
  img.sm_arch = r.u32();
  const std::uint32_t flags = r.u32();
  if (flags != 0) throw CubinError("unknown cubin flags");
  const std::uint32_t nk = r.u32();
  if (nk > kMaxCount) throw CubinError("kernel count implausible");
  img.kernels.reserve(nk);
  for (std::uint32_t i = 0; i < nk; ++i) {
    KernelDescriptor k;
    k.name = r.str();
    const std::uint32_t np = r.u32();
    if (np > kMaxCount) throw CubinError("param count implausible");
    k.params.reserve(np);
    for (std::uint32_t j = 0; j < np; ++j) {
      KernelParam p;
      p.size = r.u32();
      p.align = r.u32();
      const std::uint32_t isp = r.u32();
      if (isp > 1) throw CubinError("invalid is_pointer flag");
      p.is_pointer = isp == 1;
      if (p.align == 0 || (p.align & (p.align - 1)) != 0)
        throw CubinError("parameter alignment must be a power of two");
      k.params.push_back(p);
    }
    k.max_threads_per_block = r.u32();
    k.static_shared_bytes = r.u32();
    k.num_regs = r.u32();
    img.kernels.push_back(std::move(k));
  }
  const std::uint32_t ng = r.u32();
  if (ng > kMaxCount) throw CubinError("global count implausible");
  img.globals.reserve(ng);
  for (std::uint32_t i = 0; i < ng; ++i) {
    GlobalSymbol g;
    g.name = r.str();
    g.size = r.u64();
    g.init = r.bytes();
    if (!g.init.empty() && g.init.size() != g.size)
      throw CubinError("global initializer size mismatch");
    img.globals.push_back(std::move(g));
  }
  img.code = r.bytes();
  if (!r.exhausted()) throw CubinError("trailing bytes after cubin");
  return img;
}

std::vector<std::uint8_t> make_pseudo_isa(std::size_t n_instrs,
                                          std::uint64_t seed) {
  // Real machine code is block-structured: unrolled loops and inlined
  // helpers repeat instruction sequences. Emit from a small library of
  // random "basic blocks" so LZ achieves a realistic (~2-3x) ratio rather
  // than the near-1x of uniformly random bytes.
  sim::Xoshiro256ss rng(seed);
  static constexpr std::uint8_t kOpcodes[] = {0x10, 0x11, 0x22, 0x25,
                                              0x36, 0x47, 0x58, 0x69};
  constexpr std::size_t kNumBlocks = 24;
  std::vector<std::vector<std::uint8_t>> blocks(kNumBlocks);
  for (auto& block : blocks) {
    const std::size_t len = 4 + rng.next() % 28;  // 4..31 instructions
    block.reserve(len * 8);
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t r = rng.next();
      block.push_back(kOpcodes[r % std::size(kOpcodes)]);
      block.push_back(static_cast<std::uint8_t>(r >> 8 & 0x1F));   // reg a
      block.push_back(static_cast<std::uint8_t>(r >> 16 & 0x1F));  // reg b
      block.push_back(static_cast<std::uint8_t>(r >> 24 & 0x1F));  // reg c
      block.push_back(0x00);
      block.push_back(0x00);  // immediates usually zero in real code
      block.push_back(static_cast<std::uint8_t>(r >> 32 & 0x03));
      block.push_back(0xE0);  // scheduling/control byte, near-constant
    }
  }
  std::vector<std::uint8_t> code;
  code.reserve(n_instrs * 8);
  while (code.size() < n_instrs * 8) {
    const auto& block = blocks[rng.next() % kNumBlocks];
    code.insert(code.end(), block.begin(), block.end());
  }
  code.resize(n_instrs * 8);
  return code;
}

}  // namespace cricket::fatbin
