#include "env/environment.hpp"

#include "faultnet/fault_spec.hpp"
#include "faultnet/faulty_transport.hpp"
#include "vnet/virtio_net.hpp"

namespace cricket::env {
namespace {

using vnet::GuestCosts;
using vnet::NetworkProfile;
using vnet::OffloadFeatures;

/// Rocky Linux host stack on ConnectX-5: every hardware offload available,
/// no hypervisor in the path.
NetworkProfile native_profile() {
  NetworkProfile p;
  p.virtualized = false;
  p.offloads = OffloadFeatures{.tx_checksum = true,
                               .rx_checksum = true,
                               .tso = true,
                               .mrg_rxbuf = true,
                               .rx_coalesce = true,
                               .scatter_gather = true};
  p.guest = GuestCosts{.syscall_ns = 800,
                       .per_packet_ns = 600,
                       .checksum_ns_per_byte = 0.25,  // unused: offloaded
                       .copy_ns_per_byte = 0.03,
                       .tx_copies = 2,  // XDR buffer + socket copy
                       .rx_copies = 1,
                       .vm_exit_ns = 0,
                       .kick_batch = 1,
                       .rx_per_buffer_ns = 0};
  return p;
}

/// Fedora guest under QEMU/KVM with a virtio TAP device: all virtio offloads
/// negotiated, notifications batched, but guest kernel entry and VM exits in
/// the path.
NetworkProfile linux_vm_profile() {
  NetworkProfile p;
  p.virtualized = true;
  p.offloads = OffloadFeatures{.tx_checksum = true,
                               .rx_checksum = true,
                               .tso = true,
                               .mrg_rxbuf = true,
                               .rx_coalesce = true,
                               .scatter_gather = true};
  p.guest = GuestCosts{.syscall_ns = 12'000,  // guest kernel entry + context switch
                       .per_packet_ns = 2'000,
                       .checksum_ns_per_byte = 0.25,
                       .copy_ns_per_byte = 0.03,
                       .tx_copies = 2,
                       .rx_copies = 1,
                       .vm_exit_ns = 8'000,
                       .kick_batch = 32,  // event-idx notification batching
                       .rx_per_buffer_ns = 0};
  return p;
}

/// RustyHermit: single address space (no syscall transition), smoltcp with
/// the paper's additions — VIRTIO_NET_F_CSUM, GUEST_CSUM and MRG_RXBUF
/// (§3.1) — but no TCP segmentation offload and unbatched kicks.
NetworkProfile hermit_profile() {
  NetworkProfile p;
  p.virtualized = true;
  p.offloads = OffloadFeatures{.tx_checksum = true,   // added by the paper
                               .rx_checksum = true,   // added by the paper
                               .tso = false,          // "ongoing efforts"
                               .mrg_rxbuf = true,     // added by the paper
                               .rx_coalesce = false,  // no GRO in smoltcp
                               .scatter_gather = false};
  p.guest = GuestCosts{.syscall_ns = 0,  // unikernel: plain function call
                       .per_packet_ns = 4'000,  // smoltcp per-segment work
                       .checksum_ns_per_byte = 0.25,
                       .copy_ns_per_byte = 0.04,  // fewer copies since §3.1
                       .tx_copies = 1,
                       .rx_copies = 1,
                       .vm_exit_ns = 12'000,
                       .kick_batch = 1,
                       .rx_per_buffer_ns = 0};
  return p;
}

/// Unikraft: lwIP via the musl compatibility layer; no checksum offload yet
/// (the lib-lwip PR is referenced but unmerged, §4.2), no TSO, no MRG_RXBUF.
NetworkProfile unikraft_profile() {
  NetworkProfile p;
  p.virtualized = true;
  p.offloads = OffloadFeatures{.tx_checksum = false,
                               .rx_checksum = false,
                               .tso = false,
                               .mrg_rxbuf = false,
                               .rx_coalesce = false,
                               .scatter_gather = false};
  p.guest = GuestCosts{.syscall_ns = 0,
                       .per_packet_ns = 4'500,  // lwIP + compat layer
                       .checksum_ns_per_byte = 0.25,  // paid in software
                       .copy_ns_per_byte = 0.05,
                       .tx_copies = 2,
                       .rx_copies = 1,
                       .vm_exit_ns = 12'000,
                       .kick_batch = 1,
                       .rx_per_buffer_ns = 1'500};
  return p;
}

ClientFlavor tirpc_flavor() {
  return ClientFlavor{.name = "libtirpc (C)",
                      .per_call_ns = 900,
                      .launch_extra_ns = 2'600,  // <<<...>>> compat logic
                      .fast_rng = false};
}

ClientFlavor rpclib_flavor() {
  return ClientFlavor{.name = "RPC-Lib (Rust)",
                      .per_call_ns = 800,
                      .launch_extra_ns = 0,
                      .fast_rng = true};
}

}  // namespace

vnet::NetworkProfile server_profile() { return native_profile(); }

Environment make_environment(EnvKind kind) {
  switch (kind) {
    case EnvKind::kNativeC:
      return Environment{kind,          "C",    "C",
                         "Rocky Linux", "-",    "native",
                         native_profile(), tirpc_flavor(), PipelineConfig{}};
    case EnvKind::kNativeRust:
      return Environment{kind,          "Rust", "Rust",
                         "Rocky Linux", "-",    "native",
                         native_profile(), rpclib_flavor(), PipelineConfig{}};
    case EnvKind::kLinuxVm:
      return Environment{kind,        "Linux VM", "Rust",
                         "Fedora VM", "QEMU",     "virtio",
                         linux_vm_profile(), rpclib_flavor(), PipelineConfig{}};
    case EnvKind::kUnikraft:
      return Environment{kind,       "Unikraft", "Rust",
                         "Unikraft", "QEMU",     "virtio",
                         unikraft_profile(), rpclib_flavor(), PipelineConfig{}};
    case EnvKind::kRustyHermit:
      return Environment{kind,     "Hermit", "Rust",
                         "Hermit", "QEMU",   "virtio",
                         hermit_profile(), rpclib_flavor(), PipelineConfig{}};
  }
  throw std::invalid_argument("unknown environment kind");
}

Environment with_pipelining(Environment environment, std::uint32_t depth,
                            bool batching) {
  environment.pipeline =
      PipelineConfig{.enabled = true, .depth = depth, .batching = batching};
  return environment;
}

Environment with_tracing(Environment environment) {
  environment.tracing = true;
  return environment;
}

Environment with_faults(Environment environment, std::string spec) {
  (void)faultnet::FaultSpec::parse(spec);  // validate now, not at connect()
  environment.faults = std::move(spec);
  return environment;
}

Environment with_module_cache(Environment environment) {
  environment.module_cache = true;
  return environment;
}

std::vector<Environment> all_environments() {
  return {make_environment(EnvKind::kNativeC),
          make_environment(EnvKind::kNativeRust),
          make_environment(EnvKind::kLinuxVm),
          make_environment(EnvKind::kUnikraft),
          make_environment(EnvKind::kRustyHermit)};
}

Connection connect(const Environment& environment, sim::SimClock& clock) {
  // The "wire": reliable ordered byte pipes standing in for the switched
  // 100 GbE fabric; wire time is charged by the endpoints' cost profiles.
  auto guest_to_server = std::make_shared<rpc::ByteQueue>(1 << 22);
  auto server_to_guest = std::make_shared<rpc::ByteQueue>(1 << 22);

  Connection conn;
  if (environment.profile.virtualized) {
    conn.guest = std::make_unique<vnet::VirtioNetTransport>(
        environment.profile, clock, guest_to_server, server_to_guest);
  } else {
    conn.guest = std::make_unique<vnet::ShapedTransport>(
        environment.profile, clock,
        std::make_unique<rpc::PipeTransport>(guest_to_server,
                                             server_to_guest));
  }
  conn.server = std::make_unique<vnet::ShapedTransport>(
      server_profile(), clock,
      std::make_unique<rpc::PipeTransport>(server_to_guest, guest_to_server));
  if (!environment.faults.empty()) {
    // Each direction gets its own fault stream: deriving the seeds from the
    // spec seed keeps a run reproducible while decorrelating the two sides
    // (a dropped call and a dropped reply are independent events).
    const auto spec = faultnet::FaultSpec::parse(environment.faults);
    conn.guest = std::make_unique<faultnet::FaultyTransport>(
        std::move(conn.guest), spec.with_seed(spec.seed ^ 0xC2C5u), &clock);
    conn.server = std::make_unique<faultnet::FaultyTransport>(
        std::move(conn.server), spec.with_seed(spec.seed ^ 0x5E2Eu), &clock);
  }
  return conn;
}

}  // namespace cricket::env
