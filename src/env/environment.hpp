// Execution-environment presets: Table 1 of the paper as code.
//
//   | Name     | app  | OS          | Hypervisor | Network |
//   |----------|------|-------------|------------|---------|
//   | C        | C    | Rocky Linux | -          | native  |
//   | Rust     | Rust | Rocky Linux | -          | native  |
//   | Linux VM | Rust | Fedora VM   | QEMU       | virtio  |
//   | Unikraft | Rust | Unikraft    | QEMU       | virtio  |
//   | Hermit   | Rust | Hermit      | QEMU       | virtio  |
//
// Each preset binds a NetworkProfile (offload feature set + CPU cost
// parameters, see src/vnet/cost_model.hpp) and a client flavour (the
// libtirpc C client vs the RPC-Lib Rust client). `connect()` builds the
// full data path: guest transport (virtio-net for virtualized rows, shaped
// host networking otherwise) wired to a server-side transport that models
// the GPU node's native Linux stack.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rpc/transport.hpp"
#include "sim/sim_clock.hpp"
#include "vnet/cost_model.hpp"

namespace cricket::env {

enum class EnvKind {
  kNativeC,
  kNativeRust,
  kLinuxVm,
  kUnikraft,
  kRustyHermit,
};

/// Client implementation flavour: libtirpc (C) vs RPC-Lib (Rust).
struct ClientFlavor {
  std::string name;
  /// Fixed client-library overhead per forwarded API call (marshalling,
  /// dispatch).
  sim::Nanos per_call_ns = 0;
  /// Extra client work per kernel launch. The C path keeps compatibility
  /// logic for the <<<...>>> launch operator that the Rust path omits —
  /// the paper measured the Rust launches ~6.3 % faster (§4.2).
  sim::Nanos launch_extra_ns = 0;
  /// Rust applications use a fast RNG for input initialization; the C CUDA
  /// samples use a slower one (§4.1, histogram discussion).
  bool fast_rng = true;
};

/// RPC pipelining knob (the rpcflow subsystem). Off in every Table-1 preset:
/// the paper's stack is strictly one synchronous RPC at a time (§4.2), and
/// the reproduction benches must keep matching it. Opt in per experiment
/// with `with_pipelining`.
struct PipelineConfig {
  bool enabled = false;
  /// Max calls in flight on the connection before the client blocks.
  std::uint32_t depth = 32;
  /// Coalesce back-to-back sub-MTU calls into one record flush.
  bool batching = true;
};

struct Environment {
  EnvKind kind = EnvKind::kNativeRust;
  std::string name;        // Table 1 "Name"
  std::string app_lang;    // Table 1 "app."
  std::string os;          // Table 1 "OS"
  std::string hypervisor;  // Table 1 "Hypervisor" ("-" if none)
  std::string network;     // Table 1 "Network"
  vnet::NetworkProfile profile;
  ClientFlavor flavor;
  PipelineConfig pipeline;  // defaults to off (paper-faithful)
  /// Enable the obs span collector for runs under this environment. Off by
  /// default: Table-1 presets measure the stack, not the instrumentation.
  bool tracing = false;
  /// faultnet injection spec (FaultSpec::parse syntax, e.g.
  /// "drop=0.05,seed=42"). Empty = clean network (every Table-1 preset).
  /// When set, connect() wraps both directions in FaultyTransport with
  /// per-direction seeds derived from the spec seed, so guest->server and
  /// server->guest draw independent but reproducible fault streams.
  std::string faults{};
  /// Two-phase module-load negotiation against the server's
  /// content-addressed module cache (modcache): clients probe by FNV-64
  /// image hash before uploading. Off by default: Table-1 presets measure
  /// the historical upload path.
  bool module_cache = false;
};

/// Returns a copy of `environment` with rpcflow pipelining switched on.
[[nodiscard]] Environment with_pipelining(Environment environment,
                                          std::uint32_t depth = 32,
                                          bool batching = true);

/// Returns a copy of `environment` with obs tracing switched on. Harness
/// code (bench_util's Rig) reacts by enabling the span collector and binding
/// the trace time source to the run's SimClock.
[[nodiscard]] Environment with_tracing(Environment environment);

/// Returns a copy of `environment` with a faultnet spec attached (validated
/// eagerly: throws std::invalid_argument on a malformed spec).
[[nodiscard]] Environment with_faults(Environment environment,
                                      std::string spec);

/// Returns a copy of `environment` with module-cache negotiation switched
/// on. Harness code (bench_util's Rig) reacts by enabling the server-side
/// cache and the clients' hash-first load path.
[[nodiscard]] Environment with_module_cache(Environment environment);

[[nodiscard]] Environment make_environment(EnvKind kind);

/// All five Table 1 rows, in the paper's order.
[[nodiscard]] std::vector<Environment> all_environments();

/// The GPU node's side of the connection: native Linux, ConnectX-5, all
/// offloads — identical for every client environment.
[[nodiscard]] vnet::NetworkProfile server_profile();

/// A connected guest<->server transport pair for the given environment.
struct Connection {
  std::unique_ptr<rpc::Transport> guest;   // client/application side
  std::unique_ptr<rpc::Transport> server;  // Cricket-server side
};

[[nodiscard]] Connection connect(const Environment& environment,
                                 sim::SimClock& clock);

}  // namespace cricket::env
