#include "rpc/portmap.hpp"

#include <algorithm>

namespace cricket::rpc {

void xdr_encode(xdr::Encoder& enc, const PmapMapping& m) {
  enc.put_u32(m.prog);
  enc.put_u32(m.vers);
  enc.put_u32(m.prot);
  enc.put_u32(m.port);
}

void xdr_decode(xdr::Decoder& dec, PmapMapping& m) {
  m.prog = dec.get_u32();
  m.vers = dec.get_u32();
  m.prot = dec.get_u32();
  m.port = dec.get_u32();
}

bool Portmapper::set(const PmapMapping& mapping) {
  sim::MutexLock lock(mu_);
  // RFC 1833: SET fails if a mapping for (prog, vers, prot) already exists.
  for (const auto& m : mappings_)
    if (m.prog == mapping.prog && m.vers == mapping.vers &&
        m.prot == mapping.prot)
      return false;
  mappings_.push_back(mapping);
  return true;
}

bool Portmapper::unset(std::uint32_t prog, std::uint32_t vers) {
  sim::MutexLock lock(mu_);
  const auto old_size = mappings_.size();
  std::erase_if(mappings_, [&](const PmapMapping& m) {
    return m.prog == prog && m.vers == vers;
  });
  return mappings_.size() != old_size;
}

std::uint32_t Portmapper::getport(std::uint32_t prog, std::uint32_t vers,
                                  std::uint32_t prot) const {
  sim::MutexLock lock(mu_);
  for (const auto& m : mappings_)
    if (m.prog == prog && m.vers == vers && m.prot == prot) return m.port;
  return 0;
}

std::vector<PmapMapping> Portmapper::dump() const {
  sim::MutexLock lock(mu_);
  return mappings_;
}

void Portmapper::register_into(ServiceRegistry& registry) {
  registry.register_typed<bool, PmapMapping>(
      kPmapProg, kPmapVers, kPmapProcSet,
      [this](PmapMapping m) { return set(m); });
  registry.register_typed<bool, PmapMapping>(
      kPmapProg, kPmapVers, kPmapProcUnset,
      [this](PmapMapping m) { return unset(m.prog, m.vers); });
  registry.register_typed<std::uint32_t, PmapMapping>(
      kPmapProg, kPmapVers, kPmapProcGetport,
      [this](PmapMapping m) { return getport(m.prog, m.vers, m.prot); });
  // DUMP: void -> list of mappings. RFC 1833 uses a linked list on the
  // wire; a counted array is the XDR-equivalent encoding used here.
  registry.register_typed<std::vector<PmapMapping>>(
      kPmapProg, kPmapVers, kPmapProcDump, [this]() { return dump(); });
}

bool PortmapClient::set(const PmapMapping& mapping) {
  return client_.call<bool>(kPmapProcSet, mapping);
}

bool PortmapClient::unset(std::uint32_t prog, std::uint32_t vers) {
  PmapMapping m;
  m.prog = prog;
  m.vers = vers;
  return client_.call<bool>(kPmapProcUnset, m);
}

std::uint32_t PortmapClient::getport(std::uint32_t prog, std::uint32_t vers,
                                     std::uint32_t prot) {
  PmapMapping m;
  m.prog = prog;
  m.vers = vers;
  m.prot = prot;
  return client_.call<std::uint32_t>(kPmapProcGetport, m);
}

std::vector<PmapMapping> PortmapClient::dump() {
  return client_.call<std::vector<PmapMapping>>(kPmapProcDump);
}

}  // namespace cricket::rpc
