// RFC 5531 §11 record marking.
//
// ONC RPC over a byte stream delimits messages as a sequence of fragments,
// each preceded by a 4-byte header: MSB = "last fragment" flag, low 31 bits =
// fragment length. The paper explicitly rejects the existing Rust `onc_rpc`
// crate for *lacking fragmented-message support*, since Cricket ships
// GPU-memory payloads as RPC arguments; this implementation supports
// arbitrary-size records split across fragments in both directions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rpc/transport.hpp"

namespace cricket::rpc {

/// Writes one record (possibly as several fragments) per call.
/// `max_fragment` bounds each fragment's payload; libtirpc uses large
/// fragments, but tests shrink this to force multi-fragment paths.
class RecordWriter {
 public:
  explicit RecordWriter(Transport& transport,
                        std::uint32_t max_fragment = kDefaultMaxFragment)
      : transport_(&transport),
        // 0 can only be a misconfiguration; honouring it literally would
        // emit empty non-last fragments forever.
        max_fragment_(max_fragment == 0 ? kDefaultMaxFragment : max_fragment) {
  }

  void write_record(std::span<const std::uint8_t> record);

  static constexpr std::uint32_t kDefaultMaxFragment = 1u << 20;  // 1 MiB

 private:
  Transport* transport_;
  std::uint32_t max_fragment_;
};

/// Appends one record-marked message (header + fragments) to `out` without
/// touching any transport. The pipelined paths use this to coalesce several
/// back-to-back records into a single transport send, amortizing per-send
/// costs (syscall / virtqueue kick / wire latency) across all of them.
void append_record_marked(std::vector<std::uint8_t>& out,
                          std::span<const std::uint8_t> record,
                          std::uint32_t max_fragment =
                              RecordWriter::kDefaultMaxFragment);

/// Reads one complete record (reassembling fragments) per call.
class RecordReader {
 public:
  explicit RecordReader(Transport& transport,
                        std::size_t max_record = kDefaultMaxRecord)
      : transport_(&transport), max_record_(max_record) {}

  /// Returns false on clean end-of-stream before any fragment; throws
  /// TransportError on mid-record EOF or an over-size record.
  [[nodiscard]] bool read_record(std::vector<std::uint8_t>& out);

  /// Largest legitimate record: the CRICKET_MAX_PAYLOAD opaque bound
  /// (1 GiB, mirrored by rpclgen's kProcBudget) plus a 64 KiB envelope for
  /// the RPC header, auth blobs, and sibling fields. A peer claiming more
  /// is hostile or corrupted, and the cap stops fragment accumulation long
  /// before the bounds preflight would see the completed record.
  static constexpr std::size_t kDefaultMaxRecord =
      (std::size_t{1} << 30) + (std::size_t{64} << 10);

 private:
  Transport* transport_;
  std::size_t max_record_;
};

/// Record reader that pulls large chunks off the transport into an internal
/// buffer instead of issuing exact-size reads per header/fragment. When many
/// small records arrive back-to-back (pipelined calls, coalesced replies)
/// one recv covers them all, so per-recv costs amortize. Semantics match
/// RecordReader: one complete record per read_record call, false on clean
/// EOF at a record boundary, TransportError on mid-record EOF.
class BufferedRecordReader {
 public:
  explicit BufferedRecordReader(Transport& transport,
                                std::size_t chunk = kDefaultChunk,
                                std::size_t max_record =
                                    RecordReader::kDefaultMaxRecord)
      : transport_(&transport), chunk_(chunk), max_record_(max_record) {}

  [[nodiscard]] bool read_record(std::vector<std::uint8_t>& out);

  static constexpr std::size_t kDefaultChunk = 64 * 1024;

 private:
  /// Ensures at least `need` buffered bytes; returns false on EOF first.
  [[nodiscard]] bool fill(std::size_t need);

  Transport* transport_;
  std::size_t chunk_;
  std::size_t max_record_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

}  // namespace cricket::rpc
