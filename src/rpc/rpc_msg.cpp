#include "rpc/rpc_msg.hpp"

namespace cricket::rpc {

using xdr::Decoder;
using xdr::Encoder;

const char* quota_reason_name(QuotaReason reason) noexcept {
  switch (reason) {
    case QuotaReason::kUnspecified: return "unspecified";
    case QuotaReason::kRateLimited: return "rate_limited";
    case QuotaReason::kOutstandingCalls: return "outstanding_calls";
    case QuotaReason::kDeviceMemory: return "device_memory";
    case QuotaReason::kSessionLimit: return "session_limit";
  }
  return "unknown";
}

void xdr_encode(Encoder& enc, const OpaqueAuth& auth) {
  enc.put_enum(auth.flavor);
  enc.put_opaque(auth.body);
}

void xdr_decode(Decoder& dec, OpaqueAuth& auth) {
  auth.flavor = dec.get_enum<AuthFlavor>();
  auth.body = dec.get_opaque(OpaqueAuth::kMaxBody);
}

OpaqueAuth AuthSysParms::to_opaque() const {
  Encoder enc;
  enc.put_u32(stamp);
  enc.put_string(machinename);
  enc.put_u32(uid);
  enc.put_u32(gid);
  enc.put_u32(static_cast<std::uint32_t>(gids.size()));
  for (const auto g : gids) enc.put_u32(g);
  OpaqueAuth auth;
  auth.flavor = AuthFlavor::kSys;
  auth.body = enc.take();
  return auth;
}

AuthSysParms AuthSysParms::from_opaque(const OpaqueAuth& auth) {
  if (auth.flavor != AuthFlavor::kSys)
    throw RpcFormatError("not an AUTH_SYS credential");
  Decoder dec(auth.body);
  AuthSysParms p;
  p.stamp = dec.get_u32();
  p.machinename = dec.get_string(255);
  p.uid = dec.get_u32();
  p.gid = dec.get_u32();
  const std::uint32_t n = dec.get_u32();
  if (n > 16) throw RpcFormatError("AUTH_SYS gids list too long");
  p.gids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) p.gids.push_back(dec.get_u32());
  dec.expect_exhausted();
  return p;
}

std::vector<std::uint8_t> encode_call(const CallMsg& call) {
  Encoder enc(64 + call.args.size());
  enc.put_u32(call.xid);
  enc.put_enum(MsgType::kCall);
  enc.put_u32(kRpcVersion);
  enc.put_u32(call.prog);
  enc.put_u32(call.vers);
  enc.put_u32(call.proc);
  xdr_encode(enc, call.cred);
  xdr_encode(enc, call.verf);
  auto out = enc.take();
  out.insert(out.end(), call.args.begin(), call.args.end());
  return out;
}

std::vector<std::uint8_t> encode_reply(const ReplyMsg& reply) {
  Encoder enc(64 + reply.results.size());
  enc.put_u32(reply.xid);
  enc.put_enum(MsgType::kReply);
  enc.put_enum(reply.stat);
  if (reply.stat == ReplyStat::kAccepted) {
    xdr_encode(enc, reply.verf);
    enc.put_enum(reply.accept_stat);
    switch (reply.accept_stat) {
      case AcceptStat::kSuccess:
        break;  // results appended below
      case AcceptStat::kProgMismatch: {
        const MismatchInfo mi = reply.mismatch.value_or(MismatchInfo{});
        enc.put_u32(mi.low);
        enc.put_u32(mi.high);
        break;
      }
      case AcceptStat::kQuotaExceeded:
        enc.put_u32(static_cast<std::uint32_t>(reply.quota_reason));
        break;
      default:
        break;  // void (includes kMigrating)
    }
  } else {
    enc.put_enum(reply.reject_stat);
    if (reply.reject_stat == RejectStat::kRpcMismatch) {
      const MismatchInfo mi = reply.mismatch.value_or(
          MismatchInfo{kRpcVersion, kRpcVersion});
      enc.put_u32(mi.low);
      enc.put_u32(mi.high);
    } else {
      enc.put_enum(reply.auth_stat);
    }
  }
  auto out = enc.take();
  if (reply.stat == ReplyStat::kAccepted &&
      reply.accept_stat == AcceptStat::kSuccess) {
    out.insert(out.end(), reply.results.begin(), reply.results.end());
  }
  return out;
}

CallHeader peek_call_header(std::span<const std::uint8_t> record) {
  Decoder dec(record);
  CallHeader h;
  h.xid = dec.get_u32();
  const auto mtype = dec.get_enum<MsgType>();
  if (mtype != MsgType::kCall) throw RpcFormatError("expected CALL message");
  const std::uint32_t rpcvers = dec.get_u32();
  if (rpcvers != kRpcVersion) throw RpcFormatError("unsupported RPC version");
  h.prog = dec.get_u32();
  h.vers = dec.get_u32();
  h.proc = dec.get_u32();
  // Skip cred and verf without materialising the bodies; same length caps
  // as xdr_decode(Decoder&, OpaqueAuth&).
  for (int i = 0; i < 2; ++i) {
    (void)dec.get_enum<AuthFlavor>();
    dec.skip_opaque(OpaqueAuth::kMaxBody);
  }
  h.body_offset = dec.position();
  return h;
}

OpaqueAuth peek_call_credential(std::span<const std::uint8_t> record) {
  Decoder dec(record);
  (void)dec.get_u32();  // xid
  const auto mtype = dec.get_enum<MsgType>();
  if (mtype != MsgType::kCall) throw RpcFormatError("expected CALL message");
  const std::uint32_t rpcvers = dec.get_u32();
  if (rpcvers != kRpcVersion) throw RpcFormatError("unsupported RPC version");
  for (int i = 0; i < 3; ++i) (void)dec.get_u32();  // prog, vers, proc
  OpaqueAuth cred;
  xdr_decode(dec, cred);
  return cred;
}

CallMsg decode_call(std::span<const std::uint8_t> record) {
  Decoder dec(record);
  CallMsg call;
  call.xid = dec.get_u32();
  const auto mtype = dec.get_enum<MsgType>();
  if (mtype != MsgType::kCall) throw RpcFormatError("expected CALL message");
  const std::uint32_t rpcvers = dec.get_u32();
  if (rpcvers != kRpcVersion) throw RpcFormatError("unsupported RPC version");
  call.prog = dec.get_u32();
  call.vers = dec.get_u32();
  call.proc = dec.get_u32();
  xdr_decode(dec, call.cred);
  xdr_decode(dec, call.verf);
  call.args.assign(record.begin() + static_cast<std::ptrdiff_t>(dec.position()),
                   record.end());
  return call;
}

ReplyMsg decode_reply(std::span<const std::uint8_t> record) {
  Decoder dec(record);
  ReplyMsg reply;
  reply.xid = dec.get_u32();
  const auto mtype = dec.get_enum<MsgType>();
  if (mtype != MsgType::kReply) throw RpcFormatError("expected REPLY message");
  reply.stat = dec.get_enum<ReplyStat>();
  if (reply.stat == ReplyStat::kAccepted) {
    xdr_decode(dec, reply.verf);
    reply.accept_stat = dec.get_enum<AcceptStat>();
    switch (reply.accept_stat) {
      case AcceptStat::kSuccess:
        reply.results.assign(
            record.begin() + static_cast<std::ptrdiff_t>(dec.position()),
            record.end());
        break;
      case AcceptStat::kProgMismatch: {
        MismatchInfo mi;
        mi.low = dec.get_u32();
        mi.high = dec.get_u32();
        reply.mismatch = mi;
        dec.expect_exhausted();
        break;
      }
      case AcceptStat::kProgUnavail:
      case AcceptStat::kProcUnavail:
      case AcceptStat::kGarbageArgs:
      case AcceptStat::kSystemErr:
      case AcceptStat::kMigrating:
        dec.expect_exhausted();
        break;
      case AcceptStat::kQuotaExceeded: {
        const std::uint32_t reason = dec.get_u32();
        if (reason > static_cast<std::uint32_t>(QuotaReason::kSessionLimit))
          throw RpcFormatError("invalid quota_reason");
        reply.quota_reason = static_cast<QuotaReason>(reason);
        dec.expect_exhausted();
        break;
      }
      default:
        // An out-of-range accept_stat must not be returned looking like a
        // structured reply whose untouched fields happen to read kSuccess.
        throw RpcFormatError("invalid accept_stat");
    }
  } else if (reply.stat == ReplyStat::kDenied) {
    reply.reject_stat = dec.get_enum<RejectStat>();
    if (reply.reject_stat == RejectStat::kRpcMismatch) {
      MismatchInfo mi;
      mi.low = dec.get_u32();
      mi.high = dec.get_u32();
      reply.mismatch = mi;
    } else if (reply.reject_stat == RejectStat::kAuthError) {
      const std::int32_t astat = dec.get_i32();
      if (astat < static_cast<std::int32_t>(AuthStat::kOk) ||
          astat > static_cast<std::int32_t>(AuthStat::kFailed))
        throw RpcFormatError("invalid auth_stat");
      reply.auth_stat = static_cast<AuthStat>(astat);
    } else {
      throw RpcFormatError("invalid reject_stat");
    }
    dec.expect_exhausted();
  } else {
    throw RpcFormatError("invalid reply_stat");
  }
  return reply;
}

}  // namespace cricket::rpc
