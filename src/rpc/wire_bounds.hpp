// Wire-size bounds vocabulary shared between rpclgen-generated bounds
// tables and the runtime decode pre-flight.
//
// `rpclgen --emit-bounds` proves, per procedure, an interval [min, max] of
// bytes any conforming argument/result encoding can occupy (see
// rpcl/bounds.hpp) and emits it as a constexpr array of ProcWireBounds.
// The rpc server and rpcflow channel consult that table before decoding:
// a record whose payload length falls outside the addressed procedure's
// interval cannot be a valid message, so it is rejected before any
// allocation or xdr_decode runs. This header defines only the table entry
// types and the RFC 5531 header-size envelope — it must stay light enough
// for generated headers to include without dragging in the server.
#pragma once

#include <cstdint>
#include <span>

namespace cricket::rpc {

/// Sentinel max for types/procedures the analysis could not bound. A table
/// containing this value still compiles (the table is total), but
/// generated static_asserts and the rpclgen CLI reject unbounded
/// procedures, so runtime code only ever sees it for non-procedure types.
inline constexpr std::uint64_t kUnboundedWireSize = ~std::uint64_t{0};

/// Encoded-size interval of one named RPCL type.
struct TypeWireBounds {
  const char* name;
  std::uint64_t min;
  std::uint64_t max;
};

/// Encoded-size intervals of one procedure's argument list and result,
/// excluding RPC headers (those are bounded by the k*Header* constants
/// below, independent of the procedure).
struct ProcWireBounds {
  std::uint32_t prog;
  std::uint32_t vers;
  std::uint32_t proc;
  std::uint64_t args_min;
  std::uint64_t args_max;
  std::uint64_t result_min;
  std::uint64_t result_max;
  const char* name;
};

/// RFC 5531 call header envelope: xid + msg_type + rpcvers + prog + vers +
/// proc (24 bytes) plus two opaque_auth structures (flavor + length +
/// 0..400 body bytes each, padded to 4).
inline constexpr std::uint64_t kCallHeaderMin = 24 + 8 + 8;
inline constexpr std::uint64_t kCallHeaderMax = 24 + 408 + 408;

/// RFC 5531 reply header envelope: xid + msg_type + reply_stat (12 bytes)
/// plus, for accepted replies, verifier (8..408) + accept_stat (4) + the
/// largest status-specific body (prog-mismatch bounds: 8 bytes; the Cricket
/// quota-exceeded reason word: 4 bytes); denied replies are smaller than
/// the accepted maximum.
inline constexpr std::uint64_t kReplyHeaderMin = 12 + 8 + 4;
inline constexpr std::uint64_t kReplyHeaderMax = 12 + 408 + 4 + 8;

/// Looks up the bounds entry for (prog, vers, proc). Linear scan: tables
/// are generated in procedure order and small (tens of entries), and the
/// function must be constexpr-usable from generated static_asserts.
constexpr const ProcWireBounds* find_proc_bounds(
    std::span<const ProcWireBounds> table, std::uint32_t prog,
    std::uint32_t vers, std::uint32_t proc) noexcept {
  for (const auto& entry : table) {
    if (entry.prog == prog && entry.vers == vers && entry.proc == proc)
      return &entry;
  }
  return nullptr;
}

}  // namespace cricket::rpc
