// Byte-stream transports beneath the ONC RPC record layer.
//
// The RPC runtime only needs a reliable, ordered byte stream — exactly what
// the paper's stack gets from TCP (smoltcp in RustyHermit, lwIP in Unikraft,
// the Linux kernel elsewhere). Implementations here:
//   * PipeTransport   — in-process bounded duplex pipe (deterministic tests,
//                       and the carrier the vnet cost models wrap).
//   * TcpTransport    — real loopback sockets for integration tests.
// The vnet module layers virtio/TCP simulation and virtual-time charging on
// top of this interface.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/annotations.hpp"

namespace cricket::rpc {

/// Thrown on transport-level failures (peer closed, socket error).
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by recv() when a set_recv_timeout bound elapses with no data. A
/// subclass of TransportError so callers without deadline handling keep
/// their existing failure classification; the retry layer catches it
/// specifically to distinguish "slow" from "gone".
class TransportTimeout : public TransportError {
 public:
  using TransportError::TransportError;
};

/// Reliable ordered byte stream. Implementations must be safe for one
/// concurrent sender plus one concurrent receiver (full duplex), but not for
/// multiple concurrent senders.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks until all of `data` is accepted. Throws TransportError if the
  /// peer is gone.
  virtual void send(std::span<const std::uint8_t> data) = 0;

  /// Blocks until at least one byte is available; returns the number of bytes
  /// read into `out`, or 0 on orderly end-of-stream.
  virtual std::size_t recv(std::span<std::uint8_t> out) = 0;

  /// Reads exactly `out.size()` bytes or throws TransportError on EOF.
  void recv_exact(std::span<std::uint8_t> out);

  /// Bounds how long any single recv() may block; once the bound elapses
  /// with no data, recv() throws TransportTimeout. Zero clears the bound.
  /// Returns true when the transport honours it; the base implementation
  /// returns false (recv stays fully blocking) so decorators over transports
  /// without timed waits — e.g. the virtio data path, whose backend threads
  /// own the blocking pops — degrade to deadline-between-records only.
  virtual bool set_recv_timeout(std::chrono::nanoseconds /*timeout*/) {
    return false;
  }

  /// Half-closes the write side; the peer's recv() will drain then return 0.
  virtual void shutdown() = 0;
};

/// One direction of an in-process pipe: a bounded byte FIFO.
/// Thread-safe.
class ByteQueue {
 public:
  explicit ByteQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Throws TransportError if closed.
  void push(std::span<const std::uint8_t> data) CRICKET_EXCLUDES(mu_);
  /// Blocks while empty and open; returns bytes read (0 = closed and drained).
  std::size_t pop(std::span<std::uint8_t> out) CRICKET_EXCLUDES(mu_);
  /// Like pop() but gives up after `timeout` with no data, throwing
  /// TransportTimeout. timeout <= 0 means wait forever.
  std::size_t pop_for(std::span<std::uint8_t> out,
                      std::chrono::nanoseconds timeout) CRICKET_EXCLUDES(mu_);
  void close() CRICKET_EXCLUDES(mu_);

 private:
  sim::Mutex mu_;
  sim::CondVar cv_;
  std::deque<std::uint8_t> fifo_ CRICKET_GUARDED_BY(mu_);
  std::size_t capacity_;
  bool closed_ CRICKET_GUARDED_BY(mu_) = false;
};

/// In-process duplex transport; create pairs with `make_pipe_pair`.
class PipeTransport final : public Transport {
 public:
  PipeTransport(std::shared_ptr<ByteQueue> tx, std::shared_ptr<ByteQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}
  ~PipeTransport() override { PipeTransport::shutdown(); }

  void send(std::span<const std::uint8_t> data) override { tx_->push(data); }
  std::size_t recv(std::span<std::uint8_t> out) override {
    const auto timeout = recv_timeout_.load(std::memory_order_relaxed);
    if (timeout > 0) {
      return rx_->pop_for(out, std::chrono::nanoseconds(timeout));
    }
    return rx_->pop(out);
  }
  bool set_recv_timeout(std::chrono::nanoseconds timeout) override {
    recv_timeout_.store(timeout.count(), std::memory_order_relaxed);
    return true;
  }
  void shutdown() override { tx_->close(); }

 private:
  std::shared_ptr<ByteQueue> tx_;
  std::shared_ptr<ByteQueue> rx_;
  std::atomic<std::int64_t> recv_timeout_{0};
};

/// Creates a connected pair of in-process transports (client end, server end).
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_pipe_pair(std::size_t capacity_bytes = 1 << 20);

/// Real TCP socket transport (used for loopback integration tests).
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) noexcept : fd_(fd) {}
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void send(std::span<const std::uint8_t> data) override;
  std::size_t recv(std::span<std::uint8_t> out) override;
  bool set_recv_timeout(std::chrono::nanoseconds timeout) override;
  void shutdown() override;

  /// Connects to 127.0.0.1:`port`.
  [[nodiscard]] static std::unique_ptr<TcpTransport> connect_loopback(
      std::uint16_t port);

 private:
  int fd_;
  std::atomic<std::int64_t> recv_timeout_ns_{0};
};

/// Listening TCP socket bound to a loopback ephemeral port.
class TcpListener {
 public:
  TcpListener();  // binds 127.0.0.1:0
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Blocks for one inbound connection; returns nullptr once closed.
  [[nodiscard]] std::unique_ptr<TcpTransport> accept();
  /// Safe to call from another thread while accept() is blocked.
  void close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace cricket::rpc
