// Portmapper (RFC 1833 "Binding Protocols for ONC RPC", version 2).
//
// The classic rpcbind/portmap service: RPC programs register the port they
// listen on under the well-known program number 100000, and clients query
// it before connecting. Cricket deployments use it the same way any ONC RPC
// service does — the Cricket server SETs (CRICKET_PROG, vers, tcp, port) on
// its GPU node and clients GETPORT before dialling.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "sim/annotations.hpp"

namespace cricket::rpc {

constexpr std::uint32_t kPmapProg = 100000;
constexpr std::uint32_t kPmapVers = 2;

constexpr std::uint32_t kPmapProcSet = 1;
constexpr std::uint32_t kPmapProcUnset = 2;
constexpr std::uint32_t kPmapProcGetport = 3;
constexpr std::uint32_t kPmapProcDump = 4;

constexpr std::uint32_t kIpProtoTcp = 6;
constexpr std::uint32_t kIpProtoUdp = 17;

/// One registration entry (RFC 1833 struct mapping).
struct PmapMapping {
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t prot = kIpProtoTcp;
  std::uint32_t port = 0;

  bool operator==(const PmapMapping&) const = default;
};

void xdr_encode(xdr::Encoder& enc, const PmapMapping& m);
void xdr_decode(xdr::Decoder& dec, PmapMapping& m);

/// The portmapper service state. Register it into a ServiceRegistry served
/// on the well-known endpoint; thread-safe.
class Portmapper {
 public:
  /// Binds PMAPPROC_{SET,UNSET,GETPORT,DUMP} into `registry`.
  void register_into(ServiceRegistry& registry);

  // Direct (in-process) access, used by servers co-located with the mapper.
  bool set(const PmapMapping& mapping) CRICKET_EXCLUDES(mu_);
  bool unset(std::uint32_t prog, std::uint32_t vers) CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::uint32_t getport(std::uint32_t prog, std::uint32_t vers,
                                      std::uint32_t prot) const
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] std::vector<PmapMapping> dump() const CRICKET_EXCLUDES(mu_);

 private:
  mutable sim::Mutex mu_;
  std::vector<PmapMapping> mappings_ CRICKET_GUARDED_BY(mu_);
};

/// Client-side helpers speaking the wire protocol against a remote mapper.
class PortmapClient {
 public:
  explicit PortmapClient(std::unique_ptr<Transport> transport)
      : client_(std::move(transport), kPmapProg, kPmapVers) {}

  bool set(const PmapMapping& mapping);
  bool unset(std::uint32_t prog, std::uint32_t vers);
  /// 0 means "not registered" (RFC 1833 semantics).
  [[nodiscard]] std::uint32_t getport(std::uint32_t prog, std::uint32_t vers,
                                      std::uint32_t prot = kIpProtoTcp);
  [[nodiscard]] std::vector<PmapMapping> dump();

 private:
  RpcClient client_;
};

}  // namespace cricket::rpc
