// RFC 5531 message model: call and reply bodies, authentication, status
// codes, and their XDR wire representation.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "xdr/xdr.hpp"

namespace cricket::rpc {

constexpr std::uint32_t kRpcVersion = 2;

enum class MsgType : std::int32_t { kCall = 0, kReply = 1 };
enum class ReplyStat : std::int32_t { kAccepted = 0, kDenied = 1 };
enum class AcceptStat : std::int32_t {
  kSuccess = 0,
  kProgUnavail = 1,
  kProgMismatch = 2,
  kProcUnavail = 3,
  kGarbageArgs = 4,
  kSystemErr = 5,
  /// Cricket extension: the call was well-formed but the tenant it belongs
  /// to is over quota. Carries a QuotaReason word where results would go.
  /// Admission control answers with this status *before* argument decode,
  /// so the connection survives and the client can retry after backoff.
  kQuotaExceeded = 6,
  /// Cricket extension: the tenant's sessions are frozen because they are
  /// being live-migrated to another server. Like kQuotaExceeded this is
  /// answered at admission before argument decode — the call has NOT
  /// executed, so it is always safe to re-send (same xid) regardless of
  /// idempotency. Clients should back off and retry through their reconnect
  /// factory: once the migration's redirect flips, the retry lands on the
  /// target server, where the migrated duplicate-request cache preserves
  /// at-most-once for calls that did execute before the freeze.
  kMigrating = 7,
};

/// Reason word carried by a kQuotaExceeded reply.
enum class QuotaReason : std::uint32_t {
  kUnspecified = 0,
  kRateLimited = 1,       // bytes/sec token bucket empty
  kOutstandingCalls = 2,  // too many decoded-but-unreplied calls
  kDeviceMemory = 3,      // device-memory byte quota exhausted
  kSessionLimit = 4,      // too many concurrent sessions
};

[[nodiscard]] const char* quota_reason_name(QuotaReason reason) noexcept;
enum class RejectStat : std::int32_t { kRpcMismatch = 0, kAuthError = 1 };
enum class AuthStat : std::int32_t {
  kOk = 0,
  kBadCred = 1,
  kRejectedCred = 2,
  kBadVerf = 3,
  kRejectedVerf = 4,
  kTooWeak = 5,
  kInvalidResp = 6,
  kFailed = 7,
};
enum class AuthFlavor : std::int32_t { kNone = 0, kSys = 1, kShort = 2 };

/// Opaque authenticator: flavor + up to 400 bytes of body.
struct OpaqueAuth {
  AuthFlavor flavor = AuthFlavor::kNone;
  std::vector<std::uint8_t> body;

  static constexpr std::uint32_t kMaxBody = 400;
};

/// AUTH_SYS credentials (RFC 5531 appendix A).
struct AuthSysParms {
  std::uint32_t stamp = 0;
  std::string machinename;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::vector<std::uint32_t> gids;  // max 16

  [[nodiscard]] OpaqueAuth to_opaque() const;
  [[nodiscard]] static AuthSysParms from_opaque(const OpaqueAuth& auth);
};

/// An RPC call as parsed off the wire (args still undecoded).
struct CallMsg {
  std::uint32_t xid = 0;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  OpaqueAuth cred;
  OpaqueAuth verf;
  std::vector<std::uint8_t> args;  // XDR-encoded procedure arguments
};

/// Mismatch bounds reported with kProgMismatch / kRpcMismatch.
struct MismatchInfo {
  std::uint32_t low = 0;
  std::uint32_t high = 0;
};

/// An RPC reply as parsed off the wire (results still undecoded).
struct ReplyMsg {
  std::uint32_t xid = 0;
  ReplyStat stat = ReplyStat::kAccepted;
  // accepted:
  OpaqueAuth verf;
  AcceptStat accept_stat = AcceptStat::kSuccess;
  std::optional<MismatchInfo> mismatch;  // prog/rpc mismatch bounds
  QuotaReason quota_reason = QuotaReason::kUnspecified;  // with kQuotaExceeded
  std::vector<std::uint8_t> results;     // XDR-encoded results on success
  // denied:
  RejectStat reject_stat = RejectStat::kRpcMismatch;
  AuthStat auth_stat = AuthStat::kOk;
};

/// Serializes a call message (header + pre-encoded args).
[[nodiscard]] std::vector<std::uint8_t> encode_call(const CallMsg& call);
/// Serializes a reply message (header + pre-encoded results).
[[nodiscard]] std::vector<std::uint8_t> encode_reply(const ReplyMsg& reply);

/// Parses a record as a call; throws XdrError/RpcFormatError on garbage.
[[nodiscard]] CallMsg decode_call(std::span<const std::uint8_t> record);
/// Parses a record as a reply. Strict: unknown reply_stat / accept_stat /
/// reject_stat / auth_stat values and trailing bytes all throw.
[[nodiscard]] ReplyMsg decode_reply(std::span<const std::uint8_t> record);

/// Allocation-free view of a call header — just enough to route the record
/// (bounds pre-flight) without copying auth bodies or args.
struct CallHeader {
  std::uint32_t xid = 0;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  std::size_t body_offset = 0;  // offset of the encoded args in the record
};

/// Parses only the call header, performing no allocation. Throws
/// XdrError/RpcFormatError in exactly the cases decode_call would reject
/// the header, so a record that passes the peek still decodes.
[[nodiscard]] CallHeader peek_call_header(std::span<const std::uint8_t> record);

/// Parses only the credential of a call record (one ≤400-byte copy, no args
/// materialisation). Admission control authenticates from this before the
/// argument decode is allowed to run. Throws like peek_call_header.
[[nodiscard]] OpaqueAuth peek_call_credential(
    std::span<const std::uint8_t> record);

/// Thrown when a record is not a structurally valid RPC message.
class RpcFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void xdr_encode(xdr::Encoder& enc, const OpaqueAuth& auth);
void xdr_decode(xdr::Decoder& dec, OpaqueAuth& auth);

}  // namespace cricket::rpc
