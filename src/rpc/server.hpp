// ONC RPC server runtime: service registry + dispatch + connection serving.
//
// Mirrors the server side of the paper's setup, where `rpcgen`-generated C
// dispatch code routes each procedure number to a CUDA-executing handler.
// Here the cricket module registers its handlers into a ServiceRegistry and
// either serves a single in-process transport (simulated environments) or a
// real TCP listener with one thread per connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/transport.hpp"
#include "rpc/wire_bounds.hpp"
#include "sim/annotations.hpp"
#include "xdr/xdr.hpp"

namespace cricket::rpc {

/// Thrown by handlers that could not decode their arguments; mapped to
/// GARBAGE_ARGS. Any other handler exception maps to SYSTEM_ERR.
class GarbageArgsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A procedure handler: takes XDR-encoded args, returns XDR-encoded results.
using ProcHandler =
    std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>;

/// Duplicate-request cache sizing. FIFO eviction: retries arrive within the
/// client's backoff window (milliseconds), so recency-ordering buys nothing
/// over insertion-ordering here and FIFO keeps eviction O(1).
struct DrcOptions {
  std::size_t max_entries = 1024;
  /// Cap on cached reply payload bytes (a memcpy_d2h reply can be large).
  std::size_t max_bytes = 16u << 20;
};

struct DrcStats {
  std::uint64_t hits = 0;          // retried call answered from cache
  std::uint64_t in_flight_waits = 0;  // duplicate arrived mid-execution
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// One duplicate-request-cache entry in portable form. Live migration ships
/// these to the target server so a retry of a call that already executed on
/// the source is answered from cache there instead of re-executing.
struct DrcExportEntry {
  std::uint64_t client = 0;  // drc_client_id of the caller's credential
  std::uint32_t xid = 0;
  std::vector<std::uint8_t> reply;  // encode_reply() bytes of the cached reply
};

/// The duplicate-request cache's client identity: FNV-1a over the credential
/// (flavor + body). Exposed so migration can export one tenant's entries by
/// hashing the credentials of its sessions.
[[nodiscard]] std::uint64_t drc_client_id(const OpaqueAuth& cred) noexcept;

/// Pre-decode admission control seam (multi-tenant servers). The controller
/// sees every structurally valid record after the wire-size pre-flight and
/// before any argument decode or dispatch work; returning a reply
/// short-circuits the call (quota rejection, auth denial) through the
/// normal reply path, so the connection always survives a rejection.
/// complete() fires exactly once per admitted record once its reply has
/// been produced (or the record proved undecodable), releasing
/// outstanding-call accounting. Implementations must be thread-safe:
/// admit() runs on the connection's reader thread while complete() runs on
/// a pipelined worker.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;
  [[nodiscard]] virtual std::optional<ReplyMsg> admit(
      std::span<const std::uint8_t> record) = 0;
  virtual void complete() = 0;
};

/// Maps (program, version, procedure) to handlers; computes RFC 5531 error
/// statuses for unknown programs/versions/procedures. Thread-safe after
/// registration completes (registration itself is not concurrent with
/// dispatch).
class ServiceRegistry {
 public:
  void register_proc(std::uint32_t prog, std::uint32_t vers,
                     std::uint32_t proc, ProcHandler handler);

  /// Convenience: typed handler taking decoded arguments.
  /// `fn` is invoked as `Res fn(Args...)` with args decoded in order.
  template <typename Res, typename... Args, typename Fn>
  void register_typed(std::uint32_t prog, std::uint32_t vers,
                      std::uint32_t proc, Fn fn) {
    register_proc(prog, vers, proc,
                  [fn = std::move(fn)](std::span<const std::uint8_t> in) {
                    // Counted so tests can prove pre-flight rejections never
                    // reach argument decoding.
                    static obs::Counter& decode_attempts =
                        obs::Registry::global().counter(
                            "cricket_rpc_args_decode_total", {},
                            "Typed argument decode attempts");
                    decode_attempts.inc();
                    xdr::Decoder dec(in);
                    std::tuple<std::decay_t<Args>...> args;
                    try {
                      std::apply([&](auto&... a) { (xdr_decode(dec, a), ...); },
                                 args);
                      dec.expect_exhausted();
                    } catch (const xdr::XdrError& e) {
                      throw GarbageArgsError(e.what());
                    }
                    xdr::Encoder enc;
                    if constexpr (std::is_void_v<Res>) {
                      std::apply(fn, args);
                    } else {
                      xdr_encode(enc, std::apply(fn, args));
                    }
                    return enc.take();
                  });
  }

  /// Installs rpclgen-generated wire-size bounds (e.g.
  /// cricket::proto::bounds::kProcBounds). Entries are copied; like
  /// register_proc this must complete before dispatch starts.
  void set_bounds(std::span<const ProcWireBounds> table);

  /// Decode pre-flight: peeks the call header of a raw record and checks
  /// the argument length against the addressed procedure's proven
  /// [min, max] interval, before any allocation or xdr_decode. Returns a
  /// GARBAGE_ARGS reply if the record can not be a valid call to that
  /// procedure, nullopt to proceed with the full decode (including when
  /// the header is unparseable or no bounds are installed — those paths
  /// keep their existing error classification).
  [[nodiscard]] std::optional<ReplyMsg> preflight(
      std::span<const std::uint8_t> record) const;

  /// Turns on at-most-once semantics: replies to handled procedures are
  /// cached by (client id, xid), and a retried call — same client, same xid
  /// — is answered from cache instead of re-executing the handler. A
  /// duplicate that lands while the original is still executing waits for
  /// that execution rather than starting a second one. The client id is a
  /// hash of the call credential, so clients wanting isolation on a shared
  /// registry must present distinct credentials (e.g. AUTH_SYS machinename).
  /// Like register_proc, must be called before dispatch starts.
  void enable_duplicate_cache(DrcOptions options = {});
  [[nodiscard]] bool duplicate_cache_enabled() const noexcept {
    return drc_ != nullptr;
  }
  [[nodiscard]] DrcStats drc_stats() const;

  /// Snapshots cached replies for migration, optionally restricted to one
  /// client identity (drc_client_id of a credential). Empty when the cache
  /// is disabled. In-flight executions are not exported — callers quiesce
  /// (drain outstanding calls) before snapshotting.
  [[nodiscard]] std::vector<DrcExportEntry> export_drc(
      std::optional<std::uint64_t> client = std::nullopt) const;

  /// Seeds the cache with migrated entries. Each reply is re-decoded (a
  /// hostile blob throws RpcFormatError/XdrError and nothing is inserted
  /// past it); entries already present are kept, not overwritten. Throws
  /// std::logic_error when the cache is disabled — silently dropping the
  /// entries would forfeit at-most-once for the migrated tenant.
  void import_drc(const std::vector<DrcExportEntry>& entries);

  /// Installs a pre-decode admission controller (non-owning; must outlive
  /// serving). Like register_proc, must be set before dispatch starts —
  /// typically on a per-connection registry so the controller can hold
  /// per-session state.
  void set_admission(AdmissionController* admission) noexcept {
    admission_ = admission;
  }
  /// Admission hooks consulted by the serve loops between pre-flight and
  /// decode. No controller installed = everything admitted.
  [[nodiscard]] std::optional<ReplyMsg> admit(
      std::span<const std::uint8_t> record) const;
  void admission_complete() const;

  /// Executes one parsed call, producing the reply (never throws for
  /// call-level errors; they become reply statuses). Consults the
  /// duplicate-request cache when enabled.
  [[nodiscard]] ReplyMsg dispatch(const CallMsg& call) const;

 private:
  struct Key {
    std::uint32_t prog, vers, proc;
    auto operator<=>(const Key&) const = default;
  };
  struct DrcKey {
    std::uint64_t client;
    std::uint32_t xid;
    auto operator<=>(const DrcKey&) const = default;
  };
  struct DrcEntry {
    ReplyMsg reply;
    std::size_t bytes;
  };

  /// The cache lives on the heap so the registry stays movable (sim::Mutex
  /// is neither movable nor copyable). Null until enable_duplicate_cache.
  /// dispatch() is const and concurrent (pipelined workers), so all cache
  /// state sits behind its own lock.
  struct DrcState {
    DrcOptions options;
    sim::Mutex mu;
    sim::CondVar cv;
    std::map<DrcKey, DrcEntry> cache CRICKET_GUARDED_BY(mu);
    std::deque<DrcKey> fifo CRICKET_GUARDED_BY(mu);
    std::set<DrcKey> in_flight CRICKET_GUARDED_BY(mu);
    std::size_t bytes CRICKET_GUARDED_BY(mu) = 0;
    DrcStats stats CRICKET_GUARDED_BY(mu);

    void evict_locked() CRICKET_REQUIRES(mu);
  };

  /// dispatch() minus the duplicate cache.
  [[nodiscard]] ReplyMsg execute(const CallMsg& call) const;

  std::map<Key, ProcHandler> handlers_;
  std::map<Key, ProcWireBounds> bounds_;
  std::unique_ptr<DrcState> drc_;
  AdmissionController* admission_ = nullptr;
};

/// Per-connection concurrency options. The default reproduces the paper's
/// single-threaded RPC processing: decode, dispatch, reply — strictly in
/// order, one call in flight.
struct ServeOptions {
  std::uint32_t max_fragment = RecordWriter::kDefaultMaxFragment;
  /// 0 = classic synchronous loop. >0 = pipelined mode: calls are decoded as
  /// fast as they arrive and dispatched to a bounded pool of this many
  /// worker threads, so several calls from one connection execute
  /// concurrently and replies may complete out of order (clients match them
  /// by xid). One worker keeps execution FIFO while still overlapping
  /// decode/execute/reply — the mode the Cricket server uses to preserve
  /// CUDA stream semantics.
  std::uint32_t workers = 0;
  /// Pipelined mode: cap on decoded-but-unreplied calls; the reader stalls
  /// at the cap so a flooding client cannot balloon server memory.
  std::uint32_t max_in_flight = 64;
  /// Pipelined mode: coalesce all replies that are ready back-to-back into
  /// one record-marked transport send (amortizes per-send cost; the mirror
  /// image of the client-side small-call batcher).
  bool coalesce_replies = true;
};

/// Serves RPC records on one transport until end-of-stream. Runs inline on
/// the calling thread (pipelined mode spawns its workers internally and
/// joins them before returning); spawn your own thread for background
/// service.
void serve_transport(const ServiceRegistry& registry, Transport& transport,
                     const ServeOptions& options);
void serve_transport(const ServiceRegistry& registry, Transport& transport,
                     std::uint32_t max_fragment = RecordWriter::kDefaultMaxFragment);

/// Threaded TCP server: accept loop plus one detached-joinable thread per
/// connection. Owns the listener.
class TcpRpcServer {
 public:
  TcpRpcServer(const ServiceRegistry& registry,
               std::unique_ptr<TcpListener> listener,
               ServeOptions options = {});
  ~TcpRpcServer();

  TcpRpcServer(const TcpRpcServer&) = delete;
  TcpRpcServer& operator=(const TcpRpcServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;
  void stop() CRICKET_EXCLUDES(mu_);

 private:
  void accept_loop() CRICKET_EXCLUDES(mu_);

  const ServiceRegistry* registry_;
  std::unique_ptr<TcpListener> listener_;
  ServeOptions options_;
  std::thread accept_thread_;
  sim::Mutex mu_;
  std::vector<std::thread> workers_ CRICKET_GUARDED_BY(mu_);
  std::atomic<bool> stopping_{false};
};

}  // namespace cricket::rpc
