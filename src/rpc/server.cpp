#include "rpc/server.hpp"

#include <deque>

#include "obs/trace.hpp"
#include "xdr/taint.hpp"

namespace cricket::rpc {

void ServiceRegistry::register_proc(std::uint32_t prog, std::uint32_t vers,
                                    std::uint32_t proc, ProcHandler handler) {
  handlers_[Key{prog, vers, proc}] = std::move(handler);
}

void ServiceRegistry::set_bounds(std::span<const ProcWireBounds> table) {
  for (const auto& b : table) bounds_[Key{b.prog, b.vers, b.proc}] = b;
}

std::optional<ReplyMsg> ServiceRegistry::preflight(
    std::span<const std::uint8_t> record) const {
  if (bounds_.empty()) return std::nullopt;
  CallHeader header;
  try {
    header = peek_call_header(record);
  } catch (const std::exception&) {
    // Unparseable header: let the full decode path classify (and drop) it.
    return std::nullopt;
  }
  const auto it = bounds_.find(Key{header.prog, header.vers, header.proc});
  if (it == bounds_.end() || it->second.args_max == kUnboundedWireSize)
    return std::nullopt;
  const std::uint64_t args_len = record.size() - header.body_offset;
  if (args_len >= it->second.args_min && args_len <= it->second.args_max)
    return std::nullopt;
  static obs::Counter& rejected = obs::Registry::global().counter(
      "cricket_rpc_preflight_rejected_total", {},
      "Records rejected by wire-size bounds pre-flight before decode");
  rejected.inc();
  ReplyMsg reply;
  reply.xid = header.xid;
  reply.stat = ReplyStat::kAccepted;
  reply.accept_stat = AcceptStat::kGarbageArgs;
  return reply;
}

std::optional<ReplyMsg> ServiceRegistry::admit(
    std::span<const std::uint8_t> record) const {
  if (!admission_) return std::nullopt;
  return admission_->admit(record);
}

void ServiceRegistry::admission_complete() const {
  if (admission_) admission_->complete();
}

void ServiceRegistry::enable_duplicate_cache(DrcOptions options) {
  drc_ = std::make_unique<DrcState>();
  drc_->options = options;
}

DrcStats ServiceRegistry::drc_stats() const {
  if (!drc_) return {};
  sim::MutexLock lock(drc_->mu);
  return drc_->stats;
}

void ServiceRegistry::DrcState::evict_locked() {
  while (!fifo.empty() &&
         (cache.size() > options.max_entries || bytes > options.max_bytes)) {
    const auto it = cache.find(fifo.front());
    fifo.pop_front();
    if (it == cache.end()) continue;
    bytes -= it->second.bytes;
    cache.erase(it);
    ++stats.evictions;
  }
}

/// FNV-1a over the credential (flavor + body): stable client identity for
/// the duplicate-request cache without parsing any particular auth scheme.
std::uint64_t drc_client_id(const OpaqueAuth& cred) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001B3ull;
  };
  const auto flavor = static_cast<std::uint32_t>(cred.flavor);
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(flavor >> (8 * i)));
  for (const std::uint8_t byte : cred.body) mix(byte);
  return h;
}

std::vector<DrcExportEntry> ServiceRegistry::export_drc(
    std::optional<std::uint64_t> client) const {
  std::vector<DrcExportEntry> out;
  if (!drc_) return out;
  sim::MutexLock lock(drc_->mu);
  for (const auto& [key, entry] : drc_->cache) {
    if (client.has_value() && key.client != *client) continue;
    out.push_back(DrcExportEntry{key.client, key.xid,
                                 encode_reply(entry.reply)});
  }
  return out;
}

void ServiceRegistry::import_drc(const std::vector<DrcExportEntry>& entries) {
  if (!drc_)
    throw std::logic_error(
        "import_drc: duplicate-request cache not enabled on this registry");
  DrcState& drc = *drc_;
  sim::MutexLock lock(drc.mu);
  for (const auto& e : entries) {
    ReplyMsg reply = decode_reply(e.reply);
    if (reply.xid != e.xid)
      throw RpcFormatError("imported DRC entry xid does not match its reply");
    const DrcKey key{e.client, e.xid};
    const std::size_t bytes = reply.results.size() + 64;  // + header estimate
    if (drc.cache.emplace(key, DrcEntry{std::move(reply), bytes}).second) {
      drc.fifo.push_back(key);
      drc.bytes += bytes;
      ++drc.stats.insertions;
      drc.evict_locked();
    }
  }
  drc.cv.notify_all();
}

ReplyMsg ServiceRegistry::dispatch(const CallMsg& call) const {
  // Only handled procedures go through the cache: error classifications and
  // the implicit null procedure are side-effect free, and caching them would
  // let misses crowd out replies that actually protect against re-execution.
  if (!drc_ ||
      handlers_.find(Key{call.prog, call.vers, call.proc}) == handlers_.end())
    return execute(call);

  static obs::Counter& drc_hits = obs::Registry::global().counter(
      "cricket_drc_hits_total", {},
      "Retried calls answered from the duplicate-request cache");

  DrcState& drc = *drc_;
  const DrcKey key{drc_client_id(call.cred), call.xid};
  {
    sim::MutexLock lock(drc.mu);
    for (;;) {
      const auto it = drc.cache.find(key);
      if (it != drc.cache.end()) {
        ++drc.stats.hits;
        drc_hits.inc();
        return it->second.reply;
      }
      if (drc.in_flight.find(key) == drc.in_flight.end()) break;
      // The original attempt is still executing on another worker. Wait for
      // its reply rather than racing a second execution of the same call.
      ++drc.stats.in_flight_waits;
      drc.cv.wait(drc.mu);
    }
    drc.in_flight.insert(key);
  }

  // Handler runs outside the lock — CUDA-side work can be long.
  ReplyMsg reply = execute(call);

  {
    sim::MutexLock lock(drc.mu);
    drc.in_flight.erase(key);
    const std::size_t bytes = reply.results.size() + 64;  // + header estimate
    if (drc.cache.emplace(key, DrcEntry{reply, bytes}).second) {
      drc.fifo.push_back(key);
      drc.bytes += bytes;
      ++drc.stats.insertions;
      drc.evict_locked();
    }
    drc.cv.notify_all();
  }
  return reply;
}

ReplyMsg ServiceRegistry::execute(const CallMsg& call) const {
  ReplyMsg reply;
  reply.xid = call.xid;
  reply.stat = ReplyStat::kAccepted;

  // Null procedure: always answered, per RFC 5531 convention, as long as the
  // program exists at all.
  const auto it = handlers_.find(Key{call.prog, call.vers, call.proc});
  if (it != handlers_.end()) {
    try {
      reply.results = it->second(call.args);
      reply.accept_stat = AcceptStat::kSuccess;
    } catch (const GarbageArgsError&) {
      reply.accept_stat = AcceptStat::kGarbageArgs;
    } catch (const xdr::TaintError&) {
      // A wire-derived scalar failed validate() inside the handler: the
      // arguments decoded but were hostile, which is the same class of
      // reply as a malformed body — not a server fault.
      reply.accept_stat = AcceptStat::kGarbageArgs;
    } catch (const std::exception&) {
      reply.accept_stat = AcceptStat::kSystemErr;
    }
    return reply;
  }

  // Classify the miss: unknown program / known program wrong version /
  // unknown procedure / implicit null procedure.
  std::uint32_t lo = UINT32_MAX, hi = 0;
  bool prog_known = false, vers_known = false;
  for (const auto& [key, _] : handlers_) {
    if (key.prog != call.prog) continue;
    prog_known = true;
    lo = std::min(lo, key.vers);
    hi = std::max(hi, key.vers);
    if (key.vers == call.vers) vers_known = true;
  }
  if (!prog_known) {
    reply.accept_stat = AcceptStat::kProgUnavail;
  } else if (!vers_known) {
    reply.accept_stat = AcceptStat::kProgMismatch;
    reply.mismatch = MismatchInfo{lo, hi};
  } else if (call.proc == 0) {
    reply.accept_stat = AcceptStat::kSuccess;  // null proc, void result
  } else {
    reply.accept_stat = AcceptStat::kProcUnavail;
  }
  return reply;
}

namespace {

/// Pipelined connection service: reader (caller thread) -> bounded worker
/// pool -> coalescing writer thread. Replies complete out of order when
/// more than one worker runs; the client matches them by xid.
class PipelinedConnection {
 public:
  PipelinedConnection(const ServiceRegistry& registry, Transport& transport,
                      const ServeOptions& options)
      : registry_(&registry), transport_(&transport), options_(options) {}

  void run() CRICKET_EXCLUDES(mu_) {
    for (std::uint32_t i = 0; i < options_.workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
    std::thread writer([this] { writer_loop(); });

    read_loop();

    {
      sim::MutexLock lock(mu_);
      intake_done_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    {
      sim::MutexLock lock(mu_);
      workers_done_ = true;
    }
    reply_cv_.notify_all();
    writer.join();
  }

 private:
  void read_loop() CRICKET_EXCLUDES(mu_) {
    BufferedRecordReader reader(*transport_);
    std::vector<std::uint8_t> record;
    for (;;) {
      try {
        if (!reader.read_record(record)) return;  // clean EOF
      } catch (const TransportError&) {
        return;  // peer vanished mid-record; nothing to reply to
      }
      if (auto rejected = registry_->preflight(record)) {
        // Out-of-bounds length: answer GARBAGE_ARGS without ever decoding.
        // The reply takes the normal writer path (and an in-flight slot) so
        // ordering and backpressure stay uniform.
        sim::MutexLock lock(mu_);
        while (in_flight_ >= options_.max_in_flight && !write_failed_)
          slots_cv_.wait(mu_);
        if (write_failed_) return;
        ++in_flight_;
        ready_.push_back(encode_reply(*rejected));
        lock.unlock();
        reply_cv_.notify_one();
        continue;
      }
      if (auto rejected = registry_->admit(record)) {
        // Tenant over quota (or unauthenticated): answer the typed
        // rejection without decoding, through the normal writer path.
        sim::MutexLock lock(mu_);
        while (in_flight_ >= options_.max_in_flight && !write_failed_)
          slots_cv_.wait(mu_);
        if (write_failed_) return;
        ++in_flight_;
        ready_.push_back(encode_reply(*rejected));
        lock.unlock();
        reply_cv_.notify_one();
        continue;
      }
      CallMsg call;
      try {
        call = decode_call(record);
      } catch (const std::exception&) {
        // Not parseable as a call: drop it, but release the admission slot
        // the record was granted above.
        registry_->admission_complete();
        continue;
      }
      sim::MutexLock lock(mu_);
      while (in_flight_ >= options_.max_in_flight && !write_failed_)
        slots_cv_.wait(mu_);
      if (write_failed_) return;
      ++in_flight_;
      queue_.push_back(std::move(call));
      lock.unlock();
      work_cv_.notify_one();
    }
  }

  void worker_loop() CRICKET_EXCLUDES(mu_) {
    for (;;) {
      sim::MutexLock lock(mu_);
      while (queue_.empty() && !intake_done_ && !write_failed_)
        work_cv_.wait(mu_);
      if (queue_.empty()) return;  // intake done or writer dead: drain over
      CallMsg call = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      std::vector<std::uint8_t> record;
      {
        // The xid crosses from the reader thread to this worker inside the
        // CallMsg; re-establish it so dispatch-side spans line up with the
        // client-side spans of the same call.
        const obs::ScopedXid trace_xid(call.xid);
        obs::Span span(obs::Layer::kServerDispatch, nullptr,
                       call.args.size());
        record = encode_reply(registry_->dispatch(call));
      }
      registry_->admission_complete();
      lock.lock();
      ready_.push_back(std::move(record));
      lock.unlock();
      reply_cv_.notify_one();
    }
  }

  void writer_loop() CRICKET_EXCLUDES(mu_) {
    RecordWriter writer(*transport_, options_.max_fragment);
    std::vector<std::vector<std::uint8_t>> batch;
    std::vector<std::uint8_t> wire;
    for (;;) {
      {
        sim::MutexLock lock(mu_);
        while (ready_.empty() && !(workers_done_ && queue_.empty()))
          reply_cv_.wait(mu_);
        if (ready_.empty()) return;  // drained and no more producers
        batch.swap(ready_);
      }
      try {
        std::size_t batch_bytes = 0;
        for (const auto& r : batch) batch_bytes += r.size();
        obs::Span span(obs::Layer::kServerReply, nullptr, batch_bytes);
        if (options_.coalesce_replies) {
          wire.clear();
          for (const auto& r : batch)
            append_record_marked(wire, r, options_.max_fragment);
          transport_->send(wire);
        } else {
          for (const auto& r : batch) writer.write_record(r);
        }
      } catch (const TransportError&) {
        sim::MutexLock lock(mu_);
        write_failed_ = true;
        slots_cv_.notify_all();
        work_cv_.notify_all();
        return;
      }
      {
        sim::MutexLock lock(mu_);
        in_flight_ -= static_cast<std::uint32_t>(batch.size());
      }
      slots_cv_.notify_all();
      batch.clear();
    }
  }

  const ServiceRegistry* registry_;
  Transport* transport_;
  ServeOptions options_;

  sim::Mutex mu_;
  sim::CondVar work_cv_;   // workers: calls available
  sim::CondVar reply_cv_;  // writer: replies available
  sim::CondVar slots_cv_;  // reader: in-flight slots free
  std::deque<CallMsg> queue_ CRICKET_GUARDED_BY(mu_);
  // Encoded reply records awaiting the writer.
  std::vector<std::vector<std::uint8_t>> ready_ CRICKET_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // touched by run() only
  // Decoded but not yet written.
  std::uint32_t in_flight_ CRICKET_GUARDED_BY(mu_) = 0;
  bool intake_done_ CRICKET_GUARDED_BY(mu_) = false;
  bool workers_done_ CRICKET_GUARDED_BY(mu_) = false;
  bool write_failed_ CRICKET_GUARDED_BY(mu_) = false;
};

}  // namespace

namespace {

void serve_serial(const ServiceRegistry& registry, Transport& transport,
                  std::uint32_t max_fragment) {
  RecordReader reader(transport);
  RecordWriter writer(transport, max_fragment);
  std::vector<std::uint8_t> record;
  for (;;) {
    try {
      if (!reader.read_record(record)) return;  // clean EOF
    } catch (const TransportError&) {
      return;  // peer vanished mid-record; nothing to reply to
    }
    if (auto rejected = registry.preflight(record)) {
      // Out-of-bounds length: answer GARBAGE_ARGS without ever decoding.
      try {
        writer.write_record(encode_reply(*rejected));
      } catch (const TransportError&) {
        return;
      }
      continue;
    }
    if (auto rejected = registry.admit(record)) {
      // Tenant over quota (or unauthenticated): answer the typed rejection
      // without decoding; the connection stays up.
      try {
        writer.write_record(encode_reply(*rejected));
      } catch (const TransportError&) {
        return;
      }
      continue;
    }
    ReplyMsg reply;
    try {
      const CallMsg call = decode_call(record);
      const obs::ScopedXid trace_xid(call.xid);
      obs::Span span(obs::Layer::kServerDispatch, nullptr, call.args.size());
      reply = registry.dispatch(call);
    } catch (const std::exception&) {
      // Not parseable as a call: drop it (a real server also cannot reply
      // without an xid it trusts), releasing its admission slot.
      registry.admission_complete();
      continue;
    }
    registry.admission_complete();
    try {
      const obs::ScopedXid trace_xid(reply.xid);
      obs::Span span(obs::Layer::kServerReply);
      writer.write_record(encode_reply(reply));
    } catch (const TransportError&) {
      return;
    }
  }
}

}  // namespace

void serve_transport(const ServiceRegistry& registry, Transport& transport,
                     const ServeOptions& options) {
  if (options.workers > 0) {
    PipelinedConnection(registry, transport, options).run();
  } else {
    serve_serial(registry, transport, options.max_fragment);
  }
  // Half-close our write side so a pipelined client's reader thread, which
  // blocks on recv between replies, observes end-of-stream.
  try {
    transport.shutdown();
  } catch (const TransportError&) {
  }
}

void serve_transport(const ServiceRegistry& registry, Transport& transport,
                     std::uint32_t max_fragment) {
  serve_transport(registry, transport, ServeOptions{.max_fragment = max_fragment});
}

TcpRpcServer::TcpRpcServer(const ServiceRegistry& registry,
                           std::unique_ptr<TcpListener> listener,
                           ServeOptions options)
    : registry_(&registry),
      listener_(std::move(listener)),
      options_(options) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpRpcServer::~TcpRpcServer() { stop(); }

std::uint16_t TcpRpcServer::port() const noexcept { return listener_->port(); }

void TcpRpcServer::accept_loop() {
  for (;;) {
    auto conn = listener_->accept();
    if (!conn || stopping_.load()) return;
    sim::MutexLock lock(mu_);
    workers_.emplace_back(
        [this, c = std::shared_ptr<TcpTransport>(std::move(conn))] {
          serve_transport(*registry_, *c, options_);
        });
  }
}

void TcpRpcServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  sim::MutexLock lock(mu_);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

}  // namespace cricket::rpc
