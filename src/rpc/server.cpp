#include "rpc/server.hpp"

namespace cricket::rpc {

void ServiceRegistry::register_proc(std::uint32_t prog, std::uint32_t vers,
                                    std::uint32_t proc, ProcHandler handler) {
  handlers_[Key{prog, vers, proc}] = std::move(handler);
}

ReplyMsg ServiceRegistry::dispatch(const CallMsg& call) const {
  ReplyMsg reply;
  reply.xid = call.xid;
  reply.stat = ReplyStat::kAccepted;

  // Null procedure: always answered, per RFC 5531 convention, as long as the
  // program exists at all.
  const auto it = handlers_.find(Key{call.prog, call.vers, call.proc});
  if (it != handlers_.end()) {
    try {
      reply.results = it->second(call.args);
      reply.accept_stat = AcceptStat::kSuccess;
    } catch (const GarbageArgsError&) {
      reply.accept_stat = AcceptStat::kGarbageArgs;
    } catch (const std::exception&) {
      reply.accept_stat = AcceptStat::kSystemErr;
    }
    return reply;
  }

  // Classify the miss: unknown program / known program wrong version /
  // unknown procedure / implicit null procedure.
  std::uint32_t lo = UINT32_MAX, hi = 0;
  bool prog_known = false, vers_known = false;
  for (const auto& [key, _] : handlers_) {
    if (key.prog != call.prog) continue;
    prog_known = true;
    lo = std::min(lo, key.vers);
    hi = std::max(hi, key.vers);
    if (key.vers == call.vers) vers_known = true;
  }
  if (!prog_known) {
    reply.accept_stat = AcceptStat::kProgUnavail;
  } else if (!vers_known) {
    reply.accept_stat = AcceptStat::kProgMismatch;
    reply.mismatch = MismatchInfo{lo, hi};
  } else if (call.proc == 0) {
    reply.accept_stat = AcceptStat::kSuccess;  // null proc, void result
  } else {
    reply.accept_stat = AcceptStat::kProcUnavail;
  }
  return reply;
}

void serve_transport(const ServiceRegistry& registry, Transport& transport,
                     std::uint32_t max_fragment) {
  RecordReader reader(transport);
  RecordWriter writer(transport, max_fragment);
  std::vector<std::uint8_t> record;
  for (;;) {
    try {
      if (!reader.read_record(record)) return;  // clean EOF
    } catch (const TransportError&) {
      return;  // peer vanished mid-record; nothing to reply to
    }
    ReplyMsg reply;
    try {
      const CallMsg call = decode_call(record);
      reply = registry.dispatch(call);
    } catch (const std::exception&) {
      // Not parseable as a call: drop it (a real server also cannot reply
      // without an xid it trusts).
      continue;
    }
    try {
      writer.write_record(encode_reply(reply));
    } catch (const TransportError&) {
      return;
    }
  }
}

TcpRpcServer::TcpRpcServer(const ServiceRegistry& registry,
                           std::unique_ptr<TcpListener> listener)
    : registry_(&registry), listener_(std::move(listener)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpRpcServer::~TcpRpcServer() { stop(); }

std::uint16_t TcpRpcServer::port() const noexcept { return listener_->port(); }

void TcpRpcServer::accept_loop() {
  for (;;) {
    auto conn = listener_->accept();
    if (!conn || stopping_.load()) return;
    std::lock_guard lock(mu_);
    workers_.emplace_back(
        [this, c = std::shared_ptr<TcpTransport>(std::move(conn))] {
          serve_transport(*registry_, *c);
        });
  }
}

void TcpRpcServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(mu_);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

}  // namespace cricket::rpc
