#include "rpc/transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

namespace cricket::rpc {

void Transport::recv_exact(std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const std::size_t n = recv(out.subspan(got));
    if (n == 0) throw TransportError("connection closed mid-message");
    got += n;
  }
}

// -------------------------------- ByteQueue --------------------------------

void ByteQueue::push(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    sim::MutexLock lock(mu_);
    while (!closed_ && fifo_.size() >= capacity_) cv_.wait(mu_);
    if (closed_) throw TransportError("pipe closed");
    const std::size_t room = capacity_ - fifo_.size();
    const std::size_t n = std::min(room, data.size() - off);
    fifo_.insert(fifo_.end(), data.begin() + static_cast<std::ptrdiff_t>(off),
                 data.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    cv_.notify_all();
  }
}

std::size_t ByteQueue::pop(std::span<std::uint8_t> out) {
  sim::MutexLock lock(mu_);
  while (!closed_ && fifo_.empty()) cv_.wait(mu_);
  if (fifo_.empty()) return 0;  // closed and drained
  const std::size_t n = std::min(out.size(), fifo_.size());
  std::copy_n(fifo_.begin(), n, out.begin());
  fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<std::ptrdiff_t>(n));
  cv_.notify_all();
  return n;
}

std::size_t ByteQueue::pop_for(std::span<std::uint8_t> out,
                               std::chrono::nanoseconds timeout) {
  if (timeout <= std::chrono::nanoseconds::zero()) return pop(out);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  sim::MutexLock lock(mu_);
  while (!closed_ && fifo_.empty()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      throw TransportTimeout("pipe recv timed out");
    }
    cv_.wait_until(mu_, deadline);
  }
  if (fifo_.empty()) return 0;  // closed and drained
  const std::size_t n = std::min(out.size(), fifo_.size());
  std::copy_n(fifo_.begin(), n, out.begin());
  fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<std::ptrdiff_t>(n));
  cv_.notify_all();
  return n;
}

void ByteQueue::close() {
  sim::MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_pipe_pair(std::size_t capacity_bytes) {
  auto a_to_b = std::make_shared<ByteQueue>(capacity_bytes);
  auto b_to_a = std::make_shared<ByteQueue>(capacity_bytes);
  return {std::make_unique<PipeTransport>(a_to_b, b_to_a),
          std::make_unique<PipeTransport>(b_to_a, a_to_b)};
}

// ------------------------------- TcpTransport ------------------------------

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpTransport::send(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::size_t TcpTransport::recv(std::span<std::uint8_t> out) {
  const std::int64_t timeout_ns =
      recv_timeout_ns_.load(std::memory_order_relaxed);
  if (timeout_ns > 0) {
    // Bound the wait with poll() rather than SO_RCVTIMEO so a zero return
    // can still be cleanly distinguished from orderly EOF.
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int timeout_ms = static_cast<int>(
        std::min<std::int64_t>((timeout_ns + 999'999) / 1'000'000,
                               std::numeric_limits<int>::max()));
    for (;;) {
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc > 0) break;
      if (rc == 0) throw TransportTimeout("tcp recv timed out");
      if (errno == EINTR) continue;
      throw TransportError(std::string("poll: ") + std::strerror(errno));
    }
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw TransportError(std::string("recv: ") + std::strerror(errno));
  }
}

bool TcpTransport::set_recv_timeout(std::chrono::nanoseconds timeout) {
  recv_timeout_ns_.store(timeout.count(), std::memory_order_relaxed);
  return true;
}

void TcpTransport::shutdown() { ::shutdown(fd_, SHUT_WR); }

std::unique_ptr<TcpTransport> TcpTransport::connect_loopback(
    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw TransportError(std::string("connect: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpTransport>(fd);
}

// ------------------------------- TcpListener -------------------------------

TcpListener::TcpListener() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw TransportError(std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  fd_.store(fd);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpTransport> TcpListener::accept() {
  const int lfd = fd_.load();
  if (lfd < 0) return nullptr;
  const int cfd = ::accept(lfd, nullptr, nullptr);
  if (cfd < 0) return nullptr;  // listener closed
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpTransport>(cfd);
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace cricket::rpc
