#include "rpc/client.hpp"

#include "obs/trace.hpp"

namespace cricket::rpc {

RpcClient::RpcClient(std::unique_ptr<Transport> transport, std::uint32_t prog,
                     std::uint32_t vers, ClientOptions options)
    : transport_(std::move(transport)),
      writer_(*transport_, options.max_fragment),
      reader_(*transport_),
      prog_(prog),
      vers_(vers),
      next_xid_(options.initial_xid) {}

RpcClient::~RpcClient() {
  try {
    transport_->shutdown();
  } catch (...) {  // destructor must not throw
  }
}

std::vector<std::uint8_t> RpcClient::call_raw(
    std::uint32_t proc, std::span<const std::uint8_t> args) {
  CallMsg call;
  call.xid = next_xid_++;
  call.prog = prog_;
  call.vers = vers_;
  call.proc = proc;
  call.cred = cred_;
  call.args.assign(args.begin(), args.end());

  const obs::ScopedXid trace_xid(call.xid);
  std::vector<std::uint8_t> record;
  {
    obs::Span span(obs::Layer::kClientSerialize);
    record = encode_call(call);
    span.set_arg(record.size());
  }
  {
    obs::Span span(obs::Layer::kChanSend, nullptr, record.size());
    writer_.write_record(record);
  }
  stats_.bytes_sent += record.size();
  ++stats_.calls;

  const obs::Span wait_span(obs::Layer::kClientWait);
  std::vector<std::uint8_t> reply_record;
  // This channel never has more than one call outstanding, so the reply xid
  // must match the call xid exactly; anything else is a misbehaving peer (or
  // a desynchronized stream) and silently skipping it would only turn the
  // protocol violation into a hard-to-diagnose hang one call later.
  for (;;) {
    if (!reader_.read_record(reply_record))
      throw TransportError("connection closed while awaiting reply");
    stats_.bytes_received += reply_record.size();
    const ReplyMsg reply = decode_reply(reply_record);
    if (reply.xid != call.xid)
      throw RpcError(RpcError::Kind::kBadReply,
                     "reply xid mismatch: expected " +
                         std::to_string(call.xid) + ", got " +
                         std::to_string(reply.xid) +
                         " (out-of-order or stale reply on a synchronous "
                         "channel)");

    if (reply.stat == ReplyStat::kDenied) {
      throw RpcError(RpcError::Kind::kDenied,
                     reply.reject_stat == RejectStat::kRpcMismatch
                         ? "call denied: RPC version mismatch"
                         : "call denied: authentication error");
    }
    switch (reply.accept_stat) {
      case AcceptStat::kSuccess:
        return reply.results;
      case AcceptStat::kProgUnavail:
        throw RpcError(RpcError::Kind::kProgUnavail, "program unavailable");
      case AcceptStat::kProgMismatch: {
        const auto mi = reply.mismatch.value_or(MismatchInfo{});
        throw RpcError(RpcError::Kind::kProgMismatch,
                       "program version mismatch (supported " +
                           std::to_string(mi.low) + ".." +
                           std::to_string(mi.high) + ")");
      }
      case AcceptStat::kProcUnavail:
        throw RpcError(RpcError::Kind::kProcUnavail, "procedure unavailable");
      case AcceptStat::kGarbageArgs:
        throw RpcError(RpcError::Kind::kGarbageArgs,
                       "server could not decode arguments");
      case AcceptStat::kSystemErr:
        throw RpcError(RpcError::Kind::kSystemErr, "server system error");
    }
    throw RpcError(RpcError::Kind::kBadReply, "invalid accept_stat");
  }
}

}  // namespace cricket::rpc
