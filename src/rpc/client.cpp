#include "rpc/client.hpp"

namespace cricket::rpc {

RpcClient::RpcClient(std::unique_ptr<Transport> transport, std::uint32_t prog,
                     std::uint32_t vers, ClientOptions options)
    : transport_(std::move(transport)),
      writer_(*transport_, options.max_fragment),
      reader_(*transport_),
      prog_(prog),
      vers_(vers),
      next_xid_(options.initial_xid) {}

RpcClient::~RpcClient() {
  try {
    transport_->shutdown();
  } catch (...) {  // destructor must not throw
  }
}

std::vector<std::uint8_t> RpcClient::call_raw(
    std::uint32_t proc, std::span<const std::uint8_t> args) {
  CallMsg call;
  call.xid = next_xid_++;
  call.prog = prog_;
  call.vers = vers_;
  call.proc = proc;
  call.cred = cred_;
  call.args.assign(args.begin(), args.end());

  const auto record = encode_call(call);
  writer_.write_record(record);
  stats_.bytes_sent += record.size();
  ++stats_.calls;

  std::vector<std::uint8_t> reply_record;
  // Replies arrive in order on this synchronous channel, but tolerate stale
  // xids (e.g. a reply to a timed-out predecessor) by skipping them.
  for (;;) {
    if (!reader_.read_record(reply_record))
      throw TransportError("connection closed while awaiting reply");
    stats_.bytes_received += reply_record.size();
    const ReplyMsg reply = decode_reply(reply_record);
    if (reply.xid != call.xid) continue;

    if (reply.stat == ReplyStat::kDenied) {
      throw RpcError(RpcError::Kind::kDenied,
                     reply.reject_stat == RejectStat::kRpcMismatch
                         ? "call denied: RPC version mismatch"
                         : "call denied: authentication error");
    }
    switch (reply.accept_stat) {
      case AcceptStat::kSuccess:
        return reply.results;
      case AcceptStat::kProgUnavail:
        throw RpcError(RpcError::Kind::kProgUnavail, "program unavailable");
      case AcceptStat::kProgMismatch: {
        const auto mi = reply.mismatch.value_or(MismatchInfo{});
        throw RpcError(RpcError::Kind::kProgMismatch,
                       "program version mismatch (supported " +
                           std::to_string(mi.low) + ".." +
                           std::to_string(mi.high) + ")");
      }
      case AcceptStat::kProcUnavail:
        throw RpcError(RpcError::Kind::kProcUnavail, "procedure unavailable");
      case AcceptStat::kGarbageArgs:
        throw RpcError(RpcError::Kind::kGarbageArgs,
                       "server could not decode arguments");
      case AcceptStat::kSystemErr:
        throw RpcError(RpcError::Kind::kSystemErr, "server system error");
    }
    throw RpcError(RpcError::Kind::kBadReply, "invalid accept_stat");
  }
}

}  // namespace cricket::rpc
