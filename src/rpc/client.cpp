#include "rpc/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace cricket::rpc {

namespace {

using Clock = std::chrono::steady_clock;

/// Backoff before retry `k` (1-based): capped exponential with deterministic
/// jitter in [0.5, 1) so two clients sharing a seed never sync their retries
/// per-call but a re-run with the same seed reproduces the exact schedule.
std::chrono::nanoseconds backoff_for(const RetryPolicy& policy,
                                     std::uint32_t xid, std::uint32_t k) {
  const std::uint32_t shift = std::min(k - 1, 30u);
  auto step = policy.backoff_base * (1u << shift);
  step = std::min(step, policy.backoff_cap);
  sim::Xoshiro256ss jitter(policy.seed ^ xid ^ k);
  const double factor = 0.5 + 0.5 * jitter.next_double();
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(step.count()) * factor));
}

}  // namespace

RpcClient::RpcClient(std::unique_ptr<Transport> transport, std::uint32_t prog,
                     std::uint32_t vers, ClientOptions options)
    : transport_(std::move(transport)),
      writer_(*transport_, options.max_fragment),
      reader_(*transport_),
      prog_(prog),
      vers_(vers),
      next_xid_(options.initial_xid),
      options_(std::move(options)) {}

RpcClient::~RpcClient() {
  try {
    transport_->shutdown();
  } catch (...) {  // destructor must not throw
  }
}

std::vector<std::uint8_t> RpcClient::interpret_reply(const ReplyMsg& reply) {
  if (reply.stat == ReplyStat::kDenied) {
    throw RpcError(RpcError::Kind::kDenied,
                   reply.reject_stat == RejectStat::kRpcMismatch
                       ? "call denied: RPC version mismatch"
                       : "call denied: authentication error");
  }
  switch (reply.accept_stat) {
    case AcceptStat::kSuccess:
      return reply.results;
    case AcceptStat::kProgUnavail:
      throw RpcError(RpcError::Kind::kProgUnavail, "program unavailable");
    case AcceptStat::kProgMismatch: {
      const auto mi = reply.mismatch.value_or(MismatchInfo{});
      throw RpcError(RpcError::Kind::kProgMismatch,
                     "program version mismatch (supported " +
                         std::to_string(mi.low) + ".." +
                         std::to_string(mi.high) + ")");
    }
    case AcceptStat::kProcUnavail:
      throw RpcError(RpcError::Kind::kProcUnavail, "procedure unavailable");
    case AcceptStat::kGarbageArgs:
      throw RpcError(RpcError::Kind::kGarbageArgs,
                     "server could not decode arguments");
    case AcceptStat::kSystemErr:
      throw RpcError(RpcError::Kind::kSystemErr, "server system error");
    case AcceptStat::kQuotaExceeded:
      throw RpcError(RpcError::Kind::kQuotaExceeded,
                     std::string("tenant quota exceeded: ") +
                         quota_reason_name(reply.quota_reason));
    case AcceptStat::kMigrating:
      throw RpcError(RpcError::Kind::kMigrating,
                     "tenant is being migrated; retry via reconnect");
  }
  throw RpcError(RpcError::Kind::kBadReply, "invalid accept_stat");
}

bool RpcClient::try_reconnect() {
  if (!options_.reconnect) return false;
  std::unique_ptr<Transport> fresh;
  try {
    fresh = options_.reconnect();
  } catch (const TransportError&) {
    return false;  // server still down; the backoff loop will come back
  }
  if (!fresh) return false;
  transport_ = std::move(fresh);
  writer_ = RecordWriter(*transport_, options_.max_fragment);
  reader_ = RecordReader(*transport_);
  ++stats_.reconnects;
  static obs::Counter& reconnects = obs::Registry::global().counter(
      "cricket_rpc_reconnects_total", {},
      "Client transport reconnects after connection failure");
  reconnects.inc();
  return true;
}

std::vector<std::uint8_t> RpcClient::call_raw(
    std::uint32_t proc, std::span<const std::uint8_t> args) {
  CallMsg call;
  call.xid = next_xid_++;
  call.prog = prog_;
  call.vers = vers_;
  call.proc = proc;
  call.cred = cred_;
  call.args.assign(args.begin(), args.end());

  if (options_.retry.enabled) return call_raw_retrying(call);

  const obs::ScopedXid trace_xid(call.xid);
  std::vector<std::uint8_t> record;
  {
    obs::Span span(obs::Layer::kClientSerialize);
    record = encode_call(call);
    span.set_arg(record.size());
  }
  {
    obs::Span span(obs::Layer::kChanSend, nullptr, record.size());
    writer_.write_record(record);
  }
  stats_.bytes_sent += record.size();
  ++stats_.calls;

  const obs::Span wait_span(obs::Layer::kClientWait);
  std::vector<std::uint8_t> reply_record;
  // This channel never has more than one call outstanding, so the reply xid
  // must match the call xid exactly; anything else is a misbehaving peer (or
  // a desynchronized stream) and silently skipping it would only turn the
  // protocol violation into a hard-to-diagnose hang one call later.
  if (!reader_.read_record(reply_record))
    throw TransportError("connection closed while awaiting reply");
  stats_.bytes_received += reply_record.size();
  const ReplyMsg reply = decode_reply(reply_record);
  if (reply.xid != call.xid)
    throw RpcError(RpcError::Kind::kBadReply,
                   "reply xid mismatch: expected " + std::to_string(call.xid) +
                       ", got " + std::to_string(reply.xid) +
                       " (out-of-order or stale reply on a synchronous "
                       "channel)");
  return interpret_reply(reply);
}

std::vector<std::uint8_t> RpcClient::call_raw_retrying(const CallMsg& call) {
  static obs::Counter& retries_total = obs::Registry::global().counter(
      "cricket_rpc_retries_total", {},
      "RPC call attempts beyond the first (timeout or transport failure)");
  static obs::Counter& deadline_total = obs::Registry::global().counter(
      "cricket_rpc_deadline_exceeded_total", {},
      "RPC calls failed after exhausting their deadline/attempt budget");
  static obs::Counter& stale_total = obs::Registry::global().counter(
      "cricket_rpc_stale_replies_total", {},
      "Replies for an older xid dropped while awaiting a retried call");
  static obs::Counter& migrating_total = obs::Registry::global().counter(
      "cricket_rpc_migrating_redirects_total", {},
      "kMigrating rejections absorbed by the retry layer (call re-sent "
      "through the reconnect factory)");

  const RetryPolicy& policy = options_.retry;
  const bool retryable =
      policy.assume_at_most_once ||
      std::find(policy.idempotent_procs.begin(), policy.idempotent_procs.end(),
                call.proc) != policy.idempotent_procs.end();

  const obs::ScopedXid trace_xid(call.xid);
  std::vector<std::uint8_t> record;
  {
    obs::Span span(obs::Layer::kClientSerialize);
    record = encode_call(call);
    span.set_arg(record.size());
  }
  ++stats_.calls;

  const auto start = Clock::now();
  const auto hard_deadline =
      policy.deadline > std::chrono::nanoseconds::zero()
          ? start + policy.deadline
          : Clock::time_point::max();

  auto give_up = [&](const char* why) -> RpcError {
    ++stats_.deadline_exceeded;
    deadline_total.inc();
    return RpcError(RpcError::Kind::kDeadlineExceeded,
                    "proc " + std::to_string(call.proc) + " xid " +
                        std::to_string(call.xid) + ": " + why);
  };

  for (std::uint32_t attempt = 1;; ++attempt) {
    bool sent = false;
    bool migrating = false;
    try {
      obs::Span span(obs::Layer::kChanSend, nullptr, record.size());
      writer_.write_record(record);
      sent = true;
      stats_.bytes_sent += record.size();

      auto timeout = policy.attempt_timeout;
      if (hard_deadline != Clock::time_point::max()) {
        const auto remaining = hard_deadline - Clock::now();
        if (remaining <= std::chrono::nanoseconds::zero())
          throw give_up("deadline exceeded before reply");
        timeout = std::min<std::chrono::nanoseconds>(timeout, remaining);
      }
      (void)transport_->set_recv_timeout(timeout);

      const obs::Span wait_span(obs::Layer::kClientWait);
      std::vector<std::uint8_t> reply_record;
      for (;;) {
        if (!reader_.read_record(reply_record))
          throw TransportError("connection closed while awaiting reply");
        stats_.bytes_received += reply_record.size();
        ReplyMsg reply;
        try {
          reply = decode_reply(reply_record);
        } catch (const RpcFormatError&) {
          // Corrupted-in-flight reply (framing intact, content garbage —
          // what a checksum failure looks like above the record layer).
          // Drop it; the attempt timeout will re-send if ours was the
          // victim.
          continue;
        } catch (const xdr::XdrError&) {
          continue;
        }
        if (reply.xid == call.xid) {
          (void)transport_->set_recv_timeout(std::chrono::nanoseconds::zero());
          try {
            return interpret_reply(reply);
          } catch (const RpcError& e) {
            if (e.kind() != RpcError::Kind::kMigrating) throw;
            // The tenant is frozen for live migration; the call never
            // executed, so re-sending the same xid is safe regardless of
            // idempotency. Reconnect through the factory so the re-send
            // follows the migration's redirect once it flips, then fall to
            // the backoff/retry decision below.
            ++stats_.migrating_redirects;
            migrating_total.inc();
            migrating = true;
            (void)try_reconnect();
            break;
          }
        }
        // A slow answer to an attempt we already gave up on (or to an
        // earlier call whose retry was answered from the server's duplicate
        // cache). Drain it and keep waiting for ours.
        if (static_cast<std::int32_t>(reply.xid - call.xid) < 0) {
          ++stats_.stale_replies;
          stale_total.inc();
          continue;
        }
        throw RpcError(RpcError::Kind::kBadReply,
                       "reply xid from the future: expected " +
                           std::to_string(call.xid) + ", got " +
                           std::to_string(reply.xid));
      }
    } catch (const TransportTimeout&) {
      // Attempt expired; fall through to the retry decision.
    } catch (const TransportError&) {
      // Connection-level failure. A fresh transport lets the next attempt
      // re-send the same xid; the server's duplicate cache keeps a
      // possibly-executed call from running twice.
      if (!try_reconnect()) {
        if (sent && retryable && attempt < policy.max_attempts &&
            options_.reconnect) {
          // Reconnect refused (server briefly down): treat like a timeout
          // and let backoff give it time to come back.
        } else {
          (void)transport_->set_recv_timeout(std::chrono::nanoseconds::zero());
          throw;
        }
      }
    }

    (void)transport_->set_recv_timeout(std::chrono::nanoseconds::zero());
    // A migrating rejection is retryable even for non-idempotent procedures:
    // admission refused the call before decode, so it has no side effects.
    if (!retryable && !migrating)
      throw give_up("non-idempotent procedure, not retrying");
    if (attempt >= policy.max_attempts) throw give_up("attempts exhausted");

    const auto pause = backoff_for(policy, call.xid, attempt);
    if (Clock::now() + pause >= hard_deadline)
      throw give_up("deadline exceeded during backoff");
    ++stats_.retries;
    retries_total.inc();
    std::this_thread::sleep_for(pause);
  }
}

}  // namespace cricket::rpc
