// ONC RPC client runtime: transaction management over a record-marked stream.
//
// This is the C++ analogue of the paper's RPC-Lib client core: it depends
// only on the Transport interface (as RPC-Lib depends only on Rust's std),
// so the identical client runs over a plain pipe, a real TCP socket, or the
// vnet-simulated unikernel network paths.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/transport.hpp"
#include "xdr/xdr.hpp"

namespace cricket::rpc {

/// RPC-level failure (the transport worked but the server refused the call).
class RpcError : public std::runtime_error {
 public:
  enum class Kind {
    kProgUnavail,
    kProgMismatch,
    kProcUnavail,
    kGarbageArgs,
    kSystemErr,
    kDenied,
    kBadReply,
    /// Per-call deadline/attempt budget exhausted (faultnet retry layer).
    kDeadlineExceeded,
    /// Cricket extension: rejected at admission because the caller's tenant
    /// is over quota (see AcceptStat::kQuotaExceeded). Retryable after
    /// backoff — the connection is still healthy.
    kQuotaExceeded,
    /// Cricket extension: the tenant is frozen for live migration (see
    /// AcceptStat::kMigrating). The call did not execute; with retry
    /// enabled the client re-sends the same xid through its reconnect
    /// factory so the retry follows the migration's redirect.
    kMigrating,
  };

  RpcError(Kind kind, std::string what)
      : std::runtime_error(std::move(what)), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Client-side resilience knobs: per-call deadlines and idempotency-aware
/// retry with capped exponential backoff and deterministic jitter. Disabled
/// by default — a retry against a server without the duplicate-request cache
/// would re-execute non-idempotent CUDA calls.
struct RetryPolicy {
  bool enabled = false;
  /// Total tries per call, including the first (so 4 = 1 send + 3 retries).
  std::uint32_t max_attempts = 4;
  /// How long one attempt waits for its reply before re-sending.
  std::chrono::nanoseconds attempt_timeout = std::chrono::milliseconds(200);
  /// Whole-call budget across attempts + backoff. Zero = attempts-only.
  std::chrono::nanoseconds deadline = std::chrono::seconds(2);
  /// Backoff before retry k (1-based) is
  ///   min(backoff_cap, backoff_base << (k-1)) * jitter,  jitter ∈ [0.5, 1)
  /// with jitter drawn from a generator seeded by (seed ^ xid ^ k) — the
  /// same seed reproduces the same retry schedule exactly.
  std::chrono::nanoseconds backoff_base = std::chrono::milliseconds(1);
  std::chrono::nanoseconds backoff_cap = std::chrono::milliseconds(100);
  std::uint64_t seed = 0x5EEDF00Dull;
  /// True when the server runs the duplicate-request cache, making every
  /// procedure safe to retry. When false only `idempotent_procs` retry;
  /// anything else fails with kDeadlineExceeded on the first timeout.
  bool assume_at_most_once = true;
  std::vector<std::uint32_t> idempotent_procs{};
};

struct ClientOptions {
  std::uint32_t max_fragment = RecordWriter::kDefaultMaxFragment;
  /// Initial transaction id; subsequent calls increment.
  std::uint32_t initial_xid = 0x10000000;
  RetryPolicy retry{};
  /// Produces a fresh transport to the same server after a connection-level
  /// failure. Without it a dead connection is fatal to the call.
  std::function<std::unique_ptr<Transport>()> reconnect{};
};

/// Client statistics (useful for the paper's API-call accounting, §4.1).
struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t retries = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t reconnects = 0;
  /// Replies for an older xid, skipped while retrying (the original answer
  /// to a call we already re-sent).
  std::uint64_t stale_replies = 0;
  /// kMigrating rejections absorbed by the retry layer: the call was
  /// re-sent (through the reconnect factory, following the migration's
  /// redirect) instead of failing.
  std::uint64_t migrating_redirects = 0;
};

/// Synchronous RPC client bound to one (program, version) on one transport.
/// Not thread-safe: one outstanding call at a time, matching the paper's
/// single-threaded RPC usage ("the RPC library is single-threaded", §4.2).
class RpcClient {
 public:
  RpcClient(std::unique_ptr<Transport> transport, std::uint32_t prog,
            std::uint32_t vers, ClientOptions options = {});
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Sets the credential sent with subsequent calls (default AUTH_NONE).
  void set_credential(OpaqueAuth cred) { cred_ = std::move(cred); }

  /// Issues `proc` with pre-encoded arguments; returns raw encoded results.
  /// Throws RpcError / TransportError on failure.
  std::vector<std::uint8_t> call_raw(std::uint32_t proc,
                                     std::span<const std::uint8_t> args);

  /// Typed convenience: XDR-encodes `args...` in order, decodes one `Res`.
  template <typename Res, typename... Args>
  Res call(std::uint32_t proc, const Args&... args) {
    xdr::Encoder enc;
    (xdr_encode(enc, args), ...);
    const auto results = call_raw(proc, enc.bytes());
    xdr::Decoder dec(results);
    Res res{};
    xdr_decode(dec, res);
    dec.expect_exhausted();
    return res;
  }

  /// Typed call with void result.
  template <typename... Args>
  void call_void(std::uint32_t proc, const Args&... args) {
    xdr::Encoder enc;
    (xdr_encode(enc, args), ...);
    const auto results = call_raw(proc, enc.bytes());
    if (!results.empty())
      throw RpcError(RpcError::Kind::kBadReply, "expected void result");
  }

  /// RFC 5531 null procedure — liveness ping.
  void ping() { call_void(0); }

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }

 private:
  std::vector<std::uint8_t> call_raw_retrying(const CallMsg& call);
  /// Maps an accepted/denied reply to results-or-RpcError.
  static std::vector<std::uint8_t> interpret_reply(const ReplyMsg& reply);
  [[nodiscard]] bool try_reconnect();

  std::unique_ptr<Transport> transport_;
  RecordWriter writer_;
  RecordReader reader_;
  std::uint32_t prog_;
  std::uint32_t vers_;
  std::uint32_t next_xid_;
  OpaqueAuth cred_;
  ClientStats stats_;
  ClientOptions options_;
};

}  // namespace cricket::rpc
