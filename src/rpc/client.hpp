// ONC RPC client runtime: transaction management over a record-marked stream.
//
// This is the C++ analogue of the paper's RPC-Lib client core: it depends
// only on the Transport interface (as RPC-Lib depends only on Rust's std),
// so the identical client runs over a plain pipe, a real TCP socket, or the
// vnet-simulated unikernel network paths.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/transport.hpp"
#include "xdr/xdr.hpp"

namespace cricket::rpc {

/// RPC-level failure (the transport worked but the server refused the call).
class RpcError : public std::runtime_error {
 public:
  enum class Kind {
    kProgUnavail,
    kProgMismatch,
    kProcUnavail,
    kGarbageArgs,
    kSystemErr,
    kDenied,
    kBadReply,
  };

  RpcError(Kind kind, std::string what)
      : std::runtime_error(std::move(what)), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

struct ClientOptions {
  std::uint32_t max_fragment = RecordWriter::kDefaultMaxFragment;
  /// Initial transaction id; subsequent calls increment.
  std::uint32_t initial_xid = 0x10000000;
};

/// Client statistics (useful for the paper's API-call accounting, §4.1).
struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Synchronous RPC client bound to one (program, version) on one transport.
/// Not thread-safe: one outstanding call at a time, matching the paper's
/// single-threaded RPC usage ("the RPC library is single-threaded", §4.2).
class RpcClient {
 public:
  RpcClient(std::unique_ptr<Transport> transport, std::uint32_t prog,
            std::uint32_t vers, ClientOptions options = {});
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Sets the credential sent with subsequent calls (default AUTH_NONE).
  void set_credential(OpaqueAuth cred) { cred_ = std::move(cred); }

  /// Issues `proc` with pre-encoded arguments; returns raw encoded results.
  /// Throws RpcError / TransportError on failure.
  std::vector<std::uint8_t> call_raw(std::uint32_t proc,
                                     std::span<const std::uint8_t> args);

  /// Typed convenience: XDR-encodes `args...` in order, decodes one `Res`.
  template <typename Res, typename... Args>
  Res call(std::uint32_t proc, const Args&... args) {
    xdr::Encoder enc;
    (xdr_encode(enc, args), ...);
    const auto results = call_raw(proc, enc.bytes());
    xdr::Decoder dec(results);
    Res res{};
    xdr_decode(dec, res);
    dec.expect_exhausted();
    return res;
  }

  /// Typed call with void result.
  template <typename... Args>
  void call_void(std::uint32_t proc, const Args&... args) {
    xdr::Encoder enc;
    (xdr_encode(enc, args), ...);
    const auto results = call_raw(proc, enc.bytes());
    if (!results.empty())
      throw RpcError(RpcError::Kind::kBadReply, "expected void result");
  }

  /// RFC 5531 null procedure — liveness ping.
  void ping() { call_void(0); }

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }

 private:
  std::unique_ptr<Transport> transport_;
  RecordWriter writer_;
  RecordReader reader_;
  std::uint32_t prog_;
  std::uint32_t vers_;
  std::uint32_t next_xid_;
  OpaqueAuth cred_;
  ClientStats stats_;
};

}  // namespace cricket::rpc
