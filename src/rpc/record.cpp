#include "rpc/record.hpp"

#include <algorithm>

namespace cricket::rpc {
namespace {

constexpr std::uint32_t kLastFragmentBit = 0x80000000u;

void put_header(std::uint8_t out[4], std::uint32_t len, bool last) {
  const std::uint32_t h = len | (last ? kLastFragmentBit : 0u);
  out[0] = static_cast<std::uint8_t>(h >> 24);
  out[1] = static_cast<std::uint8_t>(h >> 16);
  out[2] = static_cast<std::uint8_t>(h >> 8);
  out[3] = static_cast<std::uint8_t>(h);
}

}  // namespace

void RecordWriter::write_record(std::span<const std::uint8_t> record) {
  // A zero-length record is legal: one empty last fragment.
  std::size_t off = 0;
  do {
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::size_t>(max_fragment_, record.size() - off));
    const bool last = off + n == record.size();
    std::uint8_t hdr[4];
    put_header(hdr, n, last);
    transport_->send(hdr);
    if (n > 0) transport_->send(record.subspan(off, n));
    off += n;
  } while (off < record.size());
}

void append_record_marked(std::vector<std::uint8_t>& out,
                          std::span<const std::uint8_t> record,
                          std::uint32_t max_fragment) {
  std::size_t off = 0;
  do {
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::size_t>(max_fragment, record.size() - off));
    const bool last = off + n == record.size();
    std::uint8_t hdr[4];
    put_header(hdr, n, last);
    out.insert(out.end(), hdr, hdr + 4);
    if (n > 0)
      out.insert(out.end(), record.begin() + static_cast<std::ptrdiff_t>(off),
                 record.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
  } while (off < record.size());
}

bool RecordReader::read_record(std::vector<std::uint8_t>& out) {
  out.clear();
  bool first = true;
  for (;;) {
    std::uint8_t hdr[4];
    if (first) {
      // Distinguish clean EOF (no record) from truncation.
      const std::size_t n = transport_->recv(std::span(hdr, 4));
      if (n == 0) return false;
      if (n < 4) transport_->recv_exact(std::span(hdr + n, 4 - n));
    } else {
      transport_->recv_exact(hdr);
    }
    first = false;
    const std::uint32_t h = (std::uint32_t{hdr[0]} << 24) |
                            (std::uint32_t{hdr[1]} << 16) |
                            (std::uint32_t{hdr[2]} << 8) | std::uint32_t{hdr[3]};
    const bool last = (h & kLastFragmentBit) != 0;
    const std::uint32_t len = h & ~kLastFragmentBit;
    if (out.size() + len > max_record_)
      throw TransportError("RPC record exceeds maximum size");
    const std::size_t old = out.size();
    out.resize(old + len);
    if (len > 0)
      transport_->recv_exact(std::span(out.data() + old, len));
    if (last) return true;
  }
}

bool BufferedRecordReader::fill(std::size_t need) {
  // Compact once the consumed prefix dominates, keeping the buffer small.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= chunk_)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  while (buf_.size() - pos_ < need) {
    const std::size_t old = buf_.size();
    buf_.resize(old + chunk_);
    const std::size_t n = transport_->recv(std::span(buf_.data() + old, chunk_));
    buf_.resize(old + n);
    if (n == 0) return false;
  }
  return true;
}

bool BufferedRecordReader::read_record(std::vector<std::uint8_t>& out) {
  out.clear();
  bool first = true;
  for (;;) {
    if (!fill(4)) {
      if (first && buf_.size() == pos_) return false;  // clean EOF
      throw TransportError("EOF inside RPC record");
    }
    const std::uint8_t* hdr = buf_.data() + pos_;
    const std::uint32_t h = (std::uint32_t{hdr[0]} << 24) |
                            (std::uint32_t{hdr[1]} << 16) |
                            (std::uint32_t{hdr[2]} << 8) | std::uint32_t{hdr[3]};
    pos_ += 4;
    first = false;
    const bool last = (h & kLastFragmentBit) != 0;
    const std::uint32_t len = h & ~kLastFragmentBit;
    if (out.size() + len > max_record_)
      throw TransportError("RPC record exceeds maximum size");
    if (len > 0) {
      if (!fill(len)) throw TransportError("EOF inside RPC record");
      out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
      pos_ += len;
    }
    if (last) return true;
  }
}

}  // namespace cricket::rpc
