#include "mcheck/lock_graph.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

namespace cricket::mcheck {

namespace {

/// "file.cpp:123" — basename keeps identities stable across build trees so
/// per-process dumps from different working directories still merge.
std::string site_string(const std::source_location& loc) {
  const char* file = loc.file_name();
  if (const char* slash = std::strrchr(file, '/')) file = slash + 1;
  return std::string(file) + ":" + std::to_string(loc.line());
}

struct Held {
  const sim::Mutex* instance;
  int node;
  std::source_location acquire_site;
};

// Per-thread stack of currently-held instrumented locks. TU-level (not a
// member) because only one LockGraph acts as the observer at a time and
// thread_local members do not exist in C++.
thread_local std::vector<Held> t_held;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

LockGraph::~LockGraph() {
  if (installed_) uninstall();
}

void LockGraph::install() {
  if (installed_) return;
  previous_ = sim::set_sync_observer(this);
  installed_ = true;
}

void LockGraph::uninstall() {
  if (!installed_) return;
  sim::set_sync_observer(previous_);
  previous_ = nullptr;
  installed_ = false;
}

int LockGraph::intern_locked(const std::string& name) {
  const auto [it, inserted] =
      node_ids_.emplace(name, static_cast<int>(node_names_.size()));
  if (inserted) node_names_.push_back(name);
  return it->second;
}

void LockGraph::record_acquire(sim::Mutex& mu,
                               const std::source_location& loc) {
  const std::string cls = site_string(mu.birth());
  std::lock_guard<std::mutex> guard(mu_);
  const int node = intern_locked(cls);
  for (const Held& held : t_held) {
    if (held.node == node) continue;  // same-class nesting: not an ordering
    EdgeData& edge = edges_[{held.node, node}];
    if (edge.count == 0) {
      edge.from_site = site_string(held.acquire_site);
      edge.to_site = site_string(loc);
    }
    ++edge.count;
  }
  t_held.push_back({&mu, node, loc});
}

void LockGraph::record_release(sim::Mutex& mu) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance == &mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void LockGraph::lock_pending(sim::Mutex& mu, const std::source_location& loc) {
  for (const Held& held : t_held) {
    if (held.instance != &mu) continue;
    const std::string site = site_string(loc);
    std::fprintf(stderr,
                 "[lockcheck] SELF-DEADLOCK: re-locking Mutex(%s) already "
                 "held by this thread, at %s\n",
                 site_string(mu.birth()).c_str(), site.c_str());
    std::lock_guard<std::mutex> guard(mu_);
    ++self_deadlocks_;
    self_deadlock_sites_.push_back(site);
    return;
  }
}

void LockGraph::lock_acquired(sim::Mutex& mu,
                              const std::source_location& loc) {
  record_acquire(mu, loc);
}

void LockGraph::try_lock_result(sim::Mutex& mu, bool acquired,
                                const std::source_location& loc) {
  if (acquired) record_acquire(mu, loc);
}

void LockGraph::unlocked(sim::Mutex& mu, const std::source_location&) {
  record_release(mu);
}

void LockGraph::cv_wait_begin(sim::CondVar&, sim::Mutex& mu,
                              const std::source_location&) {
  // The wait releases the mutex for its duration; anything acquired by
  // other code on this thread meanwhile must not appear ordered under it.
  record_release(mu);
}

void LockGraph::cv_wait_done(sim::CondVar&, sim::Mutex& mu,
                             const std::source_location& loc) {
  // Re-acquisition after the wait is an ordering event like any other
  // acquire (waiting on a condvar while holding a second lock orders that
  // lock before this one).
  record_acquire(mu, loc);
}

std::vector<LockGraph::Edge> LockGraph::edges() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<Edge> out;
  out.reserve(edges_.size());
  for (const auto& [key, data] : edges_) {
    out.push_back({node_names_[static_cast<std::size_t>(key.first)],
                   node_names_[static_cast<std::size_t>(key.second)],
                   data.from_site, data.to_site, data.count});
  }
  return out;
}

std::vector<LockGraph::Cycle> LockGraph::cycles() const {
  std::lock_guard<std::mutex> guard(mu_);
  const int n = static_cast<int>(node_names_.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [key, data] : edges_)
    adj[static_cast<std::size_t>(key.first)].push_back(key.second);

  // Iterative Tarjan SCC.
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<int> scc_of(static_cast<std::size_t>(n), -1);
  int next_index = 0;
  int scc_count = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[static_cast<std::size_t>(root)] =
        low[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.child < adj[v].size()) {
        const int w = adj[v][f.child++];
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] == -1) {
          index[wi] = low[wi] = next_index++;
          stack.push_back(w);
          on_stack[wi] = true;
          frames.push_back({w, 0});
        } else if (on_stack[wi]) {
          low[v] = std::min(low[v], index[wi]);
        }
      } else {
        if (low[v] == index[v]) {
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            scc_of[static_cast<std::size_t>(w)] = scc_count;
            if (w == f.v) break;
          }
          ++scc_count;
        }
        const int finished = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          const auto p = static_cast<std::size_t>(frames.back().v);
          low[p] = std::min(low[p], low[static_cast<std::size_t>(finished)]);
        }
      }
    }
  }

  // A cycle = an SCC with more than one member, or a node with a self-edge.
  std::map<int, Cycle> by_scc;
  std::vector<std::size_t> scc_size(static_cast<std::size_t>(scc_count), 0);
  for (int v = 0; v < n; ++v)
    ++scc_size[static_cast<std::size_t>(scc_of[static_cast<std::size_t>(v)])];
  for (int v = 0; v < n; ++v) {
    const int s = scc_of[static_cast<std::size_t>(v)];
    const bool self_edge = edges_.count({v, v}) != 0;
    if (scc_size[static_cast<std::size_t>(s)] > 1 || self_edge)
      by_scc[s].nodes.push_back(node_names_[static_cast<std::size_t>(v)]);
  }
  for (const auto& [key, data] : edges_) {
    if (scc_of[static_cast<std::size_t>(key.first)] !=
        scc_of[static_cast<std::size_t>(key.second)])
      continue;
    const int s = scc_of[static_cast<std::size_t>(key.first)];
    const auto it = by_scc.find(s);
    if (it == by_scc.end()) continue;
    it->second.edges.push_back(
        {node_names_[static_cast<std::size_t>(key.first)],
         node_names_[static_cast<std::size_t>(key.second)], data.from_site,
         data.to_site, data.count});
  }
  std::vector<Cycle> out;
  out.reserve(by_scc.size());
  for (auto& [key, cycle] : by_scc) out.push_back(std::move(cycle));
  return out;
}

std::uint64_t LockGraph::self_deadlocks() const {
  std::lock_guard<std::mutex> guard(mu_);
  return self_deadlocks_;
}

std::string LockGraph::report() const {
  const std::vector<Cycle> found = cycles();
  std::uint64_t selfs = 0;
  std::vector<std::string> self_sites;
  {
    std::lock_guard<std::mutex> guard(mu_);
    selfs = self_deadlocks_;
    self_sites = self_deadlock_sites_;
  }
  if (found.empty() && selfs == 0) return "";
  std::ostringstream out;
  out << "[lockcheck] " << found.size() << " lock-order cycle(s), " << selfs
      << " self-deadlock(s)\n";
  int i = 0;
  for (const Cycle& cycle : found) {
    out << "  cycle " << ++i << ":";
    for (const std::string& node : cycle.nodes) out << " " << node;
    out << "\n";
    for (const Edge& edge : cycle.edges)
      out << "    " << edge.from << " (held, acquired at " << edge.from_site
          << ") -> " << edge.to << " (acquired at " << edge.to_site << ") x"
          << edge.count << "\n";
  }
  for (const std::string& s : self_sites)
    out << "  self-deadlock: re-lock attempt at " << s << "\n";
  return out.str();
}

bool LockGraph::dump_json(const std::string& path) const {
  const std::vector<Edge> all = edges();
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"self_deadlocks\":" << self_deadlocks() << ",\"edges\":[";
  bool first = true;
  for (const Edge& e : all) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"from\":\"" << json_escape(e.from) << "\",\"to\":\""
        << json_escape(e.to) << "\",\"from_site\":\""
        << json_escape(e.from_site) << "\",\"to_site\":\""
        << json_escape(e.to_site) << "\",\"count\":" << e.count << "}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

LockGraph* LockGraph::install_from_env() {
  const char* flag = std::getenv("CRICKET_LOCKCHECK");
  if (flag == nullptr || flag[0] != '1') return nullptr;
  auto* graph = new LockGraph();  // leaked: observed ops outlive main()
  graph->install();
  return graph;
}

int LockGraph::finalize(std::ostream& err) const {
  if (const char* dir = std::getenv("CRICKET_LOCKCHECK_DIR")) {
    // PIDs recycle over a long suite run; probe for a free name so a reused
    // pid never overwrites an earlier process's edges. No cross-process
    // race: two live processes cannot share a pid.
    const std::string base = std::string(dir) + "/lockgraph-" +
                             std::to_string(::getpid());
    std::string path = base + ".json";
    for (int n = 1; std::ifstream(path).good(); ++n)
      path = base + "-" + std::to_string(n) + ".json";
    if (!dump_json(path))
      err << "[lockcheck] failed to write " << path << "\n";
  }
  const std::string text = report();
  if (text.empty()) return 0;
  err << text;
  return static_cast<int>(cycles().size()) + (self_deadlocks() > 0 ? 1 : 0);
}

}  // namespace cricket::mcheck
