// Deterministic interleaving explorer (loom/CHESS-style stateless DPOR).
//
// explore() runs a small *model test* — a body that spawns a handful of
// controlled threads exercising one concurrent core — over and over,
// systematically enumerating distinct thread interleavings. The body's
// threads are real std::threads, but exactly one runs at a time: every
// sim::Mutex / sim::CondVar operation (via the SyncObserver seam) and every
// explicit sim::sync_point() is a *scheduling point* where the running
// thread parks and the explorer picks who continues. Blocking semantics are
// modelled, not executed: a thread whose next step is acquiring a held
// mutex, or waiting on an un-notified condvar, is simply not schedulable,
// so the explorer sees deadlocks as states with live-but-unschedulable
// threads instead of hanging.
//
// Exploration is depth-first over the schedule tree with two standard
// reductions: sleep sets (a just-explored choice is not re-interleaved
// against independent operations — operations on different sync objects
// commute) and a preemption bound (schedules with more than N involuntary
// context switches are pruned; empirically almost all concurrency bugs
// need <= 2). Everything is deterministic and replayable: the same seed
// enumerates the same schedules in the same order, a failure report carries
// the exact schedule string, and ExploreOptions::replay re-runs precisely
// that interleaving under a debugger.
//
// Model-test contract (enforced where cheap, documented otherwise):
//   * the body must be deterministic given the schedule — no wall-clock
//     reads, no OS randomness, no I/O races;
//   * all concurrency goes through mcheck::spawn (raw std::threads are
//     invisible to the scheduler and break the one-runner invariant);
//   * the body joins its threads (mcheck::join_children) before checking
//     invariants and returning;
//   * shared accesses not synchronized by sim primitives are marked with
//     sim::sync_point(&object) — accesses with different tags must touch
//     disjoint state (the tag is the dependency-tracking identity);
//   * function-local statics reachable from threads are warmed up by one
//     single-threaded call before spawning (their init guard is a real
//     lock the scheduler cannot see).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace cricket::mcheck {

struct ExploreOptions {
  /// Permutes DFS choice order deterministically; same seed => identical
  /// schedule sequence and identical result.trace.
  std::uint64_t seed = 1;
  /// Stop after this many complete schedules even if the space is larger.
  std::uint64_t max_schedules = 4096;
  /// Maximum involuntary context switches per schedule (<0 = unbounded).
  int preemption_bound = 2;
  /// Scheduling decisions allowed in one schedule (runaway/livelock guard).
  std::uint64_t max_steps = 100000;
  /// Cap on controlled threads alive at once in one schedule.
  int max_threads = 8;
  /// Non-empty: skip exploration and run exactly this schedule (a
  /// result.trace string, e.g. "0.1.1.0.2").
  std::string replay;
};

struct ExploreResult {
  std::uint64_t schedules = 0;  ///< complete interleavings executed
  std::uint64_t steps = 0;      ///< total scheduling decisions taken
  bool exhausted = false;       ///< the (bounded) space was fully enumerated
  bool failed = false;          ///< deadlock or model_assert failure found
  bool deadlock = false;        ///< the failure was a deadlock
  std::string failure;          ///< human-readable diagnosis
  /// Schedule string of the failing run (or of the last run when clean):
  /// thread ids in decision order, "."-joined. Feed to ExploreOptions::replay.
  std::string trace;
};

/// Explores interleavings of `body`. The body runs on controlled thread 0;
/// it may call spawn/join_children/model_assert. Throws std::logic_error on
/// misuse (nested explore, replay divergence, nondeterministic body).
ExploreResult explore(const ExploreOptions& options,
                      const std::function<void()>& body);

/// Spawns a controlled thread running `fn`. Only valid on a controlled
/// thread (i.e. inside a model body).
void spawn(std::function<void()> fn);

/// Blocks (in model time) until every spawned thread has finished.
void join_children();

/// Model invariant: a false condition fails the current schedule and makes
/// explore() report the interleaving that broke it.
void model_assert(bool ok, const char* what);

/// True while the calling thread is a controlled thread of a live explore().
[[nodiscard]] bool under_exploration() noexcept;

}  // namespace cricket::mcheck
