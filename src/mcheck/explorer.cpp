#include "mcheck/explorer.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/annotations.hpp"

namespace cricket::mcheck {

namespace {

/// splitmix64: cheap, well-mixed, fully deterministic — permutes DFS choice
/// order so different seeds visit schedules in different orders (useful when
/// max_schedules truncates the space).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string site_string(const std::source_location& loc) {
  const char* file = loc.file_name();
  for (const char* p = file; *p != '\0'; ++p)
    if (*p == '/') file = p + 1;
  return std::string(file) + ":" + std::to_string(loc.line());
}

/// What a parked thread is about to do. kUnlock/kNotify/kSpawn parks happen
/// *after* their side effect (those ops cannot block, so the state change is
/// visible to the scheduler before the next decision); kAcquire/kTryLock/
/// kCvBlock take effect when granted.
enum class OpKind : std::uint8_t {
  kStart,    // thread exists, has not run yet (always schedulable)
  kAcquire,  // Mutex::lock — schedulable iff the mutex is model-free
  kTryLock,  // Mutex::try_lock — always schedulable (failure is a result)
  kUnlock,   // yield point after a Mutex::unlock already took effect
  kCvBlock,  // CondVar wait — schedulable iff holding a wakeup token (or the
             // wait is timed: granting it tokenless is the timeout branch)
  kNotify,   // yield point after a notify already deposited tokens
  kSync,     // sim::sync_point — plain preemption point
  kSpawn,    // yield point after registering a child thread
  kJoin,     // join_children — schedulable iff all other threads finished
  kDone,     // thread function returned (terminal, never scheduled)
};

/// Thrown into a controlled thread to unwind it when the current schedule is
/// being drained after a failure. Only ever thrown from places where the
/// model lock state makes unwinding sound: before model ownership is claimed
/// (kAcquire resume / lock would-block under force-abort) or while the
/// caller demonstrably holds its mutex (condvar spin-limit). Never thrown
/// when another exception is in flight.
struct AbortSchedule {};

/// Thrown by model_assert to unwind the failing thread to thread_main.
struct ModelFailure {};

struct ExplorerImpl;

/// Per-controlled-thread state. Fields are written either by the owning
/// thread or by the scheduler, always under ExplorerImpl::hm_.
struct Ctl {
  int tid = 0;
  std::thread thread;
  std::function<void()> fn;

  OpKind op = OpKind::kStart;
  std::uint64_t obj = 0;   // normalized id of the op's sync object
  std::string op_desc;     // "lock batcher.hpp:87 @ test.cpp:42"
  bool timed_wait = false; // kCvBlock came from wait_until/wait_for
  bool woke_by_timeout = false;  // grant-time verdict for a timed kCvBlock
  bool try_verdict = false;      // grant-time verdict for kTryLock
  bool has_token = false;        // a notify targeted this condvar waiter
  bool in_unwind = false;        // parked with an exception in flight
  bool force_abort = false;      // drain: resume by throwing, not running
  int drain_spurious = 0;  // consecutive tokenless cv grants while draining

  bool runnable = false;  // the scheduler granted this thread the turn
  bool parked = false;    // the thread is blocked in announce_and_park
};

/// Signature of one thread's pending op — recorded per decision node so
/// re-executions can verify the body is deterministic and sleep sets can
/// test (in)dependence.
struct OpSig {
  OpKind op = OpKind::kStart;
  std::uint64_t obj = 0;
  bool operator==(const OpSig&) const = default;
};

/// One decision point in the schedule tree. Persistent across executions —
/// the vector of these is the DFS stack, not per-run state.
struct Node {
  std::map<int, OpSig> ops;     // tid -> pending op at this state
  std::vector<int> candidates;  // schedulable tids, seed-permuted order
  /// Godefroid sleep set, inherited from the parent at creation: a sleeping
  /// transition was fully explored in an earlier sibling subtree and has
  /// stayed independent of every transition executed since, so re-running
  /// it from here reaches only already-covered states. Identified by
  /// (tid, op signature): if the tid's pending op differs it is a different
  /// transition and is not asleep.
  std::vector<std::pair<int, OpSig>> sleep;
  std::set<int> tried;  // branches already fully explored from this node
  int chosen = -1;      // branch taken on the current execution
  /// Every candidate was asleep: this state is fully covered elsewhere; the
  /// in-flight execution still has to finish, but no branching happens here.
  bool redundant = false;

  [[nodiscard]] bool asleep(int tid) const {
    const auto it = ops.find(tid);
    for (const auto& [stid, sig] : sleep)
      if (stid == tid && it != ops.end() && sig == it->second) return true;
    return false;
  }
};

thread_local ExplorerImpl* t_impl = nullptr;
thread_local Ctl* t_self = nullptr;

constexpr int kCvSpinLimit = 4;

struct ExplorerImpl final : sim::SyncObserver {
  ExploreOptions opt;
  std::function<void()> body;

  // Handshake between the scheduler (the thread that called explore()) and
  // the controlled threads: one mutex + one condvar, every state change
  // notifies all, every waiter re-checks its own predicate.
  std::mutex hm_;
  std::condition_variable hcv_;

  // ---- per-run state (reset by run_one_schedule)
  std::vector<std::unique_ptr<Ctl>> threads_;     // [0] runs the body
  std::map<const void*, std::uint64_t> obj_ids_;  // address -> stable id
  std::uint64_t next_obj_id_ = 1;
  std::map<std::uint64_t, int> mutex_owner_;      // model-view lock owners
  std::map<std::uint64_t, std::vector<int>> cv_waiters_;  // arrival order
  bool draining_ = false;
  bool failed_ = false;
  bool deadlock_ = false;
  std::string failure_;
  std::string fatal_;  // contract violation: drain, join, then throw
  std::vector<int> run_trace_;

  // ---- persistent exploration state
  std::vector<std::unique_ptr<Node>> path_;  // DFS decision stack
  std::uint64_t schedules_ = 0;
  std::uint64_t steps_ = 0;
  std::vector<int> replay_;

  // ------------------------------------------------------------- utilities

  /// Normalizes a heap address to an id assigned by first-appearance order,
  /// which is identical across re-executions that share a schedule prefix
  /// (heap addresses are not).
  std::uint64_t obj_id(const void* p) {
    const auto [it, inserted] = obj_ids_.emplace(p, next_obj_id_);
    if (inserted) ++next_obj_id_;
    return it->second;
  }

  /// Sleep-set dependence: ops commute unless they target the same sync
  /// object. sync_point tags with different addresses are independent by
  /// the model contract (distinct tags touch disjoint state).
  static bool dependent(const OpSig& a, const OpSig& b) {
    return a.obj != 0 && a.obj == b.obj;
  }

  bool children_done_locked() const {
    for (const auto& c : threads_)
      if (c->tid != 0 && c->op != OpKind::kDone) return false;
    return true;
  }

  bool enabled_locked(const Ctl& c) const {
    switch (c.op) {
      case OpKind::kAcquire:
        // Includes the self-relock case (owner == c.tid): a second lock of
        // a held std::mutex can never succeed, so the thread is permanently
        // unschedulable and shows up as a modelled (self-)deadlock.
        return mutex_owner_.count(c.obj) == 0;
      case OpKind::kCvBlock:
        return c.has_token || c.timed_wait || draining_;
      case OpKind::kJoin: {
        for (const auto& other : threads_)
          if (other->tid != c.tid && other->op != OpKind::kDone) return false;
        return true;
      }
      case OpKind::kDone:
        return false;
      default:
        return true;
    }
  }

  // --------------------------------------------------------- park protocol

  /// Parks the calling controlled thread with `op` pending and blocks until
  /// the scheduler grants it the turn. Force-abort grants resume by
  /// throwing AbortSchedule — only for kAcquire, only before model ownership
  /// is claimed, only with no exception in flight (all checked here).
  void announce_and_park(Ctl& self, OpKind op, std::uint64_t obj,
                         std::string desc, bool timed = false) {
    std::unique_lock<std::mutex> lk(hm_);
    self.op = op;
    self.obj = obj;
    self.op_desc = std::move(desc);
    self.timed_wait = timed;
    self.in_unwind = std::uncaught_exceptions() > 0;
    self.parked = true;
    hcv_.notify_all();
    hcv_.wait(lk, [&] { return self.runnable; });
    self.runnable = false;  // consume the grant
    self.parked = false;
    if (self.force_abort) {
      self.force_abort = false;
      lk.unlock();
      if (op == OpKind::kAcquire && std::uncaught_exceptions() == 0)
        throw AbortSchedule{};
      // Cannot throw safely: fall through and run. For kAcquire this means
      // claiming model ownership even though the model says the lock is
      // held — acceptable only because force-abort happens during drain,
      // after the run has already failed, where the model state no longer
      // feeds any verdict; it just lets the unwinding thread finish.
    }
  }

  // ------------------------------------------------------- observer hooks
  // Every hook passes through untouched unless the calling thread is one of
  // this run's controlled threads.

  void lock_pending(sim::Mutex& mu, const std::source_location& loc) override {
    Ctl* self = t_self;
    if (self == nullptr) return;
    const std::uint64_t id = obj_id(&mu);
    announce_and_park(*self, OpKind::kAcquire, id,
                      "lock " + site_string(mu.birth()) + " @ " +
                          site_string(loc));
    // Granted: the mutex is model-free. Claim model ownership before the
    // next scheduling point; lock_acquire() then reports the lock as taken
    // without touching the native mutex (see that hook for why).
    std::lock_guard<std::mutex> lk(hm_);
    mutex_owner_[id] = self->tid;
  }

  // Controlled threads hold locks in the model only. They are serialized
  // through hm_ (at most one runnable at a time), so skipping the native
  // mutex is sound — and necessary: intentionally inverted model bodies
  // (the deadlock mutants) would otherwise write genuinely inverted native
  // lock history that TSan's lock-order detector reports as a finding of
  // its own, failing the very tests that prove the explorer finds it first.
  bool lock_acquire(sim::Mutex&, const std::source_location&) override {
    return t_self != nullptr;
  }
  bool unlock_release(sim::Mutex&, const std::source_location&) override {
    return t_self != nullptr;
  }

  void unlocked(sim::Mutex& mu, const std::source_location& loc) override {
    Ctl* self = t_self;
    if (self == nullptr) return;
    const std::uint64_t id = obj_id(&mu);
    {
      std::lock_guard<std::mutex> lk(hm_);
      mutex_owner_.erase(id);
    }
    announce_and_park(*self, OpKind::kUnlock, id,
                      "unlock " + site_string(mu.birth()) + " @ " +
                          site_string(loc));
  }

  int try_lock_pending(sim::Mutex& mu,
                       const std::source_location& loc) override {
    Ctl* self = t_self;
    if (self == nullptr) return kPassThrough;
    const std::uint64_t id = obj_id(&mu);
    announce_and_park(*self, OpKind::kTryLock, id,
                      "try_lock " + site_string(mu.birth()) + " @ " +
                          site_string(loc));
    std::lock_guard<std::mutex> lk(hm_);
    if (self->try_verdict) {
      mutex_owner_[id] = self->tid;
      return kSucceed;  // model-only ownership, native mutex untouched
    }
    return kRefuse;
  }

  void cv_notify(sim::CondVar& cv, bool all,
                 const std::source_location& loc) override {
    Ctl* self = t_self;
    if (self == nullptr) return;
    const std::uint64_t id = obj_id(&cv);
    {
      // Effect at announce: deposit wakeup tokens. notify_one tokens the
      // longest-waiting tokenless waiter (FIFO — the fairness real condvar
      // implementations approximate); notify_all tokens everyone. A notify
      // with no registered waiters deposits nothing and is *lost*, which is
      // exactly the lost-wakeup bug class the explorer exists to surface.
      std::lock_guard<std::mutex> lk(hm_);
      for (int tid : cv_waiters_[id]) {
        Ctl& w = *threads_[static_cast<std::size_t>(tid)];
        if (!w.has_token) {
          w.has_token = true;
          if (!all) break;
        }
      }
    }
    announce_and_park(*self, OpKind::kNotify, id,
                      std::string(all ? "notify_all " : "notify_one ") +
                          site_string(cv.birth()) + " @ " + site_string(loc));
  }

  bool cv_wait(sim::CondVar& cv, sim::Mutex& mu,
               const std::source_location& loc) override {
    Ctl* self = t_self;
    if (self == nullptr) return false;
    do_cv_wait(*self, cv, mu, loc, /*timed=*/false);
    return true;
  }

  std::optional<std::cv_status> cv_wait_timed(
      sim::CondVar& cv, sim::Mutex& mu,
      const std::source_location& loc) override {
    Ctl* self = t_self;
    if (self == nullptr) return std::nullopt;
    const bool timeout = do_cv_wait(*self, cv, mu, loc, /*timed=*/true);
    return timeout ? std::cv_status::timeout : std::cv_status::no_timeout;
  }

  /// The full modelled wait. Returns true iff a timed wait timed out.
  bool do_cv_wait(Ctl& self, sim::CondVar& cv, sim::Mutex& mu,
                  const std::source_location& loc, bool timed) {
    const std::uint64_t id = obj_id(&cv);
    {
      // Register as a waiter BEFORE releasing the mutex: a notify running
      // between our unlock and our park must still see us. Losing that
      // atomicity would fabricate lost-wakeups that real condvars exclude.
      std::lock_guard<std::mutex> lk(hm_);
      cv_waiters_[id].push_back(self.tid);
      self.has_token = false;
      self.woke_by_timeout = false;
    }
    observer_unlock(mu, loc);  // fires unlocked(): model release + park
    announce_and_park(self, OpKind::kCvBlock, id,
                      "cv_wait " + site_string(cv.birth()) + " @ " +
                          site_string(loc),
                      timed);
    bool timeout = false;
    bool spin_abort = false;
    {
      std::lock_guard<std::mutex> lk(hm_);
      auto& waiters = cv_waiters_[id];
      for (auto it = waiters.begin(); it != waiters.end(); ++it)
        if (*it == self.tid) {
          waiters.erase(it);
          break;
        }
      timeout = self.woke_by_timeout;
      if (draining_ && !self.has_token && !timed) {
        // Tokenless untimed grant = drain-time spurious wakeup. A predicate
        // loop no surviving thread will ever satisfy would spin through
        // here forever; after a few laps, unwind this thread instead. Only
        // when the unwind is sound: no exception in flight, and (for the
        // body, which owns the shared state) no children still alive.
        spin_abort = ++self.drain_spurious > kCvSpinLimit &&
                     (self.tid != 0 || children_done_locked());
      } else {
        self.drain_spurious = 0;
      }
      self.has_token = false;
    }
    observer_lock(mu, loc);  // re-acquire: kAcquire park, model-only claim
    if (spin_abort && std::uncaught_exceptions() == 0)
      throw AbortSchedule{};  // mutex held: unwinding releases it cleanly
    return timeout;
  }

  void sync_point(const void* tag, const std::source_location& loc) override {
    Ctl* self = t_self;
    if (self == nullptr) return;
    announce_and_park(*self, OpKind::kSync, tag != nullptr ? obj_id(tag) : 0,
                      "sync_point @ " + site_string(loc));
  }

  // ------------------------------------------------------------ thread API

  void spawn_thread(std::function<void()> fn) {
    Ctl* self = t_self;
    Ctl* child = nullptr;
    {
      std::lock_guard<std::mutex> lk(hm_);
      if (static_cast<int>(threads_.size()) >= opt.max_threads)
        throw std::logic_error("mcheck: max_threads exceeded");
      threads_.push_back(std::make_unique<Ctl>());
      child = threads_.back().get();
      child->tid = static_cast<int>(threads_.size()) - 1;
      child->fn = std::move(fn);
      child->parked = true;  // logically parked at kStart until granted
    }
    child->thread = std::thread([this, child] { thread_main(*child); });
    announce_and_park(*self, OpKind::kSpawn, 0, "spawn");
  }

  void join_children_op() {
    announce_and_park(*t_self, OpKind::kJoin, 0, "join_children");
    // Granted only once every other thread is kDone (enabled_locked), so on
    // return the body may safely destroy state the children referenced.
  }

  void fail(std::string what) {
    {
      std::lock_guard<std::mutex> lk(hm_);
      if (!failed_) {
        failed_ = true;
        failure_ = std::move(what);
      }
    }
    throw ModelFailure{};  // unwind to thread_main; hooks keep parking
  }

  /// Entry point of every controlled thread (tid 0 runs the body).
  void thread_main(Ctl& self) {
    t_impl = this;
    t_self = &self;
    announce_and_park(self, OpKind::kStart, 0,
                      self.tid == 0 ? "body start" : "thread start");
    try {
      if (self.tid == 0)
        body();
      else
        self.fn();
    } catch (const ModelFailure&) {
      // recorded by fail()
    } catch (const AbortSchedule&) {
      // schedule drained
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lk(hm_);
      if (!failed_) {
        failed_ = true;
        failure_ =
            std::string("uncaught exception in model thread: ") + e.what();
      }
    }
    t_self = nullptr;
    t_impl = nullptr;
    std::lock_guard<std::mutex> lk(hm_);
    self.op = OpKind::kDone;
    self.parked = true;
    self.runnable = false;
    hcv_.notify_all();
  }

  // -------------------------------------------------------------- scheduler

  /// Wakes `tid` with the turn (materializing grant-time verdicts) and
  /// blocks until it parks again. Caller holds lk.
  void grant(std::unique_lock<std::mutex>& lk, int tid, bool force = false) {
    Ctl& c = *threads_[static_cast<std::size_t>(tid)];
    if (c.op == OpKind::kTryLock) c.try_verdict = mutex_owner_.count(c.obj) == 0;
    if (c.op == OpKind::kCvBlock) c.woke_by_timeout = !c.has_token;
    c.force_abort = force;
    c.runnable = true;
    hcv_.notify_all();
    hcv_.wait(lk, [&] {
      if (c.runnable) return false;  // grant not yet consumed
      for (const auto& t : threads_)
        if (!t->parked) return false;
      return true;
    });
  }

  /// Drain policy after a failure: keep scheduling cooperatively so every
  /// thread unwinds (or finishes) under full control — children before the
  /// body, so the body never destroys state live children still reference.
  /// Returns the tid to grant and whether to force-abort it.
  std::pair<int, bool> pick_drain_locked() {
    // 1. An enabled child (highest tid first: latest spawned, least depended
    //    upon). Skip children spinning in a hopeless cv loop — granting
    //    them again makes no progress; force-abort handles them below once
    //    nothing else can run.
    for (auto it = threads_.rbegin(); it != threads_.rend(); ++it) {
      Ctl& c = **it;
      if (c.tid == 0 || c.op == OpKind::kDone || !enabled_locked(c)) continue;
      if (c.op == OpKind::kCvBlock && !c.has_token && !c.timed_wait &&
          c.drain_spurious > kCvSpinLimit)
        continue;
      return {c.tid, false};
    }
    // 2. The body, unless it is itself stuck in a hopeless cv spin while
    //    children are still alive (its spin-abort is gated on the children
    //    being done, so re-granting it would loop forever).
    Ctl& root = *threads_[0];
    if (root.op != OpKind::kDone && enabled_locked(root)) {
      const bool hopeless_spin = root.op == OpKind::kCvBlock &&
                                 !root.has_token && !root.timed_wait &&
                                 root.drain_spurious > kCvSpinLimit &&
                                 !children_done_locked();
      if (!hopeless_spin) return {0, false};
    }
    // 3. Force-abort: a thread wedged at kAcquire (lock held by another
    //    wedged thread, or a self-relock). It resumes by throwing before
    //    claiming model ownership. Prefer children; require no exception
    //    in flight (a throw would be swallowed and the thread would fall
    //    through into a bogus claim mid-unwind). Also retry cv-spinners:
    //    granted once more they recheck the spin limit and unwind.
    for (auto it = threads_.rbegin(); it != threads_.rend(); ++it) {
      Ctl& c = **it;
      if (c.op == OpKind::kAcquire && !c.in_unwind) return {c.tid, true};
    }
    for (auto it = threads_.rbegin(); it != threads_.rend(); ++it) {
      Ctl& c = **it;
      if (c.op == OpKind::kCvBlock && enabled_locked(c)) return {c.tid, false};
    }
    return {-1, false};
  }

  /// Runs one complete schedule (execution). Returns true when another
  /// execution should follow (a new DFS branch remains), false when the
  /// bounded space is exhausted or exploration must stop.
  bool run_one_schedule(ExploreResult& result) {
    // Fresh per-run state.
    threads_.clear();
    obj_ids_.clear();
    next_obj_id_ = 1;
    mutex_owner_.clear();
    cv_waiters_.clear();
    draining_ = false;
    failed_ = false;
    deadlock_ = false;
    failure_.clear();
    fatal_.clear();
    run_trace_.clear();

    threads_.push_back(std::make_unique<Ctl>());
    Ctl* root = threads_[0].get();
    root->parked = true;
    root->thread = std::thread([this, root] { thread_main(*root); });

    std::size_t depth = 0;
    int prev_running = -1;
    int preemptions = 0;
    std::uint64_t drain_steps = 0;

    {
      std::unique_lock<std::mutex> lk(hm_);
      for (;;) {
        hcv_.wait(lk, [&] {
          for (const auto& c : threads_)
            if (!c->parked) return false;
          return true;
        });

        if (failed_ && !draining_) draining_ = true;

        bool all_done = true;
        for (const auto& c : threads_)
          if (c->op != OpKind::kDone) all_done = false;
        if (all_done) break;

        if (draining_) {
          // A drain that cannot finish means threads are wedged beyond
          // recovery: they cannot be joined, so the throw below will hit
          // std::terminate via ~std::thread. Print the diagnosis first —
          // otherwise the terminate masks it entirely.
          const auto [tid, force] = pick_drain_locked();
          if (++drain_steps > opt.max_steps + 10000 || tid < 0) {
            std::string why = tid < 0 ? "mcheck: no drainable thread"
                                      : "mcheck: drain did not converge";
            why += " (model contract violation);";
            for (const auto& c : threads_)
              if (c->op != OpKind::kDone)
                why += " [t" + std::to_string(c->tid) + " at " + c->op_desc +
                       "]";
            std::fprintf(stderr, "%s\n", why.c_str());
            throw std::logic_error(why);
          }
          grant(lk, tid, force);
          continue;
        }

        // ---- snapshot the state for this decision point
        std::map<int, OpSig> ops;
        std::vector<int> enabled;
        for (const auto& c : threads_) {
          ops[c->tid] = {c->op, c->obj};
          if (c->op != OpKind::kDone && enabled_locked(*c))
            enabled.push_back(c->tid);
        }
        if (enabled.empty()) {
          std::ostringstream why;
          why << "deadlock: no schedulable thread;";
          for (const auto& c : threads_)
            if (c->op != OpKind::kDone)
              why << " [t" << c->tid << " blocked at " << c->op_desc << "]";
          failed_ = true;
          deadlock_ = true;
          failure_ = why.str();
          draining_ = true;
          continue;
        }

        ++steps_;
        if (run_trace_.size() >= opt.max_steps) {
          failed_ = true;
          failure_ = "max_steps exceeded (livelock or runaway model)";
          draining_ = true;
          continue;
        }

        // ---- pick the next thread: replay > revisit > new node
        int pick = -1;
        if (!replay_.empty()) {
          if (depth < replay_.size()) {
            pick = replay_[depth];
            if (std::find(enabled.begin(), enabled.end(), pick) ==
                enabled.end()) {
              // Drain first so the controlled threads can be joined; the
              // error is thrown after teardown instead of through it.
              fatal_ = "mcheck replay diverged: thread " +
                       std::to_string(pick) + " not schedulable at step " +
                       std::to_string(depth);
              failed_ = true;
              draining_ = true;
              continue;
            }
          } else {
            // Prefix consumed on a non-failing replay: finish the run
            // deterministically.
            pick = enabled.front();
          }
        } else if (depth < path_.size()) {
          // Revisiting the shared prefix of a previous execution: verify
          // determinism, then retake the recorded branch (the deepest node
          // holds the newly chosen branch for this execution).
          Node& node = *path_[depth];
          if (node.ops != ops) {
            // The usual culprit: first-execution-only work such as a
            // function-local static initializing under a lock. Drain so the
            // threads can be joined, then throw from the scheduler's frame.
            std::string diff;
            for (const auto& [tid, sig] : ops) {
              const auto prev = node.ops.find(tid);
              if (prev == node.ops.end() || !(prev->second == sig))
                diff += " t" + std::to_string(tid);
            }
            fatal_ =
                "mcheck: nondeterministic model body (pending ops differ "
                "between executions at step " +
                std::to_string(depth) + "; divergent:" + diff +
                " — pre-warm function-local statics before explore())";
            failed_ = true;
            draining_ = true;
            continue;
          }
          pick = node.chosen;
        } else {
          auto node = std::make_unique<Node>();
          node->ops = ops;
          if (depth > 0) {
            // Inherit the sleep set: parent's sleepers plus its
            // already-explored siblings, minus anything dependent on the
            // transition that got us here (a dependent execution wakes a
            // sleeper — the commutativity argument no longer applies).
            const Node& parent = *path_[depth - 1];
            const OpSig& taken = parent.ops.at(parent.chosen);
            for (const auto& entry : parent.sleep)
              if (!dependent(entry.second, taken)) node->sleep.push_back(entry);
            for (const int done : parent.tried) {
              const OpSig& sig = parent.ops.at(done);
              if (!dependent(sig, taken)) node->sleep.emplace_back(done, sig);
            }
          }
          const bool bound_hit = opt.preemption_bound >= 0 &&
                                 preemptions >= opt.preemption_bound;
          const bool prev_enabled =
              prev_running >= 0 &&
              std::find(enabled.begin(), enabled.end(), prev_running) !=
                  enabled.end();
          if (bound_hit && prev_enabled) {
            // Out of preemption budget: the only choice is to keep running
            // the current thread (voluntary switches remain free).
            node->candidates = {prev_running};
          } else {
            node->candidates = enabled;
            // Deterministic Fisher-Yates keyed by (seed, depth)...
            std::uint64_t h = mix64(opt.seed ^ (depth * 0x9e3779b9ULL));
            for (std::size_t i = node->candidates.size(); i > 1; --i) {
              h = mix64(h);
              std::swap(node->candidates[i - 1], node->candidates[h % i]);
            }
            // ...but explore the preemption-free continuation first so the
            // cheapest schedules come before bound-consuming ones.
            if (prev_enabled) {
              auto at = std::find(node->candidates.begin(),
                                  node->candidates.end(), prev_running);
              std::rotate(node->candidates.begin(), at, at + 1);
            }
          }
          node->chosen = -1;
          for (const int cand : node->candidates) {
            if (node->asleep(cand)) continue;
            node->chosen = cand;
            break;
          }
          if (node->chosen < 0) {
            // Every candidate is asleep: this state was fully covered in an
            // earlier sibling subtree. The in-flight execution still has to
            // run to completion; do so without branching here.
            node->redundant = true;
            node->chosen = node->candidates.front();
          }
          path_.push_back(std::move(node));
          pick = path_.back()->chosen;
        }

        if (prev_running >= 0 && pick != prev_running &&
            std::find(enabled.begin(), enabled.end(), prev_running) !=
                enabled.end())
          ++preemptions;  // involuntary switch: prev could have continued

        run_trace_.push_back(pick);
        ++depth;
        prev_running = pick;
        grant(lk, pick);
      }
    }

    for (auto& c : threads_)
      if (c->thread.joinable()) c->thread.join();

    if (!fatal_.empty()) throw std::logic_error(fatal_);

    ++schedules_;
    result.schedules = schedules_;
    result.steps = steps_;
    {
      std::ostringstream tr;
      for (std::size_t i = 0; i < run_trace_.size(); ++i) {
        if (i != 0) tr << ".";
        tr << run_trace_[i];
      }
      result.trace = tr.str();
    }
    if (failed_) {
      result.failed = true;
      result.deadlock = deadlock_;
      result.failure = failure_;
      return false;
    }
    if (!replay_.empty()) return false;  // replay runs exactly once

    // ---- backtrack: advance the deepest node with an unexplored branch.
    while (!path_.empty()) {
      Node& node = *path_.back();
      if (!node.redundant) {
        node.tried.insert(node.chosen);
        int next = -1;
        for (int cand : node.candidates) {
          if (node.tried.count(cand) != 0 || node.asleep(cand)) continue;
          next = cand;
          break;
        }
        if (next != -1) {
          node.chosen = next;
          return true;  // re-execute down the new branch
        }
      }
      path_.pop_back();
    }
    return false;  // schedule tree exhausted
  }
};

ExplorerImpl* g_active = nullptr;

}  // namespace

ExploreResult explore(const ExploreOptions& options,
                      const std::function<void()>& body) {
  if (g_active != nullptr || t_self != nullptr)
    throw std::logic_error("mcheck::explore does not nest");

  ExplorerImpl impl;
  impl.opt = options;
  impl.body = body;
  if (!options.replay.empty()) {
    std::istringstream in(options.replay);
    std::string tok;
    while (std::getline(in, tok, '.'))
      if (!tok.empty()) impl.replay_.push_back(std::stoi(tok));
  }

  sim::SyncObserver* previous = sim::set_sync_observer(&impl);
  g_active = &impl;

  ExploreResult result;
  try {
    for (;;) {
      const bool more = impl.run_one_schedule(result);
      if (result.failed || !more) {
        result.exhausted = !result.failed && impl.replay_.empty();
        break;
      }
      if (impl.schedules_ >= options.max_schedules) break;
    }
  } catch (...) {
    g_active = nullptr;
    sim::set_sync_observer(previous);
    throw;
  }
  g_active = nullptr;
  sim::set_sync_observer(previous);
  return result;
}

void spawn(std::function<void()> fn) {
  if (t_impl == nullptr)
    throw std::logic_error("mcheck::spawn outside a model body");
  t_impl->spawn_thread(std::move(fn));
}

void join_children() {
  if (t_impl == nullptr)
    throw std::logic_error("mcheck::join_children outside a model body");
  t_impl->join_children_op();
}

void model_assert(bool ok, const char* what) {
  if (ok) return;
  if (t_impl == nullptr)
    throw std::logic_error(std::string("model_assert outside explore(): ") +
                           what);
  t_impl->fail(std::string("model_assert failed: ") + what);
}

bool under_exploration() noexcept { return t_self != nullptr; }

}  // namespace cricket::mcheck
