// Whole-run lock-order graph: lockdep-style potential-deadlock detection.
//
// Installed as the process SyncObserver (CRICKET_LOCKCHECK=1 or
// programmatically), LockGraph watches every sim::Mutex acquire/release and
// CondVar re-acquire and accumulates *held-before* edges between lock
// classes: an edge A -> B means some thread acquired a B-class mutex while
// holding an A-class mutex. A cycle in that graph is a potential deadlock —
// two call paths that order the same lock classes differently — and is
// reported even if no run ever actually deadlocked, which is the whole
// point: TSan only sees interleavings that happened; the graph covers every
// ordering the test suite ever exhibited, in aggregate.
//
// Lock classes: a mutex's identity is its construction site
// (sim::Mutex::birth), so all instances of `CallBatcher::mu_` form one
// class no matter how many batchers a test creates. Class identity is a
// plain "file:line" string, which makes per-process edge dumps mergeable
// across the whole suite (tools/lock_graph.py). Same-instance recursive
// lock attempts — a guaranteed self-deadlock — are counted and reported
// separately and immediately.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/annotations.hpp"

namespace cricket::mcheck {

class LockGraph : public sim::SyncObserver {
 public:
  struct Edge {
    std::string from;       // held lock class ("file:line" of its birth)
    std::string to;         // acquired lock class
    std::string from_site;  // sample acquisition site of the held lock
    std::string to_site;    // sample acquisition site of the inner lock
    std::uint64_t count = 0;
  };
  /// One strongly connected component with >1 node (or a self-edge): the
  /// lock classes involved and the edges that close the cycle.
  struct Cycle {
    std::vector<std::string> nodes;
    std::vector<Edge> edges;
  };

  LockGraph() = default;
  ~LockGraph() override;

  /// Replaces the process sync observer with this graph (remembering the
  /// previous observer for uninstall). Install only at quiescent points.
  void install();
  void uninstall();
  [[nodiscard]] bool installed() const noexcept { return installed_; }

  [[nodiscard]] std::vector<Edge> edges() const;
  [[nodiscard]] std::vector<Cycle> cycles() const;
  /// Recursive same-instance lock attempts observed (immediate deadlock).
  [[nodiscard]] std::uint64_t self_deadlocks() const;

  /// Human-readable cycle report ("" when the graph is acyclic).
  [[nodiscard]] std::string report() const;
  /// Writes {"edges": [...], "self_deadlocks": N} for tools/lock_graph.py.
  bool dump_json(const std::string& path) const;

  /// CRICKET_LOCKCHECK=1: constructs + installs a process-lifetime graph
  /// (leaked deliberately: hooks may still fire during static teardown) and
  /// returns it; nullptr when the env does not ask for lock checking.
  static LockGraph* install_from_env();
  /// End-of-process bookkeeping for the env-installed graph: dumps the edge
  /// set to $CRICKET_LOCKCHECK_DIR/lockgraph-<pid>.json when that directory
  /// is configured, prints the cycle report to stderr, and returns the
  /// number of cycles (callers exit nonzero on >0).
  [[nodiscard]] int finalize(std::ostream& err) const;

  // SyncObserver taps. Public only because the wrappers invoke them.
  void lock_pending(sim::Mutex& mu, const std::source_location& loc) override;
  void lock_acquired(sim::Mutex& mu, const std::source_location& loc) override;
  void try_lock_result(sim::Mutex& mu, bool acquired,
                       const std::source_location& loc) override;
  void unlocked(sim::Mutex& mu, const std::source_location& loc) override;
  void cv_wait_begin(sim::CondVar& cv, sim::Mutex& mu,
                     const std::source_location& loc) override;
  void cv_wait_done(sim::CondVar& cv, sim::Mutex& mu,
                    const std::source_location& loc) override;

 private:
  struct EdgeData {
    std::uint64_t count = 0;
    std::string from_site;
    std::string to_site;
  };

  int intern_locked(const std::string& name);
  void record_acquire(sim::Mutex& mu, const std::source_location& loc);
  void record_release(sim::Mutex& mu);

  // The graph's own state is guarded by a plain std::mutex: the observer
  // must never recurse into the instrumented sim::Mutex while recording.
  mutable std::mutex mu_;
  std::map<std::string, int> node_ids_;
  std::vector<std::string> node_names_;
  std::map<std::pair<int, int>, EdgeData> edges_;
  std::uint64_t self_deadlocks_ = 0;
  std::vector<std::string> self_deadlock_sites_;

  sim::SyncObserver* previous_ = nullptr;
  bool installed_ = false;
};

}  // namespace cricket::mcheck
