// wiretaint: type-level taint tracking for wire-decoded scalars.
//
// Every integer that crosses the RPC trust boundary is indistinguishable
// from a trusted one the moment decode returns — unless the type system
// remembers where it came from. Untrusted<T> is that memory: a
// non-convertible wrapper whose arithmetic saturates instead of wrapping
// and whose ONLY exits back to plain T are
//
//   validate(max)            0 <= v <= max, else throws TaintError
//   validate_range(lo, hi)   lo <= v <= hi, else throws TaintError
//   validate_index(extent)   0 <= v < extent, else throws TaintError
//   trust_unchecked(reason)  unconditional, greppable escape hatch
//
// TaintError derives from XdrError, so the RPC dispatch layer maps it to
// kGarbageArgs — a hostile scalar produces a typed in-band error, never a
// crash. trust_unchecked sites are enforced by tools/taint_audit.py: each
// must appear in tools/taint_allowlist.json with a justification string
// that the call site's reason text contains (mirrors the mcheck
// "no-escapes" discipline).
//
// Comparisons against plain integers are allowed and do NOT un-taint: a
// bool tells you which side of a bound the value is on without ever
// producing the raw scalar. Arithmetic between Untrusted and plain values
// stays Untrusted (taint propagates); + - * saturate at the type's range
// and / refuses division by zero with TaintError, so bound checks written
// in the taint domain cannot be defeated by overflow.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>

#include "xdr/xdr.hpp"

namespace cricket::xdr {

/// Thrown when a wire-derived scalar fails validation (or is divided by
/// zero inside the taint domain). Derives from XdrError so the server
/// dispatch path reports kGarbageArgs, the same class of reply a malformed
/// argument body gets.
class TaintError : public XdrError {
 public:
  using XdrError::XdrError;
};

namespace detail {
template <typename U>
inline constexpr bool kTaintable =
    std::is_integral_v<U> && !std::is_same_v<U, bool>;
}  // namespace detail

/// A scalar that arrived off the wire and has not been validated yet.
/// Non-convertible: there is no operator T and no accessor returning T
/// other than the four documented exits, so "removing a validate call"
/// on a swept path is a compile error, not a runtime surprise.
template <typename T>
class Untrusted {
  static_assert(detail::kTaintable<T>,
                "Untrusted<T> wraps integer scalars only");

 public:
  constexpr Untrusted() = default;
  /// Explicit on purpose: wrapping a trusted value is a visible act, and
  /// nothing implicitly becomes Untrusted by accident.
  explicit constexpr Untrusted(T v) noexcept : v_(v) {}

  // ---- Validating exits (the lattice's only downward edges) ----

  /// Proves 0 <= v <= max_inclusive, else throws TaintError.
  [[nodiscard]] constexpr T validate(T max_inclusive,
                                     const char* what = "wire scalar") const {
    if (negative() || std::cmp_greater(v_, max_inclusive)) {
      throw TaintError(std::string(what) + ": value " + std::to_string(v_) +
                       " exceeds bound " + std::to_string(max_inclusive));
    }
    return v_;
  }

  /// Proves lo <= v <= hi, else throws TaintError.
  [[nodiscard]] constexpr T validate_range(
      T lo, T hi, const char* what = "wire scalar") const {
    if (v_ < lo || v_ > hi) {
      throw TaintError(std::string(what) + ": value " + std::to_string(v_) +
                       " outside [" + std::to_string(lo) + ", " +
                       std::to_string(hi) + "]");
    }
    return v_;
  }

  /// Proves 0 <= v < extent (a valid index into `extent` elements),
  /// else throws TaintError.
  [[nodiscard]] constexpr T validate_index(
      T extent, const char* what = "wire index") const {
    if (negative() || std::cmp_greater_equal(v_, extent)) {
      throw TaintError(std::string(what) + ": index " + std::to_string(v_) +
                       " out of range for extent " + std::to_string(extent));
    }
    return v_;
  }

  /// Non-throwing sugar over validate() for in-band refusal paths (quota
  /// rejections, allocator errors) where the caller wants a status code
  /// instead of a kGarbageArgs reply. Not a new lattice exit: the bound
  /// check is identical to validate().
  [[nodiscard]] constexpr bool try_validate(T max_inclusive,
                                            T& out) const noexcept {
    if (negative() || std::cmp_greater(v_, max_inclusive)) return false;
    out = v_;
    return true;
  }

  /// The escape hatch. Unconditionally returns the raw value; the reason
  /// string is what tools/taint_audit.py matches against the allowlist.
  /// Use only where a downstream layer refuses bad values in-band (e.g. a
  /// table lookup that rejects unknown handles).
  [[nodiscard]] constexpr T trust_unchecked(
      const char* /*reason*/) const noexcept {
    return v_;
  }

  // ---- Taint-propagating arithmetic (saturating, never wrapping) ----

  friend constexpr Untrusted operator+(Untrusted a, Untrusted b) noexcept {
    return Untrusted(sat_add(a.v_, b.v_));
  }
  friend constexpr Untrusted operator+(Untrusted a, T b) noexcept {
    return Untrusted(sat_add(a.v_, b));
  }
  friend constexpr Untrusted operator+(T a, Untrusted b) noexcept {
    return Untrusted(sat_add(a, b.v_));
  }
  friend constexpr Untrusted operator-(Untrusted a, Untrusted b) noexcept {
    return Untrusted(sat_sub(a.v_, b.v_));
  }
  friend constexpr Untrusted operator-(Untrusted a, T b) noexcept {
    return Untrusted(sat_sub(a.v_, b));
  }
  friend constexpr Untrusted operator-(T a, Untrusted b) noexcept {
    return Untrusted(sat_sub(a, b.v_));
  }
  friend constexpr Untrusted operator*(Untrusted a, Untrusted b) noexcept {
    return Untrusted(sat_mul(a.v_, b.v_));
  }
  friend constexpr Untrusted operator*(Untrusted a, T b) noexcept {
    return Untrusted(sat_mul(a.v_, b));
  }
  friend constexpr Untrusted operator*(T a, Untrusted b) noexcept {
    return Untrusted(sat_mul(a, b.v_));
  }

  /// Division inside the taint domain: a hostile zero divisor is a typed
  /// error, not UB. Signed min / -1 saturates like the other operators.
  friend constexpr Untrusted operator/(Untrusted a, Untrusted b) {
    return Untrusted(checked_div(a.v_, b.v_));
  }
  friend constexpr Untrusted operator/(Untrusted a, T b) {
    return Untrusted(checked_div(a.v_, b));
  }
  friend constexpr Untrusted operator/(T a, Untrusted b) {
    return Untrusted(checked_div(a, b.v_));
  }

  // ---- Comparisons: allowed, sign-safe, and never un-taint ----

  friend constexpr bool operator==(const Untrusted&,
                                   const Untrusted&) = default;
  friend constexpr bool operator<(Untrusted a, Untrusted b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(Untrusted a, Untrusted b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Untrusted a, Untrusted b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(Untrusted a, Untrusted b) noexcept {
    return a.v_ >= b.v_;
  }

  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator==(const Untrusted& a, U b) noexcept {
    return std::cmp_equal(a.v_, b);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator<(const Untrusted& a, U b) noexcept {
    return std::cmp_less(a.v_, b);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator<(U a, const Untrusted& b) noexcept {
    return std::cmp_less(a, b.v_);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator<=(const Untrusted& a, U b) noexcept {
    return std::cmp_less_equal(a.v_, b);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator<=(U a, const Untrusted& b) noexcept {
    return std::cmp_less_equal(a, b.v_);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator>(const Untrusted& a, U b) noexcept {
    return std::cmp_greater(a.v_, b);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator>(U a, const Untrusted& b) noexcept {
    return std::cmp_greater(a, b.v_);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator>=(const Untrusted& a, U b) noexcept {
    return std::cmp_greater_equal(a.v_, b);
  }
  template <typename U>
    requires detail::kTaintable<U>
  friend constexpr bool operator>=(U a, const Untrusted& b) noexcept {
    return std::cmp_greater_equal(a, b.v_);
  }

  // ---- Wire codec: taint starts at decode, encode passes through ----

  friend void xdr_encode(Encoder& enc, const Untrusted& v) {
    xdr_encode(enc, v.v_);
  }
  friend void xdr_decode(Decoder& dec, Untrusted& v) { xdr_decode(dec, v.v_); }

 private:
  [[nodiscard]] constexpr bool negative() const noexcept {
    if constexpr (std::is_signed_v<T>) return v_ < 0;
    return false;
  }

  static constexpr T sat_add(T a, T b) noexcept {
    T r{};
    if (!__builtin_add_overflow(a, b, &r)) return r;
    if constexpr (std::is_signed_v<T>) {
      return b > 0 ? std::numeric_limits<T>::max()
                   : std::numeric_limits<T>::min();
    }
    return std::numeric_limits<T>::max();
  }
  static constexpr T sat_sub(T a, T b) noexcept {
    T r{};
    if (!__builtin_sub_overflow(a, b, &r)) return r;
    if constexpr (std::is_signed_v<T>) {
      return b < 0 ? std::numeric_limits<T>::max()
                   : std::numeric_limits<T>::min();
    }
    return std::numeric_limits<T>::min();  // unsigned underflow clamps to 0
  }
  static constexpr T sat_mul(T a, T b) noexcept {
    T r{};
    if (!__builtin_mul_overflow(a, b, &r)) return r;
    if constexpr (std::is_signed_v<T>) {
      return (a < 0) != (b < 0) ? std::numeric_limits<T>::min()
                                : std::numeric_limits<T>::max();
    }
    return std::numeric_limits<T>::max();
  }
  static constexpr T checked_div(T a, T b) {
    if (b == 0) throw TaintError("tainted division by zero");
    if constexpr (std::is_signed_v<T>) {
      if (a == std::numeric_limits<T>::min() && b == T{-1}) {
        return std::numeric_limits<T>::max();
      }
    }
    return a / b;
  }

  T v_{};
};

/// Free-function form of Untrusted::try_validate, for call sites that read
/// better with the bound up front.
template <typename T>
[[nodiscard]] constexpr bool try_validate(const Untrusted<T>& v,
                                          T max_inclusive, T& out) noexcept {
  return v.try_validate(max_inclusive, out);
}

}  // namespace cricket::xdr
