#include "xdr/xdr.hpp"

#include <bit>
#include <limits>

namespace cricket::xdr {
namespace {

constexpr std::size_t padded(std::size_t n) noexcept { return (n + 3) & ~std::size_t{3}; }

}  // namespace

// --------------------------------- Encoder ---------------------------------

void Encoder::append(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void Encoder::pad_to_4() {
  while (buf_.size() % 4 != 0) buf_.push_back(0);
}

void Encoder::put_u32(std::uint32_t v) {
  const std::uint8_t be[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  append(be, 4);
}

void Encoder::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void Encoder::put_f32(float v) {
  static_assert(sizeof(float) == 4 && std::numeric_limits<float>::is_iec559);
  put_u32(std::bit_cast<std::uint32_t>(v));
}

void Encoder::put_f64(double v) {
  static_assert(sizeof(double) == 8 && std::numeric_limits<double>::is_iec559);
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void Encoder::put_opaque_fixed(std::span<const std::uint8_t> bytes) {
  append(bytes.data(), bytes.size());
  pad_to_4();
}

void Encoder::put_opaque(std::span<const std::uint8_t> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_opaque_fixed(bytes);
}

void Encoder::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  append(s.data(), s.size());
  pad_to_4();
}

// --------------------------------- Decoder ---------------------------------

const std::uint8_t* Decoder::take(std::size_t n) {
  if (n > remaining()) throw XdrError("XDR buffer underrun");
  const std::uint8_t* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

void Decoder::skip_padding(std::size_t payload_len) {
  const std::size_t pad = padded(payload_len) - payload_len;
  const std::uint8_t* p = take(pad);
  for (std::size_t i = 0; i < pad; ++i)
    if (p[i] != 0) throw XdrError("non-zero XDR padding");
}

std::uint32_t Decoder::get_u32() {
  const std::uint8_t* p = take(4);
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint64_t Decoder::get_u64() {
  const std::uint64_t hi = get_u32();
  return (hi << 32) | get_u32();
}

bool Decoder::get_bool() {
  const std::uint32_t v = get_u32();
  if (v > 1) throw XdrError("invalid XDR boolean");
  return v == 1;
}

float Decoder::get_f32() { return std::bit_cast<float>(get_u32()); }
double Decoder::get_f64() { return std::bit_cast<double>(get_u64()); }

void Decoder::get_opaque_fixed(std::span<std::uint8_t> out) {
  const std::uint8_t* p = take(out.size());
  std::memcpy(out.data(), p, out.size());
  skip_padding(out.size());
}

std::vector<std::uint8_t> Decoder::get_opaque(std::uint32_t max_len) {
  const std::uint32_t n = get_u32();
  if (n > max_len) throw XdrError("XDR opaque exceeds maximum length");
  if (n > remaining()) throw XdrError("XDR opaque exceeds buffer");
  std::vector<std::uint8_t> out(n);
  if (n > 0) get_opaque_fixed(out);
  else skip_padding(0);
  return out;
}

std::string Decoder::get_string(std::uint32_t max_len) {
  const std::uint32_t n = get_u32();
  if (n > max_len) throw XdrError("XDR string exceeds maximum length");
  if (n > remaining()) throw XdrError("XDR string exceeds buffer");
  const std::uint8_t* p = take(n);
  std::string out(reinterpret_cast<const char*>(p), n);
  skip_padding(n);
  return out;
}

void Decoder::skip_opaque(std::uint32_t max_len) {
  const std::uint32_t n = get_u32();
  if (n > max_len) throw XdrError("XDR opaque exceeds maximum length");
  if (n > remaining()) throw XdrError("XDR opaque exceeds buffer");
  (void)take(n);
  skip_padding(n);
}

void Decoder::expect_exhausted() const {
  if (!exhausted()) throw XdrError("trailing bytes after XDR message");
}

}  // namespace cricket::xdr
