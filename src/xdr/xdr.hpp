// XDR: External Data Representation (RFC 4506).
//
// The wire format beneath ONC RPC. All quantities are multiples of four
// bytes, big-endian, with implicit zero padding. This is a complete,
// from-scratch implementation covering every type the Cricket RPCL interface
// uses: integers, hypers, floats, booleans, enums, fixed/variable opaques,
// strings, fixed/variable arrays, and optionals.
//
// Extension point: user-defined structs serialize via free functions
//   void xdr_encode(Encoder&, const T&);
//   void xdr_decode(Decoder&, T&);
// found by ADL — the rpclgen code generator emits exactly these.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cricket::xdr {

/// Thrown on malformed input: truncated buffers, over-limit lengths,
/// non-zero padding, invalid booleans.
class XdrError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes values into a growable byte buffer per RFC 4506.
/// Not thread-safe (one encoder per message).
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void put_u32(std::uint32_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u32(v ? 1u : 0u); }
  void put_f32(float v);
  void put_f64(double v);

  /// Fixed-length opaque: bytes plus zero padding to a 4-byte boundary.
  void put_opaque_fixed(std::span<const std::uint8_t> bytes);
  /// Variable-length opaque: u32 length prefix, then fixed opaque.
  void put_opaque(std::span<const std::uint8_t> bytes);
  /// String: identical wire format to variable opaque.
  void put_string(std::string_view s);

  template <typename E>
    requires std::is_enum_v<E>
  void put_enum(E e) {
    put_i32(static_cast<std::int32_t>(e));
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  void clear() noexcept { buf_.clear(); }

 private:
  void append(const void* data, std::size_t n);
  void pad_to_4();

  std::vector<std::uint8_t> buf_;
};

/// Deserializes values from a fixed byte buffer per RFC 4506. Every read is
/// bounds-checked; padding bytes are verified to be zero (strict mode).
/// Does not own the buffer. Not thread-safe.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::int32_t get_i32() {
    return static_cast<std::int32_t>(get_u32());
  }
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }
  [[nodiscard]] bool get_bool();
  [[nodiscard]] float get_f32();
  [[nodiscard]] double get_f64();

  /// Reads exactly `n` opaque bytes plus padding.
  void get_opaque_fixed(std::span<std::uint8_t> out);
  /// Reads a length-prefixed opaque; rejects lengths above `max_len`.
  [[nodiscard]] std::vector<std::uint8_t> get_opaque(
      std::uint32_t max_len = kDefaultMaxLen);
  [[nodiscard]] std::string get_string(std::uint32_t max_len = kDefaultMaxLen);
  /// Advances past a length-prefixed opaque without materialising the body
  /// (same validation as get_opaque, zero allocation) — for header peeks.
  void skip_opaque(std::uint32_t max_len = kDefaultMaxLen);

  template <typename E>
    requires std::is_enum_v<E>
  [[nodiscard]] E get_enum() {
    return static_cast<E>(get_i32());
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

  /// Fails (throws XdrError) unless the whole buffer was consumed — catches
  /// messages with trailing garbage.
  void expect_exhausted() const;

  /// Default cap for variable-length fields. Cricket ships cubin images and
  /// device-memory payloads inline, so this is deliberately large (1 GiB).
  static constexpr std::uint32_t kDefaultMaxLen = 1u << 30;

 private:
  const std::uint8_t* take(std::size_t n);
  void skip_padding(std::size_t payload_len);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// ADL-extensible encode/decode entry points for composite types.
// ---------------------------------------------------------------------------

inline void xdr_encode(Encoder& enc, std::uint32_t v) { enc.put_u32(v); }
inline void xdr_encode(Encoder& enc, std::int32_t v) { enc.put_i32(v); }
inline void xdr_encode(Encoder& enc, std::uint64_t v) { enc.put_u64(v); }
inline void xdr_encode(Encoder& enc, std::int64_t v) { enc.put_i64(v); }
inline void xdr_encode(Encoder& enc, bool v) { enc.put_bool(v); }
inline void xdr_encode(Encoder& enc, float v) { enc.put_f32(v); }
inline void xdr_encode(Encoder& enc, double v) { enc.put_f64(v); }
inline void xdr_encode(Encoder& enc, const std::string& v) {
  enc.put_string(v);
}
inline void xdr_encode(Encoder& enc, const std::vector<std::uint8_t>& v) {
  enc.put_opaque(v);
}
template <typename E>
  requires std::is_enum_v<E>
void xdr_encode(Encoder& enc, E v) {
  enc.put_enum(v);
}

inline void xdr_decode(Decoder& dec, std::uint32_t& v) { v = dec.get_u32(); }
inline void xdr_decode(Decoder& dec, std::int32_t& v) { v = dec.get_i32(); }
inline void xdr_decode(Decoder& dec, std::uint64_t& v) { v = dec.get_u64(); }
inline void xdr_decode(Decoder& dec, std::int64_t& v) { v = dec.get_i64(); }
inline void xdr_decode(Decoder& dec, bool& v) { v = dec.get_bool(); }
inline void xdr_decode(Decoder& dec, float& v) { v = dec.get_f32(); }
inline void xdr_decode(Decoder& dec, double& v) { v = dec.get_f64(); }
inline void xdr_decode(Decoder& dec, std::string& v) { v = dec.get_string(); }
inline void xdr_decode(Decoder& dec, std::vector<std::uint8_t>& v) {
  v = dec.get_opaque();
}
template <typename E>
  requires std::is_enum_v<E>
void xdr_decode(Decoder& dec, E& v) {
  v = dec.get_enum<E>();
}

/// Variable-length array<T>: u32 count then each element.
template <typename T>
  requires(!std::is_same_v<T, std::uint8_t>)
void xdr_encode(Encoder& enc, const std::vector<T>& v) {
  enc.put_u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& e : v) xdr_encode(enc, e);
}

/// Smallest possible wire encoding of one element of T, for pre-allocation
/// sanity checks. 8 for 8-byte scalars; 4 for everything else (4-byte
/// scalars, enums, and any compound type, whose cheapest encoding still
/// carries at least one 4-byte word: a count, a discriminant, or a field).
template <typename T>
consteval std::size_t xdr_min_wire_size() {
  if constexpr (std::is_same_v<T, std::uint64_t> ||
                std::is_same_v<T, std::int64_t> ||
                std::is_same_v<T, double>) {
    return 8;
  } else {
    return 4;
  }
}

template <typename T>
  requires(!std::is_same_v<T, std::uint8_t>)
void xdr_decode(Decoder& dec, std::vector<T>& v) {
  const std::uint32_t n = dec.get_u32();
  // Guard against hostile counts BEFORE any allocation: n elements need at
  // least n * min-element-size bytes, so a 4-byte count on a short message
  // can never trigger a multi-GiB reserve. Strictly `>` with no slack — a
  // count the buffer cannot possibly satisfy is malformed, full stop.
  if (static_cast<std::size_t>(n) > dec.remaining() / xdr_min_wire_size<T>())
    throw XdrError("array count exceeds remaining buffer");
  v.clear();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    T e{};
    xdr_decode(dec, e);
    v.push_back(std::move(e));
  }
}

/// Fixed-length opaque: std::array<uint8_t, N> (no length prefix).
template <std::size_t N>
void xdr_encode(Encoder& enc, const std::array<std::uint8_t, N>& v) {
  enc.put_opaque_fixed(v);
}

template <std::size_t N>
void xdr_decode(Decoder& dec, std::array<std::uint8_t, N>& v) {
  dec.get_opaque_fixed(v);
}

/// Fixed-length array<T, N>: elements only, no count on the wire.
template <typename T, std::size_t N>
  requires(!std::is_same_v<T, std::uint8_t>)
void xdr_encode(Encoder& enc, const std::array<T, N>& v) {
  for (const auto& e : v) xdr_encode(enc, e);
}

template <typename T, std::size_t N>
  requires(!std::is_same_v<T, std::uint8_t>)
void xdr_decode(Decoder& dec, std::array<T, N>& v) {
  for (auto& e : v) xdr_decode(dec, e);
}

/// Optional<T>: the RFC's `*T` pointer syntax — bool discriminant + value.
template <typename T>
void xdr_encode(Encoder& enc, const std::optional<T>& v) {
  enc.put_bool(v.has_value());
  if (v) xdr_encode(enc, *v);
}

template <typename T>
void xdr_decode(Decoder& dec, std::optional<T>& v) {
  if (dec.get_bool()) {
    T e{};
    xdr_decode(dec, e);
    v = std::move(e);
  } else {
    v.reset();
  }
}

/// Round-trip helpers for single values.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> to_bytes(const T& value) {
  Encoder enc;
  xdr_encode(enc, value);
  return enc.take();
}

template <typename T>
[[nodiscard]] T from_bytes(std::span<const std::uint8_t> bytes) {
  Decoder dec(bytes);
  T value{};
  xdr_decode(dec, value);
  dec.expect_exhausted();
  return value;
}

}  // namespace cricket::xdr
