// Kernel-launch scheduling across Cricket sessions.
//
// The paper's closing argument (§5): because unikernels are deployed in
// large numbers, Cricket must share GPUs across many of them, "managing the
// shared access through configurable schedulers". This scheduler arbitrates
// kernel launches between sessions sharing one device:
//   * FIFO        — launches pass straight through (the default; what the
//                   evaluation used with one client).
//   * Fair share  — per-session device-time accounting; a session that has
//                   consumed more than its fair share waits (virtual time)
//                   until the others catch up or the lead is within one
//                   quantum.
#pragma once

#include <cstdint>
#include <map>

#include "sim/annotations.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::core {

enum class SchedulerPolicy { kFifo, kFairShare };

struct SchedulerStats {
  std::uint64_t launches = 0;
  sim::Nanos total_wait_ns = 0;
  sim::Nanos device_time_ns = 0;
};

class KernelScheduler {
 public:
  explicit KernelScheduler(SchedulerPolicy policy, sim::SimClock& clock,
                           sim::Nanos quantum = sim::kMillisecond)
      : policy_(policy), clock_(&clock), quantum_(quantum) {}

  void session_open(std::uint64_t session) CRICKET_EXCLUDES(mu_);
  /// Removes the session from fair-share accounting; its stats remain
  /// queryable (archived) for post-mortem analysis.
  void session_close(std::uint64_t session) CRICKET_EXCLUDES(mu_);

  /// Called before executing a session's launch; charges any scheduling
  /// delay to the virtual clock and returns it.
  sim::Nanos admit(std::uint64_t session) CRICKET_EXCLUDES(mu_);

  /// Called after a launch with the device time it consumed.
  void record_usage(std::uint64_t session, sim::Nanos device_ns)
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] SchedulerStats stats(std::uint64_t session) const
      CRICKET_EXCLUDES(mu_);
  [[nodiscard]] SchedulerPolicy policy() const noexcept { return policy_; }

 private:
  struct Session {
    sim::Nanos used_ns = 0;
    SchedulerStats stats;
  };

  SchedulerPolicy policy_;
  sim::SimClock* clock_;
  sim::Nanos quantum_;
  mutable sim::Mutex mu_;
  std::map<std::uint64_t, Session> sessions_ CRICKET_GUARDED_BY(mu_);
  std::map<std::uint64_t, SchedulerStats> archived_ CRICKET_GUARDED_BY(mu_);
};

}  // namespace cricket::core
