// Device-time scheduling across Cricket tenants and sessions.
//
// The paper's closing argument (§5): because unikernels are deployed in
// large numbers, Cricket must share GPUs across many of them, "managing the
// shared access through configurable schedulers". This scheduler arbitrates
// kernel launches and large memcpys on one device:
//   * FIFO        — work passes straight through (the default; what the
//                   evaluation used with one client).
//   * Fair share  — two-level weighted fair queueing. Level 1 groups
//                   sessions by tenant: each group accumulates virtual time
//                   at used_ns / weight, and a group whose virtual time
//                   leads the slowest group of same-or-higher priority by
//                   more than one quantum waits. Level 2 applies the same
//                   rule between a group's own sessions. A session opened
//                   without a tenant gets an implicit single-session group,
//                   which makes the two-level scheduler degenerate exactly
//                   to the historical per-session fair share.
//
// Waiting is hybrid: admit() first blocks the calling worker for a bounded
// *real* interval (max_real_block) so actively-launching laggards genuinely
// catch up — this is what makes measured throughput fair, not just
// accounted time. If they do not catch up in time (idle session, paused
// client) the residual lead is charged to the virtual clock exactly like
// the historical scheduler, which keeps the system work-conserving and
// every admit() O(quantum)-bounded. max_real_block = 0 gives a pure
// virtual-time scheduler whose admit/charge sequence is a deterministic
// function of the call sequence — the mode the determinism tests pin down.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>

#include "sim/annotations.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::core {

enum class SchedulerPolicy { kFifo, kFairShare };

struct SchedulerStats {
  std::uint64_t launches = 0;
  /// Large memcpys arbitrated via admit_transfer.
  std::uint64_t transfers = 0;
  std::uint64_t transfer_bytes = 0;
  sim::Nanos total_wait_ns = 0;
  sim::Nanos device_time_ns = 0;
};

struct SchedulerOptions {
  /// Lead a session/tenant may hold before it waits.
  sim::Nanos quantum = sim::kMillisecond;
  /// Real-time budget admit() may spend blocked waiting for laggards to
  /// catch up before falling back to charging virtual wait. 0 = never
  /// block (pure virtual time, deterministic).
  std::chrono::nanoseconds max_real_block = std::chrono::milliseconds(2);
  /// Cap on archived closed-session stats (FIFO eviction beyond this).
  std::size_t max_archived = 1024;
};

class KernelScheduler {
 public:
  KernelScheduler(SchedulerPolicy policy, sim::SimClock& clock,
                  SchedulerOptions options)
      : policy_(policy), clock_(&clock), options_(options) {}
  explicit KernelScheduler(SchedulerPolicy policy, sim::SimClock& clock,
                           sim::Nanos quantum = sim::kMillisecond)
      : KernelScheduler(policy, clock, SchedulerOptions{.quantum = quantum}) {}

  /// Opens a session in its own implicit group (historical single-level
  /// behaviour).
  void session_open(std::uint64_t session) CRICKET_EXCLUDES(mu_);
  /// Opens a session inside tenant `tenant`'s group, creating/updating the
  /// group with the given fair-share weight and priority class.
  void session_open(std::uint64_t session, std::uint64_t tenant,
                    std::uint32_t weight, std::uint32_t priority)
      CRICKET_EXCLUDES(mu_);
  /// Moves an already-open session into a tenant group (admission binds
  /// tenants after the session exists). Usage carries over, levelled so the
  /// move can never grant a fresh monopoly.
  void session_set_tenant(std::uint64_t session, std::uint64_t tenant,
                          std::uint32_t weight, std::uint32_t priority)
      CRICKET_EXCLUDES(mu_);
  /// Removes the session from fair-share accounting; its stats remain
  /// queryable (archived, bounded by options.max_archived with FIFO
  /// eviction) for post-mortem analysis.
  void session_close(std::uint64_t session) CRICKET_EXCLUDES(mu_);

  /// Called before executing a session's launch; may block (bounded) for
  /// real catch-up, charges any residual scheduling delay to the virtual
  /// clock, and returns the virtual delay.
  sim::Nanos admit(std::uint64_t session) CRICKET_EXCLUDES(mu_);
  /// Same arbitration for a large memcpy of `bytes`.
  sim::Nanos admit_transfer(std::uint64_t session, std::uint64_t bytes)
      CRICKET_EXCLUDES(mu_);

  /// Called after a launch/transfer with the device time it consumed.
  void record_usage(std::uint64_t session, sim::Nanos device_ns)
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] SchedulerStats stats(std::uint64_t session) const
      CRICKET_EXCLUDES(mu_);
  /// Closed-session archive entries evicted to honour max_archived.
  [[nodiscard]] std::uint64_t archive_evictions() const CRICKET_EXCLUDES(mu_);
  [[nodiscard]] SchedulerPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const SchedulerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Group {
    std::uint32_t weight = 1;
    std::uint32_t priority = 0;
    /// Weighted virtual time: sum of used_ns / weight.
    sim::Nanos vtime = 0;
    std::uint32_t sessions = 0;
  };
  struct Session {
    std::uint64_t group = 0;
    sim::Nanos used_ns = 0;
    SchedulerStats stats;
  };

  /// Sessions opened without a tenant live in a synthetic group keyed by
  /// the session id with this bit set (session ids are small integers, so
  /// the spaces cannot collide).
  static constexpr std::uint64_t kImplicitGroupBit = 1ull << 63;

  Session& open_locked(std::uint64_t session, std::uint64_t group,
                       std::uint32_t weight, std::uint32_t priority)
      CRICKET_REQUIRES(mu_);
  Session& find_or_create_locked(std::uint64_t session) CRICKET_REQUIRES(mu_);
  /// Excess virtual lead of `s` beyond one quantum, combining both levels;
  /// <= 0 means admit now.
  [[nodiscard]] sim::Nanos excess_lead_locked(const Session& s) const
      CRICKET_REQUIRES(mu_);
  sim::Nanos admit_locked(Session& s) CRICKET_REQUIRES(mu_);
  void archive_locked(std::uint64_t session, const SchedulerStats& stats)
      CRICKET_REQUIRES(mu_);

  SchedulerPolicy policy_;
  sim::SimClock* clock_;
  SchedulerOptions options_;
  mutable sim::Mutex mu_;
  sim::CondVar caught_up_;  // signalled by record_usage / session_close
  std::map<std::uint64_t, Group> groups_ CRICKET_GUARDED_BY(mu_);
  std::map<std::uint64_t, Session> sessions_ CRICKET_GUARDED_BY(mu_);
  std::map<std::uint64_t, SchedulerStats> archived_ CRICKET_GUARDED_BY(mu_);
  std::deque<std::uint64_t> archive_fifo_ CRICKET_GUARDED_BY(mu_);
  std::uint64_t archive_evictions_ CRICKET_GUARDED_BY(mu_) = 0;
};

}  // namespace cricket::core
