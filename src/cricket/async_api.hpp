// AsyncRemoteCudaApi: the pipelined Cricket client (rpcflow-backed).
//
// The synchronous RemoteCudaApi pays one wire round trip per forwarded CUDA
// call, reproducing the paper's single-threaded RPC bottleneck (§4.2). This
// client keeps the identical CudaApi surface but exploits that most CUDA
// calls are fire-and-forget by contract — kernel launches, async copies,
// event records — to pipeline them through an AsyncRpcChannel: the call is
// put on the wire (or into the small-call batcher) and control returns to
// the application immediately; errors surface at the next synchronization
// point as a sticky error, exactly as real CUDA reports asynchronous
// failures. Calls that return values (cudaMalloc, D2H copies, queries)
// still block for their own reply. The Cricket server executes each
// session's calls in order (ServeOptions workers = 1), so results are
// bit-identical to the synchronous client's.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "cudart/api.hpp"
#include "env/environment.hpp"
#include "rpcflow/channel.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::core {

struct AsyncClientConfig {
  /// Same client-library cost accounting as the synchronous client.
  env::ClientFlavor flavor = {};
  /// Pipeline depth / batching, typically from env::Environment::pipeline.
  env::PipelineConfig pipeline = {.enabled = true};
  /// Tenant identity presented to a multi-tenant server (AUTH_SYS
  /// machinename); empty = anonymous.
  std::string tenant{};
  /// AUTH_SYS stamp distinguishing this client from other clients of the
  /// same tenant (the duplicate-request cache and migration adoption key on
  /// the credential hash). 0 = auto-assign a process-unique value.
  std::uint32_t auth_stamp = 0;
  /// Per-call deadlines + channel resubmission; same semantics as the
  /// synchronous ClientConfig::retry.
  rpc::RetryPolicy retry{};
  /// Fresh transport after a connection-level failure or a migration
  /// redirect (point it at a migrate::RedirectingConnector to follow a
  /// live-migrated tenant to its new server).
  std::function<std::unique_ptr<rpc::Transport>()> reconnect{};
  /// Two-phase module-load negotiation against the server's
  /// content-addressed cache; same semantics as ClientConfig::module_cache
  /// (a miss transparently falls back to the full upload).
  bool module_cache = false;
};

struct AsyncClientStats {
  std::uint64_t api_calls = 0;
  std::uint64_t pipelined = 0;   // fire-and-forget calls
  std::uint64_t blocking = 0;    // calls that waited for their reply
  std::uint64_t drains = 0;      // synchronization points
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_from_device = 0;
};

class AsyncRemoteCudaApi final : public cuda::CudaApi {
 public:
  AsyncRemoteCudaApi(std::unique_ptr<rpc::Transport> transport,
                     sim::SimClock& clock, AsyncClientConfig config = {});
  ~AsyncRemoteCudaApi() override;

  cuda::Error get_device_count(int& count) override;
  cuda::Error set_device(int device) override;
  cuda::Error get_device(int& device) override;
  cuda::Error get_device_properties(cuda::DeviceInfo& info,
                                    int device) override;

  cuda::Error malloc(cuda::DevPtr& ptr, std::uint64_t size) override;
  cuda::Error free(cuda::DevPtr ptr) override;
  cuda::Error memset(cuda::DevPtr ptr, int value, std::uint64_t size) override;
  cuda::Error memcpy_h2d(cuda::DevPtr dst,
                         std::span<const std::uint8_t> src) override;
  cuda::Error memcpy_d2h(std::span<std::uint8_t> dst,
                         cuda::DevPtr src) override;
  cuda::Error memcpy_d2d(cuda::DevPtr dst, cuda::DevPtr src,
                         std::uint64_t size) override;
  cuda::Error memcpy_h2d_async(cuda::DevPtr dst,
                               std::span<const std::uint8_t> src,
                               cuda::StreamId stream) override;
  cuda::Error memcpy_d2h_async(std::span<std::uint8_t> dst, cuda::DevPtr src,
                               cuda::StreamId stream) override;

  cuda::Error stream_create(cuda::StreamId& stream) override;
  cuda::Error stream_destroy(cuda::StreamId stream) override;
  cuda::Error stream_synchronize(cuda::StreamId stream) override;
  cuda::Error device_synchronize() override;
  cuda::Error stream_wait_event(cuda::StreamId stream,
                                cuda::EventId event) override;
  cuda::Error event_create(cuda::EventId& event) override;
  cuda::Error event_destroy(cuda::EventId event) override;
  cuda::Error event_record(cuda::EventId event,
                           cuda::StreamId stream) override;
  cuda::Error event_synchronize(cuda::EventId event) override;
  cuda::Error event_elapsed_ms(float& ms, cuda::EventId start,
                               cuda::EventId stop) override;

  cuda::Error module_load(cuda::ModuleId& module,
                          std::span<const std::uint8_t> image) override;
  cuda::Error module_unload(cuda::ModuleId module) override;
  cuda::Error module_get_function(cuda::FuncId& func, cuda::ModuleId module,
                                  const std::string& name) override;
  cuda::Error module_get_global(cuda::DevPtr& ptr, cuda::ModuleId module,
                                const std::string& name) override;
  cuda::Error launch_kernel(cuda::FuncId func, cuda::Dim3 grid,
                            cuda::Dim3 block, std::uint32_t shared_bytes,
                            cuda::StreamId stream,
                            std::span<const std::uint8_t> params) override;

  cuda::Error blas_sgemm(int m, int n, int k, float alpha, cuda::DevPtr a,
                         int lda, cuda::DevPtr b, int ldb, float beta,
                         cuda::DevPtr c, int ldc) override;
  cuda::Error blas_sgemv(int m, int n, float alpha, cuda::DevPtr a, int lda,
                         cuda::DevPtr x, float beta, cuda::DevPtr y) override;
  cuda::Error blas_saxpy(int n, float alpha, cuda::DevPtr x,
                         cuda::DevPtr y) override;
  cuda::Error blas_snrm2(int n, cuda::DevPtr x, cuda::DevPtr result) override;
  cuda::Error solver_sgetrf(int n, cuda::DevPtr a, int lda, cuda::DevPtr ipiv,
                            cuda::DevPtr info) override;
  cuda::Error solver_sgetrs(int n, int nrhs, cuda::DevPtr a, int lda,
                            cuda::DevPtr ipiv, cuda::DevPtr b, int ldb,
                            cuda::DevPtr info) override;
  cuda::Error solver_spotrf(int n, cuda::DevPtr a, int lda,
                            cuda::DevPtr info) override;
  cuda::Error solver_spotrs(int n, int nrhs, cuda::DevPtr a, int lda,
                            cuda::DevPtr b, int ldb, cuda::DevPtr info) override;

  /// Waits for every pipelined call, folding any failure into the sticky
  /// error. Returns the sticky error (kSuccess when the pipeline is clean).
  cuda::Error drain();

  /// Severs the connection; every subsequent call returns kRpcFailure.
  void disconnect();

  [[nodiscard]] const AsyncClientStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] rpcflow::AsyncRpcChannel& channel() noexcept {
    return *channel_;
  }

 private:
  /// Fire-and-forget forwarding of a call whose only result is an error
  /// code; collects completed futures opportunistically.
  template <typename... Args>
  cuda::Error enqueue(std::uint32_t proc, const Args&... args);

  /// Blocking forwarding; returns `Res` through `fn(res)` mapping.
  template <typename Res, typename Fn, typename... Args>
  cuda::Error call_blocking(std::uint32_t proc, Fn&& consume,
                            const Args&... args);

  /// Pops completed futures from the pipeline head, absorbing their errors
  /// into sticky_; never blocks.
  void reap_ready();
  /// Blocks until the pipeline is empty, absorbing errors into sticky_.
  void absorb(cuda::Error err);

  sim::SimClock* clock_;
  AsyncClientConfig config_;
  std::unique_ptr<rpcflow::AsyncRpcChannel> channel_;
  std::deque<rpcflow::TypedFuture<std::int32_t>> pending_;
  cuda::Error sticky_ = cuda::Error::kSuccess;
  AsyncClientStats stats_;
};

}  // namespace cricket::core
