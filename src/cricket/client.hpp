// RemoteCudaApi: the client-side Cricket virtualization layer.
//
// This is the component the paper inserts "between GPU applications and the
// CUDA libraries" (Fig. 1/3): it implements the same CudaApi the local
// driver facade implements, but forwards every call as an ONC RPC through
// the generated stubs — so an application is recompiled against the same
// interface and runs unmodified on a unikernel, a VM, or bare Linux,
// exactly like the paper's Rust applications (§3.5).
#pragma once

#include <cstdint>
#include <memory>

#include "cricket/transfer.hpp"
#include "cudart/api.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "rpc/client.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::proto {
class CRICKETVERSClient;
}

namespace cricket::core {

struct ClientConfig {
  /// libtirpc-C vs RPC-Lib-Rust client behaviour (per-call overhead, kernel
  /// launch compatibility logic).
  env::ClientFlavor flavor = {};
  /// Cost profile of the client's network path (used for out-of-band lane
  /// charging; the main connection's transport charges itself).
  vnet::NetworkProfile profile = {};
  /// Bulk memcpy strategy (§4.2). Unikernels support only kRpcArgs.
  TransferMethod transfer = TransferMethod::kRpcArgs;
  /// Required for kSharedMemory: the co-located GPU node whose address
  /// space the client shares.
  cuda::GpuNode* local_node = nullptr;
  /// Per-call deadlines + idempotency-aware retry for the underlying RPC
  /// client (faultnet). Only enable `retry.assume_at_most_once` against a
  /// server running the duplicate-request cache — otherwise a retried
  /// kernel launch could execute twice.
  rpc::RetryPolicy retry{};
  /// Fresh transport to the same server after a connection-level failure.
  std::function<std::unique_ptr<rpc::Transport>()> reconnect{};
  /// Tenant identity presented to a multi-tenant server: when non-empty,
  /// every call carries an AUTH_SYS credential with this machinename, and
  /// the server binds the session to the tenant registered under it.
  std::string tenant{};
  /// AUTH_SYS stamp distinguishing this client from other clients of the
  /// same tenant. The duplicate-request cache and migration adoption both
  /// key on the credential hash, so two live clients must never share one.
  /// 0 (default) auto-assigns a process-unique value; set it explicitly
  /// only when a restarted client must keep its previous identity.
  std::uint32_t auth_stamp = 0;
  /// Two-phase module-load negotiation against the server's
  /// content-addressed cache (env::with_module_cache): module_load first
  /// sends the FNV-64 image hash; only a cache miss pays for the full
  /// upload. Transparent — a server without the cache always answers
  /// kCacheMiss and the client falls back, so it is safe to leave on.
  bool module_cache = false;
};

/// Process-unique AUTH_SYS stamp source backing the auto-assignment above.
[[nodiscard]] std::uint32_t next_auth_stamp() noexcept;

struct RemoteStats {
  std::uint64_t api_calls = 0;  // forwarded CUDA API calls (paper §4.1)
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_from_device = 0;
  /// Module loads answered by the server's content-addressed cache, and
  /// the image bytes that therefore never crossed the wire.
  std::uint64_t module_cache_hits = 0;
  std::uint64_t module_bytes_saved = 0;
};

class RemoteCudaApi final : public cuda::CudaApi {
 public:
  /// `transport` carries the RPC connection (typically from env::connect);
  /// `lanes` are optional parallel-socket side channels.
  RemoteCudaApi(std::unique_ptr<rpc::Transport> transport,
                sim::SimClock& clock, ClientConfig config = {},
                TransferLanes lanes = {});
  ~RemoteCudaApi() override;

  cuda::Error get_device_count(int& count) override;
  cuda::Error set_device(int device) override;
  cuda::Error get_device(int& device) override;
  cuda::Error get_device_properties(cuda::DeviceInfo& info,
                                    int device) override;

  cuda::Error malloc(cuda::DevPtr& ptr, std::uint64_t size) override;
  cuda::Error free(cuda::DevPtr ptr) override;
  cuda::Error memset(cuda::DevPtr ptr, int value, std::uint64_t size) override;
  cuda::Error memcpy_h2d(cuda::DevPtr dst,
                         std::span<const std::uint8_t> src) override;
  cuda::Error memcpy_d2h(std::span<std::uint8_t> dst,
                         cuda::DevPtr src) override;
  cuda::Error memcpy_d2d(cuda::DevPtr dst, cuda::DevPtr src,
                         std::uint64_t size) override;
  cuda::Error memcpy_h2d_async(cuda::DevPtr dst,
                               std::span<const std::uint8_t> src,
                               cuda::StreamId stream) override;
  cuda::Error memcpy_d2h_async(std::span<std::uint8_t> dst, cuda::DevPtr src,
                               cuda::StreamId stream) override;

  cuda::Error stream_create(cuda::StreamId& stream) override;
  cuda::Error stream_wait_event(cuda::StreamId stream,
                                cuda::EventId event) override;
  cuda::Error stream_destroy(cuda::StreamId stream) override;
  cuda::Error stream_synchronize(cuda::StreamId stream) override;
  cuda::Error device_synchronize() override;
  cuda::Error event_create(cuda::EventId& event) override;
  cuda::Error event_destroy(cuda::EventId event) override;
  cuda::Error event_record(cuda::EventId event,
                           cuda::StreamId stream) override;
  cuda::Error event_synchronize(cuda::EventId event) override;
  cuda::Error event_elapsed_ms(float& ms, cuda::EventId start,
                               cuda::EventId stop) override;

  cuda::Error module_load(cuda::ModuleId& module,
                          std::span<const std::uint8_t> image) override;
  cuda::Error module_unload(cuda::ModuleId module) override;
  cuda::Error module_get_function(cuda::FuncId& func, cuda::ModuleId module,
                                  const std::string& name) override;
  cuda::Error module_get_global(cuda::DevPtr& ptr, cuda::ModuleId module,
                                const std::string& name) override;
  cuda::Error launch_kernel(cuda::FuncId func, cuda::Dim3 grid,
                            cuda::Dim3 block, std::uint32_t shared_bytes,
                            cuda::StreamId stream,
                            std::span<const std::uint8_t> params) override;

  cuda::Error blas_sgemm(int m, int n, int k, float alpha, cuda::DevPtr a,
                         int lda, cuda::DevPtr b, int ldb, float beta,
                         cuda::DevPtr c, int ldc) override;
  cuda::Error blas_sgemv(int m, int n, float alpha, cuda::DevPtr a, int lda,
                         cuda::DevPtr x, float beta, cuda::DevPtr y) override;
  cuda::Error blas_saxpy(int n, float alpha, cuda::DevPtr x,
                         cuda::DevPtr y) override;
  cuda::Error blas_snrm2(int n, cuda::DevPtr x, cuda::DevPtr result) override;
  cuda::Error solver_sgetrf(int n, cuda::DevPtr a, int lda, cuda::DevPtr ipiv,
                            cuda::DevPtr info) override;
  cuda::Error solver_sgetrs(int n, int nrhs, cuda::DevPtr a, int lda,
                            cuda::DevPtr ipiv, cuda::DevPtr b, int ldb,
                            cuda::DevPtr info) override;
  cuda::Error solver_spotrf(int n, cuda::DevPtr a, int lda,
                            cuda::DevPtr info) override;
  cuda::Error solver_spotrs(int n, int nrhs, cuda::DevPtr a, int lda,
                            cuda::DevPtr b, int ldb, cuda::DevPtr info) override;

  /// Cricket extensions beyond the CUDA surface.
  cuda::Error checkpoint(const std::string& path);
  cuda::Error restore(const std::string& path);

  /// Severs the connection; every subsequent call returns kRpcFailure.
  /// Models the GPU node vanishing under the client.
  void disconnect();

  [[nodiscard]] const RemoteStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ClientConfig& config() const noexcept { return config_; }

  /// Non-success once the connection is declared unrecoverable (retry
  /// budget exhausted or the transport died with no reconnect path).
  /// Graceful degradation: every later call short-circuits to this error
  /// instead of hammering a dead link — the paper's unikernel guest keeps
  /// running and sees a CUDA error code, not a crash.
  [[nodiscard]] cuda::Error sticky_error() const noexcept {
    return sticky_error_;
  }

 private:
  /// Forwards one CUDA API call: bumps counters, opens the kClientCall
  /// span (`name` is the stable "cuda.<entry point>" label), charges the
  /// per-call flavor cost, and maps RPC failures to Error::kRpcFailure.
  template <typename Fn>
  cuda::Error forward(const char* name, Fn&& fn);

  sim::SimClock* clock_;
  ClientConfig config_;
  TransferLanes lanes_;
  rpc::RpcClient rpc_;
  std::unique_ptr<proto::CRICKETVERSClient> stub_;
  RemoteStats stats_;
  cuda::Error sticky_error_ = cuda::Error::kSuccess;
};

}  // namespace cricket::core
