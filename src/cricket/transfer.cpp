#include "cricket/transfer.hpp"

#include <thread>

namespace cricket::core {

std::pair<TransferLanes, TransferLanes> make_lane_pairs(
    std::size_t n, std::size_t capacity_bytes) {
  TransferLanes client, server;
  client.lanes.reserve(n);
  server.lanes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto [c, s] = rpc::make_pipe_pair(capacity_bytes);
    client.lanes.push_back(std::move(c));
    server.lanes.push_back(std::move(s));
  }
  return {std::move(client), std::move(server)};
}

std::vector<std::pair<std::size_t, std::size_t>> stripe(std::size_t total,
                                                        std::size_t lanes) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  parts.reserve(lanes);
  const std::size_t base = lanes == 0 ? 0 : total / lanes;
  std::size_t off = 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    const std::size_t len = i + 1 == lanes ? total - off : base;
    parts.emplace_back(off, len);
    off += len;
  }
  return parts;
}

void send_striped(TransferLanes& lanes, std::span<const std::uint8_t> data,
                  const vnet::NetworkProfile& profile, sim::SimClock& clock) {
  const auto parts = stripe(data.size(), lanes.count());
  // Aggregate charge: lane threads run concurrently on distinct cores, so
  // the CPU cost is the serial cost divided across lanes; the wire is
  // shared, so serialization time is charged once in full.
  clock.advance(vnet::tx_cpu_cost(profile, data.size()) /
                    static_cast<sim::Nanos>(std::max<std::size_t>(1,
                                                                  lanes.count())) +
                vnet::wire_time(profile, data.size()));

  std::vector<std::thread> threads;
  threads.reserve(lanes.count());
  for (std::size_t i = 0; i < lanes.count(); ++i) {
    const auto [off, len] = parts[i];
    threads.emplace_back([&, i, off = off, len = len] {
      if (len > 0) lanes.lanes[i]->send(data.subspan(off, len));
    });
  }
  for (auto& t : threads) t.join();
}

void recv_striped(TransferLanes& lanes, std::span<std::uint8_t> out,
                  const vnet::NetworkProfile& profile, sim::SimClock& clock) {
  const auto parts = stripe(out.size(), lanes.count());
  clock.advance(vnet::rx_cpu_cost(profile, out.size()) /
                static_cast<sim::Nanos>(
                    std::max<std::size_t>(1, lanes.count())));

  std::vector<std::thread> threads;
  threads.reserve(lanes.count());
  for (std::size_t i = 0; i < lanes.count(); ++i) {
    const auto [off, len] = parts[i];
    threads.emplace_back([&, i, off = off, len = len] {
      if (len > 0) lanes.lanes[i]->recv_exact(out.subspan(off, len));
    });
  }
  for (auto& t : threads) t.join();
}

void gather_striped(TransferLanes& lanes, std::span<std::uint8_t> out) {
  const auto parts = stripe(out.size(), lanes.count());
  std::vector<std::thread> threads;
  threads.reserve(lanes.count());
  for (std::size_t i = 0; i < lanes.count(); ++i) {
    const auto [off, len] = parts[i];
    threads.emplace_back([&, i, off = off, len = len] {
      if (len > 0) lanes.lanes[i]->recv_exact(out.subspan(off, len));
    });
  }
  for (auto& t : threads) t.join();
}

void scatter_striped(TransferLanes& lanes,
                     std::span<const std::uint8_t> data) {
  const auto parts = stripe(data.size(), lanes.count());
  std::vector<std::thread> threads;
  threads.reserve(lanes.count());
  for (std::size_t i = 0; i < lanes.count(); ++i) {
    const auto [off, len] = parts[i];
    threads.emplace_back([&, i, off = off, len = len] {
      if (len > 0) lanes.lanes[i]->send(data.subspan(off, len));
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace cricket::core
