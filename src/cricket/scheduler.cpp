#include "cricket/scheduler.hpp"

#include <algorithm>

namespace cricket::core {

void KernelScheduler::session_open(std::uint64_t session) {
  sim::MutexLock lock(mu_);
  auto& s = sessions_[session];
  // A newcomer starts level with the least-served existing session so it
  // cannot monopolize the device by arriving late with zero usage history.
  sim::Nanos min_used = 0;
  bool first = true;
  for (const auto& [id, other] : sessions_) {
    if (id == session) continue;
    min_used = first ? other.used_ns : std::min(min_used, other.used_ns);
    first = false;
  }
  if (!first) s.used_ns = min_used;
}

void KernelScheduler::session_close(std::uint64_t session) {
  sim::MutexLock lock(mu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  archived_[session] = it->second.stats;
  sessions_.erase(it);
}

sim::Nanos KernelScheduler::admit(std::uint64_t session) {
  sim::MutexLock lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) it = sessions_.emplace(session, Session{}).first;
  ++it->second.stats.launches;
  if (policy_ == SchedulerPolicy::kFifo || sessions_.size() < 2) return 0;

  sim::Nanos min_used = it->second.used_ns;
  for (const auto& [id, s] : sessions_) min_used = std::min(min_used, s.used_ns);
  const sim::Nanos lead = it->second.used_ns - min_used;
  if (lead <= quantum_) return 0;

  // Fair share: wait for the laggards to catch up — modelled as a virtual
  // delay proportional to the excess lead, capped at a few quanta so the
  // scheduler stays work-conserving when the laggards have nothing queued.
  const sim::Nanos wait = std::min(lead - quantum_, 4 * quantum_);
  clock_->advance(wait);
  it->second.stats.total_wait_ns += wait;
  return wait;
}

void KernelScheduler::record_usage(std::uint64_t session,
                                   sim::Nanos device_ns) {
  sim::MutexLock lock(mu_);
  auto& s = sessions_[session];
  s.used_ns += device_ns;
  s.stats.device_time_ns += device_ns;
}

SchedulerStats KernelScheduler::stats(std::uint64_t session) const {
  sim::MutexLock lock(mu_);
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) return it->second.stats;
  const auto archived = archived_.find(session);
  return archived == archived_.end() ? SchedulerStats{} : archived->second;
}

}  // namespace cricket::core
