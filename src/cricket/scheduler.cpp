#include "cricket/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace cricket::core {

KernelScheduler::Session& KernelScheduler::open_locked(
    std::uint64_t session, std::uint64_t group, std::uint32_t weight,
    std::uint32_t priority) {
  Group& g = groups_[group];
  g.weight = weight == 0 ? 1 : weight;
  g.priority = priority;
  if (g.sessions == 0) {
    // A newcomer group starts level with the least-served existing group so
    // a tenant cannot monopolize the device by arriving late with zero
    // usage history.
    sim::Nanos min_v = 0;
    bool first = true;
    for (const auto& [key, other] : groups_) {
      if (key == group || other.sessions == 0) continue;
      min_v = first ? other.vtime : std::min(min_v, other.vtime);
      first = false;
    }
    if (!first) g.vtime = std::max(g.vtime, min_v);
  }

  auto [it, inserted] = sessions_.emplace(session, Session{});
  Session& s = it->second;
  if (inserted || s.group != group) {
    if (!inserted) {
      const auto old = groups_.find(s.group);
      if (old != groups_.end() && --old->second.sessions == 0)
        groups_.erase(old);
    }
    s.group = group;
    ++g.sessions;
  }
  // Same levelling rule one layer down, among the group's own sessions.
  sim::Nanos min_used = 0;
  bool first = true;
  for (const auto& [id, other] : sessions_) {
    if (id == session || other.group != group) continue;
    min_used = first ? other.used_ns : std::min(min_used, other.used_ns);
    first = false;
  }
  if (!first) s.used_ns = std::max(s.used_ns, min_used);
  return s;
}

KernelScheduler::Session& KernelScheduler::find_or_create_locked(
    std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) return it->second;
  return open_locked(session, kImplicitGroupBit | session, 1, 0);
}

void KernelScheduler::session_open(std::uint64_t session) {
  sim::MutexLock lock(mu_);
  open_locked(session, kImplicitGroupBit | session, 1, 0);
}

void KernelScheduler::session_open(std::uint64_t session, std::uint64_t tenant,
                                   std::uint32_t weight,
                                   std::uint32_t priority) {
  sim::MutexLock lock(mu_);
  open_locked(session, tenant, weight, priority);
}

void KernelScheduler::session_set_tenant(std::uint64_t session,
                                         std::uint64_t tenant,
                                         std::uint32_t weight,
                                         std::uint32_t priority) {
  {
    sim::MutexLock lock(mu_);
    open_locked(session, tenant, weight, priority);
  }
  // Group membership changed: blocked waiters must re-derive their leads.
  caught_up_.notify_all();
}

void KernelScheduler::archive_locked(std::uint64_t session,
                                     const SchedulerStats& stats) {
  static obs::Counter& evicted_total = obs::Registry::global().counter(
      "cricket_scheduler_archive_evicted_total", {},
      "Closed-session stat archives evicted to honour the archive cap");
  if (archived_.insert_or_assign(session, stats).second)
    archive_fifo_.push_back(session);
  while (archived_.size() > options_.max_archived && !archive_fifo_.empty()) {
    archived_.erase(archive_fifo_.front());
    archive_fifo_.pop_front();
    ++archive_evictions_;
    evicted_total.inc();
  }
}

void KernelScheduler::session_close(std::uint64_t session) {
  {
    sim::MutexLock lock(mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    archive_locked(session, it->second.stats);
    const auto git = groups_.find(it->second.group);
    if (git != groups_.end() && --git->second.sessions == 0)
      groups_.erase(git);
    sessions_.erase(it);
  }
  // A departing laggard may have been the one a leader was waiting on.
  caught_up_.notify_all();
}

sim::Nanos KernelScheduler::excess_lead_locked(const Session& s) const {
  // Level 2: lead over the least-served sibling session in the same group.
  sim::Nanos min_used = s.used_ns;
  bool alone = true;
  for (const auto& [id, other] : sessions_) {
    if (other.group != s.group) continue;
    if (&other != &s) {
      alone = false;
      min_used = std::min(min_used, other.used_ns);
    }
  }
  sim::Nanos lead = alone ? 0 : s.used_ns - min_used;

  // Level 1: weighted virtual-time lead over the slowest contending group
  // of same-or-higher priority (a tenant never waits for lower-priority
  // tenants).
  const auto git = groups_.find(s.group);
  if (git != groups_.end()) {
    const Group& g = git->second;
    sim::Nanos min_v = g.vtime;
    bool only_group = true;
    for (const auto& [key, other] : groups_) {
      if (key == git->first || other.sessions == 0) continue;
      if (other.priority < g.priority) continue;
      min_v = std::min(min_v, other.vtime);
      only_group = false;
    }
    if (!only_group) lead = std::max(lead, g.vtime - min_v);
  }
  return lead - options_.quantum;
}

sim::Nanos KernelScheduler::admit_locked(Session& s) {
  if (policy_ == SchedulerPolicy::kFifo) return 0;
  sim::Nanos excess = excess_lead_locked(s);
  if (excess <= 0) return 0;

  if (options_.max_real_block.count() > 0) {
    // Block (bounded, in real time) so laggards that are actively
    // launching genuinely catch up; record_usage/session_close signal us.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.max_real_block;
    while (excess > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      (void)caught_up_.wait_until(
          mu_, std::min(deadline, now + std::chrono::microseconds(200)));
      excess = excess_lead_locked(s);
    }
    if (excess <= 0) return 0;
  }

  // Laggards idle: fall back to charging the residual lead as a virtual
  // delay, capped at a few quanta so the scheduler stays work-conserving
  // when nothing else is queued.
  const sim::Nanos wait = std::min(excess, 4 * options_.quantum);
  clock_->advance(wait);
  s.stats.total_wait_ns += wait;
  return wait;
}

sim::Nanos KernelScheduler::admit(std::uint64_t session) {
  sim::MutexLock lock(mu_);
  Session& s = find_or_create_locked(session);
  ++s.stats.launches;
  return admit_locked(s);
}

sim::Nanos KernelScheduler::admit_transfer(std::uint64_t session,
                                           std::uint64_t bytes) {
  sim::MutexLock lock(mu_);
  Session& s = find_or_create_locked(session);
  ++s.stats.transfers;
  s.stats.transfer_bytes += bytes;
  return admit_locked(s);
}

void KernelScheduler::record_usage(std::uint64_t session,
                                   sim::Nanos device_ns) {
  {
    sim::MutexLock lock(mu_);
    Session& s = find_or_create_locked(session);
    s.used_ns += device_ns;
    s.stats.device_time_ns += device_ns;
    const auto git = groups_.find(s.group);
    if (git != groups_.end())
      git->second.vtime += device_ns / git->second.weight;
  }
  caught_up_.notify_all();
}

SchedulerStats KernelScheduler::stats(std::uint64_t session) const {
  sim::MutexLock lock(mu_);
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) return it->second.stats;
  const auto archived = archived_.find(session);
  return archived == archived_.end() ? SchedulerStats{} : archived->second;
}

std::uint64_t KernelScheduler::archive_evictions() const {
  sim::MutexLock lock(mu_);
  return archive_evictions_;
}

}  // namespace cricket::core
