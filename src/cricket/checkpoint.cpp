#include "cricket/checkpoint.hpp"

#include <fstream>

#include "xdr/xdr.hpp"

namespace cricket::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(
    const gpusim::DeviceSnapshot& snap) {
  xdr::Encoder enc;
  enc.put_opaque_fixed(kMagic);
  enc.put_u32(kVersion);
  enc.put_u64(snap.next_id);

  enc.put_u32(static_cast<std::uint32_t>(snap.allocations.size()));
  for (const auto& a : snap.allocations) {
    enc.put_u64(a.addr);
    enc.put_u64(a.size);
    enc.put_opaque(a.bytes);
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.modules.size()));
  for (const auto& m : snap.modules) {
    enc.put_u64(m.id);
    enc.put_opaque(m.image);
    enc.put_u32(static_cast<std::uint32_t>(m.globals.size()));
    for (const auto& [name, addr] : m.globals) {
      enc.put_string(name);
      enc.put_u64(addr);
    }
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.functions.size()));
  for (const auto& f : snap.functions) {
    enc.put_u64(f.id);
    enc.put_u64(f.module);
    enc.put_string(f.kernel_name);
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.streams.size()));
  for (const auto& [id, finish] : snap.streams) {
    enc.put_u64(id);
    enc.put_i64(finish);
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.events.size()));
  for (const auto& [id, ts] : snap.events) {
    enc.put_u64(id);
    enc.put_i64(ts);
  }
  return enc.take();
}

gpusim::DeviceSnapshot decode_checkpoint(std::span<const std::uint8_t> bytes) {
  try {
    xdr::Decoder dec(bytes);
    std::uint8_t magic[4];
    dec.get_opaque_fixed(magic);
    if (std::memcmp(magic, kMagic, 4) != 0)
      throw CheckpointError("bad checkpoint magic");
    if (dec.get_u32() != kVersion)
      throw CheckpointError("unsupported checkpoint version");

    gpusim::DeviceSnapshot snap;
    snap.next_id = dec.get_u64();

    const std::uint32_t na = dec.get_u32();
    snap.allocations.reserve(na);
    for (std::uint32_t i = 0; i < na; ++i) {
      gpusim::DeviceSnapshot::AllocationRecord rec;
      rec.addr = dec.get_u64();
      rec.size = dec.get_u64();
      rec.bytes = dec.get_opaque();
      if (rec.bytes.size() != rec.size)
        throw CheckpointError("allocation content size mismatch");
      snap.allocations.push_back(std::move(rec));
    }
    const std::uint32_t nm = dec.get_u32();
    snap.modules.reserve(nm);
    for (std::uint32_t i = 0; i < nm; ++i) {
      gpusim::DeviceSnapshot::ModuleRecord rec;
      rec.id = dec.get_u64();
      rec.image = dec.get_opaque();
      const std::uint32_t ng = dec.get_u32();
      for (std::uint32_t g = 0; g < ng; ++g) {
        std::string name = dec.get_string(4096);
        const std::uint64_t addr = dec.get_u64();
        rec.globals.emplace_back(std::move(name), addr);
      }
      snap.modules.push_back(std::move(rec));
    }
    const std::uint32_t nf = dec.get_u32();
    snap.functions.reserve(nf);
    for (std::uint32_t i = 0; i < nf; ++i) {
      gpusim::DeviceSnapshot::FunctionRecord rec;
      rec.id = dec.get_u64();
      rec.module = dec.get_u64();
      rec.kernel_name = dec.get_string(4096);
      snap.functions.push_back(std::move(rec));
    }
    const std::uint32_t ns = dec.get_u32();
    for (std::uint32_t i = 0; i < ns; ++i) {
      const std::uint64_t id = dec.get_u64();
      snap.streams.emplace_back(id, dec.get_i64());
    }
    const std::uint32_t ne = dec.get_u32();
    for (std::uint32_t i = 0; i < ne; ++i) {
      const std::uint64_t id = dec.get_u64();
      snap.events.emplace_back(id, dec.get_i64());
    }
    dec.expect_exhausted();
    return snap;
  } catch (const xdr::XdrError& e) {
    throw CheckpointError(std::string("malformed checkpoint: ") + e.what());
  }
}

void checkpoint_to_file(gpusim::Device& device, const std::string& path) {
  const auto bytes = encode_checkpoint(device.snapshot());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw CheckpointError("cannot open checkpoint file for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw CheckpointError("checkpoint write failed");
}

void restore_from_file(gpusim::Device& device, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open checkpoint file");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  device.restore(decode_checkpoint(bytes));
}

}  // namespace cricket::core
