#include "cricket/checkpoint.hpp"

#include <fstream>

#include "xdr/xdr.hpp"

namespace cricket::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'K', 'P', 'T'};
/// v1: magic, version, body. v2 appends an FNV-64 checksum of the body so a
/// bit-flipped migration transfer fails loudly instead of restoring garbage.
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderBytes = 8;    // magic + version word
constexpr std::size_t kChecksumBytes = 8;  // trailing FNV-64 (v2+)

std::uint64_t fnv64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(
    const gpusim::DeviceSnapshot& snap) {
  xdr::Encoder enc;
  enc.put_opaque_fixed(kMagic);
  enc.put_u32(kVersion);
  enc.put_u64(snap.next_id);

  enc.put_u32(static_cast<std::uint32_t>(snap.allocations.size()));
  for (const auto& a : snap.allocations) {
    enc.put_u64(a.addr);
    enc.put_u64(a.size);
    enc.put_opaque(a.bytes);
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.modules.size()));
  for (const auto& m : snap.modules) {
    enc.put_u64(m.id);
    enc.put_opaque(m.image);
    enc.put_u32(static_cast<std::uint32_t>(m.globals.size()));
    for (const auto& [name, addr] : m.globals) {
      enc.put_string(name);
      enc.put_u64(addr);
    }
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.functions.size()));
  for (const auto& f : snap.functions) {
    enc.put_u64(f.id);
    enc.put_u64(f.module);
    enc.put_string(f.kernel_name);
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.streams.size()));
  for (const auto& [id, finish] : snap.streams) {
    enc.put_u64(id);
    enc.put_i64(finish);
  }
  enc.put_u32(static_cast<std::uint32_t>(snap.events.size()));
  for (const auto& [id, ts] : snap.events) {
    enc.put_u64(id);
    enc.put_i64(ts);
  }
  const std::uint64_t checksum =
      fnv64(std::span<const std::uint8_t>(enc.bytes()).subspan(kHeaderBytes));
  enc.put_u64(checksum);
  return enc.take();
}

gpusim::DeviceSnapshot decode_checkpoint(std::span<const std::uint8_t> bytes) {
  try {
    std::uint32_t version = 0;
    {
      xdr::Decoder hdr(bytes);
      std::uint8_t magic[4];
      hdr.get_opaque_fixed(magic);
      if (std::memcmp(magic, kMagic, 4) != 0)
        throw CheckpointError("bad checkpoint magic");
      version = hdr.get_u32();
    }
    if (version > kVersion)
      throw CheckpointVersionError(
          "checkpoint version " + std::to_string(version) +
          " is newer than this build understands (max " +
          std::to_string(kVersion) + ")");
    if (version == 0) throw CheckpointError("unsupported checkpoint version");

    std::span<const std::uint8_t> body = bytes.subspan(kHeaderBytes);
    if (version >= 2) {
      if (body.size() < kChecksumBytes)
        throw CheckpointError("checkpoint truncated before checksum");
      body = body.first(body.size() - kChecksumBytes);
      const std::span<const std::uint8_t> tail =
          bytes.subspan(bytes.size() - kChecksumBytes);
      std::uint64_t want = 0;
      for (const std::uint8_t byte : tail) want = (want << 8) | byte;
      if (fnv64(body) != want)
        throw CheckpointError("checkpoint checksum mismatch");
    }

    xdr::Decoder dec(body);
    gpusim::DeviceSnapshot snap;
    snap.next_id = dec.get_u64();

    const std::uint32_t na = dec.get_u32();
    snap.allocations.reserve(na);
    for (std::uint32_t i = 0; i < na; ++i) {
      gpusim::DeviceSnapshot::AllocationRecord rec;
      rec.addr = dec.get_u64();
      rec.size = dec.get_u64();
      rec.bytes = dec.get_opaque();
      if (rec.bytes.size() != rec.size)
        throw CheckpointError("allocation content size mismatch");
      snap.allocations.push_back(std::move(rec));
    }
    const std::uint32_t nm = dec.get_u32();
    snap.modules.reserve(nm);
    for (std::uint32_t i = 0; i < nm; ++i) {
      gpusim::DeviceSnapshot::ModuleRecord rec;
      rec.id = dec.get_u64();
      rec.image = dec.get_opaque();
      const std::uint32_t ng = dec.get_u32();
      for (std::uint32_t g = 0; g < ng; ++g) {
        std::string name = dec.get_string(4096);
        const std::uint64_t addr = dec.get_u64();
        rec.globals.emplace_back(std::move(name), addr);
      }
      snap.modules.push_back(std::move(rec));
    }
    const std::uint32_t nf = dec.get_u32();
    snap.functions.reserve(nf);
    for (std::uint32_t i = 0; i < nf; ++i) {
      gpusim::DeviceSnapshot::FunctionRecord rec;
      rec.id = dec.get_u64();
      rec.module = dec.get_u64();
      rec.kernel_name = dec.get_string(4096);
      snap.functions.push_back(std::move(rec));
    }
    const std::uint32_t ns = dec.get_u32();
    for (std::uint32_t i = 0; i < ns; ++i) {
      const std::uint64_t id = dec.get_u64();
      snap.streams.emplace_back(id, dec.get_i64());
    }
    const std::uint32_t ne = dec.get_u32();
    for (std::uint32_t i = 0; i < ne; ++i) {
      const std::uint64_t id = dec.get_u64();
      snap.events.emplace_back(id, dec.get_i64());
    }
    dec.expect_exhausted();
    return snap;
  } catch (const xdr::XdrError& e) {
    throw CheckpointError(std::string("malformed checkpoint: ") + e.what());
  }
}

void checkpoint_to_file(gpusim::Device& device, const std::string& path) {
  const auto bytes = encode_checkpoint(device.snapshot());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw CheckpointError("cannot open checkpoint file for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw CheckpointError("checkpoint write failed");
}

void restore_from_file(gpusim::Device& device, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open checkpoint file");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  device.restore(decode_checkpoint(bytes));
}

}  // namespace cricket::core
