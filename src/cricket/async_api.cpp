#include "cricket/async_api.hpp"

#include <utility>

#include "cricket/client.hpp"
#include "cricket_bounds.hpp"
#include "cricket_proto.hpp"
#include "modcache/module_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cricket::core {

using cuda::Error;

namespace {

Error from_wire(std::int32_t err) { return static_cast<Error>(err); }

rpcflow::ChannelOptions channel_options(const AsyncClientConfig& config) {
  rpcflow::ChannelOptions opts;
  // pipeline.enabled=false degrades to a stop-and-wait window of one call:
  // the same wire behaviour as the synchronous client.
  opts.max_outstanding = config.pipeline.enabled ? config.pipeline.depth : 1;
  opts.batch.enabled = config.pipeline.enabled && config.pipeline.batching;
  // Reply pre-flight: reject replies larger than the procedure's proven
  // result bound before they are decoded.
  opts.bounds = proto::bounds::kProcBounds;
  opts.retry = config.retry;
  opts.reconnect = config.reconnect;
  return opts;
}

}  // namespace

AsyncRemoteCudaApi::AsyncRemoteCudaApi(std::unique_ptr<rpc::Transport> transport,
                                       sim::SimClock& clock,
                                       AsyncClientConfig config)
    : clock_(&clock),
      config_(std::move(config)),
      channel_(std::make_unique<rpcflow::AsyncRpcChannel>(
          std::move(transport), proto::CRICKET_PROG, proto::CRICKETVERS_VERS,
          channel_options(config_))) {
  if (!config_.tenant.empty()) {
    rpc::AuthSysParms cred;
    cred.machinename = config_.tenant;
    cred.stamp =
        config_.auth_stamp != 0 ? config_.auth_stamp : next_auth_stamp();
    channel_->set_credential(cred.to_opaque());
  }
}

AsyncRemoteCudaApi::~AsyncRemoteCudaApi() {
  try {
    drain();
  } catch (...) {
    // Destructor drain is best-effort; the channel teardown below copes
    // with a dead connection.
  }
}

void AsyncRemoteCudaApi::reap_ready() {
  while (!pending_.empty() && pending_.front().ready()) {
    try {
      const auto err = from_wire(pending_.front().get());
      if (sticky_ == Error::kSuccess) sticky_ = err;
    } catch (const rpc::RpcError& e) {
      const auto err = e.kind() == rpc::RpcError::Kind::kQuotaExceeded
                           ? Error::kQuotaExceeded
                       : e.kind() == rpc::RpcError::Kind::kMigrating
                           ? Error::kMigrating
                           : Error::kRpcFailure;
      if (sticky_ == Error::kSuccess) sticky_ = err;
    } catch (...) {
      if (sticky_ == Error::kSuccess) sticky_ = Error::kRpcFailure;
    }
    pending_.pop_front();
  }
}

template <typename... Args>
Error AsyncRemoteCudaApi::enqueue(std::uint32_t proc, const Args&... args) {
  ++stats_.api_calls;
  ++stats_.pipelined;
  static obs::Counter& api_calls = obs::Registry::global().counter(
      "cricket_client_api_calls_total", {{"mode", "pipelined"}});
  api_calls.inc();
  clock_->advance(config_.flavor.per_call_ns);
  if (sticky_ == Error::kRpcFailure) return sticky_;
  reap_ready();
  try {
    pending_.push_back(channel_->call_async<std::int32_t>(proc, args...));
  } catch (const rpc::TransportError&) {
    sticky_ = Error::kRpcFailure;
    return sticky_;
  }
  // Fire-and-forget: like a CUDA kernel launch, success here only means
  // "queued"; a device-side failure surfaces at the next sync point.
  return Error::kSuccess;
}

template <typename Res, typename Fn, typename... Args>
Error AsyncRemoteCudaApi::call_blocking(std::uint32_t proc, Fn&& consume,
                                        const Args&... args) {
  ++stats_.api_calls;
  ++stats_.blocking;
  static obs::Counter& api_calls = obs::Registry::global().counter(
      "cricket_client_api_calls_total", {{"mode", "blocking"}});
  api_calls.inc();
  obs::Span span(obs::Layer::kClientCall, "cuda.async_call");
  clock_->advance(config_.flavor.per_call_ns);
  if (sticky_ == Error::kRpcFailure) return sticky_;
  reap_ready();
  try {
    auto fut = channel_->call_async<Res>(proc, args...);
    channel_->flush();
    // The server runs this session's calls in order, so by the time this
    // reply is in hand every earlier pipelined call has executed.
    return consume(fut.get());
  } catch (const rpc::RpcError& e) {
    // A quota rejection leaves the connection healthy: report it for this
    // call only, never sticky.
    if (e.kind() == rpc::RpcError::Kind::kQuotaExceeded)
      return Error::kQuotaExceeded;
    // Migration redirect that outlived the channel's re-send budget: the
    // call never executed; per-call error, never sticky.
    if (e.kind() == rpc::RpcError::Kind::kMigrating) return Error::kMigrating;
    return Error::kRpcFailure;
  } catch (const rpc::TransportError&) {
    sticky_ = Error::kRpcFailure;
    return Error::kRpcFailure;
  } catch (const xdr::XdrError&) {
    return Error::kRpcFailure;
  }
}

void AsyncRemoteCudaApi::absorb(Error err) {
  if (sticky_ == Error::kSuccess && err != Error::kSuccess) sticky_ = err;
}

Error AsyncRemoteCudaApi::drain() {
  ++stats_.drains;
  try {
    channel_->drain();
  } catch (const rpc::TransportError&) {
    absorb(Error::kRpcFailure);
  }
  while (!pending_.empty()) {
    try {
      absorb(from_wire(pending_.front().get()));
    } catch (const rpc::RpcError& e) {
      absorb(e.kind() == rpc::RpcError::Kind::kQuotaExceeded
                 ? Error::kQuotaExceeded
             : e.kind() == rpc::RpcError::Kind::kMigrating
                 ? Error::kMigrating
                 : Error::kRpcFailure);
    } catch (...) {
      absorb(Error::kRpcFailure);
    }
    pending_.pop_front();
  }
  return sticky_;
}

void AsyncRemoteCudaApi::disconnect() {
  sticky_ = Error::kRpcFailure;
  channel_->transport().shutdown();
}

// ---- device management --------------------------------------------------

Error AsyncRemoteCudaApi::get_device_count(int& count) {
  return call_blocking<proto::int_result>(
      proto::RPC_GET_DEVICE_COUNT_PROC, [&](const proto::int_result& res) {
        count = res.value;
        return from_wire(res.err);
      });
}

Error AsyncRemoteCudaApi::set_device(int device) {
  return enqueue(proto::RPC_SET_DEVICE_PROC,
                 static_cast<std::int32_t>(device));
}

Error AsyncRemoteCudaApi::get_device(int& device) {
  return call_blocking<proto::int_result>(
      proto::RPC_GET_DEVICE_PROC, [&](const proto::int_result& res) {
        device = res.value;
        return from_wire(res.err);
      });
}

Error AsyncRemoteCudaApi::get_device_properties(cuda::DeviceInfo& info,
                                                int device) {
  return call_blocking<proto::dev_props_result>(
      proto::RPC_GET_DEVICE_PROPERTIES_PROC,
      [&](const proto::dev_props_result& res) {
        if (res.err == 0) {
          info = cuda::DeviceInfo{.name = res.name,
                                  .total_mem = res.total_mem,
                                  .sm_arch = res.sm_arch,
                                  .sm_count = res.sm_count,
                                  .clock_mhz = res.clock_mhz};
        }
        return from_wire(res.err);
      },
      static_cast<std::int32_t>(device));
}

// ---- memory -------------------------------------------------------------

Error AsyncRemoteCudaApi::malloc(cuda::DevPtr& ptr, std::uint64_t size) {
  return call_blocking<proto::u64_result>(
      proto::RPC_MALLOC_PROC,
      [&](const proto::u64_result& res) {
        ptr = res.value;
        return from_wire(res.err);
      },
      size);
}

Error AsyncRemoteCudaApi::free(cuda::DevPtr ptr) {
  return enqueue(proto::RPC_FREE_PROC, ptr);
}

Error AsyncRemoteCudaApi::memset(cuda::DevPtr ptr, int value,
                                 std::uint64_t size) {
  return enqueue(proto::RPC_MEMSET_PROC, ptr, static_cast<std::int32_t>(value),
                 size);
}

Error AsyncRemoteCudaApi::memcpy_h2d(cuda::DevPtr dst,
                                     std::span<const std::uint8_t> src) {
  stats_.bytes_to_device += src.size();
  return enqueue(proto::RPC_MEMCPY_H2D_PROC, dst,
                 std::vector<std::uint8_t>(src.begin(), src.end()));
}

Error AsyncRemoteCudaApi::memcpy_d2h(std::span<std::uint8_t> dst,
                                     cuda::DevPtr src) {
  stats_.bytes_from_device += dst.size();
  return call_blocking<proto::data_result>(
      proto::RPC_MEMCPY_D2H_PROC,
      [&](const proto::data_result& res) {
        if (res.err == 0) {
          if (res.data.size() != dst.size()) return Error::kRpcFailure;
          std::copy(res.data.begin(), res.data.end(), dst.begin());
        }
        return from_wire(res.err);
      },
      src, static_cast<std::uint64_t>(dst.size()));
}

Error AsyncRemoteCudaApi::memcpy_d2d(cuda::DevPtr dst, cuda::DevPtr src,
                                     std::uint64_t size) {
  return enqueue(proto::RPC_MEMCPY_D2D_PROC, dst, src, size);
}

Error AsyncRemoteCudaApi::memcpy_h2d_async(cuda::DevPtr dst,
                                           std::span<const std::uint8_t> src,
                                           cuda::StreamId stream) {
  stats_.bytes_to_device += src.size();
  return enqueue(proto::RPC_MEMCPY_H2D_ASYNC_PROC, dst,
                 std::vector<std::uint8_t>(src.begin(), src.end()), stream);
}

Error AsyncRemoteCudaApi::memcpy_d2h_async(std::span<std::uint8_t> dst,
                                           cuda::DevPtr src,
                                           cuda::StreamId stream) {
  // The reply carries the bytes, so even the "async" D2H copy must wait for
  // it — same constraint the synchronous client has.
  stats_.bytes_from_device += dst.size();
  return call_blocking<proto::data_result>(
      proto::RPC_MEMCPY_D2H_ASYNC_PROC,
      [&](const proto::data_result& res) {
        if (res.err == 0) {
          if (res.data.size() != dst.size()) return Error::kRpcFailure;
          std::copy(res.data.begin(), res.data.end(), dst.begin());
        }
        return from_wire(res.err);
      },
      src, static_cast<std::uint64_t>(dst.size()), stream);
}

// ---- streams and events -------------------------------------------------

Error AsyncRemoteCudaApi::stream_create(cuda::StreamId& stream) {
  return call_blocking<proto::u64_result>(proto::RPC_STREAM_CREATE_PROC,
                                          [&](const proto::u64_result& res) {
                                            stream = res.value;
                                            return from_wire(res.err);
                                          });
}

Error AsyncRemoteCudaApi::stream_destroy(cuda::StreamId stream) {
  return enqueue(proto::RPC_STREAM_DESTROY_PROC, stream);
}

Error AsyncRemoteCudaApi::stream_synchronize(cuda::StreamId stream) {
  const auto err = call_blocking<std::int32_t>(
      proto::RPC_STREAM_SYNCHRONIZE_PROC,
      [&](std::int32_t res) { return from_wire(res); }, stream);
  absorb(err);
  drain();
  return std::exchange(
      sticky_, sticky_ == Error::kRpcFailure ? sticky_ : Error::kSuccess);
}

Error AsyncRemoteCudaApi::device_synchronize() {
  const auto err = call_blocking<std::int32_t>(
      proto::RPC_DEVICE_SYNCHRONIZE_PROC,
      [&](std::int32_t res) { return from_wire(res); });
  absorb(err);
  drain();
  return std::exchange(
      sticky_, sticky_ == Error::kRpcFailure ? sticky_ : Error::kSuccess);
}

Error AsyncRemoteCudaApi::stream_wait_event(cuda::StreamId stream,
                                            cuda::EventId event) {
  return enqueue(proto::RPC_STREAM_WAIT_EVENT_PROC, stream, event);
}

Error AsyncRemoteCudaApi::event_create(cuda::EventId& event) {
  return call_blocking<proto::u64_result>(proto::RPC_EVENT_CREATE_PROC,
                                          [&](const proto::u64_result& res) {
                                            event = res.value;
                                            return from_wire(res.err);
                                          });
}

Error AsyncRemoteCudaApi::event_destroy(cuda::EventId event) {
  return enqueue(proto::RPC_EVENT_DESTROY_PROC, event);
}

Error AsyncRemoteCudaApi::event_record(cuda::EventId event,
                                       cuda::StreamId stream) {
  return enqueue(proto::RPC_EVENT_RECORD_PROC, event, stream);
}

Error AsyncRemoteCudaApi::event_synchronize(cuda::EventId event) {
  const auto err = call_blocking<std::int32_t>(
      proto::RPC_EVENT_SYNCHRONIZE_PROC,
      [&](std::int32_t res) { return from_wire(res); }, event);
  absorb(err);
  drain();
  return std::exchange(
      sticky_, sticky_ == Error::kRpcFailure ? sticky_ : Error::kSuccess);
}

Error AsyncRemoteCudaApi::event_elapsed_ms(float& ms, cuda::EventId start,
                                           cuda::EventId stop) {
  return call_blocking<proto::float_result>(
      proto::RPC_EVENT_ELAPSED_PROC,
      [&](const proto::float_result& res) {
        ms = res.value;
        return from_wire(res.err);
      },
      start, stop);
}

// ---- modules and launch -------------------------------------------------

Error AsyncRemoteCudaApi::module_load(cuda::ModuleId& module,
                                      std::span<const std::uint8_t> image) {
  if (config_.module_cache) {
    // Two-phase negotiation, same as the synchronous client: probe by
    // content hash plus proof of possession, fall back to the full upload
    // only on kCacheMiss. The probe is blocking anyway (the module id is
    // needed), so pipelining loses nothing.
    const auto proof = modcache::possession_proof(config_.tenant, image);
    bool miss = false;
    const Error err = call_blocking<proto::u64_result>(
        proto::RPC_MODULE_LOAD_CACHED_PROC,
        [&](const proto::u64_result& res) {
          if (from_wire(res.err) == Error::kCacheMiss) {
            miss = true;
            return Error::kSuccess;  // negotiation answer, not a failure
          }
          module = res.value;
          return from_wire(res.err);
        },
        modcache::hash_image(image),
        std::vector<std::uint8_t>(proof.begin(), proof.end()));
    if (!miss) return err;
  }
  return call_blocking<proto::u64_result>(
      proto::RPC_MODULE_LOAD_PROC,
      [&](const proto::u64_result& res) {
        module = res.value;
        return from_wire(res.err);
      },
      std::vector<std::uint8_t>(image.begin(), image.end()));
}

Error AsyncRemoteCudaApi::module_unload(cuda::ModuleId module) {
  return enqueue(proto::RPC_MODULE_UNLOAD_PROC, module);
}

Error AsyncRemoteCudaApi::module_get_function(cuda::FuncId& func,
                                              cuda::ModuleId module,
                                              const std::string& name) {
  return call_blocking<proto::u64_result>(
      proto::RPC_MODULE_GET_FUNCTION_PROC,
      [&](const proto::u64_result& res) {
        func = res.value;
        return from_wire(res.err);
      },
      module, name);
}

Error AsyncRemoteCudaApi::module_get_global(cuda::DevPtr& ptr,
                                            cuda::ModuleId module,
                                            const std::string& name) {
  return call_blocking<proto::u64_result>(
      proto::RPC_MODULE_GET_GLOBAL_PROC,
      [&](const proto::u64_result& res) {
        ptr = res.value;
        return from_wire(res.err);
      },
      module, name);
}

Error AsyncRemoteCudaApi::launch_kernel(cuda::FuncId func, cuda::Dim3 grid,
                                        cuda::Dim3 block,
                                        std::uint32_t shared_bytes,
                                        cuda::StreamId stream,
                                        std::span<const std::uint8_t> params) {
  clock_->advance(config_.flavor.launch_extra_ns);
  return enqueue(proto::RPC_LAUNCH_KERNEL_PROC, func,
                 proto::rpc_dim3{xdr::Untrusted<std::uint32_t>(grid.x),
                                xdr::Untrusted<std::uint32_t>(grid.y),
                                xdr::Untrusted<std::uint32_t>(grid.z)},
                 proto::rpc_dim3{xdr::Untrusted<std::uint32_t>(block.x),
                                xdr::Untrusted<std::uint32_t>(block.y),
                                xdr::Untrusted<std::uint32_t>(block.z)}, shared_bytes,
                 stream,
                 std::vector<std::uint8_t>(params.begin(), params.end()));
}

// ---- BLAS / solver ------------------------------------------------------

Error AsyncRemoteCudaApi::blas_sgemm(int m, int n, int k, float alpha,
                                     cuda::DevPtr a, int lda, cuda::DevPtr b,
                                     int ldb, float beta, cuda::DevPtr c,
                                     int ldc) {
  return enqueue(proto::RPC_BLAS_SGEMM_PROC, static_cast<std::int32_t>(m),
                 static_cast<std::int32_t>(n), static_cast<std::int32_t>(k),
                 alpha, a, static_cast<std::int32_t>(lda), b,
                 static_cast<std::int32_t>(ldb), beta, c,
                 static_cast<std::int32_t>(ldc));
}

Error AsyncRemoteCudaApi::blas_sgemv(int m, int n, float alpha, cuda::DevPtr a,
                                     int lda, cuda::DevPtr x, float beta,
                                     cuda::DevPtr y) {
  return enqueue(proto::RPC_BLAS_SGEMV_PROC, static_cast<std::int32_t>(m),
                 static_cast<std::int32_t>(n), alpha, a,
                 static_cast<std::int32_t>(lda), x, beta, y);
}

Error AsyncRemoteCudaApi::blas_saxpy(int n, float alpha, cuda::DevPtr x,
                                     cuda::DevPtr y) {
  return enqueue(proto::RPC_BLAS_SAXPY_PROC, static_cast<std::int32_t>(n),
                 alpha, x, y);
}

Error AsyncRemoteCudaApi::blas_snrm2(int n, cuda::DevPtr x,
                                     cuda::DevPtr result) {
  return enqueue(proto::RPC_BLAS_SNRM2_PROC, static_cast<std::int32_t>(n), x,
                 result);
}

Error AsyncRemoteCudaApi::solver_sgetrf(int n, cuda::DevPtr a, int lda,
                                        cuda::DevPtr ipiv, cuda::DevPtr info) {
  return enqueue(proto::RPC_SOLVER_SGETRF_PROC, static_cast<std::int32_t>(n),
                 a, static_cast<std::int32_t>(lda), ipiv, info);
}

Error AsyncRemoteCudaApi::solver_sgetrs(int n, int nrhs, cuda::DevPtr a,
                                        int lda, cuda::DevPtr ipiv,
                                        cuda::DevPtr b, int ldb,
                                        cuda::DevPtr info) {
  return enqueue(proto::RPC_SOLVER_SGETRS_PROC, static_cast<std::int32_t>(n),
                 static_cast<std::int32_t>(nrhs), a,
                 static_cast<std::int32_t>(lda), ipiv, b,
                 static_cast<std::int32_t>(ldb), info);
}

Error AsyncRemoteCudaApi::solver_spotrf(int n, cuda::DevPtr a, int lda,
                                        cuda::DevPtr info) {
  return enqueue(proto::RPC_SOLVER_SPOTRF_PROC, static_cast<std::int32_t>(n),
                 a, static_cast<std::int32_t>(lda), info);
}

Error AsyncRemoteCudaApi::solver_spotrs(int n, int nrhs, cuda::DevPtr a,
                                        int lda, cuda::DevPtr b, int ldb,
                                        cuda::DevPtr info) {
  return enqueue(proto::RPC_SOLVER_SPOTRS_PROC, static_cast<std::int32_t>(n),
                 static_cast<std::int32_t>(nrhs), a,
                 static_cast<std::int32_t>(lda), b,
                 static_cast<std::int32_t>(ldb), info);
}

}  // namespace cricket::core
