#include "cricket/client.hpp"

#include <atomic>
#include <thread>

#include "cricket_proto.hpp"
#include "modcache/module_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cricket::core {

using cuda::Error;

namespace {

Error from_wire(std::int32_t err) { return static_cast<Error>(err); }

}  // namespace

std::uint32_t next_auth_stamp() noexcept {
  // Starts past 0 so an auto-assigned stamp never collides with the "assign
  // one for me" sentinel in ClientConfig::auth_stamp.
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1);
}

RemoteCudaApi::RemoteCudaApi(std::unique_ptr<rpc::Transport> transport,
                             sim::SimClock& clock, ClientConfig config,
                             TransferLanes lanes)
    : clock_(&clock),
      config_(std::move(config)),
      lanes_(std::move(lanes)),
      rpc_(std::move(transport), proto::CRICKET_PROG, proto::CRICKETVERS_VERS,
           rpc::ClientOptions{.retry = config_.retry,
                              .reconnect = config_.reconnect}),
      stub_(std::make_unique<proto::CRICKETVERSClient>(rpc_)) {
  if (!config_.tenant.empty()) {
    rpc::AuthSysParms cred;
    cred.machinename = config_.tenant;
    cred.stamp =
        config_.auth_stamp != 0 ? config_.auth_stamp : next_auth_stamp();
    rpc_.set_credential(cred.to_opaque());
  }
}

RemoteCudaApi::~RemoteCudaApi() = default;

template <typename Fn>
Error RemoteCudaApi::forward(const char* name, Fn&& fn) {
  ++stats_.api_calls;
  // Degraded mode: the retry layer already exhausted its budget (or the
  // transport died with no reconnect path), so fail fast instead of paying
  // a full deadline per call against a link we know is gone.
  if (sticky_error_ != Error::kSuccess) return sticky_error_;
  static obs::Counter& api_calls = obs::Registry::global().counter(
      "cricket_client_api_calls_total", {{"mode", "sync"}},
      "CUDA API calls forwarded over RPC");
  api_calls.inc();
  // The whole remote call, named after the CUDA entry point; the RPC layers
  // underneath contribute the nested serialize/send/wait spans.
  obs::Span span(obs::Layer::kClientCall, name);
  clock_->advance(config_.flavor.per_call_ns);
  try {
    return fn();
  } catch (const rpc::RpcError& e) {
    // Quota rejections are per-call and the connection stays healthy, so
    // they never go sticky — the tenant backs off and retries.
    if (e.kind() == rpc::RpcError::Kind::kQuotaExceeded)
      return Error::kQuotaExceeded;
    // A surfaced migration redirect means the retry budget ran out while
    // the tenant moved servers. The call never executed and the next call
    // reconnects through the flipped redirect, so this is not sticky.
    if (e.kind() == rpc::RpcError::Kind::kMigrating) return Error::kMigrating;
    if (e.kind() == rpc::RpcError::Kind::kDeadlineExceeded)
      sticky_error_ = Error::kRpcFailure;
    return Error::kRpcFailure;
  } catch (const rpc::TransportError&) {
    sticky_error_ = Error::kRpcFailure;
    return Error::kRpcFailure;
  } catch (const xdr::XdrError&) {
    return Error::kRpcFailure;
  }
}

Error RemoteCudaApi::get_device_count(int& count) {
  return forward("cuda.get_device_count", [&] {
    const auto res = stub_->rpc_get_device_count();
    count = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::set_device(int device) {
  return forward("cuda.set_device", [&] { return from_wire(stub_->rpc_set_device(device)); });
}

Error RemoteCudaApi::get_device(int& device) {
  return forward("cuda.get_device", [&] {
    const auto res = stub_->rpc_get_device();
    device = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::get_device_properties(cuda::DeviceInfo& info,
                                           int device) {
  return forward("cuda.get_device_properties", [&] {
    const auto res = stub_->rpc_get_device_properties(device);
    if (res.err == 0) {
      info = cuda::DeviceInfo{.name = res.name,
                              .total_mem = res.total_mem,
                              .sm_arch = res.sm_arch,
                              .sm_count = res.sm_count,
                              .clock_mhz = res.clock_mhz};
    }
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::malloc(cuda::DevPtr& ptr, std::uint64_t size) {
  return forward("cuda.malloc", [&] {
    const auto res = stub_->rpc_malloc(size);
    ptr = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::free(cuda::DevPtr ptr) {
  return forward("cuda.free", [&] { return from_wire(stub_->rpc_free(ptr)); });
}

Error RemoteCudaApi::memset(cuda::DevPtr ptr, int value, std::uint64_t size) {
  return forward("cuda.memset", 
      [&] { return from_wire(stub_->rpc_memset(ptr, value, size)); });
}

Error RemoteCudaApi::memcpy_h2d(cuda::DevPtr dst,
                                std::span<const std::uint8_t> src) {
  stats_.bytes_to_device += src.size();
  switch (config_.transfer) {
    case TransferMethod::kRpcArgs:
      return forward("cuda.memcpy_h2d", [&] {
        return from_wire(stub_->rpc_memcpy_h2d(
            dst, std::vector<std::uint8_t>(src.begin(), src.end())));
      });
    case TransferMethod::kParallelSockets: {
      if (lanes_.count() == 0) return Error::kInvalidValue;
      return forward("cuda.memcpy_h2d", [&] {
        // Stripe concurrently with the RPC: the server handler starts
        // draining the lanes when it receives the call.
        std::thread sender(
            [&] { send_striped(lanes_, src, config_.profile, *clock_); });
        const auto err = from_wire(stub_->rpc_transfer_begin_h2d(
            dst, src.size(), static_cast<std::uint32_t>(lanes_.count())));
        sender.join();
        return err;
      });
    }
    case TransferMethod::kSharedMemory: {
      // GPUdirect/shared-memory class transfer: no buffer, no wire — the
      // client writes device memory directly (local GPU only, §4.2).
      if (!config_.local_node) return Error::kInvalidValue;
      try {
        config_.local_node->device(0).memcpy_h2d(dst, src);
        return Error::kSuccess;
      } catch (const gpusim::MemoryError&) {
        return Error::kInvalidDevicePointer;
      }
    }
  }
  return Error::kInvalidValue;
}

Error RemoteCudaApi::memcpy_d2h(std::span<std::uint8_t> dst,
                                cuda::DevPtr src) {
  stats_.bytes_from_device += dst.size();
  switch (config_.transfer) {
    case TransferMethod::kRpcArgs:
      return forward("cuda.memcpy_d2h", [&] {
        const auto res = stub_->rpc_memcpy_d2h(src, dst.size());
        if (res.err == 0) {
          if (res.data.size() != dst.size()) return Error::kRpcFailure;
          std::copy(res.data.begin(), res.data.end(), dst.begin());
        }
        return from_wire(res.err);
      });
    case TransferMethod::kParallelSockets: {
      if (lanes_.count() == 0) return Error::kInvalidValue;
      return forward("cuda.memcpy_d2h", [&] {
        std::thread receiver(
            [&] { recv_striped(lanes_, dst, config_.profile, *clock_); });
        const auto err = from_wire(stub_->rpc_transfer_begin_d2h(
            src, dst.size(), static_cast<std::uint32_t>(lanes_.count())));
        receiver.join();
        return err;
      });
    }
    case TransferMethod::kSharedMemory: {
      if (!config_.local_node) return Error::kInvalidValue;
      try {
        config_.local_node->device(0).memcpy_d2h(dst, src);
        return Error::kSuccess;
      } catch (const gpusim::MemoryError&) {
        return Error::kInvalidDevicePointer;
      }
    }
  }
  return Error::kInvalidValue;
}

Error RemoteCudaApi::memcpy_d2d(cuda::DevPtr dst, cuda::DevPtr src,
                                std::uint64_t size) {
  return forward("cuda.memcpy_d2d", 
      [&] { return from_wire(stub_->rpc_memcpy_d2d(dst, src, size)); });
}

Error RemoteCudaApi::memcpy_h2d_async(cuda::DevPtr dst,
                                      std::span<const std::uint8_t> src,
                                      cuda::StreamId stream) {
  stats_.bytes_to_device += src.size();
  return forward("cuda.memcpy_h2d_async", [&] {
    return from_wire(stub_->rpc_memcpy_h2d_async(
        dst, std::vector<std::uint8_t>(src.begin(), src.end()), stream));
  });
}

Error RemoteCudaApi::memcpy_d2h_async(std::span<std::uint8_t> dst,
                                      cuda::DevPtr src,
                                      cuda::StreamId stream) {
  stats_.bytes_from_device += dst.size();
  return forward("cuda.memcpy_d2h_async", [&] {
    const auto res = stub_->rpc_memcpy_d2h_async(src, dst.size(), stream);
    if (res.err == 0) {
      if (res.data.size() != dst.size()) return Error::kRpcFailure;
      std::copy(res.data.begin(), res.data.end(), dst.begin());
    }
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::stream_wait_event(cuda::StreamId stream,
                                       cuda::EventId event) {
  return forward("cuda.stream_wait_event", 
      [&] { return from_wire(stub_->rpc_stream_wait_event(stream, event)); });
}

Error RemoteCudaApi::stream_create(cuda::StreamId& stream) {
  return forward("cuda.stream_create", [&] {
    const auto res = stub_->rpc_stream_create();
    stream = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::stream_destroy(cuda::StreamId stream) {
  return forward("cuda.stream_destroy", [&] { return from_wire(stub_->rpc_stream_destroy(stream)); });
}

Error RemoteCudaApi::stream_synchronize(cuda::StreamId stream) {
  return forward("cuda.stream_synchronize", 
      [&] { return from_wire(stub_->rpc_stream_synchronize(stream)); });
}

Error RemoteCudaApi::device_synchronize() {
  return forward("cuda.device_synchronize", [&] { return from_wire(stub_->rpc_device_synchronize()); });
}

Error RemoteCudaApi::event_create(cuda::EventId& event) {
  return forward("cuda.event_create", [&] {
    const auto res = stub_->rpc_event_create();
    event = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::event_destroy(cuda::EventId event) {
  return forward("cuda.event_destroy", [&] { return from_wire(stub_->rpc_event_destroy(event)); });
}

Error RemoteCudaApi::event_record(cuda::EventId event, cuda::StreamId stream) {
  return forward("cuda.event_record", 
      [&] { return from_wire(stub_->rpc_event_record(event, stream)); });
}

Error RemoteCudaApi::event_synchronize(cuda::EventId event) {
  return forward("cuda.event_synchronize", 
      [&] { return from_wire(stub_->rpc_event_synchronize(event)); });
}

Error RemoteCudaApi::event_elapsed_ms(float& ms, cuda::EventId start,
                                      cuda::EventId stop) {
  return forward("cuda.event_elapsed_ms", [&] {
    const auto res = stub_->rpc_event_elapsed(start, stop);
    ms = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::module_load(cuda::ModuleId& module,
                                 std::span<const std::uint8_t> image) {
  return forward("cuda.module_load", [&] {
    if (config_.module_cache) {
      // Two-phase negotiation: probe the server's content-addressed cache
      // with the image hash plus a proof of possession (computable only
      // from the bytes, bound to this tenant); only a miss pays for the
      // upload (which then populates the cache). kCacheMiss is the
      // negotiation answer, never an application-visible error.
      const auto proof = modcache::possession_proof(config_.tenant, image);
      const auto probe = stub_->rpc_module_load_cached(
          modcache::hash_image(image),
          std::vector<std::uint8_t>(proof.begin(), proof.end()));
      if (from_wire(probe.err) != Error::kCacheMiss) {
        if (from_wire(probe.err) == Error::kSuccess) {
          module = probe.value;
          ++stats_.module_cache_hits;
          stats_.module_bytes_saved += image.size();
        }
        return from_wire(probe.err);
      }
    }
    const auto res = stub_->rpc_module_load(
        std::vector<std::uint8_t>(image.begin(), image.end()));
    module = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::module_unload(cuda::ModuleId module) {
  return forward("cuda.module_unload", [&] { return from_wire(stub_->rpc_module_unload(module)); });
}

Error RemoteCudaApi::module_get_function(cuda::FuncId& func,
                                         cuda::ModuleId module,
                                         const std::string& name) {
  return forward("cuda.module_get_function", [&] {
    const auto res = stub_->rpc_module_get_function(module, name);
    func = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::module_get_global(cuda::DevPtr& ptr,
                                       cuda::ModuleId module,
                                       const std::string& name) {
  return forward("cuda.module_get_global", [&] {
    const auto res = stub_->rpc_module_get_global(module, name);
    ptr = res.value;
    return from_wire(res.err);
  });
}

Error RemoteCudaApi::launch_kernel(cuda::FuncId func, cuda::Dim3 grid,
                                   cuda::Dim3 block,
                                   std::uint32_t shared_bytes,
                                   cuda::StreamId stream,
                                   std::span<const std::uint8_t> params) {
  // The C client's <<<...>>> compatibility logic runs here; the Rust path
  // omits it (paper §4.2, ~6.3% faster kernel launches).
  clock_->advance(config_.flavor.launch_extra_ns);
  return forward("cuda.launch_kernel", [&] {
    return from_wire(stub_->rpc_launch_kernel(
        func, proto::rpc_dim3{xdr::Untrusted<std::uint32_t>(grid.x),
                                xdr::Untrusted<std::uint32_t>(grid.y),
                                xdr::Untrusted<std::uint32_t>(grid.z)},
        proto::rpc_dim3{xdr::Untrusted<std::uint32_t>(block.x),
                                xdr::Untrusted<std::uint32_t>(block.y),
                                xdr::Untrusted<std::uint32_t>(block.z)}, shared_bytes, stream,
        std::vector<std::uint8_t>(params.begin(), params.end())));
  });
}

Error RemoteCudaApi::blas_sgemm(int m, int n, int k, float alpha,
                                cuda::DevPtr a, int lda, cuda::DevPtr b,
                                int ldb, float beta, cuda::DevPtr c,
                                int ldc) {
  return forward("cuda.blas_sgemm", [&] {
    return from_wire(
        stub_->rpc_blas_sgemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc));
  });
}

Error RemoteCudaApi::blas_sgemv(int m, int n, float alpha, cuda::DevPtr a,
                                int lda, cuda::DevPtr x, float beta,
                                cuda::DevPtr y) {
  return forward("cuda.blas_sgemv", [&] {
    return from_wire(stub_->rpc_blas_sgemv(m, n, alpha, a, lda, x, beta, y));
  });
}

Error RemoteCudaApi::blas_saxpy(int n, float alpha, cuda::DevPtr x,
                                cuda::DevPtr y) {
  return forward("cuda.blas_saxpy", 
      [&] { return from_wire(stub_->rpc_blas_saxpy(n, alpha, x, y)); });
}

Error RemoteCudaApi::blas_snrm2(int n, cuda::DevPtr x, cuda::DevPtr result) {
  return forward("cuda.blas_snrm2", 
      [&] { return from_wire(stub_->rpc_blas_snrm2(n, x, result)); });
}

Error RemoteCudaApi::solver_spotrf(int n, cuda::DevPtr a, int lda,
                                   cuda::DevPtr info) {
  return forward("cuda.solver_spotrf", 
      [&] { return from_wire(stub_->rpc_solver_spotrf(n, a, lda, info)); });
}

Error RemoteCudaApi::solver_spotrs(int n, int nrhs, cuda::DevPtr a, int lda,
                                   cuda::DevPtr b, int ldb,
                                   cuda::DevPtr info) {
  return forward("cuda.solver_spotrs", [&] {
    return from_wire(stub_->rpc_solver_spotrs(n, nrhs, a, lda, b, ldb, info));
  });
}

Error RemoteCudaApi::solver_sgetrf(int n, cuda::DevPtr a, int lda,
                                   cuda::DevPtr ipiv, cuda::DevPtr info) {
  return forward("cuda.solver_sgetrf", [&] {
    return from_wire(stub_->rpc_solver_sgetrf(n, a, lda, ipiv, info));
  });
}

Error RemoteCudaApi::solver_sgetrs(int n, int nrhs, cuda::DevPtr a, int lda,
                                   cuda::DevPtr ipiv, cuda::DevPtr b, int ldb,
                                   cuda::DevPtr info) {
  return forward("cuda.solver_sgetrs", [&] {
    return from_wire(
        stub_->rpc_solver_sgetrs(n, nrhs, a, lda, ipiv, b, ldb, info));
  });
}

Error RemoteCudaApi::checkpoint(const std::string& path) {
  return forward("cuda.checkpoint", [&] { return from_wire(stub_->rpc_checkpoint(path)); });
}

Error RemoteCudaApi::restore(const std::string& path) {
  return forward("cuda.restore", [&] { return from_wire(stub_->rpc_restore(path)); });
}

void RemoteCudaApi::disconnect() { rpc_.transport().shutdown(); }

}  // namespace cricket::core
