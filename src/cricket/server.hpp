// The Cricket server: executes forwarded CUDA API calls on the GPU node.
//
// "The Cricket server executes the CUDA APIs and forwards the results back
// to the application" (§3.3). One server owns a GpuNode; each client
// connection becomes a session with its own CUDA context (current device,
// resource tracking for cleanup on disconnect) and all sessions share the
// devices through a configurable kernel scheduler (§5).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "cricket/scheduler.hpp"
#include "cricket/transfer.hpp"
#include "cudart/local_api.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "tenancy/session_manager.hpp"

namespace cricket::core {

struct ServerOptions {
  SchedulerPolicy scheduler = SchedulerPolicy::kFifo;
  /// Directory prefix applied to checkpoint paths received via RPC (keeps
  /// clients from writing anywhere on the server host).
  std::string checkpoint_dir = ".";
  /// Per-connection RPC loop configuration. Setting `serve.workers` > 0
  /// enables the pipelined loop (overlapped decode/execute/reply, coalesced
  /// reply records) for clients that pipeline calls; CricketServer clamps
  /// the worker count to 1 because a session's handlers mutate shared
  /// session state and CUDA stream semantics require this session's calls
  /// to execute in issue order.
  rpc::ServeOptions serve{};
  /// At-most-once execution: cache replies keyed by (client, xid) so a
  /// faultnet/retry client re-sending a timed-out call gets the original
  /// answer instead of a second kernel launch. Required whenever clients
  /// enable RetryPolicy::assume_at_most_once.
  bool at_most_once = false;
  rpc::DrcOptions drc{};
  /// Fair-share quantum / real-block budget / archive cap for the kernel
  /// scheduler (policy comes from `scheduler` above).
  SchedulerOptions scheduler_options{};
  /// Multi-tenant mode: authenticate every connection against this manager
  /// (non-owning; must outlive the server), enforce its quotas at admission
  /// before argument decode, shard sessions across devices by tenant, and
  /// group fair-share accounting by tenant. Null = historical single-tenant
  /// behaviour.
  tenancy::SessionManager* tenants = nullptr;
};

struct ServerStats {
  std::atomic<std::uint64_t> sessions{0};
  std::atomic<std::uint64_t> rpcs{0};
};

class CricketServer {
 public:
  explicit CricketServer(cuda::GpuNode& node, ServerOptions options = {});

  CricketServer(const CricketServer&) = delete;
  CricketServer& operator=(const CricketServer&) = delete;

  /// Serves one client connection until end-of-stream (blocking). `lanes`
  /// are optional parallel-socket side channels for bulk transfers.
  void serve(rpc::Transport& transport, TransferLanes lanes = {});

  /// Spawns a thread running serve(); the thread owns the transport.
  [[nodiscard]] std::thread serve_async(
      std::unique_ptr<rpc::Transport> transport, TransferLanes lanes = {});

  [[nodiscard]] cuda::GpuNode& node() noexcept { return *node_; }
  [[nodiscard]] KernelScheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] tenancy::SessionManager* tenants() noexcept {
    return options_.tenants;
  }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  void count_rpc() noexcept { stats_.rpcs.fetch_add(1); }

 private:
  cuda::GpuNode* node_;
  ServerOptions options_;
  KernelScheduler scheduler_;
  ServerStats stats_;
  std::atomic<std::uint64_t> next_session_{1};
};

}  // namespace cricket::core
