// The Cricket server: executes forwarded CUDA API calls on the GPU node.
//
// "The Cricket server executes the CUDA APIs and forwards the results back
// to the application" (§3.3). One server owns a GpuNode; each client
// connection becomes a session with its own CUDA context (current device,
// resource tracking for cleanup on disconnect) and all sessions share the
// devices through a configurable kernel scheduler (§5).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cricket/scheduler.hpp"
#include "cricket/transfer.hpp"
#include "cudart/local_api.hpp"
#include "modcache/module_cache.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "tenancy/session_manager.hpp"

namespace cricket::core {

/// Everything one session contributes to a live migration: its slice of
/// device state (allocations with contents, modules + resolved functions,
/// stream/event timelines, captured by Device::snapshot_subset), the
/// resource-ownership tables the server tracks for cleanup-on-disconnect,
/// and the connection's duplicate-request-cache entries so completed xids
/// are never re-executed after the client re-sends them to the target.
struct SessionExport {
  std::uint64_t session_id = 0;
  /// drc_client_id of the credential this session authenticated with,
  /// captured at bind time. Adoption on the target is keyed by it: only the
  /// connection presenting the same credential may take over this bundle,
  /// so the DRC entries (keyed client id + xid) land where they can match.
  std::uint64_t client_id = 0;
  gpusim::DeviceSnapshot state;
  /// ptr -> bytes charged against the tenant's memory quota.
  std::vector<std::pair<cuda::DevPtr, std::uint64_t>> allocations;
  std::vector<cuda::ModuleId> modules;
  std::vector<cuda::StreamId> streams;
  std::vector<cuda::EventId> events;
  std::vector<rpc::DrcExportEntry> drc;
  /// Modules this session references through the content-addressed cache:
  /// (device module id, truncated-SHA-256 image hash, image size). The
  /// hash is what lets a warm migration target re-reference its own cache
  /// instead of receiving the image again; exactly one exporting session
  /// also carries the module's device record in `state` (restore_merge
  /// refuses cross-snapshot handle collisions) and is flagged `owner` —
  /// the only session that may fall back to plain per-session ownership
  /// of the restored handle, so a shared module can never be unloaded out
  /// from under its co-referencing sessions. `proof` is the exporting
  /// tenant's possession proof (modcache::possession_proof over the image
  /// bytes the target never sees), letting the seeded entry keep answering
  /// that tenant's probes.
  struct CachedModule {
    cuda::ModuleId id = 0;
    std::uint64_t hash = 0;
    std::uint64_t bytes = 0;
    bool owner = false;
    modcache::Digest proof{};
  };
  std::vector<CachedModule> cached_modules;
};

namespace detail {
/// Seam between CricketServer's live-session table and the per-connection
/// session objects (which live on serve()'s stack, in an anonymous
/// namespace). export_if returns the session's migratable slice when it is
/// bound to `tenant`, nullopt otherwise. Only called after the tenant is
/// drained and frozen, so the session's resource tables are quiescent.
class SessionPeer {
 public:
  virtual ~SessionPeer() = default;
  /// `claimed_modules` accumulates cache-shared module ids already carried
  /// by an earlier session's snapshot in this export batch, so a module two
  /// sessions share lands in exactly one device-state slice.
  [[nodiscard]] virtual std::optional<SessionExport> export_if(
      tenancy::TenantId tenant, std::set<cuda::ModuleId>& claimed_modules) = 0;
};
}  // namespace detail

struct ServerOptions {
  SchedulerPolicy scheduler = SchedulerPolicy::kFifo;
  /// Directory prefix applied to checkpoint paths received via RPC (keeps
  /// clients from writing anywhere on the server host).
  std::string checkpoint_dir = ".";
  /// Per-connection RPC loop configuration. Setting `serve.workers` > 0
  /// enables the pipelined loop (overlapped decode/execute/reply, coalesced
  /// reply records) for clients that pipeline calls; CricketServer clamps
  /// the worker count to 1 because a session's handlers mutate shared
  /// session state and CUDA stream semantics require this session's calls
  /// to execute in issue order.
  rpc::ServeOptions serve{};
  /// At-most-once execution: cache replies keyed by (client, xid) so a
  /// faultnet/retry client re-sending a timed-out call gets the original
  /// answer instead of a second kernel launch. Required whenever clients
  /// enable RetryPolicy::assume_at_most_once.
  bool at_most_once = false;
  rpc::DrcOptions drc{};
  /// Fair-share quantum / real-block budget / archive cap for the kernel
  /// scheduler (policy comes from `scheduler` above).
  SchedulerOptions scheduler_options{};
  /// Multi-tenant mode: authenticate every connection against this manager
  /// (non-owning; must outlive the server), enforce its quotas at admission
  /// before argument decode, shard sessions across devices by tenant, and
  /// group fair-share accounting by tenant. Null = historical single-tenant
  /// behaviour.
  tenancy::SessionManager* tenants = nullptr;
  /// Content-addressed module cache (ROADMAP item 5): when enabled the
  /// server deduplicates rpc_module_load images by truncated-SHA-256
  /// content hash and answers rpc_module_load_cached probes (which must
  /// carry a proof of possession) without the upload. Off by default — the
  /// historical per-load behaviour is unchanged.
  bool module_cache = false;
  modcache::ModuleCacheOptions module_cache_options{};
};

struct ServerStats {
  std::atomic<std::uint64_t> sessions{0};
  std::atomic<std::uint64_t> rpcs{0};
};

class CricketServer {
 public:
  explicit CricketServer(cuda::GpuNode& node, ServerOptions options = {});

  CricketServer(const CricketServer&) = delete;
  CricketServer& operator=(const CricketServer&) = delete;

  /// Serves one client connection until end-of-stream (blocking). `lanes`
  /// are optional parallel-socket side channels for bulk transfers.
  void serve(rpc::Transport& transport, TransferLanes lanes = {});

  /// Spawns a thread running serve(); the thread owns the transport.
  [[nodiscard]] std::thread serve_async(
      std::unique_ptr<rpc::Transport> transport, TransferLanes lanes = {});

  [[nodiscard]] cuda::GpuNode& node() noexcept { return *node_; }
  [[nodiscard]] KernelScheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] tenancy::SessionManager* tenants() noexcept {
    return options_.tenants;
  }
  /// Null unless ServerOptions::module_cache is set.
  [[nodiscard]] modcache::ModuleCache* module_cache() noexcept {
    return module_cache_.get();
  }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  void count_rpc() noexcept { stats_.rpcs.fetch_add(1); }

  // ------------------------- live migration support ------------------------

  /// Snapshots the migratable state of every live session bound to `tenant`.
  /// The caller (MigrationCoordinator) must have drained and frozen the
  /// tenant first: admission rejects its calls pre-decode, so the sessions
  /// are quiescent and reading their resource tables is race-free.
  [[nodiscard]] std::vector<SessionExport> export_tenant_sessions(
      tenancy::TenantId tenant);

  /// Target side: parks restored session bundles until their clients
  /// reconnect. Bundles are keyed by (tenant, client identity): a new
  /// connection adopts only a bundle exported under the very credential it
  /// authenticates with — taking over handle ownership for
  /// cleanup-on-disconnect and importing the bundle's DRC entries into the
  /// connection's duplicate-request cache before any call dispatches. (Two
  /// sessions of one multi-session tenant therefore can never swap bundles;
  /// clients sharing one credential fall back to FIFO among themselves,
  /// which is safe because their DRC entries share the client id anyway.)
  void stage_adoption(const std::string& tenant_name,
                      std::vector<SessionExport> bundles);
  [[nodiscard]] std::optional<SessionExport> take_adoption(
      const std::string& tenant_name, std::uint64_t client_id);

  /// Live-session table maintenance (called by serve()).
  void register_session(std::uint64_t id, detail::SessionPeer* peer);
  void unregister_session(std::uint64_t id);

 private:
  cuda::GpuNode* node_;
  ServerOptions options_;
  std::unique_ptr<modcache::ModuleCache> module_cache_;
  KernelScheduler scheduler_;
  ServerStats stats_;
  std::atomic<std::uint64_t> next_session_{1};
  sim::Mutex migrate_mu_;
  std::map<std::uint64_t, detail::SessionPeer*> sessions_
      CRICKET_GUARDED_BY(migrate_mu_);
  std::map<std::pair<std::string, std::uint64_t>, std::deque<SessionExport>>
      adoptions_ CRICKET_GUARDED_BY(migrate_mu_);
};

}  // namespace cricket::core
