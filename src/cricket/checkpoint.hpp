// Checkpoint/restart of Cricket server device state (paper §1/§5).
//
// "our approach allows ... runtime reorganization of tasks through
// checkpoint/restart": the server serializes the complete device state —
// allocations with contents, modules, handle tables, stream/event
// timelines — to a file, and a (possibly different) server restores it so
// that every device pointer and handle a client holds remains valid.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.hpp"

namespace cricket::core {

class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A structurally plausible checkpoint whose version is newer than this
/// build understands. Distinct from the generic decode failure so a rolling
/// upgrade can tell "old binary handed a new-format blob" (migrate the
/// server first) apart from corruption.
class CheckpointVersionError : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// Serializes a snapshot to the on-disk checkpoint format: magic "CKPT",
/// version word, XDR-encoded body, and (since version 2) a trailing FNV-64
/// checksum of the body.
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    const gpusim::DeviceSnapshot& snap);

/// Parses a checkpoint; accepts version 1 (no checksum) and version 2.
/// Throws CheckpointVersionError for future versions, CheckpointError for
/// anything malformed (bad magic, checksum mismatch, truncated body).
[[nodiscard]] gpusim::DeviceSnapshot decode_checkpoint(
    std::span<const std::uint8_t> bytes);

/// Convenience: snapshot `device` and write it to `path`.
void checkpoint_to_file(gpusim::Device& device, const std::string& path);

/// Convenience: read `path` and restore into (pristine) `device`.
void restore_from_file(gpusim::Device& device, const std::string& path);

}  // namespace cricket::core
