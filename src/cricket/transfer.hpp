// Device-memory transfer strategies (paper §4.2).
//
// "Cricket implements multiple methods for transferring device memory
// between applications and devices: RPC arguments, parallel sockets,
// InfiniBand and shared memory." The unikernels can only use RPC arguments
// (single TCP connection, single-threaded RPC library); this module
// implements the other software methods so their trade-off is reproducible:
//   * kRpcArgs         — payload inline in the RPC (the evaluated path).
//   * kParallelSockets — payload striped over N side-channel connections,
//                        sent/received by N threads.
//   * kSharedMemory    — local-only: client and server share the GPU node's
//                        address space; no wire traffic at all.
// (InfiniBand/GPUDirect has no software equivalent to simulate beyond
// shared memory's zero-copy behaviour; see DESIGN.md.)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rpc/transport.hpp"
#include "sim/sim_clock.hpp"
#include "vnet/cost_model.hpp"

namespace cricket::core {

enum class TransferMethod : std::uint32_t {
  kRpcArgs = 0,
  kParallelSockets = 1,
  kSharedMemory = 2,
};

/// A bundle of raw side-channel connections for parallel-socket transfers.
/// Lanes are *unshaped*: the transfer code charges aggregate virtual time
/// itself (per-lane costs overlap in real time, so the charge is the
/// serial cost divided by the lane count, plus one wire traversal).
struct TransferLanes {
  std::vector<std::unique_ptr<rpc::Transport>> lanes;

  [[nodiscard]] std::size_t count() const noexcept { return lanes.size(); }
};

/// Creates `n` connected lane pairs (client side, server side).
[[nodiscard]] std::pair<TransferLanes, TransferLanes> make_lane_pairs(
    std::size_t n, std::size_t capacity_bytes = 1 << 22);

/// Splits [0, total) into `lanes` contiguous parts; part i is what lane i
/// carries. Returns (offset, length) per lane.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> stripe(
    std::size_t total, std::size_t lanes);

/// Client side: stripes `data` across the lanes with one thread per lane.
/// Charges `profile` TX cost scaled by 1/lanes (the threads overlap) plus
/// one wire traversal.
void send_striped(TransferLanes& lanes, std::span<const std::uint8_t> data,
                  const vnet::NetworkProfile& profile, sim::SimClock& clock);

/// Client side: receives a stripe sent by `recv_striped`'s peer.
void recv_striped(TransferLanes& lanes, std::span<std::uint8_t> out,
                  const vnet::NetworkProfile& profile, sim::SimClock& clock);

/// Server side: gathers a striped payload (no cost charging — the server's
/// native stack cost is folded into the client-side aggregate).
void gather_striped(TransferLanes& lanes, std::span<std::uint8_t> out);

/// Server side: stripes a payload toward the client.
void scatter_striped(TransferLanes& lanes,
                     std::span<const std::uint8_t> data);

}  // namespace cricket::core
