#include "cricket/server.hpp"

#include <set>

#include "cricket/checkpoint.hpp"
#include "cricket_bounds.hpp"
#include "cricket_proto.hpp"
#include "obs/metrics.hpp"
#include "rpc/server.hpp"

namespace cricket::core {
namespace {

using cuda::Error;

std::int32_t to_wire(Error e) { return static_cast<std::int32_t>(e); }

/// One client connection: implements the generated service skeleton by
/// dispatching into the node's LocalCudaApi, tracks every resource the
/// client creates so a vanished unikernel cannot leak device memory, and
/// routes kernel launches through the shared scheduler.
class CricketSession final : public proto::CRICKETVERSService {
 public:
  CricketSession(CricketServer& server, std::uint64_t id, TransferLanes lanes)
      : server_(&server),
        id_(id),
        lanes_(std::move(lanes)),
        api_(server.node()) {
    server_->scheduler().session_open(id_);
  }

  ~CricketSession() override {
    // Release whatever the client leaked, in dependency-safe order.
    for (const auto e : events_) (void)api_.event_destroy(e);
    for (const auto s : streams_) (void)api_.stream_destroy(s);
    for (const auto m : modules_) (void)api_.module_unload(m);
    for (const auto p : allocations_) (void)api_.free(p);
    server_->scheduler().session_close(id_);
  }

  // ---------------------------- device mgmt ------------------------------
  proto::int_result rpc_get_device_count() override {
    count();
    int n = 0;
    const Error err = api_.get_device_count(n);
    return {to_wire(err), n};
  }

  std::int32_t rpc_set_device(std::int32_t device) override {
    count();
    return to_wire(api_.set_device(device));
  }

  proto::int_result rpc_get_device() override {
    count();
    int d = 0;
    const Error err = api_.get_device(d);
    return {to_wire(err), d};
  }

  proto::dev_props_result rpc_get_device_properties(
      std::int32_t device) override {
    count();
    cuda::DeviceInfo info;
    const Error err = api_.get_device_properties(info, device);
    proto::dev_props_result res;
    res.err = to_wire(err);
    if (err == Error::kSuccess) {
      res.name = info.name;
      res.total_mem = info.total_mem;
      res.sm_arch = info.sm_arch;
      res.sm_count = info.sm_count;
      res.clock_mhz = info.clock_mhz;
    }
    return res;
  }

  // ------------------------------- memory --------------------------------
  proto::u64_result rpc_malloc(std::uint64_t size) override {
    count();
    cuda::DevPtr ptr = 0;
    const Error err = api_.malloc(ptr, size);
    if (err == Error::kSuccess) allocations_.insert(ptr);
    return {to_wire(err), ptr};
  }

  std::int32_t rpc_free(proto::ptr_t ptr) override {
    count();
    const Error err = api_.free(ptr);
    if (err == Error::kSuccess) allocations_.erase(ptr);
    return to_wire(err);
  }

  std::int32_t rpc_memset(proto::ptr_t ptr, std::int32_t value,
                          std::uint64_t size) override {
    count();
    return to_wire(api_.memset(ptr, value, size));
  }

  std::int32_t rpc_memcpy_h2d(proto::ptr_t dst,
                              std::vector<std::uint8_t> data) override {
    count();
    return to_wire(api_.memcpy_h2d(dst, data));
  }

  proto::data_result rpc_memcpy_d2h(proto::ptr_t src,
                                    std::uint64_t len) override {
    count();
    proto::data_result res;
    res.data.resize(len);
    res.err = to_wire(api_.memcpy_d2h(res.data, src));
    if (res.err != 0) res.data.clear();
    return res;
  }

  std::int32_t rpc_memcpy_d2d(proto::ptr_t dst, proto::ptr_t src,
                              std::uint64_t len) override {
    count();
    return to_wire(api_.memcpy_d2d(dst, src, len));
  }

  std::int32_t rpc_memcpy_h2d_async(proto::ptr_t dst,
                                    std::vector<std::uint8_t> data,
                                    proto::ptr_t stream) override {
    count();
    return to_wire(api_.memcpy_h2d_async(dst, data, stream));
  }

  proto::data_result rpc_memcpy_d2h_async(proto::ptr_t src, std::uint64_t len,
                                          proto::ptr_t stream) override {
    count();
    proto::data_result res;
    res.data.resize(len);
    res.err = to_wire(api_.memcpy_d2h_async(res.data, src, stream));
    if (res.err != 0) res.data.clear();
    return res;
  }

  std::int32_t rpc_transfer_begin_h2d(proto::ptr_t dst, std::uint64_t len,
                                      std::uint32_t lane_count) override {
    count();
    if (lane_count != lanes_.count() || lane_count == 0)
      return to_wire(Error::kInvalidValue);
    std::vector<std::uint8_t> buf(len);
    gather_striped(lanes_, buf);
    return to_wire(api_.memcpy_h2d(dst, buf));
  }

  std::int32_t rpc_transfer_begin_d2h(proto::ptr_t src, std::uint64_t len,
                                      std::uint32_t lane_count) override {
    count();
    if (lane_count != lanes_.count() || lane_count == 0)
      return to_wire(Error::kInvalidValue);
    std::vector<std::uint8_t> buf(len);
    const Error err = api_.memcpy_d2h(buf, src);
    if (err != Error::kSuccess) return to_wire(err);
    scatter_striped(lanes_, buf);
    return to_wire(Error::kSuccess);
  }

  // --------------------------- streams & events --------------------------
  proto::u64_result rpc_stream_create() override {
    count();
    cuda::StreamId s = 0;
    const Error err = api_.stream_create(s);
    if (err == Error::kSuccess) streams_.insert(s);
    return {to_wire(err), s};
  }

  std::int32_t rpc_stream_destroy(proto::ptr_t stream) override {
    count();
    const Error err = api_.stream_destroy(stream);
    if (err == Error::kSuccess) streams_.erase(stream);
    return to_wire(err);
  }

  std::int32_t rpc_stream_synchronize(proto::ptr_t stream) override {
    count();
    return to_wire(api_.stream_synchronize(stream));
  }

  std::int32_t rpc_device_synchronize() override {
    count();
    return to_wire(api_.device_synchronize());
  }

  proto::u64_result rpc_event_create() override {
    count();
    cuda::EventId e = 0;
    const Error err = api_.event_create(e);
    if (err == Error::kSuccess) events_.insert(e);
    return {to_wire(err), e};
  }

  std::int32_t rpc_event_destroy(proto::ptr_t event) override {
    count();
    const Error err = api_.event_destroy(event);
    if (err == Error::kSuccess) events_.erase(event);
    return to_wire(err);
  }

  std::int32_t rpc_event_record(proto::ptr_t event,
                                proto::ptr_t stream) override {
    count();
    return to_wire(api_.event_record(event, stream));
  }

  std::int32_t rpc_event_synchronize(proto::ptr_t event) override {
    count();
    return to_wire(api_.event_synchronize(event));
  }

  proto::float_result rpc_event_elapsed(proto::ptr_t start,
                                        proto::ptr_t stop) override {
    count();
    float ms = 0;
    const Error err = api_.event_elapsed_ms(ms, start, stop);
    return {to_wire(err), ms};
  }

  std::int32_t rpc_stream_wait_event(proto::ptr_t stream,
                                     proto::ptr_t event) override {
    count();
    return to_wire(api_.stream_wait_event(stream, event));
  }

  // --------------------------- modules & launch --------------------------
  proto::u64_result rpc_module_load(std::vector<std::uint8_t> image) override {
    count();
    cuda::ModuleId mod = 0;
    const Error err = api_.module_load(mod, image);
    if (err == Error::kSuccess) modules_.insert(mod);
    return {to_wire(err), mod};
  }

  std::int32_t rpc_module_unload(proto::ptr_t module) override {
    count();
    const Error err = api_.module_unload(module);
    if (err == Error::kSuccess) modules_.erase(module);
    return to_wire(err);
  }

  proto::u64_result rpc_module_get_function(proto::ptr_t module,
                                            std::string name) override {
    count();
    cuda::FuncId fn = 0;
    const Error err = api_.module_get_function(fn, module, name);
    return {to_wire(err), fn};
  }

  proto::u64_result rpc_module_get_global(proto::ptr_t module,
                                          std::string name) override {
    count();
    cuda::DevPtr ptr = 0;
    const Error err = api_.module_get_global(ptr, module, name);
    return {to_wire(err), ptr};
  }

  std::int32_t rpc_launch_kernel(proto::ptr_t func, proto::rpc_dim3 grid,
                                 proto::rpc_dim3 block, std::uint32_t shared,
                                 proto::ptr_t stream,
                                 std::vector<std::uint8_t> params) override {
    count();
    server_->scheduler().admit(id_);
    sim::Nanos exec_ns = 0;
    const Error err = api_.launch_kernel_timed(
        func, {grid.x, grid.y, grid.z}, {block.x, block.y, block.z}, shared,
        stream, params, exec_ns);
    if (err == Error::kSuccess)
      server_->scheduler().record_usage(id_, exec_ns);
    return to_wire(err);
  }

  // ------------------------------- culibs --------------------------------
  std::int32_t rpc_blas_sgemm(std::int32_t m, std::int32_t n, std::int32_t k,
                              float alpha, proto::ptr_t a, std::int32_t lda,
                              proto::ptr_t b, std::int32_t ldb, float beta,
                              proto::ptr_t c, std::int32_t ldc) override {
    count();
    return to_wire(api_.blas_sgemm(m, n, k, alpha, a, lda, b, ldb, beta, c,
                                   ldc));
  }

  std::int32_t rpc_solver_sgetrf(std::int32_t n, proto::ptr_t a,
                                 std::int32_t lda, proto::ptr_t ipiv,
                                 proto::ptr_t info) override {
    count();
    return to_wire(api_.solver_sgetrf(n, a, lda, ipiv, info));
  }

  std::int32_t rpc_solver_sgetrs(std::int32_t n, std::int32_t nrhs,
                                 proto::ptr_t a, std::int32_t lda,
                                 proto::ptr_t ipiv, proto::ptr_t b,
                                 std::int32_t ldb, proto::ptr_t info) override {
    count();
    return to_wire(api_.solver_sgetrs(n, nrhs, a, lda, ipiv, b, ldb, info));
  }

  std::int32_t rpc_blas_sgemv(std::int32_t m, std::int32_t n, float alpha,
                              proto::ptr_t a, std::int32_t lda,
                              proto::ptr_t x, float beta,
                              proto::ptr_t y) override {
    count();
    return to_wire(api_.blas_sgemv(m, n, alpha, a, lda, x, beta, y));
  }

  std::int32_t rpc_blas_saxpy(std::int32_t n, float alpha, proto::ptr_t x,
                              proto::ptr_t y) override {
    count();
    return to_wire(api_.blas_saxpy(n, alpha, x, y));
  }

  std::int32_t rpc_blas_snrm2(std::int32_t n, proto::ptr_t x,
                              proto::ptr_t result) override {
    count();
    return to_wire(api_.blas_snrm2(n, x, result));
  }

  std::int32_t rpc_solver_spotrf(std::int32_t n, proto::ptr_t a,
                                 std::int32_t lda,
                                 proto::ptr_t info) override {
    count();
    return to_wire(api_.solver_spotrf(n, a, lda, info));
  }

  std::int32_t rpc_solver_spotrs(std::int32_t n, std::int32_t nrhs,
                                 proto::ptr_t a, std::int32_t lda,
                                 proto::ptr_t b, std::int32_t ldb,
                                 proto::ptr_t info) override {
    count();
    return to_wire(api_.solver_spotrs(n, nrhs, a, lda, b, ldb, info));
  }

  // -------------------------- checkpoint/restart -------------------------
  std::int32_t rpc_checkpoint(std::string path) override {
    count();
    if (path.empty() || path.find("..") != std::string::npos)
      return to_wire(Error::kInvalidValue);
    try {
      checkpoint_to_file(api_.current(),
                         server_->options().checkpoint_dir + "/" + path);
      return to_wire(Error::kSuccess);
    } catch (const std::exception&) {
      return to_wire(Error::kFileNotFound);
    }
  }

  std::int32_t rpc_restore(std::string path) override {
    count();
    if (path.empty() || path.find("..") != std::string::npos)
      return to_wire(Error::kInvalidValue);
    try {
      restore_from_file(api_.current(),
                        server_->options().checkpoint_dir + "/" + path);
      return to_wire(Error::kSuccess);
    } catch (const std::exception&) {
      return to_wire(Error::kFileNotFound);
    }
  }

 private:
  void count() noexcept {
    server_->count_rpc();
    static obs::Counter& rpcs = obs::Registry::global().counter(
        "cricket_server_rpcs_total", {},
        "RPCs dispatched by Cricket sessions");
    rpcs.inc();
  }

  CricketServer* server_;
  std::uint64_t id_;
  TransferLanes lanes_;
  cuda::LocalCudaApi api_;
  std::set<cuda::DevPtr> allocations_;
  std::set<cuda::ModuleId> modules_;
  std::set<cuda::StreamId> streams_;
  std::set<cuda::EventId> events_;
};

}  // namespace

CricketServer::CricketServer(cuda::GpuNode& node, ServerOptions options)
    : node_(&node),
      options_(std::move(options)),
      scheduler_(options_.scheduler, node.clock()) {}

void CricketServer::serve(rpc::Transport& transport, TransferLanes lanes) {
  const std::uint64_t id = next_session_.fetch_add(1);
  stats_.sessions.fetch_add(1);
  static obs::Counter& sessions = obs::Registry::global().counter(
      "cricket_server_sessions_total", {}, "Client sessions served");
  sessions.inc();
  CricketSession session(*this, id, std::move(lanes));
  rpc::ServiceRegistry registry;
  session.register_into(registry);
  // Decode pre-flight from the rpclgen-proven bounds tables: records whose
  // length can not belong to the addressed procedure are answered
  // GARBAGE_ARGS before any allocation or argument decode.
  registry.set_bounds(proto::bounds::kProcBounds);
  if (options_.at_most_once) registry.enable_duplicate_cache(options_.drc);
  rpc::ServeOptions serve = options_.serve;
  // Session handlers share per-session state (resource tracking, the local
  // CUDA context) and CUDA streams demand in-order execution, so pipelining
  // for this service means depth-1 workers: decode, execute, and reply
  // overlap across calls, but execution itself stays serial per session.
  if (serve.workers > 1) serve.workers = 1;
  rpc::serve_transport(registry, transport, serve);
}

std::thread CricketServer::serve_async(
    std::unique_ptr<rpc::Transport> transport, TransferLanes lanes) {
  return std::thread(
      [this, t = std::move(transport), l = std::move(lanes)]() mutable {
        serve(*t, std::move(l));
      });
}

}  // namespace cricket::core
