#include "cricket/server.hpp"

#include <deque>
#include <map>
#include <set>

#include "cricket/checkpoint.hpp"
#include "cricket_bounds.hpp"
#include "cricket_proto.hpp"
#include "fatbin/fatbin.hpp"
#include "obs/metrics.hpp"
#include "rpc/server.hpp"

namespace cricket::core {
namespace {

using cuda::Error;

// fatbin/gpusim cannot include the generated spec constants, so the ingest
// cap they enforce is pinned here against the wire bound the spec promises.
static_assert(fatbin::kMaxModuleBytes == proto::taint::kMaxPayloadBytes,
              "fatbin ingest cap must match CRICKET_MAX_PAYLOAD");

std::int32_t to_wire(Error e) { return static_cast<std::int32_t>(e); }

/// Taint exit for opaque wire handles (device pointers, stream/event/module
/// ids). No a-priori bound exists for a handle: the gpusim resource tables
/// are the authority and refuse unknown values in-band
/// (kInvalidDevicePointer / kInvalidResourceHandle), so forwarding the raw
/// value is safe by construction. Counted by tools/taint_audit.py.
std::uint64_t handle(xdr::Untrusted<proto::ptr_t> h) noexcept {
  return h.trust_unchecked(
      "opaque handle: gpusim table lookup refuses unknown values in-band");
}

/// Taint exit for culibs integer dimensions. Sign and extent are checked
/// in-band (negative dims return kInvalidValue; operand spans are resolved
/// with overflow-safe bounds checks), and the wire contract pins those
/// error codes — validating here would turn them into kGarbageArgs.
int dim(xdr::Untrusted<std::int32_t> d) noexcept {
  return d.trust_unchecked(
      "culibs dim: sign/extent refused in-band against resolved spans");
}

/// Copies at or above this size contend for real device/PCIe time and are
/// arbitrated by the scheduler like kernel launches; smaller control-plane
/// copies pass straight through.
constexpr std::uint64_t kLargeTransferBytes = 256 * 1024;

/// One client connection: implements the generated service skeleton by
/// dispatching into the node's LocalCudaApi, tracks every resource the
/// client creates so a vanished unikernel cannot leak device memory, and
/// routes kernel launches through the shared scheduler.
class CricketSession final : public proto::CRICKETVERSService,
                             public detail::SessionPeer {
 public:
  CricketSession(CricketServer& server, std::uint64_t id, TransferLanes lanes)
      : server_(&server),
        id_(id),
        lanes_(std::move(lanes)),
        api_(server.node()),
        cache_(server.module_cache()),
        tenants_(server.tenants()) {
    server_->scheduler().session_open(id_);
  }

  ~CricketSession() override {
    // Release whatever the client leaked, in dependency-safe order.
    for (const auto e : events_) (void)api_.event_destroy(e);
    for (const auto s : streams_) (void)api_.stream_destroy(s);
    for (const auto m : modules_) {
      (void)api_.module_unload(m);
      release_module_charge(m);
    }
    // Cache-managed modules: drop this session's references; the device
    // modules stay resident (warm) until LRU eviction.
    if (cache_ != nullptr)
      for (const auto& [mod, ref] : cached_modules_)
        for (std::uint32_t i = 0; i < ref.count; ++i)
          cache_->release(ref.hash, ref.device, tenant_);
    for (const auto& [ptr, size] : allocations_) {
      (void)api_.free(ptr);
      if (bound()) tenants_->release_memory(tenant_, size);
    }
    server_->scheduler().session_close(id_);
  }

  /// Binds this session to its authenticated tenant. Called by admission on
  /// the connection's first call, before any dispatch runs, so the plain
  /// member writes are ordered before every handler: the session joins the
  /// tenant's fair-share group and pins itself to the tenant's device shard.
  /// `client_id` is the drc_client_id of the connection's credential — the
  /// identity migration adoption and the duplicate-request cache key on.
  void bind_tenant(tenancy::TenantId tenant, std::uint64_t client_id) {
    tenant_ = tenant;
    client_id_ = client_id;
    const auto spec = tenants_->spec(tenant);
    server_->scheduler().session_set_tenant(id_, tenant,
                                            spec ? spec->weight : 1,
                                            spec ? spec->priority : 0);
    (void)api_.set_device(static_cast<int>(tenants_->shard_device(tenant)));
    // Migration adoption: when a bundle migrated from another server is
    // staged for this client identity, this session takes over its
    // resources. The device state itself was already restore_merge'd at
    // commit time; here the session claims handle ownership (so
    // cleanup-on-disconnect and quota release keep working) and seeds the
    // connection's DRC with the source's completed replies. Bundles are
    // keyed by (tenant, client id), never handed out FIFO across a
    // multi-session tenant: a reconnecting client can only adopt the
    // session exported under its own credential, so the imported DRC
    // entries (keyed client id + xid) always match its re-sent xids.
    // Admission runs this on the reader thread before any dispatch, so the
    // DRC import strictly precedes every lookup on this connection — a
    // re-sent completed xid can never re-execute.
    if (spec) {
      if (auto adopted = server_->take_adoption(spec->name, client_id)) {
        for (const auto& [ptr, bytes] : adopted->allocations)
          allocations_.emplace(ptr, bytes);
        modules_.insert(adopted->modules.begin(), adopted->modules.end());
        streams_.insert(adopted->streams.begin(), adopted->streams.end());
        events_.insert(adopted->events.begin(), adopted->events.end());
        // Cache-referenced modules re-join the target's cache (seeded from
        // the migration image at import commit) without re-charging: the
        // imported tenant accounting already includes the source's charge.
        const auto device =
            static_cast<std::uint32_t>(tenants_->shard_device(tenant));
        for (const auto& cm : adopted->cached_modules) {
          if (cache_ != nullptr) {
            if (const auto mod = cache_->adopt(cm.hash, device, tenant_)) {
              CachedRef& ref = cached_modules_[*mod];
              ref.hash = cm.hash;
              ref.device = device;
              ref.size = cm.bytes;
              ++ref.count;
              continue;
            }
          }
          // The cache entry is gone (evicted between import and reconnect):
          // only the session whose snapshot carried the device record may
          // own the restored handle outright — giving it to every
          // co-referencing session would have the first teardown unload a
          // module the others still hold, and later unloads double-fire on
          // a dead handle. (A target without a cache refuses such imports
          // up front — see MigrationTarget::import_locked.)
          if (cm.owner) modules_.insert(cm.id);
        }
        if (registry_ != nullptr && !adopted->drc.empty())
          registry_->import_drc(adopted->drc);
      }
    }
  }

  /// Wires the connection's dispatch registry in so adoption can import DRC
  /// entries and migration export can read them. Set by serve() before the
  /// transport loop starts.
  void set_registry(rpc::ServiceRegistry* registry) noexcept {
    registry_ = registry;
  }

  /// detail::SessionPeer — one session's contribution to a tenant
  /// migration. Only called once the tenant is drained and frozen (no
  /// handler is running and none can be admitted), so reading the resource
  /// tables from the coordinator's thread is race-free.
  std::optional<SessionExport> export_if(
      tenancy::TenantId tenant,
      std::set<cuda::ModuleId>& claimed_modules) override {
    if (!bound() || tenant_ != tenant) return std::nullopt;
    SessionExport exp;
    exp.session_id = id_;
    exp.client_id = client_id_;
    gpusim::DeviceStateFilter filter;
    for (const auto& [ptr, bytes] : allocations_) {
      filter.allocations.push_back(ptr);
      exp.allocations.emplace_back(ptr, bytes);
    }
    filter.modules.assign(modules_.begin(), modules_.end());
    filter.streams.assign(streams_.begin(), streams_.end());
    filter.events.assign(events_.begin(), events_.end());
    exp.modules = filter.modules;
    exp.streams = filter.streams;
    exp.events = filter.events;
    // Cache-shared modules: every referencing session records the (id,
    // hash, size) record — that is what lets a warm target skip the
    // transfer — but only the first session in the batch carries the
    // device record (and the `owner` flag), because restore_merge refuses
    // the same module id in two snapshots. The tenant's possession proof
    // rides along so the target's seeded entry can keep answering this
    // tenant's probes without ever seeing the bytes.
    const std::string name = tenant_name();
    for (const auto& [mod, ref] : cached_modules_) {
      SessionExport::CachedModule cm;
      cm.id = mod;
      cm.hash = ref.hash;
      cm.bytes = ref.size;
      cm.owner = claimed_modules.insert(mod).second;
      if (cache_ != nullptr)
        if (const auto proof = cache_->proof_for(ref.hash, name))
          cm.proof = *proof;
      exp.cached_modules.push_back(cm);
      if (cm.owner) filter.modules.push_back(mod);
    }
    exp.state = api_.current().snapshot_subset(filter);
    // Only this client's entries: the bundle is adopted by the connection
    // presenting the same credential, where nothing else could ever match.
    if (registry_ != nullptr) exp.drc = registry_->export_drc(client_id_);
    return exp;
  }

  // ---------------------------- device mgmt ------------------------------
  proto::int_result rpc_get_device_count() override {
    count();
    int n = 0;
    const Error err = api_.get_device_count(n);
    return {to_wire(err), n};
  }

  std::int32_t rpc_set_device(xdr::Untrusted<std::int32_t> device) override {
    count();
    return to_wire(api_.set_device(device.trust_unchecked(
        "device ordinal: set_device refuses out-of-range in-band with "
        "kInvalidDevice")));
  }

  proto::int_result rpc_get_device() override {
    count();
    int d = 0;
    const Error err = api_.get_device(d);
    return {to_wire(err), d};
  }

  proto::dev_props_result rpc_get_device_properties(
      xdr::Untrusted<std::int32_t> device) override {
    count();
    cuda::DeviceInfo info;
    const Error err = api_.get_device_properties(
        info, device.trust_unchecked(
                  "device ordinal: get_device_properties refuses "
                  "out-of-range in-band with kInvalidDevice"));
    proto::dev_props_result res;
    res.err = to_wire(err);
    if (err == Error::kSuccess) {
      res.name = info.name;
      res.total_mem = info.total_mem;
      res.sm_arch = info.sm_arch;
      res.sm_count = info.sm_count;
      res.clock_mhz = info.clock_mhz;
    }
    return res;
  }

  // ------------------------------- memory --------------------------------
  proto::u64_result rpc_malloc(xdr::Untrusted<std::uint64_t> size) override {
    count();
    std::uint64_t bytes = 0;  // plain only after a refusal-checked exit
    if (bound()) {
      // Quota check before touching the device: a refusal charges nothing
      // (try_charge_memory is all-or-nothing, and the taint overload
      // refuses sizes that would saturate the quota arithmetic) and
      // surfaces as the typed cricketErrorQuotaExceeded result, not an
      // allocator failure.
      if (!tenants_->try_charge_memory(tenant_, size, bytes))
        return {to_wire(Error::kQuotaExceeded), 0};
    } else if (!size.try_validate(api_.current().memory().capacity(),
                                  bytes)) {
      // Larger than the whole device: the same in-band refusal the
      // allocator would produce, without constructing the request.
      return {to_wire(Error::kMemoryAllocation), 0};
    }
    cuda::DevPtr ptr = 0;
    const Error err = api_.malloc(ptr, size);
    if (err == Error::kSuccess) {
      allocations_.emplace(ptr, bytes);
    } else if (bound()) {
      tenants_->release_memory(tenant_, bytes);
    }
    return {to_wire(err), ptr};
  }

  std::int32_t rpc_free(xdr::Untrusted<proto::ptr_t> wire_ptr) override {
    count();
    const cuda::DevPtr ptr = handle(wire_ptr);
    const Error err = api_.free(ptr);
    if (err == Error::kSuccess) {
      const auto it = allocations_.find(ptr);
      if (it != allocations_.end()) {
        if (bound()) tenants_->release_memory(tenant_, it->second);
        allocations_.erase(it);
      }
    }
    return to_wire(err);
  }

  std::int32_t rpc_memset(xdr::Untrusted<proto::ptr_t> ptr,
                          std::int32_t value,
                          xdr::Untrusted<std::uint64_t> size) override {
    count();
    return to_wire(api_.memset(handle(ptr), value, size));
  }

  std::int32_t rpc_memcpy_h2d(xdr::Untrusted<proto::ptr_t> dst,
                              std::vector<std::uint8_t> data) override {
    count();
    admit_transfer(data.size());
    const Error err = api_.memcpy_h2d(handle(dst), data);
    if (err == Error::kSuccess) charge_transfer(data.size());
    return to_wire(err);
  }

  proto::data_result rpc_memcpy_d2h(
      xdr::Untrusted<proto::ptr_t> src,
      xdr::Untrusted<std::uint64_t> len) override {
    count();
    // The reply buffer is allocated from this wire length before the device
    // checks it against the source span, so it must clear the payload bound
    // first; a hostile length dies here as kGarbageArgs instead of driving
    // a multi-gigabyte resize.
    const std::uint64_t n =
        proto::taint::validate_length(len, "rpc_memcpy_d2h.len");
    admit_transfer(n);
    proto::data_result res;
    res.data.resize(n);
    res.err = to_wire(api_.memcpy_d2h(res.data, handle(src)));
    if (res.err != 0) res.data.clear();
    if (res.err == 0) charge_transfer(n);
    return res;
  }

  std::int32_t rpc_memcpy_d2d(xdr::Untrusted<proto::ptr_t> dst,
                              xdr::Untrusted<proto::ptr_t> src,
                              xdr::Untrusted<std::uint64_t> len) override {
    count();
    // Device-local copies never cross the wire, so the payload bound does
    // not apply; anything beyond the device capacity gets the same in-band
    // refusal resolve() would produce.
    std::uint64_t bytes = 0;
    if (!len.try_validate(api_.current().memory().capacity(), bytes))
      return to_wire(Error::kInvalidDevicePointer);
    admit_transfer(bytes);
    const Error err = api_.memcpy_d2d(handle(dst), handle(src), len);
    if (err == Error::kSuccess) charge_transfer(bytes);
    return to_wire(err);
  }

  std::int32_t rpc_memcpy_h2d_async(
      xdr::Untrusted<proto::ptr_t> dst, std::vector<std::uint8_t> data,
      xdr::Untrusted<proto::ptr_t> stream) override {
    count();
    admit_transfer(data.size());
    const Error err = api_.memcpy_h2d_async(handle(dst), data,
                                            handle(stream));
    if (err == Error::kSuccess) charge_transfer(data.size());
    return to_wire(err);
  }

  proto::data_result rpc_memcpy_d2h_async(
      xdr::Untrusted<proto::ptr_t> src, xdr::Untrusted<std::uint64_t> len,
      xdr::Untrusted<proto::ptr_t> stream) override {
    count();
    const std::uint64_t n =
        proto::taint::validate_length(len, "rpc_memcpy_d2h_async.len");
    admit_transfer(n);
    proto::data_result res;
    res.data.resize(n);
    res.err = to_wire(api_.memcpy_d2h_async(res.data, handle(src),
                                            handle(stream)));
    if (res.err != 0) res.data.clear();
    if (res.err == 0) charge_transfer(n);
    return res;
  }

  std::int32_t rpc_transfer_begin_h2d(
      xdr::Untrusted<proto::ptr_t> dst, xdr::Untrusted<std::uint64_t> len,
      xdr::Untrusted<std::uint32_t> lane_count) override {
    count();
    // The lane count is only ever compared, so it stays tainted.
    if (lane_count != lanes_.count() || lane_count == 0u)
      return to_wire(Error::kInvalidValue);
    const std::uint64_t n =
        proto::taint::validate_length(len, "rpc_transfer_begin_h2d.len");
    std::vector<std::uint8_t> buf(n);
    gather_striped(lanes_, buf);
    admit_transfer(n);
    const Error err = api_.memcpy_h2d(handle(dst), buf);
    if (err == Error::kSuccess) charge_transfer(n);
    return to_wire(err);
  }

  std::int32_t rpc_transfer_begin_d2h(
      xdr::Untrusted<proto::ptr_t> src, xdr::Untrusted<std::uint64_t> len,
      xdr::Untrusted<std::uint32_t> lane_count) override {
    count();
    if (lane_count != lanes_.count() || lane_count == 0u)
      return to_wire(Error::kInvalidValue);
    const std::uint64_t n =
        proto::taint::validate_length(len, "rpc_transfer_begin_d2h.len");
    admit_transfer(n);
    std::vector<std::uint8_t> buf(n);
    const Error err = api_.memcpy_d2h(buf, handle(src));
    if (err != Error::kSuccess) return to_wire(err);
    charge_transfer(n);
    scatter_striped(lanes_, buf);
    return to_wire(Error::kSuccess);
  }

  // --------------------------- streams & events --------------------------
  proto::u64_result rpc_stream_create() override {
    count();
    cuda::StreamId s = 0;
    const Error err = api_.stream_create(s);
    if (err == Error::kSuccess) streams_.insert(s);
    return {to_wire(err), s};
  }

  std::int32_t rpc_stream_destroy(
      xdr::Untrusted<proto::ptr_t> wire_stream) override {
    count();
    const cuda::StreamId stream = handle(wire_stream);
    const Error err = api_.stream_destroy(stream);
    if (err == Error::kSuccess) streams_.erase(stream);
    return to_wire(err);
  }

  std::int32_t rpc_stream_synchronize(
      xdr::Untrusted<proto::ptr_t> stream) override {
    count();
    return to_wire(api_.stream_synchronize(handle(stream)));
  }

  std::int32_t rpc_device_synchronize() override {
    count();
    return to_wire(api_.device_synchronize());
  }

  proto::u64_result rpc_event_create() override {
    count();
    cuda::EventId e = 0;
    const Error err = api_.event_create(e);
    if (err == Error::kSuccess) events_.insert(e);
    return {to_wire(err), e};
  }

  std::int32_t rpc_event_destroy(
      xdr::Untrusted<proto::ptr_t> wire_event) override {
    count();
    const cuda::EventId event = handle(wire_event);
    const Error err = api_.event_destroy(event);
    if (err == Error::kSuccess) events_.erase(event);
    return to_wire(err);
  }

  std::int32_t rpc_event_record(xdr::Untrusted<proto::ptr_t> event,
                                xdr::Untrusted<proto::ptr_t> stream) override {
    count();
    return to_wire(api_.event_record(handle(event), handle(stream)));
  }

  std::int32_t rpc_event_synchronize(
      xdr::Untrusted<proto::ptr_t> event) override {
    count();
    return to_wire(api_.event_synchronize(handle(event)));
  }

  proto::float_result rpc_event_elapsed(
      xdr::Untrusted<proto::ptr_t> start,
      xdr::Untrusted<proto::ptr_t> stop) override {
    count();
    float ms = 0;
    const Error err = api_.event_elapsed_ms(ms, handle(start), handle(stop));
    return {to_wire(err), ms};
  }

  std::int32_t rpc_stream_wait_event(
      xdr::Untrusted<proto::ptr_t> stream,
      xdr::Untrusted<proto::ptr_t> event) override {
    count();
    return to_wire(api_.stream_wait_event(handle(stream), handle(event)));
  }

  // --------------------------- modules & launch --------------------------
  proto::u64_result rpc_module_load(std::vector<std::uint8_t> image) override {
    count();
    if (cache_ != nullptr) {
      // Full upload with the cache on: load, then register under the
      // content hash. insert() dedupes a concurrent identical upload (the
      // redundant device module is dropped, the canonical id returned) and
      // charges the tenant per unique image.
      const std::uint64_t hash = modcache::hash_image(image);
      const std::uint32_t device = current_device();
      // Pre-flight the quota BEFORE any device work, mirroring the legacy
      // path's pre-charge ordering: a quota-exhausted tenant must not be
      // able to force full load/unload churn on the server. Skipped when
      // the tenant already pays for this image (re-load is charge-free);
      // insert() below performs the durable charge.
      if (bound() && !cache_->tenant_holds(hash, tenant_)) {
        if (!tenants_->try_charge_memory(tenant_, image.size())) {
          tenants_->count_rejection(tenant_,
                                    tenancy::RejectReason::kDeviceMemory);
          return {to_wire(Error::kQuotaExceeded), 0};
        }
        tenants_->release_memory(tenant_, image.size());
      }
      cuda::ModuleId mod = 0;
      const Error err = api_.module_load(mod, image);
      if (err != Error::kSuccess) return {to_wire(err), 0};
      const auto res = cache_->insert(hash, image, device, mod, tenant_);
      if (res.outcome == modcache::ModuleCache::Outcome::kQuotaExceeded) {
        (void)api_.module_unload(mod);
        if (bound())
          tenants_->count_rejection(tenant_,
                                    tenancy::RejectReason::kDeviceMemory);
        return {to_wire(Error::kQuotaExceeded), 0};
      }
      if (res.outcome == modcache::ModuleCache::Outcome::kCollision) {
        // The uploaded bytes contradict the resident entry for this hash
        // (truncated-hash collision or a poisoning attempt): the cache
        // refused them, so the freshly loaded module stays session-owned
        // like an uncached load — correct execution for this tenant, no
        // substitution for anyone else.
        if (bound() && !tenants_->try_charge_memory(tenant_, image.size())) {
          (void)api_.module_unload(mod);
          tenants_->count_rejection(tenant_,
                                    tenancy::RejectReason::kDeviceMemory);
          return {to_wire(Error::kQuotaExceeded), 0};
        }
        modules_.insert(mod);
        if (bound()) module_charges_.emplace(mod, image.size());
        return {to_wire(Error::kSuccess), mod};
      }
      note_cached_module(res.module, hash, device, res.size);
      return {to_wire(Error::kSuccess), res.module};
    }
    // Historical uncached path, now quota-metered: a bound tenant pays for
    // every image it keeps resident, per load (pre-charge like rpc_malloc:
    // a refused charge never reaches the device).
    if (bound() && !tenants_->try_charge_memory(tenant_, image.size())) {
      tenants_->count_rejection(tenant_, tenancy::RejectReason::kDeviceMemory);
      return {to_wire(Error::kQuotaExceeded), 0};
    }
    cuda::ModuleId mod = 0;
    const Error err = api_.module_load(mod, image);
    if (err == Error::kSuccess) {
      modules_.insert(mod);
      if (bound()) module_charges_.emplace(mod, image.size());
    } else if (bound()) {
      tenants_->release_memory(tenant_, image.size());
    }
    return {to_wire(err), mod};
  }

  proto::u64_result rpc_module_load_cached(
      xdr::Untrusted<std::uint64_t> wire_hash,
      std::vector<std::uint8_t> proof) override {
    count();
    // Taint exit: a content hash has no a-priori bound — the cache table is
    // the authority and answers unknown hashes in-band with kCacheMiss, so
    // the raw value travels no further than a map lookup (the client then
    // falls back to the full upload). Possession is proven separately: the
    // cache verifies `proof` against the entry's bytes before any hand-out.
    // Counted by tools/taint_audit.py.
    const std::uint64_t hash = wire_hash.trust_unchecked(
        "content hash: modcache table lookup answers unknown values in-band "
        "with kCacheMiss");
    if (cache_ == nullptr) return {to_wire(Error::kCacheMiss), 0};
    const std::uint32_t device = current_device();
    const std::string name = tenant_name();
    const auto res = cache_->acquire(hash, device, tenant_, name, proof);
    switch (res.outcome) {
      case modcache::ModuleCache::Outcome::kHit:
        note_cached_module(res.module, hash, device, res.size);
        return {to_wire(Error::kSuccess), res.module};
      case modcache::ModuleCache::Outcome::kQuotaExceeded:
        if (bound())
          tenants_->count_rejection(tenant_,
                                    tenancy::RejectReason::kDeviceMemory);
        return {to_wire(Error::kQuotaExceeded), 0};
      case modcache::ModuleCache::Outcome::kNeedInstance: {
        // Image resident from another device's upload (possession already
        // proven above): instantiate locally from the cached bytes — still
        // zero wire transfer.
        const auto bytes = cache_->image_bytes(hash);
        if (!bytes) return {to_wire(Error::kCacheMiss), 0};
        // Same pre-flight-before-device-work ordering as rpc_module_load.
        if (bound() && !cache_->tenant_holds(hash, tenant_)) {
          if (!tenants_->try_charge_memory(tenant_, bytes->size())) {
            tenants_->count_rejection(tenant_,
                                      tenancy::RejectReason::kDeviceMemory);
            return {to_wire(Error::kQuotaExceeded), 0};
          }
          tenants_->release_memory(tenant_, bytes->size());
        }
        cuda::ModuleId mod = 0;
        const Error err = api_.module_load(mod, *bytes);
        if (err != Error::kSuccess) return {to_wire(err), 0};
        const auto ins = cache_->insert(hash, *bytes, device, mod, tenant_);
        if (ins.outcome == modcache::ModuleCache::Outcome::kQuotaExceeded) {
          (void)api_.module_unload(mod);
          return {to_wire(Error::kQuotaExceeded), 0};
        }
        if (ins.outcome == modcache::ModuleCache::Outcome::kCollision) {
          // Unreachable with bytes read from the cache itself; answer the
          // conservative miss so the client falls back to the upload path.
          (void)api_.module_unload(mod);
          return {to_wire(Error::kCacheMiss), 0};
        }
        note_cached_module(ins.module, hash, device, ins.size);
        return {to_wire(Error::kSuccess), ins.module};
      }
      case modcache::ModuleCache::Outcome::kCollision:  // not an acquire
      case modcache::ModuleCache::Outcome::kMiss:       // outcome
        break;
    }
    return {to_wire(Error::kCacheMiss), 0};
  }

  std::int32_t rpc_module_unload(
      xdr::Untrusted<proto::ptr_t> wire_module) override {
    count();
    const cuda::ModuleId module = handle(wire_module);
    const auto cached = cached_modules_.find(module);
    if (cached != cached_modules_.end()) {
      // Cache-managed: drop this session's reference. The device module
      // stays loaded (warm) until LRU eviction, so unload always succeeds.
      cache_->release(cached->second.hash, cached->second.device, tenant_);
      if (--cached->second.count == 0) cached_modules_.erase(cached);
      return to_wire(Error::kSuccess);
    }
    const Error err = api_.module_unload(module);
    if (err == Error::kSuccess) {
      modules_.erase(module);
      release_module_charge(module);
    }
    return to_wire(err);
  }

  proto::u64_result rpc_module_get_function(
      xdr::Untrusted<proto::ptr_t> module, std::string name) override {
    count();
    cuda::FuncId fn = 0;
    const Error err = api_.module_get_function(fn, handle(module), name);
    return {to_wire(err), fn};
  }

  proto::u64_result rpc_module_get_global(
      xdr::Untrusted<proto::ptr_t> module, std::string name) override {
    count();
    cuda::DevPtr ptr = 0;
    const Error err = api_.module_get_global(ptr, handle(module), name);
    return {to_wire(err), ptr};
  }

  std::int32_t rpc_launch_kernel(xdr::Untrusted<proto::ptr_t> func,
                                 proto::rpc_dim3 grid, proto::rpc_dim3 block,
                                 xdr::Untrusted<std::uint32_t> shared,
                                 xdr::Untrusted<proto::ptr_t> stream,
                                 std::vector<std::uint8_t> params) override {
    count();
    // Geometry and shared-memory bounds come straight off the wire; the
    // gpusim validators convert a taint refusal into the same LaunchError
    // the device itself raises, so hostile geometry is kLaunchFailure, not
    // a crash or a garbled reply.
    cuda::Dim3 g, b;
    std::uint32_t shared_bytes = 0;
    try {
      g = gpusim::validated_dim3(grid.x, grid.y, grid.z, "grid");
      b = gpusim::validated_dim3(block.x, block.y, block.z, "block");
      shared_bytes = gpusim::validated_shared_bytes(shared);
    } catch (const gpusim::LaunchError&) {
      return to_wire(Error::kLaunchFailure);
    }
    const sim::Nanos wait = server_->scheduler().admit(id_);
    sim::Nanos exec_ns = 0;
    const Error err = api_.launch_kernel_timed(
        handle(func), g, b, shared_bytes, handle(stream), params, exec_ns);
    if (err == Error::kSuccess) {
      server_->scheduler().record_usage(id_, exec_ns);
      if (bound()) {
        tenants_->note_device_time(tenant_, exec_ns);
        tenants_->observe_launch_latency(tenant_, wait + exec_ns);
      }
    }
    return to_wire(err);
  }

  // ------------------------------- culibs --------------------------------
  std::int32_t rpc_blas_sgemm(
      xdr::Untrusted<std::int32_t> m, xdr::Untrusted<std::int32_t> n,
      xdr::Untrusted<std::int32_t> k, float alpha,
      xdr::Untrusted<proto::ptr_t> a, xdr::Untrusted<std::int32_t> lda,
      xdr::Untrusted<proto::ptr_t> b, xdr::Untrusted<std::int32_t> ldb,
      float beta, xdr::Untrusted<proto::ptr_t> c,
      xdr::Untrusted<std::int32_t> ldc) override {
    count();
    return to_wire(api_.blas_sgemm(dim(m), dim(n), dim(k), alpha, handle(a),
                                   dim(lda), handle(b), dim(ldb), beta,
                                   handle(c), dim(ldc)));
  }

  std::int32_t rpc_solver_sgetrf(xdr::Untrusted<std::int32_t> n,
                                 xdr::Untrusted<proto::ptr_t> a,
                                 xdr::Untrusted<std::int32_t> lda,
                                 xdr::Untrusted<proto::ptr_t> ipiv,
                                 xdr::Untrusted<proto::ptr_t> info) override {
    count();
    return to_wire(api_.solver_sgetrf(dim(n), handle(a), dim(lda),
                                      handle(ipiv), handle(info)));
  }

  std::int32_t rpc_solver_sgetrs(
      xdr::Untrusted<std::int32_t> n, xdr::Untrusted<std::int32_t> nrhs,
      xdr::Untrusted<proto::ptr_t> a, xdr::Untrusted<std::int32_t> lda,
      xdr::Untrusted<proto::ptr_t> ipiv, xdr::Untrusted<proto::ptr_t> b,
      xdr::Untrusted<std::int32_t> ldb,
      xdr::Untrusted<proto::ptr_t> info) override {
    count();
    return to_wire(api_.solver_sgetrs(dim(n), dim(nrhs), handle(a), dim(lda),
                                      handle(ipiv), handle(b), dim(ldb),
                                      handle(info)));
  }

  std::int32_t rpc_blas_sgemv(xdr::Untrusted<std::int32_t> m,
                              xdr::Untrusted<std::int32_t> n, float alpha,
                              xdr::Untrusted<proto::ptr_t> a,
                              xdr::Untrusted<std::int32_t> lda,
                              xdr::Untrusted<proto::ptr_t> x, float beta,
                              xdr::Untrusted<proto::ptr_t> y) override {
    count();
    return to_wire(api_.blas_sgemv(dim(m), dim(n), alpha, handle(a),
                                   dim(lda), handle(x), beta, handle(y)));
  }

  std::int32_t rpc_blas_saxpy(xdr::Untrusted<std::int32_t> n, float alpha,
                              xdr::Untrusted<proto::ptr_t> x,
                              xdr::Untrusted<proto::ptr_t> y) override {
    count();
    return to_wire(api_.blas_saxpy(dim(n), alpha, handle(x), handle(y)));
  }

  std::int32_t rpc_blas_snrm2(xdr::Untrusted<std::int32_t> n,
                              xdr::Untrusted<proto::ptr_t> x,
                              xdr::Untrusted<proto::ptr_t> result) override {
    count();
    return to_wire(api_.blas_snrm2(dim(n), handle(x), handle(result)));
  }

  std::int32_t rpc_solver_spotrf(xdr::Untrusted<std::int32_t> n,
                                 xdr::Untrusted<proto::ptr_t> a,
                                 xdr::Untrusted<std::int32_t> lda,
                                 xdr::Untrusted<proto::ptr_t> info) override {
    count();
    return to_wire(api_.solver_spotrf(dim(n), handle(a), dim(lda),
                                      handle(info)));
  }

  std::int32_t rpc_solver_spotrs(
      xdr::Untrusted<std::int32_t> n, xdr::Untrusted<std::int32_t> nrhs,
      xdr::Untrusted<proto::ptr_t> a, xdr::Untrusted<std::int32_t> lda,
      xdr::Untrusted<proto::ptr_t> b, xdr::Untrusted<std::int32_t> ldb,
      xdr::Untrusted<proto::ptr_t> info) override {
    count();
    return to_wire(api_.solver_spotrs(dim(n), dim(nrhs), handle(a), dim(lda),
                                      handle(b), dim(ldb), handle(info)));
  }

  // -------------------------- checkpoint/restart -------------------------
  std::int32_t rpc_checkpoint(std::string path) override {
    count();
    if (path.empty() || path.find("..") != std::string::npos)
      return to_wire(Error::kInvalidValue);
    try {
      checkpoint_to_file(api_.current(),
                         server_->options().checkpoint_dir + "/" + path);
      return to_wire(Error::kSuccess);
    } catch (const std::exception&) {
      return to_wire(Error::kFileNotFound);
    }
  }

  std::int32_t rpc_restore(std::string path) override {
    count();
    if (path.empty() || path.find("..") != std::string::npos)
      return to_wire(Error::kInvalidValue);
    try {
      restore_from_file(api_.current(),
                        server_->options().checkpoint_dir + "/" + path);
      return to_wire(Error::kSuccess);
    } catch (const std::exception&) {
      return to_wire(Error::kFileNotFound);
    }
  }

 private:
  void count() noexcept {
    server_->count_rpc();
    static obs::Counter& rpcs = obs::Registry::global().counter(
        "cricket_server_rpcs_total", {},
        "RPCs dispatched by Cricket sessions");
    rpcs.inc();
  }

  [[nodiscard]] bool bound() const noexcept {
    return tenants_ != nullptr && tenant_ != tenancy::kInvalidTenant;
  }

  /// The bound tenant's registered name ("" for unbound sessions) — the
  /// identity the module cache verifies possession proofs under. Clients
  /// compute their proofs with ClientConfig::tenant, which is the same
  /// string this session authenticated with.
  [[nodiscard]] std::string tenant_name() const {
    if (!bound()) return {};
    const auto spec = tenants_->spec(tenant_);
    return spec ? spec->name : std::string{};
  }

  [[nodiscard]] std::uint32_t current_device() {
    int d = 0;
    (void)api_.get_device(d);
    return static_cast<std::uint32_t>(d);
  }

  /// Records one cache reference held by this session. A session may load
  /// the same image repeatedly and gets the same module id back, so the
  /// bookkeeping counts references per id.
  void note_cached_module(cuda::ModuleId module, std::uint64_t hash,
                          std::uint32_t device, std::uint64_t size) {
    CachedRef& ref = cached_modules_[module];
    ref.hash = hash;
    ref.device = device;
    ref.size = size;
    ++ref.count;
  }

  void release_module_charge(cuda::ModuleId module) {
    const auto it = module_charges_.find(module);
    if (it == module_charges_.end()) return;
    if (bound()) tenants_->release_memory(tenant_, it->second);
    module_charges_.erase(it);
  }

  /// Large copies are arbitrated like kernel launches: fair-share admission
  /// before the bytes move, then the modelled transfer time is charged to
  /// the session and attributed to its tenant. Small control-plane copies
  /// skip the scheduler entirely.
  void admit_transfer(std::uint64_t bytes) {
    if (bytes < kLargeTransferBytes) return;
    server_->scheduler().admit_transfer(id_, bytes);
  }
  void charge_transfer(std::uint64_t bytes) {
    if (bytes < kLargeTransferBytes) return;
    const sim::Nanos ns = api_.current().copy_time(bytes);
    server_->scheduler().record_usage(id_, ns);
    if (bound()) tenants_->note_device_time(tenant_, ns);
  }

  CricketServer* server_;
  std::uint64_t id_;
  TransferLanes lanes_;
  cuda::LocalCudaApi api_;
  modcache::ModuleCache* cache_;  // null = cache disabled
  rpc::ServiceRegistry* registry_ = nullptr;
  tenancy::SessionManager* tenants_;
  tenancy::TenantId tenant_ = tenancy::kInvalidTenant;
  std::uint64_t client_id_ = 0;  // drc_client_id of the bound credential
  std::map<cuda::DevPtr, std::uint64_t> allocations_;  // ptr -> bytes
  std::set<cuda::ModuleId> modules_;
  std::set<cuda::StreamId> streams_;
  std::set<cuda::EventId> events_;
  /// Cache-managed module references held by this session (see modcache):
  /// unload and teardown release these through the cache, never the device.
  struct CachedRef {
    std::uint64_t hash = 0;
    std::uint32_t device = 0;
    std::uint64_t size = 0;
    std::uint32_t count = 0;
  };
  std::map<cuda::ModuleId, CachedRef> cached_modules_;
  /// Uncached loads charged against the tenant quota: module id -> bytes.
  std::map<cuda::ModuleId, std::uint64_t> module_charges_;
};

/// Pre-decode admission for one connection. The first structurally valid
/// record authenticates the connection's credential and binds the session
/// to its tenant (session-limit quota applies here); every record then
/// passes the per-call checks — outstanding-call cap, bytes/sec token
/// bucket, and a device-memory pre-check for cudaMalloc — before its
/// arguments are decoded. Rejections return typed replies through the
/// normal reply path, so the connection always survives.
class TenantAdmission final : public rpc::AdmissionController {
 public:
  TenantAdmission(tenancy::SessionManager& tenants, CricketSession& session,
                  std::uint64_t session_id)
      : tenants_(&tenants), session_(&session), id_(session_id) {}

  ~TenantAdmission() override {
    // serve_transport joins its workers before the controller is destroyed,
    // so anything still pending is a call whose dispatch never produced a
    // completion (exception unwind); balance the outstanding accounting.
    for (const auto tenant : pending_)
      if (tenant != tenancy::kInvalidTenant) tenants_->complete_call(tenant);
    if (tenant_ != tenancy::kInvalidTenant)
      tenants_->close_session(tenant_, id_);
  }

  std::optional<rpc::ReplyMsg> admit(
      std::span<const std::uint8_t> record) override {
    rpc::CallHeader header;
    try {
      header = rpc::peek_call_header(record);
    } catch (const std::exception&) {
      // Structurally invalid: let the decode path produce the format error;
      // its completion must not be charged to any tenant.
      push_pending(tenancy::kInvalidTenant);
      return std::nullopt;
    }
    if (tenant_ == tenancy::kInvalidTenant) {
      std::optional<tenancy::TenantId> tenant;
      std::uint64_t client_id = 0;
      try {
        const rpc::OpaqueAuth cred = rpc::peek_call_credential(record);
        client_id = rpc::drc_client_id(cred);
        tenant = tenants_->authenticate(cred);
      } catch (const std::exception&) {
        tenant = std::nullopt;
      }
      if (!tenant) {
        tenants_->count_rejection(tenancy::kInvalidTenant,
                                  tenancy::RejectReason::kUnknownTenant);
        return denied(header.xid);
      }
      const auto opened = tenants_->open_session(*tenant, id_);
      if (!opened.admitted) return rejected(header.xid, opened.reason);
      tenant_ = *tenant;
      session_->bind_tenant(tenant_, client_id);
    }
    // A cudaMalloc from a tenant already at its memory quota cannot
    // succeed: refuse before its arguments are decoded.
    if (header.proc == proto::RPC_MALLOC_PROC &&
        tenants_->memory_exhausted(tenant_)) {
      tenants_->count_rejection(tenant_, tenancy::RejectReason::kDeviceMemory);
      return rejected(header.xid, tenancy::RejectReason::kDeviceMemory);
    }
    const auto admitted = tenants_->admit_call(tenant_, record.size());
    if (!admitted.admitted) return rejected(header.xid, admitted.reason);
    push_pending(tenant_);
    return std::nullopt;
  }

  void complete() override {
    tenancy::TenantId tenant = tenancy::kInvalidTenant;
    {
      sim::MutexLock lock(mu_);
      if (pending_.empty()) return;
      tenant = pending_.front();
      pending_.pop_front();
    }
    if (tenant != tenancy::kInvalidTenant) tenants_->complete_call(tenant);
  }

 private:
  void push_pending(tenancy::TenantId tenant) {
    sim::MutexLock lock(mu_);
    pending_.push_back(tenant);
  }

  static std::optional<rpc::ReplyMsg> denied(std::uint32_t xid) {
    rpc::ReplyMsg reply;
    reply.xid = xid;
    reply.stat = rpc::ReplyStat::kDenied;
    reply.reject_stat = rpc::RejectStat::kAuthError;
    reply.auth_stat = rpc::AuthStat::kRejectedCred;
    return reply;
  }

  static std::optional<rpc::ReplyMsg> rejected(std::uint32_t xid,
                                               tenancy::RejectReason reason) {
    rpc::ReplyMsg reply;
    reply.xid = xid;
    // A migration freeze gets its own accept status (void body): answered
    // before decode, the call never executed, so the client may always
    // re-send the same xid — through the reconnect factory, which the
    // committed migration has redirected to the target server.
    if (reason == tenancy::RejectReason::kMigrating) {
      reply.accept_stat = rpc::AcceptStat::kMigrating;
      return reply;
    }
    reply.accept_stat = rpc::AcceptStat::kQuotaExceeded;
    reply.quota_reason = to_quota_reason(reason);
    return reply;
  }

  static rpc::QuotaReason to_quota_reason(
      tenancy::RejectReason reason) noexcept {
    switch (reason) {
      case tenancy::RejectReason::kRateLimited:
        return rpc::QuotaReason::kRateLimited;
      case tenancy::RejectReason::kOutstandingCalls:
        return rpc::QuotaReason::kOutstandingCalls;
      case tenancy::RejectReason::kDeviceMemory:
        return rpc::QuotaReason::kDeviceMemory;
      case tenancy::RejectReason::kSessionLimit:
        return rpc::QuotaReason::kSessionLimit;
      case tenancy::RejectReason::kUnknownTenant:
      case tenancy::RejectReason::kMigrating:  // own accept status, not quota
        break;
    }
    return rpc::QuotaReason::kUnspecified;
  }

  tenancy::SessionManager* tenants_;
  CricketSession* session_;
  std::uint64_t id_;
  /// Written only on the reader thread (admit); read by the destructor.
  tenancy::TenantId tenant_ = tenancy::kInvalidTenant;
  sim::Mutex mu_;
  /// Tenant to credit per admitted record, in admission order. admit()
  /// pushes on the reader thread; complete() pops on the (single) pipelined
  /// worker, which processes records in the same order.
  std::deque<tenancy::TenantId> pending_ CRICKET_GUARDED_BY(mu_);
};

}  // namespace

CricketServer::CricketServer(cuda::GpuNode& node, ServerOptions options)
    : node_(&node),
      options_(std::move(options)),
      scheduler_(options_.scheduler, node.clock(),
                 options_.scheduler_options) {
  if (options_.module_cache) {
    // Eviction/teardown unloads instances on the device that holds them —
    // never through a session's LocalCudaApi, whose current-device state
    // belongs to that session. A module already gone (device reset in a
    // test) is a no-op.
    module_cache_ = std::make_unique<modcache::ModuleCache>(
        options_.module_cache_options, options_.tenants,
        [node_ptr = node_](std::uint32_t device, std::uint64_t module) {
          try {
            node_ptr->device(static_cast<int>(device)).unload_module(module);
          } catch (const std::exception&) {
          }
        });
  }
}

void CricketServer::serve(rpc::Transport& transport, TransferLanes lanes) {
  const std::uint64_t id = next_session_.fetch_add(1);
  stats_.sessions.fetch_add(1);
  static obs::Counter& sessions = obs::Registry::global().counter(
      "cricket_server_sessions_total", {}, "Client sessions served");
  sessions.inc();
  CricketSession session(*this, id, std::move(lanes));
  rpc::ServiceRegistry registry;
  session.register_into(registry);
  session.set_registry(&registry);
  // Track the live session so a MigrationCoordinator can snapshot it; the
  // guard unregisters before session/registry leave scope.
  register_session(id, &session);
  struct SessionGuard {
    CricketServer* server;
    std::uint64_t id;
    ~SessionGuard() { server->unregister_session(id); }
  } guard{this, id};
  // Decode pre-flight from the rpclgen-proven bounds tables: records whose
  // length can not belong to the addressed procedure are answered
  // GARBAGE_ARGS before any allocation or argument decode.
  registry.set_bounds(proto::bounds::kProcBounds);
  // Multi-tenant mode: admission (authentication + quota enforcement) runs
  // between the bounds pre-flight and the argument decode.
  std::unique_ptr<TenantAdmission> admission;
  if (options_.tenants != nullptr) {
    admission =
        std::make_unique<TenantAdmission>(*options_.tenants, session, id);
    registry.set_admission(admission.get());
  }
  if (options_.at_most_once) registry.enable_duplicate_cache(options_.drc);
  rpc::ServeOptions serve = options_.serve;
  // Session handlers share per-session state (resource tracking, the local
  // CUDA context) and CUDA streams demand in-order execution, so pipelining
  // for this service means depth-1 workers: decode, execute, and reply
  // overlap across calls, but execution itself stays serial per session.
  if (serve.workers > 1) serve.workers = 1;
  rpc::serve_transport(registry, transport, serve);
}

std::thread CricketServer::serve_async(
    std::unique_ptr<rpc::Transport> transport, TransferLanes lanes) {
  return std::thread(
      [this, t = std::move(transport), l = std::move(lanes)]() mutable {
        serve(*t, std::move(l));
      });
}

std::vector<SessionExport> CricketServer::export_tenant_sessions(
    tenancy::TenantId tenant) {
  // Hold migrate_mu_ across the exports: a session of some *other* tenant
  // may disconnect concurrently, and its serve() frame unregisters under
  // this lock before the object dies — so the peer pointers stay valid for
  // exactly as long as we hold it. export_if's inner locks (device state,
  // DRC) only ever nest under migrate_mu_, never the other way around.
  sim::MutexLock lock(migrate_mu_);
  std::vector<SessionExport> out;
  std::set<cuda::ModuleId> claimed_modules;
  for (const auto& [id, peer] : sessions_)
    if (auto exp = peer->export_if(tenant, claimed_modules))
      out.push_back(std::move(*exp));
  return out;
}

void CricketServer::stage_adoption(const std::string& tenant_name,
                                   std::vector<SessionExport> bundles) {
  sim::MutexLock lock(migrate_mu_);
  for (auto& bundle : bundles) {
    auto& queue = adoptions_[{tenant_name, bundle.client_id}];
    queue.push_back(std::move(bundle));
  }
}

std::optional<SessionExport> CricketServer::take_adoption(
    const std::string& tenant_name, std::uint64_t client_id) {
  sim::MutexLock lock(migrate_mu_);
  const auto it = adoptions_.find({tenant_name, client_id});
  if (it == adoptions_.end() || it->second.empty()) return std::nullopt;
  SessionExport bundle = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) adoptions_.erase(it);
  return bundle;
}

void CricketServer::register_session(std::uint64_t id,
                                     detail::SessionPeer* peer) {
  sim::MutexLock lock(migrate_mu_);
  sessions_.emplace(id, peer);
}

void CricketServer::unregister_session(std::uint64_t id) {
  sim::MutexLock lock(migrate_mu_);
  sessions_.erase(id);
}

}  // namespace cricket::core
