#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace cricket::sim {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::size_t Log2Histogram::bucket_index(std::uint64_t value) noexcept {
  return value == 0 ? 0
                    : std::min<std::size_t>(kBuckets - 1,
                                            static_cast<std::size_t>(
                                                std::bit_width(value) - 1));
}

std::uint64_t Log2Histogram::bucket_lower(std::size_t i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << std::min<std::size_t>(i, 63);
}

std::uint64_t Log2Histogram::bucket_upper(std::size_t i) noexcept {
  // The top bucket is open-ended: [2^63, inf) reported as the max value.
  if (i + 1 >= kBuckets) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << (i + 1)) - 1;
}

void Log2Histogram::add(std::uint64_t value) noexcept {
  ++buckets_[bucket_index(value)];
  ++total_;
}

void Log2Histogram::add_bucket(std::size_t bucket, std::uint64_t n) noexcept {
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket] += n;
  total_ += n;
}

void Log2Histogram::merge(const Log2Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

std::uint64_t Log2Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (!(q > 0.0)) {  // q <= 0 or NaN: smallest observed value's lower edge
    for (std::size_t i = 0; i < kBuckets; ++i)
      if (buckets_[i] > 0) return bucket_lower(i);
    return 0;
  }
  if (q >= 1.0) {  // largest observed value's upper edge
    for (std::size_t i = kBuckets; i-- > 0;)
      if (buckets_[i] > 0) return bucket_upper(i);
    return 0;
  }
  // Rank of the quantile sample, 1-based: ceil so q=0.5 over 3 samples picks
  // the second (the median), not the first.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  std::size_t last_occupied = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    last_occupied = i;
    if (seen >= target) return bucket_upper(i);
  }
  return bucket_upper(last_occupied);
}

std::string Log2Histogram::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    char line[96];
    std::snprintf(line, sizeof line, "[%llu, %llu]: %llu\n",
                  static_cast<unsigned long long>(bucket_lower(i)),
                  static_cast<unsigned long long>(bucket_upper(i)),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  std::size_t u = 0;
  while (bytes >= 1024.0 && u + 1 < std::size(kUnits)) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, kUnits[u]);
  return buf;
}

std::string format_nanos(double ns) {
  static constexpr const char* kUnits[] = {"ns", "us", "ms", "s"};
  std::size_t u = 0;
  while (ns >= 1000.0 && u + 1 < std::size(kUnits)) {
    ns /= 1000.0;
    ++u;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f %s", ns, kUnits[u]);
  return buf;
}

}  // namespace cricket::sim
