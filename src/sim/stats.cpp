#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace cricket::sim {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Log2Histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket =
      value == 0 ? 0
                 : std::min<std::size_t>(kBuckets - 1,
                                         static_cast<std::size_t>(
                                             std::bit_width(value) - 1));
  ++buckets_[bucket];
  ++total_;
}

std::uint64_t Log2Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return (std::uint64_t{1} << (i + 1)) - 1;
  }
  return std::uint64_t{1} << (kBuckets - 1);
}

std::string Log2Histogram::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    char line[96];
    std::snprintf(line, sizeof line, "[%llu, %llu): %llu\n",
                  static_cast<unsigned long long>(i == 0 ? 0 : (1ULL << i)),
                  static_cast<unsigned long long>(1ULL << (i + 1)),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  std::size_t u = 0;
  while (bytes >= 1024.0 && u + 1 < std::size(kUnits)) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, kUnits[u]);
  return buf;
}

std::string format_nanos(double ns) {
  static constexpr const char* kUnits[] = {"ns", "us", "ms", "s"};
  std::size_t u = 0;
  while (ns >= 1000.0 && u + 1 < std::size(kUnits)) {
    ns /= 1000.0;
    ++u;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f %s", ns, kUnits[u]);
  return buf;
}

}  // namespace cricket::sim
