#include "sim/sim_clock.hpp"

namespace cricket::sim {

const char* pick_unit(Nanos ns) noexcept {
  if (ns >= kSecond) return "s";
  if (ns >= kMillisecond) return "ms";
  if (ns >= kMicrosecond) return "us";
  return "ns";
}

}  // namespace cricket::sim
