#include "sim/rng.hpp"

#include <bit>
#include <cstring>

namespace cricket::sim {

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256ss::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

void Xoshiro256ss::fill_bytes(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= out.size(); i += 8) {
    const std::uint64_t v = next();
    std::memcpy(out.data() + i, &v, 8);
  }
  if (i < out.size()) {
    const std::uint64_t v = next();
    std::memcpy(out.data() + i, &v, out.size() - i);
  }
}

}  // namespace cricket::sim
