// Clang Thread Safety Analysis vocabulary for the whole codebase — plus the
// runtime sync-observer seam the mcheck tooling hangs off.
//
// Every lock-holding class declares which mutex guards which fields
// (CRICKET_GUARDED_BY) and which lock a method needs or must not hold
// (CRICKET_REQUIRES / CRICKET_EXCLUDES); building with -DCRICKET_ANALYZE=ON
// under Clang turns those contracts into compile errors
// (-Werror=thread-safety). The std synchronization types carry no
// annotations, so this header also provides drop-in annotated wrappers:
// Mutex over std::mutex, MutexLock over std::lock_guard (with the
// unlock/relock escape std::unique_lock offers), and CondVar over
// std::condition_variable, waiting directly on a held Mutex at zero extra
// cost (adopt/release, no second mutex). Under GCC — which has no
// thread-safety analysis — every macro expands to nothing and the wrappers
// compile to the std types they wrap.
//
// SyncObserver: every wrapper operation (acquire, release, try-acquire,
// condvar wait/notify) consults a process-global observer pointer. With no
// observer installed — the default — each operation pays one relaxed atomic
// load and a predicted-not-taken branch, nothing else. Two tools install
// observers (src/mcheck):
//   * LockGraph (CRICKET_LOCKCHECK=1) records held-before edges between
//     lock classes and reports potential-deadlock cycles at exit, even when
//     no deadlock ever manifested in the run.
//   * Explorer replaces blocking with a cooperative scheduler and
//     systematically enumerates interleavings of small model tests.
// Each Mutex/CondVar remembers its construction site, so diagnostics speak
// in terms of lock *classes* ("the CallBatcher mu_ declared at
// batcher.hpp:87") that are stable across processes — the identity the
// suite-wide lock-order graph merges on.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <source_location>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CRICKET_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CRICKET_THREAD_ANNOTATION
#define CRICKET_THREAD_ANNOTATION(x)  // no-op outside Clang TSA
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CRICKET_CAPABILITY(x) CRICKET_THREAD_ANNOTATION(capability(x))
/// Declares an RAII class that acquires on construction, releases on
/// destruction.
#define CRICKET_SCOPED_CAPABILITY CRICKET_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding the given mutex.
#define CRICKET_GUARDED_BY(x) CRICKET_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding the given mutex.
#define CRICKET_PT_GUARDED_BY(x) CRICKET_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must already hold the given mutex(es).
#define CRICKET_REQUIRES(...) \
  CRICKET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and returns with them held.
#define CRICKET_ACQUIRE(...) \
  CRICKET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es).
#define CRICKET_RELEASE(...) \
  CRICKET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define CRICKET_TRY_ACQUIRE(...) \
  CRICKET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the given mutex(es) (deadlock prevention: the
/// function acquires them itself).
#define CRICKET_EXCLUDES(...) \
  CRICKET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the mutex is held (trusted by the analysis).
#define CRICKET_ASSERT_CAPABILITY(x) \
  CRICKET_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given mutex.
#define CRICKET_RETURN_CAPABILITY(x) \
  CRICKET_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — keep uses justified with a comment; tools/check.sh greps
/// for it so silent suppressions stand out in review.
#define CRICKET_NO_THREAD_SAFETY_ANALYSIS \
  CRICKET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cricket::sim {

class Mutex;
class CondVar;

/// Runtime hook over every Mutex/CondVar wrapper operation. The default
/// implementation of every callback does nothing, so an observer overrides
/// only the events it cares about. Hooks run on the thread performing the
/// operation; `loc` is the call site (the acquisition site for locks) and
/// the observed objects expose their construction site via birth().
///
/// Two callback families:
///   * notification hooks (lock_pending/lock_acquired/unlocked/
///     cv_wait_begin/cv_wait_done/cv_notify/sync_point) — pure taps; the
///     wrapper performs the real operation regardless.
///   * takeover hooks (try_lock_pending, cv_wait, cv_wait_timed) — let the
///     observer replace the operation's blocking semantics, which is how
///     the mcheck explorer substitutes its cooperative scheduler for the
///     OS primitives.
class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  /// About to block in Mutex::lock.
  virtual void lock_pending(Mutex&, const std::source_location&) {}
  /// Mutex::lock / successful try_lock returned; the calling thread now
  /// holds the mutex.
  virtual void lock_acquired(Mutex&, const std::source_location&) {}
  /// Mutex::unlock completed (the mutex is already released when this runs).
  virtual void unlocked(Mutex&, const std::source_location&) {}
  /// Takeover for Mutex::lock, running between lock_pending and
  /// lock_acquired: return true iff the observer acquired the mutex in its
  /// own model and the native mutex must stay untouched. The explorer
  /// returns true for its controlled threads — they are serialized through
  /// its handshake lock, so the native mutex would add nothing but lock
  /// history for TSan to misread as potential deadlock when a model body is
  /// *intentionally* inverted (the mcheck mutants). lock_acquired still
  /// fires afterwards either way.
  virtual bool lock_acquire(Mutex&, const std::source_location&) {
    return false;
  }
  /// Counterpart for Mutex::unlock: return true iff the release is
  /// model-only (the matching acquire never touched the native mutex).
  /// unlocked() still fires afterwards either way.
  virtual bool unlock_release(Mutex&, const std::source_location&) {
    return false;
  }
  /// Takeover for try_lock: return kPassThrough to run the real try_lock,
  /// kRefuse to fail without touching the native mutex, kProceed to go
  /// ahead with the native try_lock (only sound when the observer can
  /// prove the mutex free, so the native call cannot block), or kSucceed
  /// to report success with the native mutex untouched (model-only
  /// ownership, paired with lock_acquire/unlock_release takeovers).
  static constexpr int kPassThrough = -1;
  static constexpr int kRefuse = 0;
  static constexpr int kProceed = 1;
  static constexpr int kSucceed = 2;
  virtual int try_lock_pending(Mutex&, const std::source_location&) {
    return kPassThrough;
  }
  virtual void try_lock_result(Mutex&, bool /*acquired*/,
                               const std::source_location&) {}

  /// Takeover for CondVar::wait: return true iff the observer performed the
  /// whole wait itself (released the mutex, blocked, re-acquired). Returning
  /// false falls through to the real wait bracketed by cv_wait_begin /
  /// cv_wait_done.
  virtual bool cv_wait(CondVar&, Mutex&, const std::source_location&) {
    return false;
  }
  /// Takeover for the timed waits: an engaged result both performs the wait
  /// and dictates its outcome (the explorer branches on wakeup-vs-timeout as
  /// a scheduling decision). Disengaged falls through to the real wait.
  virtual std::optional<std::cv_status> cv_wait_timed(
      CondVar&, Mutex&, const std::source_location&) {
    return std::nullopt;
  }
  /// Brackets around a real (non-taken-over) wait: begin runs just before
  /// the mutex is released, done runs after it has been re-acquired.
  virtual void cv_wait_begin(CondVar&, Mutex&, const std::source_location&) {}
  virtual void cv_wait_done(CondVar&, Mutex&, const std::source_location&) {}
  virtual void cv_notify(CondVar&, bool /*all*/, const std::source_location&) {
  }

  /// Free-standing scheduling point (sim::sync_point): marks a shared-memory
  /// access that is synchronized by something other than a Mutex — seqlock
  /// fields, futures' atomics — so the explorer can preempt there. `tag`
  /// identifies the accessed object (dependency tracking).
  virtual void sync_point(const void* /*tag*/, const std::source_location&) {}

 protected:
  // Observers that take over cv_wait must release/re-acquire the waiter's
  // mutex themselves. These trampolines exist so that code lives outside
  // the TSA-annotated surface legitimately: by the time cv_wait returns,
  // the runtime lock state is exactly what the annotations promised.
  static void observer_unlock(Mutex& mu, const std::source_location& loc);
  static void observer_lock(Mutex& mu, const std::source_location& loc);
};

namespace detail {
inline std::atomic<SyncObserver*> g_sync_observer{nullptr};
}  // namespace detail

/// The installed observer, or nullptr (the fast path). Relaxed load: the
/// installer synchronizes with observed threads externally (observers are
/// installed before the threads under observation start).
inline SyncObserver* sync_observer() noexcept {
  return detail::g_sync_observer.load(std::memory_order_relaxed);
}

/// Installs `observer` (nullptr uninstalls), returning the previous one.
/// Not synchronized against in-flight wrapper operations: swap only at
/// quiescent points (process start, between tests).
inline SyncObserver* set_sync_observer(SyncObserver* observer) noexcept {
  return detail::g_sync_observer.exchange(observer, std::memory_order_acq_rel);
}

/// Scheduling-point marker for lock-free shared accesses (seqlock slots,
/// ring heads). Free when no observer is installed.
inline void sync_point(
    const void* tag = nullptr,
    const std::source_location& loc = std::source_location::current()) {
  if (SyncObserver* o = sync_observer()) o->sync_point(tag, loc);
}

/// std::mutex with a capability annotation the analysis can track. Remembers
/// its construction site: all instances born at one source line form one
/// lock *class*, the node identity of the mcheck lock-order graph (the same
/// classing rule the kernel's lockdep uses).
class CRICKET_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(
      const std::source_location& birth = std::source_location::current())
      : birth_(birth) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(const std::source_location& loc = std::source_location::current())
      CRICKET_ACQUIRE() {
    if (SyncObserver* o = sync_observer()) {
      o->lock_pending(*this, loc);
      if (!o->lock_acquire(*this, loc)) mu_.lock();
      o->lock_acquired(*this, loc);
      return;
    }
    mu_.lock();
  }

  void unlock(
      const std::source_location& loc = std::source_location::current())
      CRICKET_RELEASE() {
    if (SyncObserver* o = sync_observer()) {
      if (!o->unlock_release(*this, loc)) mu_.unlock();
      o->unlocked(*this, loc);
      return;
    }
    mu_.unlock();
  }

  [[nodiscard]] bool try_lock(
      const std::source_location& loc = std::source_location::current())
      CRICKET_TRY_ACQUIRE(true) {
    if (SyncObserver* o = sync_observer()) {
      const int verdict = o->try_lock_pending(*this, loc);
      if (verdict == SyncObserver::kRefuse) {
        o->try_lock_result(*this, false, loc);
        return false;
      }
      if (verdict == SyncObserver::kSucceed) {
        o->try_lock_result(*this, true, loc);
        return true;
      }
      const bool acquired = mu_.try_lock();
      o->try_lock_result(*this, acquired, loc);
      return acquired;
    }
    return mu_.try_lock();
  }

  /// Where this mutex was constructed (its lock class).
  [[nodiscard]] const std::source_location& birth() const noexcept {
    return birth_;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  std::source_location birth_;
};

inline void SyncObserver::observer_unlock(Mutex& mu,
                                          const std::source_location& loc)
    CRICKET_NO_THREAD_SAFETY_ANALYSIS {
  mu.unlock(loc);
}
inline void SyncObserver::observer_lock(Mutex& mu,
                                        const std::source_location& loc)
    CRICKET_NO_THREAD_SAFETY_ANALYSIS {
  mu.lock(loc);
}

/// Scoped lock over Mutex (std::lock_guard replacement). unlock()/lock()
/// support the unlock-work-relock pattern of std::unique_lock; the analysis
/// tracks the lock state across them.
class CRICKET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(
      Mutex& mu,
      const std::source_location& loc = std::source_location::current())
      CRICKET_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock(loc);
  }
  ~MutexLock() CRICKET_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock(
      const std::source_location& loc = std::source_location::current())
      CRICKET_RELEASE() {
    mu_.unlock(loc);
    held_ = false;
  }
  void lock(const std::source_location& loc = std::source_location::current())
      CRICKET_ACQUIRE() {
    mu_.lock(loc);
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable waiting on a held Mutex. Implemented over
/// std::condition_variable by adopting the already-held native mutex for the
/// duration of the wait (no second mutex, no condition_variable_any
/// overhead). Callers re-check their predicate in a while loop, which keeps
/// every guarded-field access inside the annotated critical section.
class CondVar {
 public:
  explicit CondVar(
      const std::source_location& birth = std::source_location::current())
      : birth_(birth) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, re-acquires. Spurious wakeups happen;
  /// loop on the predicate.
  void wait(Mutex& mu,
            const std::source_location& loc = std::source_location::current())
      CRICKET_REQUIRES(mu) {
    if (SyncObserver* o = sync_observer()) {
      if (o->cv_wait(*this, mu, loc)) return;
      o->cv_wait_begin(*this, mu, loc);
      wait_native(mu);
      o->cv_wait_done(*this, mu, loc);
      return;
    }
    wait_native(mu);
  }

  /// wait() with a deadline; returns std::cv_status::timeout once `deadline`
  /// has passed.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline,
      const std::source_location& loc = std::source_location::current())
      CRICKET_REQUIRES(mu) {
    if (SyncObserver* o = sync_observer()) {
      if (const auto forced = o->cv_wait_timed(*this, mu, loc)) return *forced;
      o->cv_wait_begin(*this, mu, loc);
      const std::cv_status status = wait_until_native(mu, deadline);
      o->cv_wait_done(*this, mu, loc);
      return status;
    }
    return wait_until_native(mu, deadline);
  }

  /// wait() bounded by a relative timeout (sugar over wait_until on the
  /// steady clock).
  template <typename Rep, typename Period>
  std::cv_status wait_for(
      Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
      const std::source_location& loc = std::source_location::current())
      CRICKET_REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() + timeout, loc);
  }

  void notify_one(
      const std::source_location& loc = std::source_location::current()) {
    if (SyncObserver* o = sync_observer()) o->cv_notify(*this, false, loc);
    cv_.notify_one();
  }
  void notify_all(
      const std::source_location& loc = std::source_location::current()) {
    if (SyncObserver* o = sync_observer()) o->cv_notify(*this, true, loc);
    cv_.notify_all();
  }

  /// Where this condition variable was constructed.
  [[nodiscard]] const std::source_location& birth() const noexcept {
    return birth_;
  }

 private:
  void wait_native(Mutex& mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }
  template <typename Clock, typename Duration>
  std::cv_status wait_until_native(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  std::condition_variable cv_;
  std::source_location birth_;
};

}  // namespace cricket::sim
