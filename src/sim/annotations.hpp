// Clang Thread Safety Analysis vocabulary for the whole codebase.
//
// Every lock-holding class declares which mutex guards which fields
// (CRICKET_GUARDED_BY) and which lock a method needs or must not hold
// (CRICKET_REQUIRES / CRICKET_EXCLUDES); building with -DCRICKET_ANALYZE=ON
// under Clang turns those contracts into compile errors
// (-Werror=thread-safety). The std synchronization types carry no
// annotations, so this header also provides drop-in annotated wrappers:
// Mutex over std::mutex, MutexLock over std::lock_guard (with the
// unlock/relock escape std::unique_lock offers), and CondVar over
// std::condition_variable, waiting directly on a held Mutex at zero extra
// cost (adopt/release, no second mutex). Under GCC — which has no
// thread-safety analysis — every macro expands to nothing and the wrappers
// compile to exactly the std types they wrap.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CRICKET_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CRICKET_THREAD_ANNOTATION
#define CRICKET_THREAD_ANNOTATION(x)  // no-op outside Clang TSA
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CRICKET_CAPABILITY(x) CRICKET_THREAD_ANNOTATION(capability(x))
/// Declares an RAII class that acquires on construction, releases on
/// destruction.
#define CRICKET_SCOPED_CAPABILITY CRICKET_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding the given mutex.
#define CRICKET_GUARDED_BY(x) CRICKET_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding the given mutex.
#define CRICKET_PT_GUARDED_BY(x) CRICKET_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must already hold the given mutex(es).
#define CRICKET_REQUIRES(...) \
  CRICKET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and returns with them held.
#define CRICKET_ACQUIRE(...) \
  CRICKET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es).
#define CRICKET_RELEASE(...) \
  CRICKET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define CRICKET_TRY_ACQUIRE(...) \
  CRICKET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the given mutex(es) (deadlock prevention: the
/// function acquires them itself).
#define CRICKET_EXCLUDES(...) \
  CRICKET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the mutex is held (trusted by the analysis).
#define CRICKET_ASSERT_CAPABILITY(x) \
  CRICKET_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given mutex.
#define CRICKET_RETURN_CAPABILITY(x) \
  CRICKET_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — keep uses justified with a comment; tools/check.sh greps
/// for it so silent suppressions stand out in review.
#define CRICKET_NO_THREAD_SAFETY_ANALYSIS \
  CRICKET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cricket::sim {

/// std::mutex with a capability annotation the analysis can track.
class CRICKET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CRICKET_ACQUIRE() { mu_.lock(); }
  void unlock() CRICKET_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() CRICKET_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::lock_guard replacement). unlock()/lock()
/// support the unlock-work-relock pattern of std::unique_lock; the analysis
/// tracks the lock state across them.
class CRICKET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CRICKET_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() CRICKET_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() CRICKET_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() CRICKET_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable waiting on a held Mutex. Implemented over
/// std::condition_variable by adopting the already-held native mutex for the
/// duration of the wait (no second mutex, no condition_variable_any
/// overhead). Callers re-check their predicate in a while loop, which keeps
/// every guarded-field access inside the annotated critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, re-acquires. Spurious wakeups happen;
  /// loop on the predicate.
  void wait(Mutex& mu) CRICKET_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// wait() with a deadline; returns std::cv_status::timeout once `deadline`
  /// has passed.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      CRICKET_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cricket::sim
