// Deterministic random number generators.
//
// Two quality tiers on purpose: the paper (§4.1) traces the histogram
// benchmark's C-vs-Rust gap partly to "the C applications use a slower random
// number generator for initialization". We mirror that with a fast
// xoshiro256** generator (the Rust-style RNG) and a deliberately slower
// rand()-style LCG that produces one byte per call (the C-samples RNG).
#pragma once

#include <cstdint>
#include <span>

namespace cricket::sim {

/// SplitMix64: seeds the other generators; also fine standalone.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, and the kind of generator Rust's
/// `rand` crate family ships. Fills 8 bytes per call.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() noexcept {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  /// Fills `out` with random bytes, 8 at a time.
  void fill_bytes(std::span<std::uint8_t> out) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Minimal-standard LCG mimicking libc rand(): 31-bit state, one output per
/// step, plus an artificial modulo to mirror the C samples' byte extraction.
/// Used only to reproduce the paper's "slower C RNG" effect.
class LegacyLcg {
 public:
  explicit LegacyLcg(std::uint32_t seed) noexcept : state_(seed ? seed : 1) {}

  std::uint32_t next() noexcept {
    state_ = (1103515245u * state_ + 12345u) & 0x7FFFFFFFu;
    return state_;
  }

  float next_float() noexcept {
    return static_cast<float>(next()) / 2147483648.0f;
  }

  /// One byte per full generator step — intentionally 8x the work of
  /// Xoshiro256ss::fill_bytes per output byte.
  void fill_bytes(std::span<std::uint8_t> out) noexcept {
    for (auto& b : out) b = static_cast<std::uint8_t>(next() % 256u);
  }

 private:
  std::uint32_t state_;
};

}  // namespace cricket::sim
