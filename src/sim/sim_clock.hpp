// Virtual-time clock driving every reproduced measurement.
//
// The paper's numbers come from real hardware (A100, 100 GbE). Our substrates
// are simulators, so all modelled costs (network packets, VM exits, GPU kernel
// execution, PCIe copies) are charged to a SimClock instead of wall time. The
// benchmark harnesses report virtual time; google-benchmark binaries measure
// the real performance of our own primitives separately.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cricket::sim {

/// Virtual duration / timestamp in nanoseconds.
using Nanos = std::int64_t;

constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

/// Monotonic virtual clock. Thread-safe: concurrent actors may charge time
/// from different threads; `advance` is an atomic add.
///
/// The simulation in this project is logically sequential per RPC (a call
/// blocks until its reply), so a single shared clock per experiment gives the
/// same totals a full discrete-event simulation would. Components that model
/// internal parallelism (e.g. parallel-socket transfers) pre-aggregate their
/// cost (max over lanes) before charging it.
class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  /// Current virtual time since reset, in nanoseconds.
  [[nodiscard]] Nanos now() const noexcept {
    return now_ns_.load(std::memory_order_relaxed);
  }

  /// Charge `ns` of virtual time. Negative charges are clamped to zero so a
  /// buggy cost model can never make time run backwards.
  void advance(Nanos ns) noexcept {
    if (ns > 0) now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  void reset() noexcept { now_ns_.store(0, std::memory_order_relaxed); }

  /// Convenience: charge a duration expressed in fractional seconds.
  void advance_seconds(double s) noexcept {
    advance(static_cast<Nanos>(s * static_cast<double>(kSecond)));
  }

 private:
  std::atomic<Nanos> now_ns_{0};
};

/// RAII measurement of virtual elapsed time on a clock.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock) noexcept
      : clock_(&clock), start_(clock.now()) {}

  [[nodiscard]] Nanos elapsed() const noexcept {
    return clock_->now() - start_;
  }
  void restart() noexcept { start_ = clock_->now(); }

 private:
  const SimClock* clock_;
  Nanos start_;
};

/// Formats a virtual duration as a human-readable string ("12.3 ms").
[[nodiscard]] const char* pick_unit(Nanos ns) noexcept;

}  // namespace cricket::sim
