// Streaming statistics used by benchmark harnesses and the network simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cricket::sim {

/// Welford-style single-pass accumulator: count, mean, variance, min, max.
/// Not thread-safe; aggregate per-thread instances with `merge`.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Combines another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-boundary log2 histogram for latency distributions. Bucket i covers
/// [2^i, 2^(i+1)) in the recorded unit; values < 1 land in bucket 0.
/// Not thread-safe; aggregate per-thread instances with `merge` (the atomic
/// obs::Histogram snapshots into this type).
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept;
  /// Adds `n` pre-bucketed samples (snapshot import from atomic counters).
  void add_bucket(std::size_t bucket, std::uint64_t n) noexcept;
  /// Combines another histogram into this one (parallel aggregation, same
  /// role as RunningStats::merge).
  void merge(const Log2Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return i < kBuckets ? buckets_[i] : 0;
  }
  /// Value below which `q` (0..1) of the samples fall, estimated from bucket
  /// boundaries (upper edge of the quantile bucket). Edge cases: an empty
  /// histogram yields 0; q <= 0 (or NaN) yields the lower edge of the first
  /// occupied bucket; q >= 1 yields the upper edge of the last occupied one.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static constexpr std::size_t bucket_count() noexcept {
    return kBuckets;
  }
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive value range covered by bucket i: [lower, upper].
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t i) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept;

 private:
  static constexpr std::size_t kBuckets = 64;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Formats `bytes` as "512.0 MiB" etc.
[[nodiscard]] std::string format_bytes(double bytes);
/// Formats a nanosecond duration as e.g. "12.34 ms".
[[nodiscard]] std::string format_nanos(double ns);

}  // namespace cricket::sim
