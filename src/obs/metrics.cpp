#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace cricket::obs {

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

/// Series name with one extra label spliced in (for histogram `le`).
std::string series_with(const std::string& name, const Labels& labels,
                        const std::string& extra_key,
                        const std::string& extra_value) {
  Labels all = labels;
  all.emplace_back(extra_key, extra_value);
  return series_name(name, all);
}

}  // namespace

std::string series_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

sim::Log2Histogram Histogram::snapshot() const noexcept {
  sim::Log2Histogram out;
  for (std::size_t i = 0; i < sim::Log2Histogram::bucket_count(); ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.add_bucket(i, n);
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) gauges[k] = v;
  for (const auto& [k, v] : other.histograms) {
    auto& mine = histograms[k];
    mine.hist.merge(v.hist);
    mine.sum += v.sum;
  }
}

Counter& Registry::counter(const std::string& name, Labels labels,
                           const std::string& help) {
  Key key{name, sorted(std::move(labels))};
  sim::MutexLock lock(mu_);
  auto& slot = counters_[key];
  if (!slot) {
    slot = std::make_unique<Counter>();
    if (!help.empty()) help_.emplace(name, help);
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, Labels labels,
                       const std::string& help) {
  Key key{name, sorted(std::move(labels))};
  sim::MutexLock lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) {
    slot = std::make_unique<Gauge>();
    if (!help.empty()) help_.emplace(name, help);
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, Labels labels,
                               const std::string& help) {
  Key key{name, sorted(std::move(labels))};
  sim::MutexLock lock(mu_);
  auto& slot = hists_[key];
  if (!slot) {
    slot = std::make_unique<Histogram>();
    if (!help.empty()) help_.emplace(name, help);
  }
  return *slot;
}

std::string Registry::unique_label(const std::string& prefix) {
  sim::MutexLock lock(mu_);
  std::string out = prefix;
  append_u64(out, label_seq_[prefix]++);
  return out;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  sim::MutexLock lock(mu_);
  for (const auto& [key, c] : counters_)
    out.counters[series_name(key.name, key.labels)] = c->value();
  for (const auto& [key, g] : gauges_)
    out.gauges[series_name(key.name, key.labels)] = g->value();
  for (const auto& [key, h] : hists_) {
    auto& slot = out.histograms[series_name(key.name, key.labels)];
    slot.hist = h->snapshot();
    slot.sum = h->sum();
  }
  return out;
}

std::string Registry::prometheus_text() const {
  std::string out;
  sim::MutexLock lock(mu_);
  const std::string* last_family = nullptr;
  const auto header = [&](const std::string& name, const char* type) {
    if (last_family && *last_family == name) return;
    last_family = &name;
    auto h = help_.find(name);
    if (h != help_.end()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += h->second;
      out += '\n';
    }
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };

  for (const auto& [key, c] : counters_) {
    header(key.name, "counter");
    out += series_name(key.name, key.labels);
    out += ' ';
    append_u64(out, c->value());
    out += '\n';
  }
  last_family = nullptr;
  for (const auto& [key, g] : gauges_) {
    header(key.name, "gauge");
    out += series_name(key.name, key.labels);
    out += ' ';
    append_i64(out, g->value());
    out += '\n';
  }
  last_family = nullptr;
  for (const auto& [key, h] : hists_) {
    header(key.name, "histogram");
    const sim::Log2Histogram snap = h->snapshot();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < sim::Log2Histogram::bucket_count(); ++i) {
      if (snap.bucket(i) == 0) continue;
      cumulative += snap.bucket(i);
      std::string le;
      append_u64(le, sim::Log2Histogram::bucket_upper(i));
      out += series_with(key.name + "_bucket", key.labels, "le", le);
      out += ' ';
      append_u64(out, cumulative);
      out += '\n';
    }
    out += series_with(key.name + "_bucket", key.labels, "le", "+Inf");
    out += ' ';
    append_u64(out, cumulative);
    out += '\n';
    out += series_name(key.name + "_sum", key.labels);
    out += ' ';
    append_u64(out, h->sum());
    out += '\n';
    out += series_name(key.name + "_count", key.labels);
    out += ' ';
    append_u64(out, cumulative);
    out += '\n';
  }
  return out;
}

void Registry::reset() {
  sim::MutexLock lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : hists_) h->reset();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;  // bumps from detached threads outlive static teardown
}

}  // namespace cricket::obs
