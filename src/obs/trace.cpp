#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "obs/metrics.hpp"
#include "sim/annotations.hpp"

namespace cricket::obs {

namespace {

struct LayerInfo {
  const char* name;
  const char* category;
};

constexpr LayerInfo kLayers[static_cast<std::size_t>(Layer::kCount)] = {
    {"app", "app"},
    {"client.call", "client"},
    {"client.serialize", "client"},
    {"client.wait", "client"},
    {"chan.send", "chan"},
    {"chan.flush", "chan"},
    {"chan.reply", "chan"},
    {"net.tx", "net"},
    {"net.rx", "net"},
    {"vnet.tx", "vnet"},
    {"vnet.rx", "vnet"},
    {"server.dispatch", "server"},
    {"server.reply", "server"},
    {"gpu.launch", "gpu"},
    {"gpu.memcpy", "gpu"},
    {"gpu.sync", "gpu"},
};

constexpr std::size_t layer_slot(Layer layer) noexcept {
  auto i = static_cast<std::size_t>(layer);
  return i < static_cast<std::size_t>(Layer::kCount) ? i : 0;
}

}  // namespace

const char* layer_name(Layer layer) noexcept {
  return kLayers[layer_slot(layer)].name;
}

const char* layer_category(Layer layer) noexcept {
  return kLayers[layer_slot(layer)].category;
}

#if !defined(CRICKET_OBS_DISABLE)

namespace detail {
std::atomic<bool> g_enabled{false};
thread_local std::uint32_t t_xid = 0;
}  // namespace detail

namespace {

/// One ring slot, seqlock-protected. Every field is an atomic so the racing
/// reads the seqlock window allows are defined behavior (and TSan-clean);
/// the seq check discards any torn combination.
struct Slot {
  std::atomic<std::uint32_t> seq{0};  // odd while the owner thread writes
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::int64_t> dur_ns{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint32_t> xid{0};
  std::atomic<std::uint8_t> layer{0};
  std::atomic<bool> instant{false};
};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n && p < (std::size_t{1} << 31)) p <<= 1;
  return p;
}

/// Per-thread event ring. The owning thread is the only writer; collectors
/// read concurrently through the seqlock protocol.
class ThreadRing {
 public:
  ThreadRing(std::size_t capacity, std::uint32_t tid, std::uint64_t epoch)
      : mask_(capacity - 1),
        tid_(tid),
        epoch_(epoch),
        slots_(std::make_unique<Slot[]>(capacity)) {}

  void record(Layer layer, const char* name, std::int64_t start_ns,
              std::int64_t dur_ns, std::uint64_t arg, std::uint32_t xid,
              bool inst) noexcept {
    sim::sync_point(this);  // mcheck: writer step, dependent on this ring
    const std::uint64_t n = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[n & mask_];
    // Fence-free seqlock writer: the acq_rel RMW marks the slot odd and its
    // acquire half keeps the data stores below it; the release store keeps
    // them above the even transition. (GCC's TSan cannot instrument
    // atomic_thread_fence, so the fence formulation is off the table.)
    const std::uint32_t seq = s.seq.fetch_add(1, std::memory_order_acq_rel);
    sim::sync_point(this);  // mcheck: mid-write window (slot marked odd)
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_relaxed);
    s.xid.store(xid, std::memory_order_relaxed);
    s.layer.store(static_cast<std::uint8_t>(layer),
                  std::memory_order_relaxed);
    s.instant.store(inst, std::memory_order_relaxed);
    s.seq.store(seq + 2, std::memory_order_release);
    head_.store(n + 1, std::memory_order_release);
  }

  /// Appends every readable event to `out`. Slots being overwritten while we
  /// look (seq odd or changed) are retried a few times, then skipped.
  void collect(std::vector<TraceEvent>& out) const {
    const std::uint64_t n = head_.load(std::memory_order_acquire);
    const std::size_t count =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, mask_ + 1));
    for (std::size_t i = 0; i < count; ++i) {
      const Slot& s = slots_[i];
      for (int attempt = 0; attempt < 3; ++attempt) {
        const std::uint32_t s1 = s.seq.load(std::memory_order_acquire);
        if (s1 & 1u) continue;
        sim::sync_point(this);  // mcheck: reader inside the seqlock window
        // Acquire data loads pin the seq recheck below every one of them —
        // the reader-side half of the fence-free seqlock.
        TraceEvent ev;
        ev.start_ns = s.start_ns.load(std::memory_order_acquire);
        ev.dur_ns = s.dur_ns.load(std::memory_order_acquire);
        ev.arg = s.arg.load(std::memory_order_acquire);
        ev.name = s.name.load(std::memory_order_acquire);
        ev.xid = s.xid.load(std::memory_order_acquire);
        ev.layer = static_cast<Layer>(s.layer.load(std::memory_order_acquire));
        ev.instant = s.instant.load(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != s1) continue;
        ev.tid = tid_;
        out.push_back(ev);
        break;
      }
    }
  }

  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t n = head_.load(std::memory_order_relaxed);
    const std::uint64_t cap = mask_ + 1;
    return n > cap ? n - cap : 0;
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  const std::uint64_t mask_;
  const std::uint32_t tid_;
  const std::uint64_t epoch_;
  std::atomic<std::uint64_t> head_{0};
  const std::unique_ptr<Slot[]> slots_;
};

/// Process-wide ring directory. Rings are never freed (a detached thread may
/// still hold a pointer); reset_trace() bumps the epoch so stale rings fall
/// out of collection and each thread lazily re-registers a fresh one. The
/// retired-ring footprint is bounded by threads x enable/reset cycles.
struct Collector {
  sim::Mutex mu;
  std::vector<ThreadRing*> rings CRICKET_GUARDED_BY(mu);
  std::atomic<std::uint64_t> epoch{1};
  std::atomic<std::size_t> ring_capacity{64 * 1024};
  std::atomic<bool> latency_metrics{true};
};

Collector& collector() {
  static Collector* c = new Collector();  // never destroyed: spans may be
  return *c;                              // recorded during static teardown
}

std::uint32_t local_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

ThreadRing& local_ring() {
  struct TlsRef {
    ThreadRing* ring = nullptr;
    std::uint64_t epoch = 0;
  };
  thread_local TlsRef tls;
  Collector& c = collector();
  const std::uint64_t e = c.epoch.load(std::memory_order_acquire);
  if (tls.ring == nullptr || tls.epoch != e) {
    auto* ring = new ThreadRing(
        c.ring_capacity.load(std::memory_order_relaxed), local_tid(), e);
    sim::MutexLock lock(c.mu);
    c.rings.push_back(ring);
    tls = {ring, e};
  }
  return *tls.ring;
}

/// Per-layer latency histograms, resolved from the global Registry once and
/// cached (Registry::reset zeroes in place, so the pointers stay valid).
Histogram& layer_latency(Layer layer) {
  static std::atomic<Histogram*> cache[static_cast<std::size_t>(
      Layer::kCount)] = {};
  std::atomic<Histogram*>& slot = cache[layer_slot(layer)];
  Histogram* h = slot.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &Registry::global().histogram(
        "cricket_span_latency_ns", {{"layer", layer_name(layer)}},
        "Span duration per stack layer, nanoseconds");
    slot.store(h, std::memory_order_release);
  }
  return *h;
}

std::atomic<const sim::SimClock*> g_clock{nullptr};

}  // namespace

namespace detail {

void record_span(Layer layer, const char* name, std::int64_t start_ns,
                 std::int64_t dur_ns, std::uint64_t arg,
                 bool inst) noexcept {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (name == nullptr) name = layer_name(layer);
  local_ring().record(layer, name, start_ns, dur_ns, arg, t_xid, inst);
  if (!inst && collector().latency_metrics.load(std::memory_order_relaxed)) {
    layer_latency(layer).observe(
        dur_ns > 0 ? static_cast<std::uint64_t>(dur_ns) : 0);
  }
}

}  // namespace detail

void enable_tracing(const TraceOptions& options) {
  Collector& c = collector();
  c.ring_capacity.store(round_up_pow2(options.ring_capacity),
                        std::memory_order_relaxed);
  c.latency_metrics.store(options.latency_metrics, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable_tracing() noexcept {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void reset_trace() {
  Collector& c = collector();
  // Bump first so threads mid-record drain into rings that are already
  // excluded from collection; they re-register on their next span.
  c.epoch.fetch_add(1, std::memory_order_acq_rel);
}

void bind_clock(const sim::SimClock* clock) noexcept {
  g_clock.store(clock, std::memory_order_release);
}

std::int64_t trace_now_ns() noexcept {
  const sim::SimClock* c = g_clock.load(std::memory_order_acquire);
  if (c != nullptr) return c->now();
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<TraceEvent> collect_events() {
  Collector& c = collector();
  const std::uint64_t e = c.epoch.load(std::memory_order_acquire);
  std::vector<TraceEvent> out;
  {
    sim::MutexLock lock(c.mu);
    for (const ThreadRing* ring : c.rings)
      if (ring->epoch() == e) ring->collect(out);
  }
  // Parents before children on the same thread: ascending start, longer
  // duration first on ties, so trace viewers nest complete events correctly.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns)
                       return a.start_ns < b.start_ns;
                     return a.dur_ns > b.dur_ns;
                   });
  return out;
}

std::uint64_t events_recorded() noexcept {
  Collector& c = collector();
  const std::uint64_t e = c.epoch.load(std::memory_order_acquire);
  std::uint64_t total = 0;
  sim::MutexLock lock(c.mu);
  for (const ThreadRing* ring : c.rings)
    if (ring->epoch() == e) total += ring->recorded();
  return total;
}

std::uint64_t events_dropped() noexcept {
  Collector& c = collector();
  const std::uint64_t e = c.epoch.load(std::memory_order_acquire);
  std::uint64_t total = 0;
  sim::MutexLock lock(c.mu);
  for (const ThreadRing* ring : c.rings)
    if (ring->epoch() == e) total += ring->dropped();
  return total;
}

#endif  // !CRICKET_OBS_DISABLE

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    const char* name = ev.name != nullptr ? ev.name : layer_name(ev.layer);
    if (ev.instant) {
      std::snprintf(buf, sizeof buf,
                    "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                    "\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"xid\":%u,\"arg\":%" PRIu64 "}}",
                    name, layer_category(ev.layer),
                    static_cast<double>(ev.start_ns) / 1000.0, ev.tid, ev.xid,
                    ev.arg);
    } else {
      std::snprintf(buf, sizeof buf,
                    "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"xid\":%u,\"arg\":%" PRIu64 "}}",
                    name, layer_category(ev.layer),
                    static_cast<double>(ev.start_ns) / 1000.0,
                    static_cast<double>(ev.dur_ns) / 1000.0, ev.tid, ev.xid,
                    ev.arg);
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json(collect_events());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (n != json.size()) std::fclose(f);
  return ok;
}

TraceSession TraceSession::from_env() {
  const char* trace = std::getenv("CRICKET_TRACE");
  const char* metrics = std::getenv("CRICKET_METRICS");
  return TraceSession(trace != nullptr ? trace : "",
                      metrics != nullptr ? metrics : "");
}

TraceSession::TraceSession(std::string trace_path, std::string metrics_path,
                           TraceOptions options)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty()) {
    reset_trace();
    enable_tracing(options);
  }
}

TraceSession::TraceSession(TraceSession&& other) noexcept
    : trace_path_(std::move(other.trace_path_)),
      metrics_path_(std::move(other.metrics_path_)),
      flushed_(other.flushed_) {
  other.trace_path_.clear();
  other.metrics_path_.clear();
  other.flushed_ = true;
}

TraceSession::~TraceSession() {
  if (active() && !flushed_) flush();
}

bool TraceSession::flush() {
  if (flushed_) return true;
  flushed_ = true;
  bool ok = true;
  if (!trace_path_.empty()) {
    disable_tracing();
    if (write_chrome_trace(trace_path_)) {
      std::fprintf(stderr, "[obs] wrote trace: %s\n", trace_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] failed to write trace: %s\n",
                   trace_path_.c_str());
      ok = false;
    }
  }
  if (!metrics_path_.empty()) {
    const std::string text = Registry::global().prometheus_text();
    std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
    if (f != nullptr &&
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fclose(f) == 0) {
      std::fprintf(stderr, "[obs] wrote metrics: %s\n", metrics_path_.c_str());
    } else {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "[obs] failed to write metrics: %s\n",
                   metrics_path_.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace cricket::obs
