// Cross-layer span tracing keyed by RPC xid.
//
// A remote CUDA call crosses six subsystems (cudart facade → cricket client
// → rpcflow channel → rpc transport/vnet → server dispatch → gpusim); this
// header gives each layer a one-line way to mark its slice of the call:
//
//   obs::Span span(obs::Layer::kVnetTx, nullptr, frame_bytes);
//
// Spans carry the current RPC xid (a thread-local set by ScopedXid at the
// points where a call enters a thread: client call sites and the pipelined
// server's worker loop), so a trace viewer can line up the client, wire, and
// server slices of one call. Completed spans land in per-thread lock-free
// ring buffers and export as Chrome trace_event JSON (chrome://tracing /
// ui.perfetto.dev loadable); each span also feeds a per-layer latency
// histogram in the global metrics Registry.
//
// Cost discipline: with tracing disabled (the default) a Span is one relaxed
// atomic load and a branch; compiled with CRICKET_OBS_DISABLE it is a true
// no-op the optimizer deletes. Enabled spans write one seqlock-protected ring
// slot — no locks, no allocation on the hot path. Spans never charge the
// SimClock, so virtual-time benchmark numbers are identical with tracing on
// or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_clock.hpp"

namespace cricket::obs {

/// Where in the stack a span was recorded. One value per instrumented slice;
/// layer_name() is the default span name, layer_category() groups related
/// layers for trace-viewer filtering.
enum class Layer : std::uint8_t {
  kApp = 0,          // benchmark / application sections
  kClientCall,       // cricket client: whole remote API call
  kClientSerialize,  // cricket/rpc client: XDR-encode the call
  kClientWait,       // rpc client: wait for + decode the reply
  kChanSend,         // rpcflow channel: enqueue/send a call record
  kChanFlush,        // rpcflow batcher: flush coalesced records
  kChanReply,        // rpcflow channel: reply matched to its future
  kNetTx,            // host-side shaped transport TX
  kNetRx,            // host-side shaped transport RX
  kVnetTx,           // virtio-net guest transport TX
  kVnetRx,           // virtio-net guest transport RX
  kServerDispatch,   // rpc server: decode + dispatch to the service proc
  kServerReply,      // rpc server: encode + send the reply
  kGpuLaunch,        // gpusim: kernel execution
  kGpuMemcpy,        // gpusim: H2D/D2H/D2D copies
  kGpuSync,          // gpusim: stream/device synchronization
  kCount
};

/// "vnet.tx", "server.dispatch", ... (stable identifiers used in traces,
/// metric labels, and the docs' span taxonomy).
[[nodiscard]] const char* layer_name(Layer layer) noexcept;
/// Coarse grouping for the Chrome trace `cat` field: "app", "client",
/// "chan", "net", "vnet", "server", "gpu".
[[nodiscard]] const char* layer_category(Layer layer) noexcept;

/// One completed span (or instant event, dur_ns == 0 and instant == true).
struct TraceEvent {
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint64_t arg = 0;      // layer-defined payload, usually bytes
  std::uint32_t xid = 0;      // RPC call id, 0 when outside any call
  std::uint32_t tid = 0;      // dense per-process thread id
  Layer layer = Layer::kApp;
  bool instant = false;
  const char* name = nullptr;  // static string, defaults to layer_name()
};

struct TraceOptions {
  /// Events retained per thread; older events are overwritten (dropped
  /// counter keeps score). Rounded up to a power of two.
  std::size_t ring_capacity = 64 * 1024;
  /// Also observe each span's duration into the global Registry histogram
  /// `cricket_span_latency_ns{layer=...}`.
  bool latency_metrics = true;
};

#if defined(CRICKET_OBS_DISABLE)

constexpr bool tracing_enabled() noexcept { return false; }
inline void enable_tracing(const TraceOptions& = {}) noexcept {}
inline void disable_tracing() noexcept {}
inline void reset_trace() noexcept {}
inline void bind_clock(const sim::SimClock*) noexcept {}
inline std::int64_t trace_now_ns() noexcept { return 0; }
inline std::uint32_t current_xid() noexcept { return 0; }
inline std::uint64_t events_recorded() noexcept { return 0; }
inline std::uint64_t events_dropped() noexcept { return 0; }
inline std::vector<TraceEvent> collect_events() { return {}; }
inline void instant(Layer, const char* = nullptr, std::uint64_t = 0) noexcept {
}

class ScopedXid {
 public:
  explicit ScopedXid(std::uint32_t) noexcept {}
};

class Span {
 public:
  explicit Span(Layer, const char* = nullptr, std::uint64_t = 0) noexcept {}
  void set_arg(std::uint64_t) noexcept {}
  void finish() noexcept {}
  void cancel() noexcept {}
};

#else  // tracing compiled in

namespace detail {
extern std::atomic<bool> g_enabled;
void record_span(Layer layer, const char* name, std::int64_t start_ns,
                 std::int64_t dur_ns, std::uint64_t arg, bool instant) noexcept;
extern thread_local std::uint32_t t_xid;
}  // namespace detail

/// Runtime switch, checked (relaxed) at every span construction.
inline bool tracing_enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on. Idempotent; options apply to rings created
/// after the call (each thread's ring is sized on first use).
void enable_tracing(const TraceOptions& options = {});
/// Stops recording; already-collected events stay readable.
void disable_tracing() noexcept;
/// Drops all recorded events and zeroes the recorded/dropped counters.
/// Existing threads transparently re-register on their next span.
void reset_trace();

/// Points the span timestamp source at a virtual clock (nullptr restores the
/// default steady_clock). Benches bind the experiment's SimClock so trace
/// timelines line up with the paper-style virtual-time numbers.
void bind_clock(const sim::SimClock* clock) noexcept;
/// Current trace timestamp (bound SimClock, else steady_clock ns since the
/// first call).
[[nodiscard]] std::int64_t trace_now_ns() noexcept;

/// The RPC xid attributed to spans on this thread (0 = outside any call).
[[nodiscard]] inline std::uint32_t current_xid() noexcept {
  return detail::t_xid;
}

/// Sets the thread's current xid for a scope; restores the previous value on
/// exit. Client call sites wrap the whole call; the pipelined server's
/// workers wrap each dispatched call (that is the cross-thread hand-off).
class ScopedXid {
 public:
  explicit ScopedXid(std::uint32_t xid) noexcept : prev_(detail::t_xid) {
    detail::t_xid = xid;
  }
  ~ScopedXid() { detail::t_xid = prev_; }
  ScopedXid(const ScopedXid&) = delete;
  ScopedXid& operator=(const ScopedXid&) = delete;

 private:
  std::uint32_t prev_;
};

/// RAII span: captures the start timestamp at construction, records on
/// finish()/destruction. Cheap to construct when tracing is off.
class Span {
 public:
  explicit Span(Layer layer, const char* name = nullptr,
                std::uint64_t arg = 0) noexcept
      : layer_(layer), name_(name), arg_(arg), active_(tracing_enabled()) {
    if (active_) start_ns_ = trace_now_ns();
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches/overwrites the payload (e.g. byte count known only after the
  /// transfer).
  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

  /// Drops the span without recording (e.g. a blocking recv that returned
  /// nothing).
  void cancel() noexcept { active_ = false; }

  /// Records the span now instead of at scope exit. Idempotent.
  void finish() noexcept {
    if (!active_) return;
    active_ = false;
    detail::record_span(layer_, name_, start_ns_,
                        trace_now_ns() - start_ns_, arg_, false);
  }

 private:
  std::int64_t start_ns_ = 0;
  Layer layer_;
  const char* name_;
  std::uint64_t arg_;
  bool active_;
};

/// Zero-duration marker event (reply matched, flush triggered, ...).
inline void instant(Layer layer, const char* name = nullptr,
                    std::uint64_t arg = 0) noexcept {
  if (!tracing_enabled()) return;
  detail::record_span(layer, name, trace_now_ns(), 0, arg, true);
}

/// Spans recorded since the last reset, across all threads, sorted by start
/// time. Safe to call while other threads keep recording (seqlock readers
/// skip slots mid-write).
[[nodiscard]] std::vector<TraceEvent> collect_events();
/// Total spans recorded / overwritten-before-collection since last reset.
[[nodiscard]] std::uint64_t events_recorded() noexcept;
[[nodiscard]] std::uint64_t events_dropped() noexcept;

#endif  // CRICKET_OBS_DISABLE

/// Chrome trace_event JSON ("[{name,cat,ph:"X",ts,dur,pid,tid,args},...]"
/// wrapped in {"traceEvents": ...}) for the given events.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events);
/// collect_events() + chrome_trace_json() + write to `path`. Returns false
/// (and leaves no partial file contract) if the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// RAII capture driven by environment variables: CRICKET_TRACE=<path> turns
/// tracing on and writes a Chrome trace there at scope exit;
/// CRICKET_METRICS=<path> writes the global registry's Prometheus text dump.
/// Benches construct one at the top of main().
class TraceSession {
 public:
  /// Reads CRICKET_TRACE / CRICKET_METRICS; inactive if neither is set.
  static TraceSession from_env();
  /// Explicit paths (empty = skip that artifact). Enables tracing when
  /// `trace_path` is non-empty.
  TraceSession(std::string trace_path, std::string metrics_path,
               TraceOptions options = {});
  TraceSession() = default;  // inactive
  ~TraceSession();
  TraceSession(TraceSession&& other) noexcept;
  TraceSession& operator=(TraceSession&&) = delete;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] bool active() const noexcept {
    return !trace_path_.empty() || !metrics_path_.empty();
  }
  [[nodiscard]] const std::string& trace_path() const noexcept {
    return trace_path_;
  }

  /// Writes the artifacts now (and disables tracing); the destructor becomes
  /// a no-op. Returns false if any write failed.
  bool flush();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool flushed_ = false;
};

}  // namespace cricket::obs
